//! The Theorem-10 marker discipline, on its own: a marker is the concept
//! `(= 1 P)` for an auxiliary relation `P` with `⊤ ⊑ ∃P.⊤`. Then
//!
//! * a marker can never be *preset positively* by an instance (a model may
//!   always add a second `P`-successor),
//! * it can be preset *negatively* (two explicit successors force ≥ 2),
//! * and an ontology axiom `C ⊑ (= 1 P)` genuinely forces it — while
//!   remaining invisible to conjunctive queries.

use gomq_core::query::CqBuilder;
use gomq_core::{Fact, Instance, Term, Ucq, Vocab};
use gomq_dl::concept::{Concept, Role};
use gomq_dl::translate::{concept_to_formula, to_gf};
use gomq_dl::DlOntology;
use gomq_logic::LVar;
use gomq_reasoning::CertainEngine;

/// The base ontology: `⊤ ⊑ ∃P.⊤` (and a trigger concept `C ⊑ (= 1 P)`).
fn marker_setup(v: &mut Vocab) -> (gomq_logic::GfOntology, gomq_core::RelId, gomq_core::RelId) {
    let p = v.rel("Pmk", 2);
    let c = v.rel("Cmk", 1);
    let mut dl = DlOntology::new();
    dl.sub(Concept::Top, Concept::some(Role::new(p)));
    dl.sub(Concept::Name(c), Concept::exactly_one(Role::new(p)));
    (to_gf(&dl), p, c)
}

#[test]
fn markers_cannot_be_preset_positively() {
    let mut v = Vocab::new();
    let (o, p, _) = marker_setup(&mut v);
    let marker = concept_to_formula(&Concept::exactly_one(Role::new(p)), LVar(0));
    // D = {P(a,b)}: one successor in the data, but a model may add more —
    // the marker is NOT certain.
    let a = v.constant("mk_a");
    let b = v.constant("mk_b");
    let mut d = Instance::new();
    d.insert(Fact::consts(p, &[a, b]));
    let engine = CertainEngine::new(2);
    let outcome = engine.certain_formula(&o, &d, &marker, LVar(0), Term::Const(a), &mut v);
    assert!(!outcome.is_certain(), "(=1P) is never instance-forced");
}

#[test]
fn markers_can_be_preset_negatively() {
    let mut v = Vocab::new();
    let (o, p, _) = marker_setup(&mut v);
    let marker = concept_to_formula(&Concept::exactly_one(Role::new(p)), LVar(0));
    // D = {P(a,b), P(a,b')}: two explicit successors refute the marker —
    // its *negation* is certain.
    let a = v.constant("mk2_a");
    let b1 = v.constant("mk2_b1");
    let b2 = v.constant("mk2_b2");
    let mut d = Instance::new();
    d.insert(Fact::consts(p, &[a, b1]));
    d.insert(Fact::consts(p, &[a, b2]));
    let engine = CertainEngine::new(2);
    let negated = gomq_logic::Formula::Not(Box::new(marker));
    let outcome = engine.certain_formula(&o, &d, &negated, LVar(0), Term::Const(a), &mut v);
    assert!(
        outcome.is_certain(),
        "two explicit P-successors make ¬(=1P) certain"
    );
}

#[test]
fn axioms_do_force_markers() {
    let mut v = Vocab::new();
    let (o, p, c) = marker_setup(&mut v);
    let marker = concept_to_formula(&Concept::exactly_one(Role::new(p)), LVar(0));
    // C ⊑ (= 1 P): on D = {C(a)} the marker IS certain.
    let a = v.constant("mk3_a");
    let mut d = Instance::new();
    d.insert(Fact::consts(c, &[a]));
    let engine = CertainEngine::new(2);
    let outcome = engine.certain_formula(&o, &d, &marker, LVar(0), Term::Const(a), &mut v);
    assert!(outcome.is_certain(), "the axiom forces the marker");
}

#[test]
fn markers_are_invisible_to_conjunctive_queries() {
    // The CQ `∃y P(x,y)` cannot distinguish marked from unmarked elements:
    // it is certain at *every* element (⊤ ⊑ ∃P.⊤), marked or not.
    let mut v = Vocab::new();
    let (o, p, c) = marker_setup(&mut v);
    let a = v.constant("mk4_a");
    let b = v.constant("mk4_b");
    let pfree = v.rel("Dmk", 1);
    let mut d = Instance::new();
    d.insert(Fact::consts(c, &[a])); // marked
    d.insert(Fact::consts(pfree, &[b])); // unmarked
    let engine = CertainEngine::new(2);
    let mut bq = CqBuilder::new();
    let x = bq.var("x");
    let y = bq.var("y");
    bq.atom(p, &[x, y]);
    let q = Ucq::from_cq(bq.build(vec![x]));
    for elem in [a, b] {
        assert!(
            engine
                .certain(&o, &d, &q, &[Term::Const(elem)], &mut v)
                .is_certain(),
            "∃y P(x,y) holds everywhere — the marker choice is invisible"
        );
    }
}
