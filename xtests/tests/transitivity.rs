//! Transitive roles — the extension named in the paper's conclusion as
//! future work ("add the ability to declare in an ontology that a binary
//! relation is transitive"). Transitivity is outside GF and outside every
//! Figure-1 fragment, but the model checker and the countermodel engine
//! support it, so certain answers can be computed and the classifier
//! correctly refuses to place such ontologies in the figure.

use gomq_core::query::CqBuilder;
use gomq_core::{Fact, Instance, Term, Ucq, Vocab};
use gomq_logic::eval::{is_transitive_in, satisfies_ontology};
use gomq_logic::fragment::{best_zone, classify, Zone};
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};
use gomq_reasoning::CertainEngine;

#[test]
fn transitive_closure_is_certain() {
    // O = { trans(partOf) }, D = a partOf-chain: the composed edges are
    // certain answers, the reversed ones are not.
    let mut v = Vocab::new();
    let part_of = v.rel("partOf", 2);
    let mut o = GfOntology::new();
    o.declare_transitive(part_of);
    let a = v.constant("finger");
    let b = v.constant("hand");
    let c = v.constant("arm");
    let mut d = Instance::new();
    d.insert(Fact::consts(part_of, &[a, b]));
    d.insert(Fact::consts(part_of, &[b, c]));
    let engine = CertainEngine::new(1);
    let mut bq = CqBuilder::new();
    let x = bq.var("x");
    let y = bq.var("y");
    bq.atom(part_of, &[x, y]);
    let q = Ucq::from_cq(bq.build(vec![x, y]));
    assert!(engine
        .certain(&o, &d, &q, &[Term::Const(a), Term::Const(c)], &mut v)
        .is_certain());
    assert!(!engine
        .certain(&o, &d, &q, &[Term::Const(c), Term::Const(a)], &mut v)
        .is_certain());
}

#[test]
fn transitivity_interacts_with_value_restrictions() {
    // trans(R) + ∀xy(R(x,y) → (A(x) → A(y))) over a chain: with the
    // transitive closure forced, A still propagates to the end — and
    // R(start, end) itself becomes certain.
    let mut v = Vocab::new();
    let r = v.rel("Rt", 2);
    let a_rel = v.rel("At", 1);
    let (x, y) = (LVar(0), LVar(1));
    let mut o = GfOntology::from_ugf(vec![UgfSentence::new(
        vec![x, y],
        Guard::Atom {
            rel: r,
            args: vec![x, y],
        },
        Formula::implies(Formula::unary(a_rel, x), Formula::unary(a_rel, y)),
        vec!["x".into(), "y".into()],
    )]);
    o.declare_transitive(r);
    let c0 = v.constant("t0");
    let c1 = v.constant("t1");
    let c2 = v.constant("t2");
    let mut d = Instance::new();
    d.insert(Fact::consts(a_rel, &[c0]));
    d.insert(Fact::consts(r, &[c0, c1]));
    d.insert(Fact::consts(r, &[c1, c2]));
    let engine = CertainEngine::new(1);
    let mut bq = CqBuilder::new();
    let qx = bq.var("x");
    bq.atom(a_rel, &[qx]);
    let q = Ucq::from_cq(bq.build(vec![qx]));
    let answers = engine.certain_answers(&o, &d, &q, &mut v);
    assert_eq!(answers.len(), 3, "A propagates along the whole chain");
}

#[test]
fn model_checker_validates_transitivity() {
    let mut v = Vocab::new();
    let r = v.rel("Rm", 2);
    let mut o = GfOntology::new();
    o.declare_transitive(r);
    let a = v.constant("m0");
    let b = v.constant("m1");
    let c = v.constant("m2");
    let mut chain = Instance::new();
    chain.insert(Fact::consts(r, &[a, b]));
    chain.insert(Fact::consts(r, &[b, c]));
    assert!(!is_transitive_in(&chain, r));
    assert!(!satisfies_ontology(&chain, &o));
    let mut closed = chain.clone();
    closed.insert(Fact::consts(r, &[a, c]));
    assert!(is_transitive_in(&closed, r));
    assert!(satisfies_ontology(&closed, &o));
}

#[test]
fn transitivity_is_outside_figure_1() {
    let mut v = Vocab::new();
    let r = v.rel("Rf", 2);
    let mut o = GfOntology::new();
    o.declare_transitive(r);
    assert!(classify(&o, &v).is_empty());
    assert_eq!(best_zone(&o, &v), Zone::Unknown);
    // And the PTIME machineries refuse it rather than answering wrongly.
    assert!(gomq_rewriting::types::ElementTypeSystem::build(&o, &v).is_err());
    let d = {
        let a = v.constant("f0");
        let b = v.constant("f1");
        Instance::from_facts(vec![Fact::consts(r, &[a, b])])
    };
    assert!(matches!(
        gomq_reasoning::chase::chase(&o, &d, &mut v, Default::default()),
        Err(gomq_reasoning::ChaseError::Unsupported(_))
    ));
}
