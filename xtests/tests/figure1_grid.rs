//! Figure 1 as a test: representative ontologies for every fragment in
//! the figure, with the classifier assigning the paper's zone.

use gomq_core::Vocab;
use gomq_logic::fragment::{best_zone, classify, Fragment, Zone};
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};

const X: LVar = LVar(0);
const Y: LVar = LVar(1);

fn names() -> Vec<String> {
    vec!["x".into(), "y".into()]
}

/// uGF(1): depth 1, equality only as the outer guard.
fn ugf1(v: &mut Vocab) -> GfOntology {
    let a = v.rel("A", 1);
    let r = v.rel("R", 2);
    GfOntology::from_ugf(vec![UgfSentence::forall_one(
        X,
        Formula::implies(
            Formula::unary(a, X),
            Formula::Exists {
                qvars: vec![Y],
                guard: Guard::Atom {
                    rel: r,
                    args: vec![X, Y],
                },
                body: Box::new(Formula::True),
            },
        ),
        names(),
    )])
}

/// uGF⁻(1,=): adds non-guard equality, keeps outer equality guards.
fn ugf_minus_1_eq(v: &mut Vocab) -> GfOntology {
    let r = v.rel("R", 2);
    GfOntology::from_ugf(vec![UgfSentence::forall_one(
        X,
        Formula::Exists {
            qvars: vec![Y],
            guard: Guard::Atom {
                rel: r,
                args: vec![X, Y],
            },
            body: Box::new(Formula::Not(Box::new(Formula::Eq(X, Y)))),
        },
        names(),
    )])
}

/// uGF⁻₂(2): depth 2, two variables, outer equality guard, no equality.
fn ugf_minus_2_2(v: &mut Vocab) -> GfOntology {
    let a = v.rel("A", 1);
    let r = v.rel("R", 2);
    let inner = Formula::Exists {
        qvars: vec![X],
        guard: Guard::Atom {
            rel: r,
            args: vec![Y, X],
        },
        body: Box::new(Formula::unary(a, X)),
    };
    GfOntology::from_ugf(vec![UgfSentence::forall_one(
        X,
        Formula::Exists {
            qvars: vec![Y],
            guard: Guard::Atom {
                rel: r,
                args: vec![X, Y],
            },
            body: Box::new(inner),
        },
        names(),
    )])
}

/// uGC⁻₂(1,=): counting, depth 1, outer equality guard.
fn ugc_minus_2_1_eq(v: &mut Vocab) -> GfOntology {
    let a = v.rel("A", 1);
    let r = v.rel("R", 2);
    GfOntology::from_ugf(vec![UgfSentence::forall_one(
        X,
        Formula::implies(
            Formula::unary(a, X),
            Formula::CountExists {
                n: 5,
                qvar: Y,
                guard: Guard::Atom {
                    rel: r,
                    args: vec![X, Y],
                },
                body: Box::new(Formula::True),
            },
        ),
        names(),
    )])
}

/// uGF₂(1,=): equality with a *relational* outer guard.
fn ugf2_1_eq(v: &mut Vocab) -> GfOntology {
    let r = v.rel("R", 2);
    let s = v.rel("S", 2);
    GfOntology::from_ugf(vec![UgfSentence::new(
        vec![X, Y],
        Guard::Atom {
            rel: r,
            args: vec![X, Y],
        },
        Formula::Or(vec![
            Formula::Eq(X, Y),
            Formula::Exists {
                qvars: vec![Y],
                guard: Guard::Atom {
                    rel: s,
                    args: vec![X, Y],
                },
                body: Box::new(Formula::True),
            },
        ]),
        names(),
    )])
}

/// uGF₂(2): depth 2 with a relational outer guard.
fn ugf2_2(v: &mut Vocab) -> GfOntology {
    let a = v.rel("A", 1);
    let r = v.rel("R", 2);
    let inner = Formula::Exists {
        qvars: vec![X],
        guard: Guard::Atom {
            rel: r,
            args: vec![Y, X],
        },
        body: Box::new(Formula::unary(a, X)),
    };
    GfOntology::from_ugf(vec![UgfSentence::new(
        vec![X, Y],
        Guard::Atom {
            rel: r,
            args: vec![X, Y],
        },
        Formula::Exists {
            qvars: vec![X],
            guard: Guard::Atom {
                rel: r,
                args: vec![Y, X],
            },
            body: Box::new(inner),
        },
        names(),
    )])
}

/// uGF₂(1,f): functions, depth 1, relational outer guard.
fn ugf2_1_f(v: &mut Vocab) -> GfOntology {
    let a = v.rel("A", 1);
    let r = v.rel("R", 2);
    let f = v.rel("F", 2);
    let mut o = GfOntology::from_ugf(vec![UgfSentence::new(
        vec![X, Y],
        Guard::Atom {
            rel: r,
            args: vec![X, Y],
        },
        Formula::unary(a, X),
        names(),
    )]);
    o.declare_functional(f);
    o
}

/// uGF⁻₂(2,f): the no-dichotomy corner.
fn ugf_minus_2_2_f(v: &mut Vocab) -> GfOntology {
    let mut o = ugf_minus_2_2(v);
    let f = v.rel("F", 2);
    o.declare_functional(f);
    o
}

#[test]
fn figure1_zones_are_reproduced() {
    type Case = (&'static str, fn(&mut Vocab) -> GfOntology, Fragment, Zone);
    let cases: Vec<Case> = vec![
        ("uGF(1)", ugf1, Fragment::Ugf1, Zone::Dichotomy),
        (
            "uGF-(1,=)",
            ugf_minus_1_eq,
            Fragment::UgfMinus1Eq,
            Zone::Dichotomy,
        ),
        (
            "uGF-2(2)",
            ugf_minus_2_2,
            Fragment::UgfMinus2_2,
            Zone::Dichotomy,
        ),
        (
            "uGC-2(1,=)",
            ugc_minus_2_1_eq,
            Fragment::UgcMinus2_1Eq,
            Zone::Dichotomy,
        ),
        ("uGF2(1,=)", ugf2_1_eq, Fragment::Ugf2_1Eq, Zone::CspHard),
        ("uGF2(2)", ugf2_2, Fragment::Ugf2_2, Zone::CspHard),
        ("uGF2(1,f)", ugf2_1_f, Fragment::Ugf2_1F, Zone::CspHard),
        (
            "uGF-2(2,f)",
            ugf_minus_2_2_f,
            Fragment::UgfMinus2_2F,
            Zone::NoDichotomy,
        ),
    ];
    for (name, build, expected_fragment, expected_zone) in cases {
        let mut v = Vocab::new();
        let o = build(&mut v);
        let frags = classify(&o, &v);
        assert_eq!(
            frags.first().copied(),
            Some(expected_fragment),
            "{name}: tightest fragment (got {frags:?})"
        );
        assert_eq!(best_zone(&o, &v), expected_zone, "{name}: zone");
    }
}

#[test]
fn dl_fragments_map_into_figure1_via_translation() {
    use gomq_dl::lang::dl_figure1_zone;
    use gomq_dl::parser::parse_ontology;
    use gomq_dl::translate::to_gf;
    // GF-level zones after translation (Lemma 7 directions).
    let gf_cases: &[(&str, &str, Zone)] = &[
        // ALCHIQ depth 1 → uGC⁻₂(1,=) → dichotomy + decidable meta.
        (
            "ALCHIQ d1",
            "A sub >=2 R.B\nrole R sub S\n",
            Zone::Dichotomy,
        ),
        // ALCHI depth 2 → uGF⁻₂(2) → dichotomy.
        ("ALCHI d2", "A sub ex R.(all S.B)\n", Zone::Dichotomy),
    ];
    for (name, text, zone) in gf_cases {
        let mut v = Vocab::new();
        let dl = parse_ontology(text, &mut v).expect("parses");
        let gf = to_gf(&dl);
        assert_eq!(best_zone(&gf, &v), *zone, "{name} (GF level)");
    }
    // DL-level zones (the figure's grey entries).
    let dl_cases: &[(&str, &str, Zone)] = &[
        (
            "ALCHIQ d1",
            "A sub >=2 R.B\nrole R sub S\n",
            Zone::Dichotomy,
        ),
        (
            "ALCHIF d2",
            "A sub ex R.(all S.B)\nfunc(R)\n",
            Zone::Dichotomy,
        ),
        ("ALCF` d2", "A sub ex R.(<=1 S.Top)\n", Zone::CspHard),
        ("ALCIF` d2", "A sub ex R-.(<=1 S.Top)\n", Zone::NoDichotomy),
        ("ALC d3", "A sub ex R.(ex R.(ex R.B))\n", Zone::CspHard),
        (
            "ALCF d3",
            "A sub ex R.(ex R.(ex R.B))\nfunc(R)\n",
            Zone::NoDichotomy,
        ),
    ];
    for (name, text, zone) in dl_cases {
        let mut v = Vocab::new();
        let dl = parse_ontology(text, &mut v).expect("parses");
        assert_eq!(dl_figure1_zone(&dl), *zone, "{name} (DL level)");
    }
}
