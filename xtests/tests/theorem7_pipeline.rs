//! Theorem 7 end-to-end: for dichotomy-fragment ontologies, the three
//! characterisations line up on concrete instances —
//!
//! * materializable (disjunction property holds) ⇒ the type-elimination
//!   Datalog rewriting computes exactly the certain answers,
//! * non-materializable ⇒ a disjunction witness exists (coNP-hard side).

use gomq_core::{Fact, Instance, Term, Vocab};
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_reasoning::materialize::{find_disjunction_witness, standard_candidates};
use gomq_reasoning::CertainEngine;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::types::ElementTypeSystem;

/// Builds a pseudo-random instance over the parsed signature.
fn random_instance(
    unary: &[gomq_core::RelId],
    binary: &[gomq_core::RelId],
    n_elems: usize,
    seed: u64,
    vocab: &mut Vocab,
) -> Instance {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let elems: Vec<_> = (0..n_elems)
        .map(|i| vocab.constant(&format!("ri{seed}_{i}")))
        .collect();
    let mut d = Instance::new();
    for &e in &elems {
        if !unary.is_empty() && next() % 2 == 0 {
            let u = unary[(next() % unary.len() as u64) as usize];
            d.insert(Fact::consts(u, &[e]));
        }
    }
    for _ in 0..n_elems {
        if binary.is_empty() {
            break;
        }
        let r = binary[(next() % binary.len() as u64) as usize];
        let a = elems[(next() % elems.len() as u64) as usize];
        let b = elems[(next() % elems.len() as u64) as usize];
        if a != b {
            d.insert(Fact::consts(r, &[a, b]));
        }
    }
    if d.is_empty() {
        d.insert(Fact::consts(unary[0], &[elems[0]]));
    }
    d
}

#[test]
fn horn_rewriting_agrees_with_engine_on_random_instances() {
    let mut v = Vocab::new();
    let text = "\
A sub ex R.B
B sub C
C sub all R.A
D sub not C
";
    let dl = parse_ontology(text, &mut v).expect("parses");
    let onto = to_gf(&dl);
    let sys = ElementTypeSystem::build(&onto, &v).expect("supported");
    let unary: Vec<_> = ["A", "B", "C", "D"]
        .iter()
        .map(|n| v.find_rel(n).expect("exists"))
        .collect();
    let binary = vec![v.find_rel("R").expect("exists")];
    let engine = CertainEngine::new(2);
    let c_rel = unary[2];
    let program = emit_datalog(&sys, c_rel, &mut v);
    for seed in 0..5u64 {
        let d = random_instance(&unary, &binary, 4, seed, &mut v);
        // Only compare on instances where the ontology is materializable
        // (it is Horn except for the ¬C part, which cannot introduce
        // disjunctions): check consistency first.
        let consistent = engine.consistency(&onto, &d, &mut v).is_consistent();
        let from_types = sys.certain_unary(&d, c_rel);
        let from_program: std::collections::BTreeSet<Term> =
            program.eval(&d).into_iter().map(|t| t[0]).collect();
        assert_eq!(from_types, from_program, "seed {seed}");
        if consistent {
            // Cross-check against the model-theoretic certain answers.
            let mut b = gomq_core::query::CqBuilder::new();
            let x = b.var("x");
            b.atom(c_rel, &[x]);
            let q = gomq_core::Ucq::from_cq(b.build(vec![x]));
            let from_engine = engine.certain_answers(&onto, &d, &q, &mut v);
            let from_types_vec: std::collections::BTreeSet<Vec<Term>> =
                from_types.iter().map(|&t| vec![t]).collect();
            assert_eq!(from_types_vec, from_engine, "seed {seed}");
        }
    }
}

#[test]
fn non_materializable_side_finds_witnesses() {
    let mut v = Vocab::new();
    let dl = parse_ontology("P sub Q or S\n", &mut v).expect("parses");
    let onto = to_gf(&dl);
    let p = v.find_rel("P").expect("exists");
    let c = v.constant("w");
    let d = Instance::from_facts(vec![Fact::consts(p, &[c])]);
    let engine = CertainEngine::new(1);
    let candidates = standard_candidates(&onto, &d, &v);
    assert!(
        find_disjunction_witness(&onto, &d, &candidates, &engine, &mut v).is_some(),
        "the disjunctive ontology fails the disjunction property"
    );
}

#[test]
fn inconsistent_instances_are_all_answers_in_both_routes() {
    let mut v = Vocab::new();
    let dl = parse_ontology("A sub B\nA sub not B\n", &mut v).expect("parses");
    let onto = to_gf(&dl);
    let sys = ElementTypeSystem::build(&onto, &v).expect("supported");
    let a_rel = v.find_rel("A").expect("exists");
    let b_rel = v.find_rel("B").expect("exists");
    let c = v.constant("z");
    let d = Instance::from_facts(vec![Fact::consts(a_rel, &[c])]);
    let engine = CertainEngine::new(1);
    assert!(!engine.consistency(&onto, &d, &mut v).is_consistent());
    // Both routes report B certain at c (ex falso).
    assert!(sys.certain_unary(&d, b_rel).contains(&Term::Const(c)));
    let program = emit_datalog(&sys, b_rel, &mut v);
    assert!(program.holds(&d, &[Term::Const(c)]));
}
