//! Two robustness checks across the stack:
//!
//! * the guarded fragment is not binary — ternary guards flow through the
//!   chase and the countermodel engine (uGF(1) with three variables, the
//!   dichotomy fragment the paper contrasts with uGF⁻(2));
//! * the Scott-style depth reduction of §2.1 is a *conservative
//!   extension*: certain answers over the original signature are
//!   preserved (checked empirically with the engine).

use gomq_core::query::CqBuilder;
use gomq_core::{Fact, Instance, Term, Ucq, Vocab};
use gomq_logic::scott::reduce_to_depth1;
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};
use gomq_reasoning::chase::{chase, ChaseConfig};
use gomq_reasoning::CertainEngine;

#[test]
fn ternary_rotation_ontology() {
    // O = { ∀xyz(W(x,y,z) → W(y,z,x)) }: Horn with a ternary guard; the
    // rotation closure is certain.
    let mut v = Vocab::new();
    let w = v.rel("W", 3);
    let (x, y, z) = (LVar(0), LVar(1), LVar(2));
    let o = GfOntology::from_ugf(vec![UgfSentence::new(
        vec![x, y, z],
        Guard::Atom {
            rel: w,
            args: vec![x, y, z],
        },
        Formula::Atom {
            rel: w,
            args: vec![y, z, x],
        },
        vec!["x".into(), "y".into(), "z".into()],
    )]);
    let a = v.constant("t_a");
    let b = v.constant("t_b");
    let c = v.constant("t_c");
    let mut d = Instance::new();
    d.insert(Fact::consts(w, &[a, b, c]));
    // Chase: terminates with the 3 rotations.
    let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
    let m = result.materialization().expect("deterministic");
    assert_eq!(m.len(), 3);
    assert!(m.contains(&Fact::consts(w, &[b, c, a])));
    assert!(m.contains(&Fact::consts(w, &[c, a, b])));
    // Engine: the rotated atom is a certain answer; the transposition is not.
    let engine = CertainEngine::new(1);
    let mut bq = CqBuilder::new();
    let (qx, qy, qz) = (bq.var("x"), bq.var("y"), bq.var("z"));
    bq.atom(w, &[qx, qy, qz]);
    let q = Ucq::from_cq(bq.build(vec![qx, qy, qz]));
    let rot = [Term::Const(b), Term::Const(c), Term::Const(a)];
    let swap = [Term::Const(b), Term::Const(a), Term::Const(c)];
    assert!(engine.certain(&o, &d, &q, &rot, &mut v).is_certain());
    assert!(!engine.certain(&o, &d, &q, &swap, &mut v).is_certain());
}

#[test]
fn ternary_existential_witnesses() {
    // O = { ∀xy(R(x,y) → ∃z(W(x,y,z) ∧ A(z))) }: a ternary witness atom.
    let mut v = Vocab::new();
    let r = v.rel("R", 2);
    let w = v.rel("W", 3);
    let a_rel = v.rel("A", 1);
    let (x, y, z) = (LVar(0), LVar(1), LVar(2));
    let o = GfOntology::from_ugf(vec![UgfSentence::new(
        vec![x, y],
        Guard::Atom {
            rel: r,
            args: vec![x, y],
        },
        Formula::Exists {
            qvars: vec![z],
            guard: Guard::Atom {
                rel: w,
                args: vec![x, y, z],
            },
            body: Box::new(Formula::unary(a_rel, z)),
        },
        vec!["x".into(), "y".into(), "z".into()],
    )]);
    let ca = v.constant("w_a");
    let cb = v.constant("w_b");
    let mut d = Instance::new();
    d.insert(Fact::consts(r, &[ca, cb]));
    let engine = CertainEngine::new(2);
    // Boolean: ∃z W(a,b,z) ∧ A(z) is certain.
    let mut bq = CqBuilder::new();
    let (qx, qy, qz) = (bq.var("x"), bq.var("y"), bq.var("z"));
    bq.atom(w, &[qx, qy, qz]).atom(a_rel, &[qz]);
    let q = Ucq::from_cq(bq.build(vec![qx, qy]));
    assert!(engine
        .certain(&o, &d, &q, &[Term::Const(ca), Term::Const(cb)], &mut v)
        .is_certain());
    // Chase agrees.
    let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
    let ans = result.certain_answers(&q, &d);
    assert!(ans.contains(&vec![Term::Const(ca), Term::Const(cb)]));
}

#[test]
fn scott_reduction_preserves_certain_answers() {
    // Depth-3 chain requirement: A(x) → ∃∃∃ (R-path of length 3 ending in
    // B). The depth-1 conservative extension must give the same certain
    // answers over the original signature.
    let mut v = Vocab::new();
    let a_rel = v.rel("A", 1);
    let b_rel = v.rel("B", 1);
    let r = v.rel("R", 2);
    let (x, y, z, u) = (LVar(0), LVar(1), LVar(2), LVar(3));
    let chain3 = Formula::Exists {
        qvars: vec![y],
        guard: Guard::Atom {
            rel: r,
            args: vec![x, y],
        },
        body: Box::new(Formula::Exists {
            qvars: vec![z],
            guard: Guard::Atom {
                rel: r,
                args: vec![y, z],
            },
            body: Box::new(Formula::Exists {
                qvars: vec![u],
                guard: Guard::Atom {
                    rel: r,
                    args: vec![z, u],
                },
                body: Box::new(Formula::unary(b_rel, u)),
            }),
        }),
    };
    let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
        x,
        Formula::implies(Formula::unary(a_rel, x), chain3),
        vec!["x".into(), "y".into(), "z".into(), "u".into()],
    )]);
    let o1 = reduce_to_depth1(&o, &mut v);
    assert!(gomq_logic::depth::ontology_depth(&o1) <= 1);
    // Instance: one A element, plus a partial path.
    let c0 = v.constant("s0");
    let c1 = v.constant("s1");
    let mut d = Instance::new();
    d.insert(Fact::consts(a_rel, &[c0]));
    d.insert(Fact::consts(r, &[c0, c1]));
    let engine = CertainEngine::new(3);
    // Queries over the ORIGINAL signature only.
    let queries: Vec<Ucq> = {
        let mut out = Vec::new();
        for rel in [a_rel, b_rel] {
            let mut bq = CqBuilder::new();
            let qx = bq.var("x");
            bq.atom(rel, &[qx]);
            out.push(Ucq::from_cq(bq.build(vec![qx])));
        }
        // Boolean: an R-path of length 3 into B exists.
        let mut bq = CqBuilder::new();
        let (p0, p1, p2, p3) = (bq.var("p0"), bq.var("p1"), bq.var("p2"), bq.var("p3"));
        bq.atom(r, &[p0, p1])
            .atom(r, &[p1, p2])
            .atom(r, &[p2, p3])
            .atom(b_rel, &[p3]);
        out.push(Ucq::from_cq(bq.build(vec![])));
        out
    };
    for (i, q) in queries.iter().enumerate() {
        if q.arity() == 0 {
            assert_eq!(
                engine.certain(&o, &d, q, &[], &mut v).is_certain(),
                engine.certain(&o1, &d, q, &[], &mut v).is_certain(),
                "boolean query {i}"
            );
        } else {
            assert_eq!(
                engine.certain_answers(&o, &d, q, &mut v),
                engine.certain_answers(&o1, &d, q, &mut v),
                "query {i}"
            );
        }
    }
    // And the depth-3 consequence really is certain in both.
    assert!(engine
        .certain(&o, &d, &queries[2], &[], &mut v)
        .is_certain());
}
