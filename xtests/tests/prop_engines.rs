//! Cross-engine property tests: the chase, the type-elimination
//! rewriting and the SAT-based countermodel search must agree wherever
//! their soundness domains overlap.

use gomq_core::query::CqBuilder;
use gomq_core::{Fact, Instance, Term, Ucq, Vocab};
use gomq_dl::concept::{Concept, Role};
use gomq_dl::translate::to_gf;
use gomq_dl::DlOntology;
use gomq_logic::eval::satisfies_ontology;
use gomq_reasoning::chase::{chase, ChaseConfig};
use gomq_reasoning::CertainEngine;
use gomq_rewriting::types::ElementTypeSystem;
use proptest::prelude::*;

/// Random Horn-ALC ontologies over a tiny signature: conjunctions of
/// axioms `A ⊑ B`, `A ⊑ ∃R.B`, `A ⊑ ∀R.B` (no disjunction, no negation —
/// always materializable; acyclic name usage keeps the chase finite).
#[derive(Clone, Debug)]
enum HornAxiom {
    Sub(u8, u8),
    Exists(u8, u8),
    Forall(u8, u8),
}

type HornCase = (Vec<HornAxiom>, Vec<(usize, usize)>, Vec<(usize, u8)>);

fn horn_strategy() -> impl Strategy<Value = HornCase> {
    (
        prop::collection::vec(
            prop_oneof![
                (0u8..4, 0u8..4).prop_map(|(a, b)| HornAxiom::Sub(a, b)),
                (0u8..4, 0u8..4).prop_map(|(a, b)| HornAxiom::Exists(a, b)),
                (0u8..4, 0u8..4).prop_map(|(a, b)| HornAxiom::Forall(a, b)),
            ],
            1..4,
        ),
        prop::collection::vec((0usize..3, 0usize..3), 0..4),
        prop::collection::vec((0usize..3, 0u8..4), 1..4),
    )
}

fn realize(
    axioms: &[HornAxiom],
    edges: &[(usize, usize)],
    labels: &[(usize, u8)],
    v: &mut Vocab,
) -> (gomq_logic::GfOntology, Instance, Vec<gomq_core::RelId>) {
    let names: Vec<_> = (0..4).map(|i| v.rel(&format!("N{i}"), 1)).collect();
    let r = v.rel("Rx", 2);
    let mut dl = DlOntology::new();
    for ax in axioms {
        match ax {
            // Only "forward" subsumptions a < b keep the chase acyclic.
            HornAxiom::Sub(a, b) => {
                let (a, b) = (*a.min(b) as usize, *a.max(b) as usize);
                if a != b {
                    dl.sub(Concept::Name(names[a]), Concept::Name(names[b]));
                }
            }
            HornAxiom::Exists(a, b) => {
                let (a, b) = (*a.min(b) as usize, *a.max(b) as usize);
                if a != b {
                    dl.sub(
                        Concept::Name(names[a]),
                        Concept::Exists(Role::new(r), Box::new(Concept::Name(names[b]))),
                    );
                }
            }
            HornAxiom::Forall(a, b) => {
                let (a, b) = (*a.min(b) as usize, *a.max(b) as usize);
                if a != b {
                    dl.sub(
                        Concept::Name(names[a]),
                        Concept::Forall(Role::new(r), Box::new(Concept::Name(names[b]))),
                    );
                }
            }
        }
    }
    let consts: Vec<_> = (0..3).map(|i| v.constant(&format!("e{i}"))).collect();
    let mut d = Instance::new();
    for &(a, b) in edges {
        if a != b {
            d.insert(Fact::consts(r, &[consts[a], consts[b]]));
        }
    }
    for &(a, n) in labels {
        d.insert(Fact::consts(names[n as usize], &[consts[a]]));
    }
    (to_gf(&dl), d, names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chase_and_engine_agree_on_horn((axioms, edges, labels) in horn_strategy()) {
        let mut v = Vocab::new();
        let (o, d, names) = realize(&axioms, &edges, &labels, &mut v);
        let Ok(result) = chase(&o, &d, &mut v, ChaseConfig::default()) else {
            // Chase did not terminate within budget: skip this case.
            return Ok(());
        };
        let engine = CertainEngine::new(2);
        // Compare certain answers to every atomic query.
        for &rel in &names {
            let mut b = CqBuilder::new();
            let x = b.var("x");
            b.atom(rel, &[x]);
            let q = Ucq::from_cq(b.build(vec![x]));
            let from_chase = result.certain_answers(&q, &d);
            let from_engine = engine.certain_answers(&o, &d, &q, &mut v);
            prop_assert_eq!(&from_chase, &from_engine, "relation {:?}", rel);
        }
    }

    #[test]
    fn types_and_engine_agree_on_horn((axioms, edges, labels) in horn_strategy()) {
        let mut v = Vocab::new();
        let (o, d, names) = realize(&axioms, &edges, &labels, &mut v);
        let Ok(sys) = ElementTypeSystem::build(&o, &v) else {
            return Ok(());
        };
        let engine = CertainEngine::new(2);
        for &rel in &names {
            let from_types = sys.certain_unary(&d, rel);
            let mut b = CqBuilder::new();
            let x = b.var("x");
            b.atom(rel, &[x]);
            let q = Ucq::from_cq(b.build(vec![x]));
            let from_engine: std::collections::BTreeSet<Term> = engine
                .certain_answers(&o, &d, &q, &mut v)
                .into_iter()
                .map(|t| t[0])
                .collect();
            prop_assert_eq!(&from_types, &from_engine, "relation {:?}", rel);
        }
    }

    #[test]
    fn chase_leaves_model_the_ontology((axioms, edges, labels) in horn_strategy()) {
        let mut v = Vocab::new();
        let (o, d, _) = realize(&axioms, &edges, &labels, &mut v);
        if let Ok(result) = chase(&o, &d, &mut v, ChaseConfig::default()) {
            for leaf in &result.leaves {
                prop_assert!(satisfies_ontology(leaf, &o));
                prop_assert!(leaf.models_instance(&d));
            }
        }
    }

    #[test]
    fn countermodels_are_genuine((axioms, edges, labels) in horn_strategy()) {
        let mut v = Vocab::new();
        let (o, d, names) = realize(&axioms, &edges, &labels, &mut v);
        let engine = CertainEngine::new(1);
        let rel = names[0];
        let mut b = CqBuilder::new();
        let x = b.var("x");
        b.atom(rel, &[x]);
        let q = Ucq::from_cq(b.build(vec![x]));
        for elem in d.dom() {
            if let gomq_reasoning::CertainOutcome::NotCertain(m) =
                engine.certain(&o, &d, &q, &[elem], &mut v)
            {
                prop_assert!(satisfies_ontology(&m, &o), "countermodel models O");
                prop_assert!(m.models_instance(&d), "countermodel contains D");
                prop_assert!(!q.holds(&m, &[elem]), "countermodel refutes the query");
            }
        }
    }
}
