//! Example 1 and Lemma 3: outside uGF, query-language robustness fails.
//!
//! * `O_Mat/PTime = {∀x A(x) ∨ ∀x B(x)}` is not preserved under disjoint
//!   unions and not CQ-materializable, yet CQ evaluation w.r.t. it is in
//!   PTIME — Theorem 3 genuinely needs invariance under disjoint unions.
//! * `O_UCQ/CQ = {∀x(A(x) ∨ B(x)) ∨ ∃x E(x)}`: the Boolean *UCQ*
//!   `∃x A(x) ∨ ∃x B(x) — formally A(x)∨B(x) as a UCQ — behaves
//!   differently from its CQ disjuncts (Lemma 3's divergence).

use gomq_core::query::CqBuilder;
use gomq_core::{Fact, Instance, Ucq, Vocab};
use gomq_logic::eval::satisfies_ontology;
use gomq_reasoning::CertainEngine;
use gomq_xtests::example1;

#[test]
fn o_mat_ptime_is_not_invariant_under_disjoint_unions() {
    let mut v = Vocab::new();
    let e1 = example1(&mut v);
    let (a, b, _) = e1.rels;
    let ca = v.constant("u");
    let cb = v.constant("w");
    let d1 = Instance::from_facts(vec![Fact::consts(a, &[ca])]);
    let d2 = Instance::from_facts(vec![Fact::consts(b, &[cb])]);
    assert!(satisfies_ontology(&d1, &e1.o_mat_ptime));
    assert!(satisfies_ontology(&d2, &e1.o_mat_ptime));
    assert!(
        !satisfies_ontology(&d1.union(&d2), &e1.o_mat_ptime),
        "the disjoint union violates ∀xA ∨ ∀xB"
    );
}

#[test]
fn o_mat_ptime_is_not_materializable_but_disjuncts_are_boolean_certain() {
    // On D = {C(c)} (no A/B facts): every model satisfies ∀xA or ∀xB, so
    // the UCQ A(c) ∨ B(c) is certain, while neither disjunct is — the
    // disjunction property fails, i.e. O is not CQ-materializable. (And
    // yet CQ evaluation is in PTIME: Theorem 3 fails without invariance
    // under disjoint unions.)
    let mut v = Vocab::new();
    let e1 = example1(&mut v);
    let (a, b, _) = e1.rels;
    let c_rel = v.rel("C1x", 1);
    let c = v.constant("c");
    let d = Instance::from_facts(vec![Fact::consts(c_rel, &[c])]);
    let engine = CertainEngine::new(1);
    let mk = |rel| {
        let mut bld = CqBuilder::new();
        let x = bld.var("x");
        bld.atom(rel, &[x]);
        Ucq::from_cq(bld.build(vec![x]))
    };
    let qa = mk(a);
    let qb = mk(b);
    let t = gomq_core::Term::Const(c);
    assert!(!engine
        .certain(&e1.o_mat_ptime, &d, &qa, &[t], &mut v)
        .is_certain());
    assert!(!engine
        .certain(&e1.o_mat_ptime, &d, &qb, &[t], &mut v)
        .is_certain());
    let both = vec![(qa, vec![t]), (qb, vec![t])];
    assert!(engine
        .certain_disjunction(&e1.o_mat_ptime, &d, &both, &mut v)
        .is_certain());
}

#[test]
fn o_ucq_cq_diverges_between_cq_and_ucq() {
    // Lemma 3's shape on a concrete instance D = {F(c)} (F fresh): every
    // model satisfies ∀x(A ∨ B) or contains an E-element. The UCQ
    // q_A(c) ∨ q_B(c) ∨ ∃x E(x) is certain; each CQ alone is not.
    let mut v = Vocab::new();
    let e1 = example1(&mut v);
    let (a, b, e) = e1.rels;
    let f_rel = v.rel("F1x", 1);
    let c = v.constant("c");
    let d = Instance::from_facts(vec![Fact::consts(f_rel, &[c])]);
    let engine = CertainEngine::new(1);
    let t = gomq_core::Term::Const(c);
    let mk_unary = |rel| {
        let mut bld = CqBuilder::new();
        let x = bld.var("x");
        bld.atom(rel, &[x]);
        Ucq::from_cq(bld.build(vec![x]))
    };
    let mut bool_e = CqBuilder::new();
    let xe = bool_e.var("x");
    bool_e.atom(e, &[xe]);
    let qe = Ucq::from_cq(bool_e.build(vec![]));
    let qa = mk_unary(a);
    let qb = mk_unary(b);
    // No single CQ is certain.
    assert!(!engine
        .certain(&e1.o_ucq_cq, &d, &qa, &[t], &mut v)
        .is_certain());
    assert!(!engine
        .certain(&e1.o_ucq_cq, &d, &qb, &[t], &mut v)
        .is_certain());
    assert!(!engine
        .certain(&e1.o_ucq_cq, &d, &qe, &[], &mut v)
        .is_certain());
    // The disjunction is certain: the UCQ sees what no CQ sees.
    let disj = vec![(qa, vec![t]), (qb, vec![t]), (qe, vec![])];
    assert!(engine
        .certain_disjunction(&e1.o_ucq_cq, &d, &disj, &mut v)
        .is_certain());
}

#[test]
fn o_ucq_cq_reflects_disjoint_union_failure() {
    // D′₁ = {E(a)} and D′₂ = {F(b)}: the union models O_UCQ/CQ, yet D′₂
    // alone refutes it (reflection fails).
    let mut v = Vocab::new();
    let e1 = example1(&mut v);
    let (_, _, e) = e1.rels;
    let f_rel = v.rel("F1y", 1);
    let ca = v.constant("da");
    let cb = v.constant("db");
    let d1 = Instance::from_facts(vec![Fact::consts(e, &[ca])]);
    let d2 = Instance::from_facts(vec![Fact::consts(f_rel, &[cb])]);
    let union = d1.union(&d2);
    assert!(satisfies_ontology(&union, &e1.o_ucq_cq));
    assert!(!satisfies_ontology(&d2, &e1.o_ucq_cq));
}
