//! Definition 2 made executable: checking concrete interpretations for
//! being materializations, and the chase producing one on Horn inputs.

use gomq_core::{Fact, Instance, Vocab};
use gomq_dl::concept::{Concept, Role};
use gomq_dl::translate::to_gf;
use gomq_dl::DlOntology;
use gomq_reasoning::chase::{chase, ChaseConfig};
use gomq_reasoning::materialize::{is_materialization, standard_candidates};
use gomq_reasoning::CertainEngine;

fn horn_setup(
    v: &mut Vocab,
) -> (
    gomq_logic::GfOntology,
    Instance,
    gomq_core::RelId,
    gomq_core::RelId,
    gomq_core::RelId,
) {
    let a = v.rel("A", 1);
    let b = v.rel("B", 1);
    let r = v.rel("R", 2);
    let mut dl = DlOntology::new();
    dl.sub(
        Concept::Name(a),
        Concept::Exists(Role::new(r), Box::new(Concept::Name(b))),
    );
    let ca = v.constant("m0");
    let mut d = Instance::new();
    d.insert(Fact::consts(a, &[ca]));
    (to_gf(&dl), d, a, b, r)
}

#[test]
fn chase_result_is_a_materialization() {
    let mut v = Vocab::new();
    let (o, d, ..) = horn_setup(&mut v);
    let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
    let m = result.materialization().expect("deterministic").clone();
    let engine = CertainEngine::new(2);
    let queries = standard_candidates(&o, &d, &v);
    assert!(is_materialization(&m, &o, &d, &queries, &engine, &mut v));
}

#[test]
fn overcommitted_models_are_not_materializations() {
    // Adding a non-certain fact (B at the named constant) makes the model
    // answer queries that are not certain.
    let mut v = Vocab::new();
    let (o, d, _, b, _) = horn_setup(&mut v);
    let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
    let mut m = result.materialization().expect("deterministic").clone();
    let ca = v.constant("m0");
    m.insert(Fact::consts(b, &[ca]));
    let engine = CertainEngine::new(2);
    let queries = standard_candidates(&o, &d, &v);
    assert!(
        !is_materialization(&m, &o, &d, &queries, &engine, &mut v),
        "B(m0) is not certain, so the extended model over-answers"
    );
}

#[test]
fn non_models_are_not_materializations() {
    // The instance itself is not a model of O (the ∃R.B witness is
    // missing), so it cannot be a materialization.
    let mut v = Vocab::new();
    let (o, d, ..) = horn_setup(&mut v);
    let engine = CertainEngine::new(2);
    let queries = standard_candidates(&o, &d, &v);
    assert!(!is_materialization(&d, &o, &d, &queries, &engine, &mut v));
}

#[test]
fn no_interpretation_materializes_a_disjunctive_ontology() {
    // A ⊑ B ⊔ C on D = {A(a)}: any model satisfies B(a) or C(a), but
    // neither is certain — so no model can agree with the certain answers
    // (Theorem 17 in miniature).
    let mut v = Vocab::new();
    let a = v.rel("A", 1);
    let b = v.rel("B", 1);
    let c = v.rel("C", 1);
    let mut dl = DlOntology::new();
    dl.sub(
        Concept::Name(a),
        Concept::Or(vec![Concept::Name(b), Concept::Name(c)]),
    );
    let o = to_gf(&dl);
    let ca = v.constant("w");
    let mut d = Instance::new();
    d.insert(Fact::consts(a, &[ca]));
    let engine = CertainEngine::new(1);
    let queries = standard_candidates(&o, &d, &v);
    // Try both chase leaves: neither is a materialization.
    let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
    assert_eq!(result.leaves.len(), 2);
    for leaf in &result.leaves {
        assert!(
            !is_materialization(leaf, &o, &d, &queries, &engine, &mut v),
            "each leaf decides the disjunction one way — not certain"
        );
    }
}
