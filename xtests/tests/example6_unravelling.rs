//! Example 6 and §4: unravelling tolerance, demonstrated end-to-end.
//!
//! The odd-cycle ontology entails `E(a)` on a triangle (every model
//! 2-colours the cycle with `A`, and an odd cycle forces a monochromatic
//! edge). Its uGF-unravelling consists of three chains — there `E` is
//! refutable, so the ontology is **not** unravelling tolerant, which by
//! the contrapositive of Theorem 6 means it is not materializable for
//! cg-tree decomposable instances (and indeed it is coNP-hard: it encodes
//! 2-colouring).

use gomq_core::query::CqBuilder;
use gomq_core::{Term, Ucq, Vocab};
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};
use gomq_reasoning::unravel::{unravel, UnravelKind};
use gomq_reasoning::CertainEngine;
use gomq_xtests::{odd_cycle_ontology, r_cycle};

#[test]
fn odd_cycle_entails_e_on_triangle() {
    let mut v = Vocab::new();
    let odd = odd_cycle_ontology(&mut v);
    let (r, _, e) = odd.rels;
    let d = r_cycle(r, 3, "tri", &mut v);
    let engine = CertainEngine::new(1);
    let mut b = CqBuilder::new();
    let x = b.var("x");
    b.atom(e, &[x]);
    let q = Ucq::from_cq(b.build(vec![x]));
    for elem in d.dom() {
        assert!(
            engine
                .certain(&odd.onto, &d, &q, &[elem], &mut v)
                .is_certain(),
            "E is certain at every element of an odd cycle"
        );
    }
}

#[test]
fn even_cycle_does_not_entail_e() {
    let mut v = Vocab::new();
    let odd = odd_cycle_ontology(&mut v);
    let (r, _, e) = odd.rels;
    let d = r_cycle(r, 4, "sq", &mut v);
    let engine = CertainEngine::new(1);
    let mut b = CqBuilder::new();
    let x = b.var("x");
    b.atom(e, &[x]);
    let q = Ucq::from_cq(b.build(vec![x]));
    let elem = *d.dom().iter().next().expect("non-empty");
    assert!(
        !engine
            .certain(&odd.onto, &d, &q, &[elem], &mut v)
            .is_certain(),
        "an even cycle is 2-colourable, so E is refutable"
    );
}

#[test]
fn e_is_refutable_on_the_unravelling() {
    // The failure of implication (1) ⇒ (2) of Definition 3.
    let mut v = Vocab::new();
    let odd = odd_cycle_ontology(&mut v);
    let (r, _, e) = odd.rels;
    let d = r_cycle(r, 3, "tri", &mut v);
    let u = unravel(&d, UnravelKind::Ugf, 3, &mut v);
    // The unravelling is acyclic, hence 2-colourable by A: E refutable at
    // the copy of any element.
    let engine = CertainEngine::new(1);
    let mut b = CqBuilder::new();
    let x = b.var("x");
    b.atom(e, &[x]);
    let q = Ucq::from_cq(b.build(vec![x]));
    let original = Term::Const(v.constant("tri0"));
    let g_idx = u
        .guarded_set_of(&[original])
        .expect("tri0 lies in a maximal guarded set");
    let copy = u.root_copy(g_idx, original).expect("copy exists");
    assert!(
        !engine
            .certain(&odd.onto, &u.interp, &q, &[copy], &mut v)
            .is_certain(),
        "O,Dᵘ ⊭ E(b): the ontology is not unravelling tolerant"
    );
}

#[test]
fn counting_entailment_differs_between_unravellings() {
    // §4's point made with certain answers: O = {∀x(∃≥4y R(x,y) → A(x))}
    // entails A at an inflated root copy of the uGF-unravelling of the
    // 3-child star, but nowhere on the uGC₂-unravelling — so only the
    // uGC₂-unravelling is sound for counting ontologies. (The per-instance
    // computation uses the exact-on-trees type elimination.)
    use gomq_rewriting::types::ElementTypeSystem;
    let mut v = Vocab::new();
    let r = v.rel("Rstar2", 2);
    let a_rel = v.rel("Astar2", 1);
    let (x, y) = (LVar(0), LVar(1));
    let onto = GfOntology::from_ugf(vec![UgfSentence::forall_one(
        x,
        Formula::implies(
            Formula::CountExists {
                n: 4,
                qvar: y,
                guard: Guard::Atom {
                    rel: r,
                    args: vec![x, y],
                },
                body: Box::new(Formula::True),
            },
            Formula::unary(a_rel, x),
        ),
        vec!["x".into(), "y".into()],
    )]);
    let root = v.constant("st2_root");
    let mut d = gomq_core::Instance::new();
    for i in 0..3 {
        let c = v.constant(&format!("st2_c{i}"));
        d.insert(gomq_core::Fact::consts(r, &[root, c]));
    }
    let sys = ElementTypeSystem::build(&onto, &v).expect("counting supported");
    // On D itself: nothing certain.
    assert!(sys.certain_unary(&d, a_rel).is_empty());
    // uGF-unravelling: some copy of the root accumulates ≥ 4 successors,
    // so A becomes certain there — the unsoundness the paper fixes with
    // condition (c′).
    let ugf = unravel(&d, UnravelKind::Ugf, 4, &mut v);
    let certain_ugf = sys.certain_unary(&ugf.interp, a_rel);
    assert!(
        !certain_ugf.is_empty(),
        "the uGF-unravelling entails A at an inflated copy"
    );
    let root_term = Term::Const(root);
    assert!(certain_ugf.iter().all(|t| ugf.up[t] == root_term));
    // uGC₂-unravelling: counts preserved, nothing certain.
    let ugc = unravel(&d, UnravelKind::Ugc2, 4, &mut v);
    assert!(sys.certain_unary(&ugc.interp, a_rel).is_empty());
}

#[test]
fn counting_needs_the_ugc2_unravelling() {
    // §4's counting example: O = { ∀x(∃≥3y R(x,y) → A(x)) } on the star.
    // The uGF-unravelling inflates successor counts (entailing A at a copy
    // of the root), the uGC₂-unravelling does not.
    let mut v = Vocab::new();
    let r = v.rel("Rstar", 2);
    let a_rel = v.rel("Astar", 1);
    let (x, y) = (LVar(0), LVar(1));
    let onto = GfOntology::from_ugf(vec![UgfSentence::forall_one(
        x,
        Formula::implies(
            Formula::CountExists {
                n: 4,
                qvar: y,
                guard: Guard::Atom {
                    rel: r,
                    args: vec![x, y],
                },
                body: Box::new(Formula::True),
            },
            Formula::unary(a_rel, x),
        ),
        vec!["x".into(), "y".into()],
    )]);
    // Star with 3 children: no element has 4 successors in D.
    let root = v.constant("st_root");
    let mut d = gomq_core::Instance::new();
    for i in 0..3 {
        let c = v.constant(&format!("st_c{i}"));
        d.insert(gomq_core::Fact::consts(r, &[root, c]));
    }
    let engine = CertainEngine::new(1);
    let mut b = CqBuilder::new();
    let qx = b.var("x");
    b.atom(a_rel, &[qx]);
    let q = Ucq::from_cq(b.build(vec![qx]));
    // Not certain on D itself.
    assert!(!engine
        .certain(&onto, &d, &q, &[Term::Const(root)], &mut v)
        .is_certain());
    // The uGF-unravelling can inflate a root copy to ≥3 successors.
    let ugf = unravel(&d, UnravelKind::Ugf, 4, &mut v);
    let root_term = Term::Const(root);
    let max_ugf = ugf
        .up
        .iter()
        .filter(|(_, &orig)| orig == root_term)
        .map(|(&c, _)| ugf.interp.facts_of(r).filter(|f| f.args[0] == c).count())
        .max()
        .unwrap_or(0);
    assert!(max_ugf >= 4, "uGF-unravelling inflates counts: {max_ugf}");
    // The uGC₂-unravelling preserves counts.
    let ugc = unravel(&d, UnravelKind::Ugc2, 4, &mut v);
    let max_ugc = ugc
        .up
        .iter()
        .filter(|(_, &orig)| orig == root_term)
        .map(|(&c, _)| ugc.interp.facts_of(r).filter(|f| f.args[0] == c).count())
        .max()
        .unwrap_or(0);
    assert!(max_ugc <= 3, "uGC₂-unravelling preserves counts: {max_ugc}");
}
