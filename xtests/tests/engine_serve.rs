//! Cross-crate integration: the `gomq-engine` serving layer round-trips
//! JSONL requests end-to-end and agrees with the research pipeline.

use gomq_bench::{horn_chain_ontology, propagation_instance};
use gomq_core::{IndexedInstance, Vocab};
use gomq_engine::{Engine, ServeSession};
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::ElementTypeSystem;

/// The serve session answers a stream of JSONL requests, caching the
/// plan across requests that pose the same OMQ in different sentence
/// orders, and isolating errors per line.
#[test]
fn jsonl_session_roundtrip() {
    let mut s = ServeSession::with_threads(2);
    let r1 = s.handle_line(
        r#"{"id": "a", "ontology": "Manager sub Employee\nEmployee sub Staff", "query": "Staff", "abox": "Manager(ada)\nEmployee(grace)\nStaff(alan)"}"#,
    );
    assert!(r1.contains(r#""status": "ok""#), "{r1}");
    assert!(r1.contains(r#""cached": false"#), "{r1}");
    for who in ["ada", "grace", "alan"] {
        assert!(r1.contains(&format!(r#"["{who}"]"#)), "{r1}");
    }
    // Same OMQ, reordered axioms, new ABox: the plan is reused.
    let r2 = s.handle_line(
        r#"{"id": "b", "ontology": "Employee sub Staff\nManager sub Employee", "query": "Staff", "abox": "Manager(bob)"}"#,
    );
    assert!(r2.contains(r#""cached": true"#), "{r2}");
    assert!(r2.contains(r#"["bob"]"#), "{r2}");
    // A bad line reports an error without poisoning the session.
    let r3 = s.handle_line("not json at all");
    assert!(r3.contains(r#""status": "error""#), "{r3}");
    let r4 =
        s.handle_line(r#"{"ontology": "A sub B", "query": "B", "aboxes": ["A(x)", "A(y)\nB(z)"]}"#);
    assert!(
        r4.contains(r#""batches": [[["x"]], [["y"], ["z"]]]"#),
        "{r4}"
    );
    let stats = s.engine().stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
}

/// On the Theorem-7 horn-chain workload, the cached engine plan answers
/// exactly what the research pipeline (type system + emitted program)
/// answers — across instance sizes and across cache-hit re-evaluation.
#[test]
fn engine_agrees_with_research_pipeline_on_horn_chain() {
    let mut v = Vocab::new();
    let (o, names, r) = horn_chain_ontology(3, &mut v);
    let query = names[3];
    let engine = Engine::with_threads(2);
    let (plan, hit, _) = engine.plan(&o, query, &mut v);
    let plan = plan.expect("horn chains are rewritable");
    assert!(!hit);
    assert!(plan.report.type_rewritable);
    let sys = ElementTypeSystem::build(&o, &v).expect("supported");
    let program = emit_datalog(&sys, query, &mut v);
    for len in [5usize, 20, 60] {
        let d = propagation_instance(len, names[0], r, &mut v);
        let reference = program.eval(&d);
        let (answers, stats) = engine.answer(&plan, &d);
        assert_eq!(answers, reference, "len {len}");
        assert!(stats.rounds > 0);
        // Cache hit path: same plan, same answers.
        let (plan2, hit2, _) = engine.plan(&o, query, &mut v);
        assert!(hit2);
        let (again, _) =
            engine.answer_indexed(&plan2.unwrap(), &IndexedInstance::from_interpretation(&d));
        assert_eq!(again, reference, "cache-hit re-evaluation, len {len}");
    }
}
