//! Chaos harness: drives the serving stack with the deterministic
//! fault-injection layer installed (this crate builds `gomq-engine`
//! with the `chaos` feature on).
//!
//! The fault plan is process-global, so every test here serializes on
//! one mutex and uninstalls the plan before releasing it — tests must
//! never observe each other's injected faults.

use gomq_engine::faults::{self, FaultKind, FaultPlan};
use gomq_engine::{ServeConfig, ServeSession};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes chaos tests (the installed plan is process-global).
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// An installed plan that uninstalls on drop, even if the test panics.
struct Installed;
impl Installed {
    fn new(plan: FaultPlan) -> Installed {
        faults::install(plan);
        Installed
    }
}
impl Drop for Installed {
    fn drop(&mut self) {
        faults::uninstall();
    }
}

fn request(i: usize) -> String {
    format!(
        r#"{{"id": "r{i}", "ontology": "C0 sub C1\nC1 sub C2\nC2 sub C3", "query": "C3", "abox": "C0(a{i})\nC0(b{i})"}}"#
    )
}

/// Statuses only — engine counters and timings vary, the injected fault
/// *schedule* must not.
fn statuses(responses: &[String]) -> Vec<String> {
    responses
        .iter()
        .map(|r| {
            for status in ["\"ok\"", "\"error\"", "\"overloaded\"", "\"quarantined\""] {
                if r.contains(&format!("\"status\": {status}")) {
                    return status.trim_matches('"').to_owned();
                }
            }
            panic!("no status in {r}")
        })
        .collect()
}

fn drive(seed: u64, n: usize) -> (Vec<String>, u64) {
    let _plan = Installed::new(FaultPlan::standard(seed));
    let mut s = ServeSession::with_config(ServeConfig {
        threads: 1,
        quarantine_after: 0, // observe the raw fault schedule
        ..ServeConfig::default()
    });
    let responses = (0..n).map(|i| s.handle_line(&request(i))).collect();
    (responses, faults::injected())
}

#[test]
fn same_seed_same_schedule() {
    let _guard = chaos_lock();
    let (a, injected_a) = drive(42, 40);
    let (b, injected_b) = drive(42, 40);
    assert_eq!(
        statuses(&a),
        statuses(&b),
        "same seed must replay identically"
    );
    assert_eq!(injected_a, injected_b);
    assert!(
        injected_a > 0,
        "the standard plan must fire within 40 requests"
    );
    // A different seed produces a different schedule (the standard plan
    // keys every draw on the seed).
    let (c, _) = drive(1337, 40);
    assert_ne!(
        statuses(&a),
        statuses(&c),
        "different seeds should diverge within 40 requests"
    );
}

#[test]
fn session_survives_the_standard_fault_plan() {
    let _guard = chaos_lock();
    let _plan = Installed::new(FaultPlan::standard(7));
    let mut s = ServeSession::with_config(ServeConfig {
        threads: 1,
        quarantine_after: 0,
        ..ServeConfig::default()
    });
    let mut oks = 0;
    let mut faulted = 0;
    for i in 0..60 {
        let resp = s.handle_line(&request(i));
        if resp.contains("\"status\": \"ok\"") {
            oks += 1;
        } else {
            faulted += 1;
            assert!(
                resp.contains("\"status\": \"error\"")
                    || resp.contains("\"status\": \"overloaded\""),
                "fault must surface as a structured response: {resp}"
            );
        }
    }
    assert!(oks > 0, "some requests must get through");
    assert!(faulted > 0, "the plan must inject within 60 requests");
    // Every isolated panic was counted, none escaped.
    let stats = s.engine().stats();
    assert!(stats.faults_injected > 0);
    // With the plan gone, the session serves cleanly again.
    drop(_plan);
    let calm = s.handle_line(&request(999));
    assert!(
        calm.contains("\"status\": \"ok\""),
        "post-chaos request failed: {calm}"
    );
}

#[test]
fn eval_panics_trip_the_quarantine_breaker() {
    let _guard = chaos_lock();
    // Panic on *every* evaluation round: each request fails, so the
    // breaker must open after exactly `quarantine_after` requests.
    let _plan = Installed::new(FaultPlan::new(3).rule(faults::EVAL_ROUND, FaultKind::Panic, 1));
    let mut s = ServeSession::with_config(ServeConfig {
        threads: 1,
        quarantine_after: 2,
        ..ServeConfig::default()
    });
    let first = s.handle_line(&request(0));
    assert!(first.contains("\"status\": \"error\""), "{first}");
    assert!(first.contains("panic isolated"), "{first}");
    let second = s.handle_line(&request(1));
    assert!(second.contains("\"status\": \"error\""), "{second}");
    let third = s.handle_line(&request(2));
    assert!(
        third.contains("\"status\": \"quarantined\""),
        "breaker should be open: {third}"
    );
    assert!(third.contains("after 2 evaluation failures"), "{third}");
    let stats = s.engine().stats();
    assert_eq!(stats.breaker_trips, 1);
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.panics, 2);
    // Another OMQ compiles to a different plan key and still runs —
    // remove the plan first so its own evaluation succeeds.
    drop(_plan);
    let other = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(x)"}"#);
    assert!(other.contains("\"status\": \"ok\""), "{other}");
}

#[test]
fn wal_faults_poison_writes_not_queries() {
    let _guard = chaos_lock();
    let dir = std::env::temp_dir().join(format!("gomq-chaos-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Every WAL write fails with a (deterministic) injected I/O error.
    let _plan = Installed::new(FaultPlan::new(11).rule(faults::WAL_WRITE, FaultKind::IoError, 1));
    let mut s = ServeSession::with_config(ServeConfig {
        threads: 1,
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let refused = s.handle_line(r#"{"op": "assert", "abox": "A(x)"}"#);
    assert!(refused.contains("\"status\": \"error\""), "{refused}");
    assert!(refused.contains("persistence error"), "{refused}");
    // The journal-before-apply contract: the refused batch must NOT be
    // in the session store.
    let q = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "session": true}"#);
    assert!(q.contains("\"answers\": []"), "refused assert leaked: {q}");
    // Queries with inline ABoxes never touch the WAL and keep working.
    let inline = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "abox": "A(y)"}"#);
    assert!(inline.contains("\"status\": \"ok\""), "{inline}");
    // With the faults gone the same mutation goes through and persists.
    drop(_plan);
    let ok = s.handle_line(r#"{"op": "assert", "abox": "A(x)"}"#);
    assert!(ok.contains("\"status\": \"ok\""), "{ok}");
    let q2 = s.handle_line(r#"{"ontology": "A sub B", "query": "B", "session": true}"#);
    assert!(q2.contains(r#"[["x"]]"#), "{q2}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn alloc_cap_surfaces_as_isolated_panic() {
    let _guard = chaos_lock();
    // A 1-byte alloc cap trips on the first interned fact.
    let _plan =
        Installed::new(FaultPlan::new(5).rule(faults::STORE_INTERN, FaultKind::AllocCap(1), 1));
    let mut s = ServeSession::with_config(ServeConfig {
        threads: 1,
        quarantine_after: 0,
        ..ServeConfig::default()
    });
    let resp = s.handle_line(&request(0));
    assert!(resp.contains("\"status\": \"error\""), "{resp}");
    assert!(resp.contains("alloc cap"), "{resp}");
    assert_eq!(s.engine().stats().panics, 1);
}
