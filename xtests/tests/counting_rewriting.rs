//! The PTIME side of the hand–finger example, end-to-end: O₁ (exactly-n
//! fingers) lies in uGC⁻₂(1,=) and is materializable, so by Theorem 7 it
//! is Datalog≠-rewritable — and the emitted counting rules agree with the
//! model-theoretic engine.

use gomq_bench::{hand_instance, hand_ontologies};
use gomq_core::query::CqBuilder;
use gomq_core::{Fact, Term, Ucq, Vocab};
use gomq_reasoning::CertainEngine;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::types::ElementTypeSystem;

#[test]
fn o1_is_type_rewritable_and_routes_agree() {
    let mut v = Vocab::new();
    let (o1, _, _, hand, thumb, hf) = hand_ontologies(3, &mut v);
    let sys = ElementTypeSystem::build(&o1, &v).expect("uGC⁻₂(1,=) supported");
    assert!(sys.uses_counting());
    let program = emit_datalog(&sys, thumb, &mut v);
    assert!(!program.is_pure_datalog(), "counting rewriting uses ≠");
    let engine = CertainEngine::new(2);
    // On hands with 2, 3 and 4 explicit fingers the Datalog≠ route and the
    // engine agree on the atomic query Thumb(x) (3 fingers: consistent and
    // nothing certain; 4 fingers: inconsistency fires everywhere).
    for n in [2usize, 3, 4] {
        let mut v2 = Vocab::new();
        let (o1n, _, _, handn, thumbn, hfn) = hand_ontologies(3, &mut v2);
        let sysn = ElementTypeSystem::build(&o1n, &v2).expect("supported");
        let programn = emit_datalog(&sysn, thumbn, &mut v2);
        let d = hand_instance(n, handn, hfn, &mut v2);
        let from_program: std::collections::BTreeSet<Term> =
            programn.eval(&d).into_iter().map(|t| t[0]).collect();
        let from_types = sysn.certain_unary(&d, thumbn);
        assert_eq!(from_types, from_program, "n = {n}");
        let mut b = CqBuilder::new();
        let x = b.var("x");
        b.atom(thumbn, &[x]);
        let q = Ucq::from_cq(b.build(vec![x]));
        let from_engine: std::collections::BTreeSet<Term> = engine
            .certain_answers(&o1n, &d, &q, &mut v2)
            .into_iter()
            .map(|t| t[0])
            .collect();
        assert_eq!(from_types, from_engine, "n = {n}");
        if n <= 3 {
            assert!(from_engine.is_empty(), "no thumb is certain under O1 alone");
        } else {
            // 4 explicit fingers on an exactly-3 hand: inconsistent.
            assert_eq!(from_engine.len(), d.dom().len());
        }
    }
    let _ = (hand, hf, program, o1, sys);
}

#[test]
fn counting_certainty_at_the_boundary() {
    // Hand ⊑ (= 2 hasFinger): with two explicit fingers and the axiom
    // Hand ⊑ ∃hasFinger.Thumb (O₂), the thumb must be one of them — the
    // *union* is beyond the rewriter's soundness domain for UCQs, but the
    // per-atomic-query answers still agree with the engine (no single
    // finger is certainly the thumb).
    let mut v = Vocab::new();
    let (o1, _, union, hand, thumb, hf) = hand_ontologies(2, &mut v);
    let _ = o1;
    let sys = ElementTypeSystem::build(&union, &v).expect("supported");
    let d = hand_instance(2, hand, hf, &mut v);
    let engine = CertainEngine::new(2);
    let from_types = sys.certain_unary(&d, thumb);
    let mut b = CqBuilder::new();
    let x = b.var("x");
    b.atom(thumb, &[x]);
    let q = Ucq::from_cq(b.build(vec![x]));
    let from_engine: std::collections::BTreeSet<Term> = engine
        .certain_answers(&union, &d, &q, &mut v)
        .into_iter()
        .map(|t| t[0])
        .collect();
    assert_eq!(from_types, from_engine);
    assert!(from_engine.is_empty());
    // The non-materializability of the union lives at the UCQ level
    // (Thumb(f0) ∨ Thumb(f1) is certain) — outside atomic queries, as the
    // paper's dichotomy analysis predicts.
    let fingers: Vec<Term> = d
        .dom()
        .into_iter()
        .filter(|t| d.facts_of(hf).any(|f| f.args.len() == 2 && f.args[1] == *t))
        .collect();
    let queries: Vec<(Ucq, Vec<Term>)> = fingers.iter().map(|&f| (q.clone(), vec![f])).collect();
    assert!(engine
        .certain_disjunction(&union, &d, &queries, &mut v)
        .is_certain());
}

#[test]
fn functional_role_pipeline() {
    // func(hasMother) + Person ⊑ ∃hasMother.Person: consistent data with a
    // single mother; two mothers clash — all three routes agree.
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;
    let mut v = Vocab::new();
    let person = v.rel("Person", 1);
    let hm = v.rel("hasMother", 2);
    let mut dl = DlOntology::new();
    dl.functional(Role::new(hm));
    dl.sub(
        Concept::Name(person),
        Concept::Exists(Role::new(hm), Box::new(Concept::Name(person))),
    );
    let o = to_gf(&dl);
    let sys = ElementTypeSystem::build(&o, &v).expect("supported");
    let engine = CertainEngine::new(2);
    let alice = v.constant("alice");
    let m1 = v.constant("m1");
    let m2 = v.constant("m2");
    let mut ok = gomq_core::Instance::new();
    ok.insert(Fact::consts(person, &[alice]));
    ok.insert(Fact::consts(hm, &[alice, m1]));
    assert!(!sys.instance_types(&ok).inconsistent);
    assert!(engine.consistency(&o, &ok, &mut v).is_consistent());
    // The named mother of a Person must be a Person (the ∃-witness cannot
    // be anyone else under functionality): Person(m1) is certain.
    let from_types = sys.certain_unary(&ok, person);
    assert!(from_types.contains(&Term::Const(m1)));
    let mut b = CqBuilder::new();
    let x = b.var("x");
    b.atom(person, &[x]);
    let q = Ucq::from_cq(b.build(vec![x]));
    assert!(engine
        .certain(&o, &ok, &q, &[Term::Const(m1)], &mut v)
        .is_certain());
    let mut bad = ok.clone();
    bad.insert(Fact::consts(hm, &[alice, m2]));
    assert!(sys.instance_types(&bad).inconsistent);
    assert!(!engine.consistency(&o, &bad, &mut v).is_consistent());
}
