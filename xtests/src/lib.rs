//! Shared fixtures for the cross-crate integration tests.
//!
//! The constructors here build the paper's named ontologies and instances
//! once, so the `tests/` files stay focused on the claims they verify.

use gomq_core::{Fact, Instance, Vocab};
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};

/// The Example 6 ontology: `E` is entailed at every element R-connected
/// to an odd R-cycle, via the parity trick
///
/// ```text
/// ∀x((A(x) ∧ ∃y(R(x,y) ∧ A(y))) → E(x))
/// ∀x((¬A(x) ∧ ∃y(R(x,y) ∧ ¬A(y))) → E(x))
/// ∀xy(R(x,y) → ((E(x) → E(y)) ∧ (E(y) → E(x))))
/// ```
///
/// It is *not* unravelling tolerant: on a triangle `E` is certain
/// everywhere, on the (acyclic) unravelling it is not.
pub struct OddCycleOntology {
    /// The ontology.
    pub onto: GfOntology,
    /// The relations `(R, A, E)`.
    pub rels: (gomq_core::RelId, gomq_core::RelId, gomq_core::RelId),
}

/// Builds the Example 6 ontology.
pub fn odd_cycle_ontology(vocab: &mut Vocab) -> OddCycleOntology {
    let r = vocab.rel("R6", 2);
    let a = vocab.rel("A6", 1);
    let e = vocab.rel("E6", 1);
    let (x, y) = (LVar(0), LVar(1));
    let names = vec!["x".to_owned(), "y".to_owned()];
    let succ_with = |positive: bool| Formula::Exists {
        qvars: vec![y],
        guard: Guard::Atom {
            rel: r,
            args: vec![x, y],
        },
        body: Box::new(if positive {
            Formula::unary(a, y)
        } else {
            Formula::Not(Box::new(Formula::unary(a, y)))
        }),
    };
    let mut onto = GfOntology::new();
    onto.push(UgfSentence::forall_one(
        x,
        Formula::implies(
            Formula::And(vec![Formula::unary(a, x), succ_with(true)]),
            Formula::unary(e, x),
        ),
        names.clone(),
    ));
    onto.push(UgfSentence::forall_one(
        x,
        Formula::implies(
            Formula::And(vec![
                Formula::Not(Box::new(Formula::unary(a, x))),
                succ_with(false),
            ]),
            Formula::unary(e, x),
        ),
        names.clone(),
    ));
    onto.push(UgfSentence::new(
        vec![x, y],
        Guard::Atom {
            rel: r,
            args: vec![x, y],
        },
        Formula::And(vec![
            Formula::implies(Formula::unary(e, x), Formula::unary(e, y)),
            Formula::implies(Formula::unary(e, y), Formula::unary(e, x)),
        ]),
        names,
    ));
    OddCycleOntology {
        onto,
        rels: (r, a, e),
    }
}

/// An `R`-cycle instance of length `n` over fresh constants `tag0..`.
pub fn r_cycle(rel: gomq_core::RelId, n: usize, tag: &str, vocab: &mut Vocab) -> Instance {
    let mut d = Instance::new();
    for i in 0..n {
        let a = vocab.constant(&format!("{tag}{i}"));
        let b = vocab.constant(&format!("{tag}{}", (i + 1) % n));
        d.insert(Fact::consts(rel, &[a, b]));
    }
    d
}

/// The Example 1 ontologies, as general GF sentences:
///
/// * `O_UCQ/CQ = { ∀x(A(x) ∨ B(x)) ∨ ∃x E(x) }` — does not *reflect*
///   disjoint unions,
/// * `O_Mat/PTime = { ∀x A(x) ∨ ∀x B(x) }` — not *preserved* under
///   disjoint unions.
pub struct Example1 {
    /// `O_UCQ/CQ`.
    pub o_ucq_cq: GfOntology,
    /// `O_Mat/PTime`.
    pub o_mat_ptime: GfOntology,
    /// The relations `(A, B, E)`.
    pub rels: (gomq_core::RelId, gomq_core::RelId, gomq_core::RelId),
}

/// Builds the Example 1 ontologies.
pub fn example1(vocab: &mut Vocab) -> Example1 {
    use gomq_logic::GfSentence;
    let a = vocab.rel("A1x", 1);
    let b = vocab.rel("B1x", 1);
    let e = vocab.rel("E1x", 1);
    let x = LVar(0);
    let forall = |body: Formula| Formula::Forall {
        qvars: vec![x],
        guard: Guard::Eq(x, x),
        body: Box::new(body),
    };
    let exists_e = Formula::Exists {
        qvars: vec![x],
        guard: Guard::Eq(x, x),
        body: Box::new(Formula::unary(e, x)),
    };
    let mut o_ucq_cq = GfOntology::new();
    o_ucq_cq.push_gf(GfSentence::new(
        Formula::Or(vec![
            forall(Formula::Or(vec![
                Formula::unary(a, x),
                Formula::unary(b, x),
            ])),
            exists_e,
        ]),
        vec!["x".to_owned()],
    ));
    let mut o_mat_ptime = GfOntology::new();
    o_mat_ptime.push_gf(GfSentence::new(
        Formula::Or(vec![
            forall(Formula::unary(a, x)),
            forall(Formula::unary(b, x)),
        ]),
        vec!["x".to_owned()],
    ));
    Example1 {
        o_ucq_cq,
        o_mat_ptime,
        rels: (a, b, e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let mut v = Vocab::new();
        let odd = odd_cycle_ontology(&mut v);
        assert_eq!(odd.onto.ugf_sentences.len(), 3);
        let e1 = example1(&mut v);
        assert!(!e1.o_ucq_cq.is_ugf());
        assert!(!e1.o_mat_ptime.is_ugf());
        let d = r_cycle(odd.rels.0, 3, "t", &mut v);
        assert_eq!(d.len(), 3);
    }
}
