#!/usr/bin/env sh
# Offline CI gate: everything runs from the local toolchain and the
# in-tree dependency shims (crates/shims/*) — no network, no registry.
#
# Usage: xtests/ci.sh          (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --release -p gomq-engine --test serve_stress"
cargo test -q --release -p gomq-engine --test serve_stress

echo "==> cargo test -q --release -p gomq-core --test store_props"
cargo test -q --release -p gomq-core --test store_props

echo "==> cargo test -q --release -p gomq-engine --test wal_props"
cargo test -q --release -p gomq-engine --test wal_props

echo "==> cargo test -q --release -p gomq-engine --test chaos_recovery"
cargo test -q --release -p gomq-engine --test chaos_recovery

echo "==> cargo test -q -p gomq-xtests --test chaos (fixed-seed chaos smoke)"
cargo test -q -p gomq-xtests --test chaos

echo "==> E14_TINY=1 cargo bench -p gomq-bench --bench e14_store (smoke)"
E14_TINY=1 cargo bench -p gomq-bench --bench e14_store

echo "CI gate passed."
