#!/usr/bin/env sh
# Offline CI gate: everything runs from the local toolchain and the
# in-tree dependency shims (crates/shims/*) — no network, no registry.
#
# Usage: xtests/ci.sh          (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --release -p gomq-engine --test serve_stress"
cargo test -q --release -p gomq-engine --test serve_stress

echo "==> cargo test -q --release -p gomq-core --test store_props"
cargo test -q --release -p gomq-core --test store_props

echo "==> cargo test -q --release -p gomq-engine --test wal_props"
cargo test -q --release -p gomq-engine --test wal_props

echo "==> cargo test -q --release -p gomq-engine --test chaos_recovery"
cargo test -q --release -p gomq-engine --test chaos_recovery

echo "==> cargo test -q --release -p gomq-engine --test ivm_props"
cargo test -q --release -p gomq-engine --test ivm_props

echo "==> cargo test -q --release -p gomq-engine --features chaos --test ivm_props (chaos build, no plan)"
cargo test -q --release -p gomq-engine --features chaos --test ivm_props

echo "==> cargo test -q --release -p gomq-engine --features chaos --test ivm_chaos (ivm.apply faults)"
cargo test -q --release -p gomq-engine --features chaos --test ivm_chaos

echo "==> cargo test -q -p gomq-xtests --test chaos (fixed-seed chaos smoke)"
cargo test -q -p gomq-xtests --test chaos

echo "==> E14_TINY=1 cargo bench -p gomq-bench --bench e14_store (smoke)"
E14_TINY=1 cargo bench -p gomq-bench --bench e14_store

echo "==> E15_TINY=1 cargo bench -p gomq-bench --bench e15_ivm (smoke)"
E15_TINY=1 cargo bench -p gomq-bench --bench e15_ivm

echo "==> E15_TINY=1 cargo bench -p gomq-bench --features gomq-engine/chaos --bench e15_ivm (chaos build smoke)"
E15_TINY=1 cargo bench -p gomq-bench --features gomq-engine/chaos --bench e15_ivm

# Release-mode TCP smoke: an ephemeral-port listener driven by
# gomq-bench for ~2s at low rate. The bench exits nonzero on any lost
# or malformed response, and --validate re-checks the JSON report.
tcp_smoke() {
    tcp_extra=$1
    tcp_tag=$2
    tcp_dir="$(mktemp -d)"
    # shellcheck disable=SC2086  # word-splitting of $tcp_extra is intended
    target/release/gomq-serve --listen 127.0.0.1:0 \
        --data-dir "$tcp_dir/data" $tcp_extra 2>"$tcp_dir/serve.err" &
    tcp_srv=$!
    tcp_addr=""
    for _ in $(seq 1 50); do
        tcp_addr="$(sed -n 's/^gomq-serve: listening on //p' "$tcp_dir/serve.err")"
        [ -n "$tcp_addr" ] && break
        sleep 0.1
    done
    if [ -z "$tcp_addr" ]; then
        echo "gomq-serve never announced its address:" >&2
        cat "$tcp_dir/serve.err" >&2
        exit 1
    fi
    target/release/gomq-bench --addr "$tcp_addr" --rate 100 --duration-ms 2000 \
        --conns 1,4 --seed 42 --out "$tcp_dir/BENCH_serve_$tcp_tag.json"
    kill -TERM "$tcp_srv"
    wait "$tcp_srv"
    if ! grep -q "gomq-serve: drained:" "$tcp_dir/serve.err"; then
        echo "no graceful-drain summary after SIGTERM:" >&2
        cat "$tcp_dir/serve.err" >&2
        exit 1
    fi
    target/release/gomq-bench --validate "$tcp_dir/BENCH_serve_$tcp_tag.json"
    rm -rf "$tcp_dir"
}

echo "==> TCP smoke: gomq-serve --listen + gomq-bench (release)"
tcp_smoke "" smoke

echo "==> TCP smoke under deterministic chaos (--chaos-seed, release chaos build)"
cargo build --release -p gomq-engine --features chaos --bins
tcp_smoke "--chaos-seed 20260808" chaos

echo "CI gate passed."
