#!/usr/bin/env sh
# Offline CI gate: everything runs from the local toolchain and the
# in-tree dependency shims (crates/shims/*) — no network, no registry.
#
# Usage: xtests/ci.sh          (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --release -p gomq-engine --test serve_stress"
cargo test -q --release -p gomq-engine --test serve_stress

echo "==> cargo test -q --release -p gomq-core --test store_props"
cargo test -q --release -p gomq-core --test store_props

echo "==> cargo test -q --release -p gomq-engine --test wal_props"
cargo test -q --release -p gomq-engine --test wal_props

echo "==> cargo test -q --release -p gomq-engine --test chaos_recovery"
cargo test -q --release -p gomq-engine --test chaos_recovery

echo "==> cargo test -q --release -p gomq-engine --test ivm_props"
cargo test -q --release -p gomq-engine --test ivm_props

echo "==> cargo test -q --release -p gomq-engine --features chaos --test ivm_props (chaos build, no plan)"
cargo test -q --release -p gomq-engine --features chaos --test ivm_props

echo "==> cargo test -q --release -p gomq-engine --features chaos --test ivm_chaos (ivm.apply faults)"
cargo test -q --release -p gomq-engine --features chaos --test ivm_chaos

echo "==> cargo test -q --release -p gomq-engine --test cert_props (verifier cross-check)"
cargo test -q --release -p gomq-engine --test cert_props

echo "==> cargo test -q --release -p gomq-engine --features chaos --test cert_props (chaos build)"
cargo test -q --release -p gomq-engine --features chaos --test cert_props

echo "==> cargo test -q --release -p gomq-engine --test sql_crosscheck (native = SQL)"
cargo test -q --release -p gomq-engine --test sql_crosscheck

echo "==> cargo test -q -p gomq-xtests --test chaos (fixed-seed chaos smoke)"
cargo test -q -p gomq-xtests --test chaos

echo "==> E14_TINY=1 cargo bench -p gomq-bench --bench e14_store (smoke)"
E14_TINY=1 cargo bench -p gomq-bench --bench e14_store

echo "==> E15_TINY=1 cargo bench -p gomq-bench --bench e15_ivm (smoke)"
E15_TINY=1 cargo bench -p gomq-bench --bench e15_ivm

echo "==> E15_TINY=1 cargo bench -p gomq-bench --features gomq-engine/chaos --bench e15_ivm (chaos build smoke)"
E15_TINY=1 cargo bench -p gomq-bench --features gomq-engine/chaos --bench e15_ivm

echo "==> E16_TINY=1 cargo bench -p gomq-bench --bench e16_cert (smoke)"
E16_TINY=1 cargo bench -p gomq-bench --bench e16_cert

echo "==> E17_TINY=1 cargo bench -p gomq-bench --bench e17_sql (smoke)"
E17_TINY=1 cargo bench -p gomq-bench --bench e17_sql

# gomq-cert round-trip smoke on the committed example families: the
# company OMQ is answered with a certificate on the request-ABox path
# and on the session path (snapshot-bound), and both responses must
# verify with the standalone checker. The anatomy family sits outside
# the rewritable fragment (transitive partOf) and must come back as a
# typed refusal, never as an uncertified answer.
json_escape_file() {
    awk 'NF && !/^#/ { gsub(/"/, "\\\""); printf "%s%s", (n++ ? "\\n" : ""), $0 }' "$1"
}
echo "==> gomq-cert round-trip smoke (examples/data, release)"
cert_dir="$(mktemp -d)"
cert_onto="$(json_escape_file examples/data/company.dl)"
cert_facts="$(json_escape_file examples/data/company.facts)"
{
    printf '{"id": "abox", "ontology": "%s", "query": "Employee", "abox": "%s", "certificate": true}\n' \
        "$cert_onto" "$cert_facts"
    printf '{"op": "assert", "abox": "%s"}\n' "$cert_facts"
    printf '{"id": "session", "ontology": "%s", "query": "Employee", "session": true, "certificate": true}\n' \
        "$cert_onto"
} | target/release/gomq-serve --data-dir "$cert_dir/data" 2>/dev/null \
    | target/release/gomq-cert
cert_onto="$(json_escape_file examples/data/anatomy.dl)"
cert_facts="$(json_escape_file examples/data/anatomy.facts)"
printf '{"ontology": "%s", "query": "partOf", "abox": "%s", "certificate": true}\n' \
    "$cert_onto" "$cert_facts" \
    | target/release/gomq-serve 2>/dev/null \
    | grep -q '"status": "error".*not.*rewritable' || {
    echo "anatomy (transitive) should be refused as non-rewritable" >&2
    exit 1
}
rm -rf "$cert_dir"

# gomq-sql round-trip smoke on the committed example families: the
# role-free org hierarchy is emitted as SQL and executed in-process
# (all three individuals are certainly Person), while the role-bearing
# company ontology compiles to a recursive rewriting and must be
# refused with the typed non-rewritable-to-sql status — also through
# the serve path with "backend": "sql".
echo "==> gomq-sql round-trip smoke (examples/data, release)"
sql_out="$(target/release/gomq-sql --ontology examples/data/org.dl --query Person \
    --abox examples/data/org.facts --execute)"
for needle in 'WITH' '-- requires table "Person"(c0)' '(ada)' '(grace)' '(alan)'; do
    case "$sql_out" in
        *"$needle"*) ;;
        *)
            echo "gomq-sql org round trip is missing $needle:" >&2
            echo "$sql_out" >&2
            exit 1
            ;;
    esac
done
sql_err="$(mktemp)"
if target/release/gomq-sql --ontology examples/data/company.dl --query Employee \
    2>"$sql_err" >/dev/null; then
    echo "company (role-bearing) should be refused as non-rewritable-to-sql" >&2
    exit 1
fi
grep -q 'non-rewritable-to-sql' "$sql_err" || {
    echo "company refusal is not typed:" >&2
    cat "$sql_err" >&2
    exit 1
}
rm -f "$sql_err"
sql_onto="$(json_escape_file examples/data/company.dl)"
sql_facts="$(json_escape_file examples/data/company.facts)"
printf '{"ontology": "%s", "query": "Employee", "abox": "%s", "backend": "sql"}\n' \
    "$sql_onto" "$sql_facts" \
    | target/release/gomq-serve 2>/dev/null \
    | grep -q '"status": "non-rewritable-to-sql"' || {
    echo "serve should refuse the company OMQ on the SQL backend" >&2
    exit 1
}
sql_onto="$(json_escape_file examples/data/org.dl)"
sql_facts="$(json_escape_file examples/data/org.facts)"
printf '{"ontology": "%s", "query": "Person", "abox": "%s", "backend": "sql"}\n' \
    "$sql_onto" "$sql_facts" \
    | target/release/gomq-serve --backend sql 2>/dev/null \
    | grep -q '"backend": "sql".*"ada".*"grace".*"alan"' || {
    echo "serve should answer the org OMQ on the SQL backend" >&2
    exit 1
}

# Release-mode TCP smoke: an ephemeral-port listener driven by
# gomq-bench for ~2s at low rate. The bench exits nonzero on any lost
# or malformed response, and --validate re-checks the JSON report.
tcp_smoke() {
    tcp_extra=$1
    tcp_tag=$2
    tcp_dir="$(mktemp -d)"
    # shellcheck disable=SC2086  # word-splitting of $tcp_extra is intended
    target/release/gomq-serve --listen 127.0.0.1:0 \
        --data-dir "$tcp_dir/data" $tcp_extra 2>"$tcp_dir/serve.err" &
    tcp_srv=$!
    tcp_addr=""
    for _ in $(seq 1 50); do
        tcp_addr="$(sed -n 's/^gomq-serve: listening on //p' "$tcp_dir/serve.err")"
        [ -n "$tcp_addr" ] && break
        sleep 0.1
    done
    if [ -z "$tcp_addr" ]; then
        echo "gomq-serve never announced its address:" >&2
        cat "$tcp_dir/serve.err" >&2
        exit 1
    fi
    target/release/gomq-bench --addr "$tcp_addr" --rate 100 --duration-ms 2000 \
        --conns 1,4 --seed 42 --out "$tcp_dir/BENCH_serve_$tcp_tag.json"
    kill -TERM "$tcp_srv"
    wait "$tcp_srv"
    if ! grep -q "gomq-serve: drained:" "$tcp_dir/serve.err"; then
        echo "no graceful-drain summary after SIGTERM:" >&2
        cat "$tcp_dir/serve.err" >&2
        exit 1
    fi
    target/release/gomq-bench --validate "$tcp_dir/BENCH_serve_$tcp_tag.json"
    rm -rf "$tcp_dir"
}

echo "==> TCP smoke: gomq-serve --listen + gomq-bench (release)"
tcp_smoke "" smoke

# Two-process replication smoke: a primary ships its WAL to a follower
# on ephemeral ports, gomq-bench drives read-only load at the replica
# (--target replica labels the report), the primary is SIGKILLed, the
# follower promotes itself (--promote-on-disconnect), and the promoted
# node must take writes — both bench reports pass --validate.
repl_smoke() {
    repl_extra=$1
    repl_tag=$2
    repl_dir="$(mktemp -d)"
    # shellcheck disable=SC2086  # word-splitting of $repl_extra is intended
    target/release/gomq-serve --listen 127.0.0.1:0 --data-dir "$repl_dir/primary" \
        --replicate-to 127.0.0.1:0 $repl_extra 2>"$repl_dir/primary.err" &
    repl_pri=$!
    repl_ship=""
    for _ in $(seq 1 50); do
        repl_ship="$(sed -n 's/^gomq-serve: replication listening on //p' "$repl_dir/primary.err")"
        [ -n "$repl_ship" ] && break
        sleep 0.1
    done
    if [ -z "$repl_ship" ]; then
        echo "primary never announced its replication address:" >&2
        cat "$repl_dir/primary.err" >&2
        exit 1
    fi
    repl_pri_addr="$(sed -n 's/^gomq-serve: listening on //p' "$repl_dir/primary.err")"
    # shellcheck disable=SC2086
    target/release/gomq-serve --listen 127.0.0.1:0 --data-dir "$repl_dir/replica" \
        --follow "$repl_ship" --promote-on-disconnect $repl_extra 2>"$repl_dir/replica.err" &
    repl_fol=$!
    repl_fol_addr=""
    for _ in $(seq 1 50); do
        repl_fol_addr="$(sed -n 's/^gomq-serve: listening on //p' "$repl_dir/replica.err")"
        [ -n "$repl_fol_addr" ] && break
        sleep 0.1
    done
    if [ -z "$repl_fol_addr" ]; then
        echo "follower never announced its client address:" >&2
        cat "$repl_dir/replica.err" >&2
        exit 1
    fi
    # Writes land at the primary, reads at the replica.
    target/release/gomq-bench --addr "$repl_pri_addr" --rate 100 --duration-ms 1000 \
        --conns 1 --seed 42 --out "$repl_dir/BENCH_primary_$repl_tag.json"
    target/release/gomq-bench --addr "$repl_fol_addr" --target replica --rate 100 \
        --duration-ms 2000 --conns 1,4 --seed 42 \
        --out "$repl_dir/BENCH_replica_$repl_tag.json"
    grep -q '"target": "replica"' "$repl_dir/BENCH_replica_$repl_tag.json" || {
        echo "replica bench report is missing the target label" >&2
        exit 1
    }
    # SIGKILL the primary; the follower must promote itself.
    kill -KILL "$repl_pri"
    wait "$repl_pri" 2>/dev/null || true
    repl_up=""
    for _ in $(seq 1 100); do
        if grep -q "promoted to primary" "$repl_dir/replica.err"; then
            repl_up=yes
            break
        fi
        sleep 0.1
    done
    if [ -z "$repl_up" ]; then
        echo "follower never promoted itself after the primary died:" >&2
        cat "$repl_dir/replica.err" >&2
        exit 1
    fi
    # The promoted node takes writes again; --validate gates both reports.
    target/release/gomq-bench --addr "$repl_fol_addr" --rate 100 --duration-ms 1000 \
        --conns 1 --seed 43 --out "$repl_dir/BENCH_promoted_$repl_tag.json"
    target/release/gomq-bench --validate "$repl_dir/BENCH_replica_$repl_tag.json"
    target/release/gomq-bench --validate "$repl_dir/BENCH_promoted_$repl_tag.json"
    kill -TERM "$repl_fol"
    wait "$repl_fol"
    rm -rf "$repl_dir"
}

echo "==> replication smoke: primary + follower, SIGKILL failover (release)"
repl_smoke "" repl

echo "==> TCP smoke under deterministic chaos (--chaos-seed, release chaos build)"
cargo build --release -p gomq-engine --features chaos --bins
tcp_smoke "--chaos-seed 20260808" chaos

echo "==> replication smoke under deterministic chaos (--chaos-seed, release chaos build)"
repl_smoke "--chaos-seed 20260808" repl_chaos

echo "==> cargo test -q --release -p gomq-engine --test repl_chaos (failover equivalence)"
cargo test -q --release -p gomq-engine --test repl_chaos

echo "==> cargo test -q --release -p gomq-engine --features chaos --test repl_chaos (repl.ship/repl.apply faults)"
cargo test -q --release -p gomq-engine --features chaos --test repl_chaos

echo "CI gate passed."
