//! `omq` — a small command-line front end for ontology-mediated querying.
//!
//! ```text
//! omq ONTOLOGY.dl DATA.facts [QUERY.cq] [--fresh K] [--classify]
//! ```
//!
//! * `ONTOLOGY.dl` — a DL ontology in the `gomq_dl::parser` syntax,
//! * `DATA.facts`  — one fact per line (`hasFinger(h, f1)`),
//! * `QUERY.cq`    — one CQ per line (`q(?x) :- Thumb(?x)`), together a UCQ.
//!
//! Without a query, checks consistency. `--classify` prints the Figure-1
//! report. `--fresh K` sets the countermodel search bound (default 2).
//!
//! Try it on the bundled example:
//!
//! ```text
//! cargo run -p gomq-examples --bin omq -- \
//!     examples/data/company.dl examples/data/company.facts examples/data/company.cq --classify
//! ```

use gomq_core::parse::{parse_instance, parse_ucq};
use gomq_core::Vocab;
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_reasoning::CertainEngine;
use gomq_rewriting::classify_ontology;
use std::process::exit;

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut classify = false;
    let mut fresh = 2usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--classify" => classify = true,
            "--fresh" => {
                fresh = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fresh needs a number");
                    exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!("usage: omq ONTOLOGY.dl DATA.facts [QUERY.cq] [--fresh K] [--classify]");
                exit(0);
            }
            _ => paths.push(a),
        }
    }
    if paths.len() < 2 || paths.len() > 3 {
        eprintln!("usage: omq ONTOLOGY.dl DATA.facts [QUERY.cq] [--fresh K] [--classify]");
        exit(2);
    }

    let mut vocab = Vocab::new();
    let dl = match parse_ontology(&read(paths[0]), &mut vocab) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{}: {e}", paths[0]);
            exit(1);
        }
    };
    let onto = to_gf(&dl);
    let data = match parse_instance(&read(paths[1]), &mut vocab) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{}: {e}", paths[1]);
            exit(1);
        }
    };
    println!(
        "loaded: {} axioms ({}), {} facts over {} elements",
        dl.axioms.len(),
        gomq_dl::lang::DlFeatures::of(&dl).language(),
        data.len(),
        data.dom().len()
    );
    let engine = CertainEngine::new(fresh);

    if classify {
        let report = classify_ontology(&onto, std::slice::from_ref(&data), &engine, &mut vocab);
        println!("classification: {report}");
    }

    match engine.consistency(&onto, &data, &mut vocab) {
        c if c.is_consistent() => println!("consistency: the data is consistent with the ontology"),
        _ => println!("consistency: INCONSISTENT (no model with ≤ {fresh} fresh elements)"),
    }

    if let Some(qpath) = paths.get(2) {
        let q = match parse_ucq(&read(qpath), &mut vocab) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("{qpath}: {e}");
                exit(1);
            }
        };
        if q.arity() == 0 {
            let certain = engine
                .certain(&onto, &data, &q, &[], &mut vocab)
                .is_certain();
            println!("boolean query: certain = {certain}");
        } else {
            let answers = engine.certain_answers(&onto, &data, &q, &mut vocab);
            println!("certain answers ({}):", answers.len());
            for t in answers {
                let row: Vec<String> = t
                    .iter()
                    .map(|term| format!("{}", term.display(&vocab)))
                    .collect();
                println!("  ({})", row.join(", "));
            }
        }
    }
}
