//! Classify an ontology against Figure 1 of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run -p gomq-examples --bin classify              # built-in demo suite
//! cargo run -p gomq-examples --bin classify -- FILE.dl   # classify a file
//! ```
//!
//! The file format is the compact DL syntax of `gomq_dl::parser`.

use gomq_core::Vocab;
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_reasoning::CertainEngine;
use gomq_rewriting::classify_ontology;

fn classify_text(name: &str, text: &str) {
    let mut vocab = Vocab::new();
    let dl = match parse_ontology(text, &mut vocab) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{name}: parse error: {e}");
            return;
        }
    };
    let onto = to_gf(&dl);
    let engine = CertainEngine::new(1);
    let report = classify_ontology(&onto, &[], &engine, &mut vocab);
    println!("{name}:");
    println!(
        "  DL language: {} | depth {}",
        gomq_dl::lang::DlFeatures::of(&dl).language(),
        gomq_dl::depth::ontology_depth(&dl)
    );
    println!("  {report}\n");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args.get(1) {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        classify_text(path, &text);
        return;
    }
    println!("Classifying the built-in demo suite against Figure 1:\n");
    classify_text(
        "horn-employees (ALC depth 1, Horn)",
        "Employee sub ex worksOn.Project\nManager sub Employee\n",
    );
    classify_text(
        "disjunctive (ALC depth 1, with union)",
        "Person sub Young or Old\n",
    );
    classify_text(
        "counting (ALCQ depth 1)",
        "Hand sub >=5 hasFinger.Top and <=5 hasFinger.Top\n",
    );
    classify_text(
        "inverse+hierarchy (ALCHI depth 2)",
        "A sub ex r.(all s-.B)\nrole r sub t\n",
    );
    classify_text(
        "functional (ALCIF depth 2)",
        "func(succ)\nfunc(succ-)\nA sub ex succ.(ex succ.B)\n",
    );
}
