//! Theorem 8 in action: CSP templates as guarded ontologies.
//!
//! 2-coloring (a PTIME CSP) and 3-coloring (NP-complete) are encoded as
//! uGF₂(1,=) ontologies `O_A`; evaluating the OMQ `(O_A, ∃x N(x))` is
//! interreducible with coCSP(A). The example runs both reductions on
//! graph instances and shows the runtime asymmetry between the tractable
//! and intractable templates.
//!
//! Run with `cargo run -p gomq-examples --bin csp_encoding --release`.

use gomq_core::{Fact, Instance, Vocab};
use gomq_csp::encode::encode_gf;
use gomq_csp::reduce::{csp_via_omq, omq_certain_via_csp};
use gomq_csp::solve::solve_csp_with_stats;
use gomq_csp::Template;
use gomq_logic::fragment::best_fragment;
use gomq_reasoning::CertainEngine;
use std::time::Instant;

fn cycle(v: &mut Vocab, n: usize, tag: &str) -> Instance {
    let edge = v.rel("edge", 2);
    let mut d = Instance::new();
    for i in 0..n {
        let a = v.constant(&format!("{tag}{i}"));
        let b = v.constant(&format!("{tag}{}", (i + 1) % n));
        d.insert(Fact::consts(edge, &[a, b]));
    }
    d
}

fn main() {
    for k in [2usize, 3] {
        let mut vocab = Vocab::new();
        let template = Template::k_coloring(k, &mut vocab).with_precoloring(&mut vocab);
        let enc = encode_gf(&template, &mut vocab);
        println!(
            "{k}-coloring template -> ontology O_A with {} sentences, fragment {:?}",
            enc.onto.ugf_sentences.len(),
            best_fragment(&enc.onto, &vocab).map(|f| f.name())
        );

        // Odd and even cycles through both routes.
        for n in [4usize, 5] {
            let d = cycle(&mut vocab, n, &format!("c{n}_"));
            let t0 = Instant::now();
            let (hom, stats) = solve_csp_with_stats(&d, &template);
            let direct = hom.is_some();
            let t_direct = t0.elapsed();
            // OMQ route: certain iff NOT colorable.
            let omq = !omq_certain_via_csp(&d, &template, &enc);
            println!(
                "  C{n}: {k}-colorable = {direct} (CSP solver, {} nodes, {:?}); OMQ route agrees: {}",
                stats.nodes, t_direct, omq == direct
            );
            assert_eq!(direct, omq);
        }

        // The engine route (actual certain-answer computation on O_A).
        let engine = CertainEngine::new(2);
        let d = cycle(&mut vocab, 3, "tri_");
        let t0 = Instant::now();
        let via_engine = csp_via_omq(&d, &template, &enc, &engine, &mut vocab);
        println!(
            "  triangle via certain-answer engine: {k}-colorable = {via_engine} ({:?})",
            t0.elapsed()
        );
        assert_eq!(via_engine, k >= 3);
        println!();
    }
    println!(
        "Both encodings are uGF2(1,=) ontologies (the CSP-hard zone of\n\
         Figure 1): a PTIME/coNP dichotomy for this fragment would decide\n\
         the Feder-Vardi conjecture."
    );
}
