//! Quickstart: define an ontology, an instance and a query; compute
//! certain answers three ways (bounded countermodel search, the
//! disjunctive chase, and the emitted Datalog rewriting) and classify the
//! ontology against Figure 1 of the paper.
//!
//! Run with `cargo run -p gomq-examples --bin quickstart`.

use gomq_core::query::CqBuilder;
use gomq_core::{Fact, Instance, Term, Ucq, Vocab};
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_reasoning::chase::{chase, ChaseConfig};
use gomq_reasoning::CertainEngine;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::types::ElementTypeSystem;
use gomq_rewriting::{classify_ontology, OntologyReport};

fn main() {
    let mut vocab = Vocab::new();

    // 1. An ontology in the compact DL text syntax: every employee works
    //    on some project, and project workers are employees.
    let text = "\
Employee sub ex worksOn.Project
Manager sub Employee
Project sub all worksOn-.Employee
";
    let dl = parse_ontology(text, &mut vocab).expect("well-formed ontology");
    let onto = to_gf(&dl);
    println!("Ontology:\n{}", dl.display(&vocab));

    // 2. An incomplete database instance.
    let manager = vocab.rel("Manager", 1);
    let project = vocab.rel("Project", 1);
    let works_on = vocab.rel("worksOn", 2);
    let ada = vocab.constant("ada");
    let grete = vocab.constant("grete");
    let hopper_project = vocab.constant("compilers");
    let mut d = Instance::new();
    d.insert(Fact::consts(manager, &[ada]));
    d.insert(Fact::consts(works_on, &[grete, hopper_project]));
    d.insert(Fact::consts(project, &[hopper_project]));
    println!("Instance: {}", d.display(&vocab));

    // 3. A conjunctive query: who is (certainly) an employee?
    let employee = vocab.rel("Employee", 1);
    let mut b = CqBuilder::new();
    let x = b.var("x");
    b.atom(employee, &[x]);
    let q = Ucq::from_cq(b.build(vec![x]));

    // 4a. Certain answers by bounded countermodel search.
    let engine = CertainEngine::new(2);
    let answers = engine.certain_answers(&onto, &d, &q, &mut vocab);
    println!("\nCertain answers to Employee(x) [countermodel search]:");
    for t in &answers {
        println!("  {}", t[0].display(&vocab));
    }
    assert!(answers.contains(&vec![Term::Const(ada)]));
    assert!(answers.contains(&vec![Term::Const(grete)]));

    // 4b. The same answers from the disjunctive chase (this ontology is
    //     positive-existential, so the chase terminates and materializes).
    let chase_result = chase(&onto, &d, &mut vocab, ChaseConfig::default())
        .expect("chase terminates on this ontology");
    let chase_answers = chase_result.certain_answers(&q, &d);
    assert_eq!(answers, chase_answers);
    println!(
        "  (chase agrees, {} leaf model(s))",
        chase_result.leaves.len()
    );

    // 4c. And from the emitted Datalog rewriting (Theorem 5 style).
    let sys = ElementTypeSystem::build(&onto, &vocab).expect("rewritable fragment");
    let program = emit_datalog(&sys, employee, &mut vocab);
    let datalog_answers: std::collections::BTreeSet<Vec<Term>> =
        program.eval(&d).into_iter().collect();
    assert_eq!(answers, datalog_answers);
    println!(
        "  (Datalog rewriting agrees, {} rules, {} element types)",
        program.len(),
        sys.num_types()
    );

    // 5. Classification against Figure 1.
    let report: OntologyReport = classify_ontology(&onto, &[d], &engine, &mut vocab);
    println!("\nFigure-1 classification: {report}");
}
