//! The paper's introductory example: the hand–finger ontologies
//!
//! ```text
//! O₁ = { ∀x (Hand(x) → ∃=5 y hasFinger(x, y)) }
//! O₂ = { ∀x (Hand(x) → ∃y (hasFinger(x, y) ∧ Thumb(y))) }
//! ```
//!
//! Each enjoys PTIME query evaluation (and Datalog≠-rewritability), but
//! query evaluation w.r.t. `O₁ ∪ O₂` is coNP-hard: on a hand that already
//! has five fingers, the thumb must be one of them — a certain
//! disjunction with no certain disjunct (non-materializability, Thms 3/17).
//!
//! Run with `cargo run -p gomq-examples --bin hand_fingers`.

use gomq_core::query::CqBuilder;
use gomq_core::{Fact, Instance, Term, Ucq, Vocab};
use gomq_dl::concept::{Concept, Role};
use gomq_dl::translate::to_gf;
use gomq_dl::DlOntology;
use gomq_logic::fragment::best_fragment;
use gomq_reasoning::materialize::{atomic_candidates, find_disjunction_witness};
use gomq_reasoning::CertainEngine;

const FINGERS: usize = 3; // the phenomenon is identical with 5; 3 is snappier

fn main() {
    let mut vocab = Vocab::new();
    let hand = vocab.rel("Hand", 1);
    let thumb = vocab.rel("Thumb", 1);
    let has_finger_rel = vocab.rel("hasFinger", 2);
    let has_finger = Role::new(has_finger_rel);

    let mut dl1 = DlOntology::new();
    dl1.sub(
        Concept::Name(hand),
        Concept::exactly(FINGERS as u32, has_finger, Concept::Top),
    );
    let mut dl2 = DlOntology::new();
    dl2.sub(
        Concept::Name(hand),
        Concept::Exists(has_finger, Box::new(Concept::Name(thumb))),
    );
    let o1 = to_gf(&dl1);
    let o2 = to_gf(&dl2);
    let union = o1.union(&o2);

    println!("O1: every hand has exactly {FINGERS} fingers");
    println!(
        "    fragment: {:?}",
        best_fragment(&o1, &vocab).map(|f| f.name())
    );
    println!("O2: every hand has a thumb finger");
    println!(
        "    fragment: {:?}",
        best_fragment(&o2, &vocab).map(|f| f.name())
    );

    // The instance: a hand that already has all its fingers.
    let h = vocab.constant("hand");
    let mut d = Instance::new();
    d.insert(Fact::consts(hand, &[h]));
    let fingers: Vec<_> = (0..FINGERS)
        .map(|i| vocab.constant(&format!("finger{i}")))
        .collect();
    for &f in &fingers {
        d.insert(Fact::consts(has_finger_rel, &[h, f]));
    }
    println!("\nInstance: {}", d.display(&vocab));

    let engine = CertainEngine::new(1);

    // Individually: the disjunction property holds on this instance.
    let candidates = atomic_candidates(&union, &d, &vocab);
    for (name, o) in [("O1", &o1), ("O2", &o2)] {
        let w = find_disjunction_witness(o, &d, &candidates, &engine, &mut vocab);
        println!(
            "{name}: disjunction property on D: {}",
            if w.is_none() {
                "holds (materializable here)"
            } else {
                "FAILS"
            }
        );
        assert!(w.is_none());
    }

    // The union: Thumb(fᵢ) is not certain for any finger…
    let mut b = CqBuilder::new();
    let x = b.var("x");
    b.atom(thumb, &[x]);
    let q = Ucq::from_cq(b.build(vec![x]));
    println!("\nO1 ∪ O2 on the same instance:");
    for &f in &fingers {
        let certain = engine
            .certain(&union, &d, &q, &[Term::Const(f)], &mut vocab)
            .is_certain();
        println!("  Thumb({}) certain? {certain}", vocab.const_name(f));
        assert!(!certain);
    }
    // …but the disjunction over the fingers is certain.
    let disjunction: Vec<(Ucq, Vec<Term>)> = fingers
        .iter()
        .map(|&f| (q.clone(), vec![Term::Const(f)]))
        .collect();
    let certain = engine
        .certain_disjunction(&union, &d, &disjunction, &mut vocab)
        .is_certain();
    println!(
        "  Thumb(f0) ∨ … ∨ Thumb(f{}) certain? {certain}",
        FINGERS - 1
    );
    assert!(certain);
    println!(
        "\n=> O1 ∪ O2 violates the disjunction property: it is not\n\
         materializable, hence CQ evaluation w.r.t. it is coNP-hard\n\
         (Theorems 3 and 17) — while O1 and O2 are each PTIME.\n\
         Such differences are invisible at the level of ontology languages."
    );
}
