//! The BioPortal-style survey (§1 of the paper).
//!
//! Generates the synthetic 411-ontology corpus and reproduces the paper's
//! headline statistics: 405/411 ontologies land in the ALCHIF-depth-2
//! dichotomy fragment, 385/411 in ALCHIQ depth 1.
//!
//! Run with `cargo run -p gomq-examples --bin bioportal_survey`.

use gomq_core::Vocab;
use gomq_corpus::{generate_corpus, survey, CorpusSpec};
use std::collections::BTreeMap;

fn main() {
    let mut vocab = Vocab::new();
    let corpus = generate_corpus(&CorpusSpec::default(), &mut vocab);
    let table = survey(&corpus, &mut vocab);
    println!("{table}");

    // Language breakdown.
    let mut by_lang: BTreeMap<String, usize> = BTreeMap::new();
    for row in &table.rows {
        *by_lang.entry(row.language.clone()).or_default() += 1;
    }
    println!("Detected DL languages:");
    for (lang, n) in by_lang {
        println!("  {lang:<10} {n:>4}");
    }

    // Depth histogram.
    let mut by_depth: BTreeMap<usize, usize> = BTreeMap::new();
    for row in &table.rows {
        *by_depth.entry(row.depth).or_default() += 1;
    }
    println!("\nRaw depth histogram:");
    for (depth, n) in by_depth {
        println!("  depth {depth}: {n:>4}  {}", "#".repeat(n / 4));
    }
    assert_eq!(table.alchif_depth2_count(), 405);
    assert_eq!(table.alchiq_depth1_count(), 385);
}
