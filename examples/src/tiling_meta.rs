//! The undecidability/non-dichotomy machinery of §7: rectangle tilings,
//! the marker ontologies `O_cell`/`O_P`, and the run fitting problem.
//!
//! Run with `cargo run -p gomq-examples --bin tiling_meta`.

use gomq_core::Vocab;
use gomq_dl::depth::ontology_depth;
use gomq_dl::lang::DlFeatures;
use gomq_tm::machine::{Cell, Config, Machine, Sym};
use gomq_tm::runfit::{run_fitting, PCell, PartialConfig, PartialRun};
use gomq_tm::tiling_onto::{build_grid_ontology, grid_instance};
use gomq_tm::TilingSystem;

fn main() {
    // 1. Rectangle tilings.
    let solvable = TilingSystem::solvable_example();
    let grid = solvable.find_tiling(3, 3).expect("solvable system");
    println!(
        "Solvable tiling system: found a {}x{} tiling",
        grid[0].len(),
        grid.len()
    );
    let unsolvable = TilingSystem::unsolvable_example();
    assert!(unsolvable.find_tiling(4, 4).is_none());
    println!("Unsolvable tiling system: no rectangle up to 4x4 admits a tiling");

    // 2. The Theorem-10 ontology O_P (ALCIF` of depth 2).
    let mut vocab = Vocab::new();
    let g = build_grid_ontology(&solvable, &mut vocab);
    let features = DlFeatures::of(&g.cell.onto);
    println!(
        "\nO_P: {} axioms, depth {}, language {} (paper: ALCIF` depth 2)",
        g.cell.onto.axioms.len(),
        ontology_depth(&g.cell.onto),
        features.language()
    );
    let d = grid_instance(&g, &grid, &mut vocab);
    println!(
        "Grid instance for the found tiling: {} facts over {} elements",
        d.len(),
        d.dom().len()
    );
    println!(
        "If P admits a tiling, O_P is not materializable (Lemma 13) —\n\
         hence deciding PTIME evaluation for ALCIF` depth 2 would decide\n\
         the tiling problem: undecidable (Theorem 10)."
    );

    // 3. The run fitting problem (Definition 8 / Theorem 12).
    let m = Machine::even_ones();
    println!("\nRun fitting for the even-ones machine:");
    // Pin only the start state and tape length; ask for a 4-row accepting run.
    let mut row0 = PartialConfig::all_wild(4);
    row0.cells[0] = PCell::Fixed(Cell::Q(gomq_tm::machine::State(0)));
    let partial = PartialRun::new(vec![
        row0,
        PartialConfig::all_wild(4),
        PartialConfig::all_wild(4),
        PartialConfig::all_wild(4),
    ]);
    match run_fitting(&m, &partial) {
        Some(run) => {
            println!("  a matching accepting run exists:");
            for (i, c) in run.iter().enumerate() {
                let s: String = c
                    .cells
                    .iter()
                    .map(|cell| match cell {
                        Cell::Q(q) => format!("[q{}]", q.0),
                        Cell::S(Sym(0)) => "_".to_owned(),
                        Cell::S(Sym(k)) => format!("{k}"),
                    })
                    .collect();
                println!("    row {i}: {s}");
            }
        }
        None => println!("  no accepting run matches"),
    }
    // A contradictory partial run.
    let c_odd = Config::initial(&m, &[Sym(1)], 3);
    let partial_bad = PartialRun::new(vec![
        PartialConfig::from_config(&c_odd),
        PartialConfig::all_wild(4),
        PartialConfig::all_wild(4),
    ]);
    assert!(run_fitting(&m, &partial_bad).is_none());
    println!("  a partial run pinning an odd input does not fit (as expected)");
    println!(
        "\nTheorem 12 adapts Ladner's theorem to run fitting: there is a\n\
         machine whose run fitting problem is NP-intermediate, which via\n\
         Lemma 4 yields ontologies witnessing the non-dichotomy for\n\
         uGF-2(2,f) and ALCIF` depth 2."
    );
}
