//! Property tests: the semi-naive engine agrees with the naive reference
//! evaluator on random programs and instances.

use gomq_core::{Fact, Instance, Vocab};
use gomq_datalog::eval::eval_naive;
use gomq_datalog::{DAtom, DTerm, Literal, Program, Rule};
use proptest::prelude::*;

/// Random graph + a random linear-recursive program over it.
fn setup_strategy() -> impl Strategy<Value = (Vocab, Program, Instance)> {
    (
        prop::collection::vec((0usize..5, 0usize..5), 1..10),
        prop::collection::vec((0usize..5,), 0..4),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(edges, labels, use_neq, reverse)| {
            let mut v = Vocab::new();
            let e = v.rel("E", 2);
            let u = v.rel("U", 1);
            let t = v.rel("T", 2);
            let goal = v.rel("goal", 2);
            let consts: Vec<_> = (0..5).map(|i| v.constant(&format!("n{i}"))).collect();
            let mut d = Instance::new();
            for (a, b) in edges {
                d.insert(Fact::consts(e, &[consts[a], consts[b]]));
            }
            for (a,) in labels {
                d.insert(Fact::consts(u, &[consts[a]]));
            }
            // T = transitive closure of E (possibly reversed); goal with
            // optional ≠ filter and optional unary restriction.
            let base_args: &[u32] = if reverse { &[1, 0] } else { &[0, 1] };
            let mut rules = vec![
                Rule::new(
                    DAtom::vars(t, base_args),
                    vec![Literal::Pos(DAtom::vars(e, &[0, 1]))],
                ),
                Rule::new(
                    DAtom::vars(t, &[0, 2]),
                    vec![
                        Literal::Pos(DAtom::vars(t, &[0, 1])),
                        Literal::Pos(DAtom::vars(t, &[1, 2])),
                    ],
                ),
            ];
            let mut goal_body = vec![Literal::Pos(DAtom::vars(t, &[0, 1]))];
            if use_neq {
                goal_body.push(Literal::Neq(DTerm::Var(0), DTerm::Var(1)));
            }
            rules.push(Rule::new(DAtom::vars(goal, &[0, 1]), goal_body));
            (v, Program::new(rules, goal), d)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn semi_naive_agrees_with_naive((_v, p, d) in setup_strategy()) {
        prop_assert_eq!(p.eval(&d), eval_naive(&p, &d));
    }

    #[test]
    fn fixpoint_is_monotone((_v, p, d) in setup_strategy()) {
        // Adding facts can only grow the answer set (positive programs
        // with built-in ≠ are monotone).
        let base = p.eval(&d);
        let mut bigger = d.clone();
        let mut v2 = Vocab::new();
        let e2 = v2.rel("E", 2);
        let extra_a = v2.constant("extraA");
        let extra_b = v2.constant("extraB");
        bigger.insert(Fact::consts(e2, &[extra_a, extra_b]));
        let grown = p.eval(&bigger);
        prop_assert!(base.is_subset(&grown));
    }

    #[test]
    fn derived_facts_do_not_shrink_with_rules((_v, p, d) in setup_strategy()) {
        // Dropping the goal rule yields a subset of goal facts (trivially
        // empty), and the full fixpoint is a superset of the EDB.
        let (total, _) = p.fixpoint(&d);
        prop_assert!(total.models_instance(&d));
    }
}
