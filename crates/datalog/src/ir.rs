//! Backend-agnostic plan IR: the SCC-stratified rule graph.
//!
//! A compiled OMQ plan used to be a bag of executor-specific state; this
//! module is the part every backend shares. [`PlanIr::of`] partitions a
//! [`Program`]'s rules into the strongly connected components of its
//! head-dependency graph (body IDB relation → head relation) and orders
//! the components bodies-first. Each [`StratumIr`] carries the
//! annotations a backend needs to pick an execution strategy:
//!
//! * `recursive` — some rule's positive body atom mentions a head
//!   relation of the same stratum, so a fixpoint loop is required. A
//!   non-recursive stratum saturates in a single derivation pass.
//! * `uses_neq` — some rule carries a `≠` guard. The dialect has no
//!   negation-as-failure (only the built-in inequality), and `≠` atoms
//!   never create dependency edges: they constrain bindings but derive
//!   nothing.
//!
//! The [`Rewritability`] verdict summarizes the whole graph: an IR with
//! no recursive stratum is a bounded union of select-project-join
//! queries and can be emitted as portable SQL (`rewriting::emit_sql`);
//! a recursive IR needs a fixpoint engine. The ontology-level half of
//! the verdict (whether a Datalog≠ rewriting exists at all) lives in
//! `rewriting::classify_ontology`; the plan layer combines both.

use crate::program::{Program, Rule};
use gomq_core::RelId;
use std::collections::{BTreeMap, BTreeSet};

/// One SCC stratum: a rule partition plus its execution annotations.
///
/// A non-recursive stratum (no rule's body mentions a head relation of
/// the same stratum) saturates in a single derivation pass — no
/// fixpoint iteration, no empty final round.
#[derive(Clone, Debug)]
pub struct StratumIr {
    /// The rules of this stratum.
    pub rules: Vec<Rule>,
    /// Whether any rule's body depends on a head relation of this
    /// stratum (then a fixpoint loop is needed).
    pub recursive: bool,
}

impl StratumIr {
    /// The head relations defined by this stratum.
    pub fn heads(&self) -> BTreeSet<RelId> {
        self.rules.iter().map(|r| r.head.rel).collect()
    }

    /// Whether any rule of this stratum carries a `≠` guard.
    pub fn uses_neq(&self) -> bool {
        self.rules.iter().any(|r| r.uses_neq())
    }
}

/// Which backends can execute a plan, judged from the rule graph alone.
///
/// Derived by [`PlanIr::rewritability`] from SCC acyclicity. The
/// ontology-level classification (is there a Datalog≠ rewriting at
/// all?) is upstream of this: by the time an IR exists, the answer was
/// yes, and this verdict splits the rewritable world further.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rewritability {
    /// No recursive stratum: the plan is a bounded sequence of
    /// select-project-join-union layers (UCQ-shaped rewritings and
    /// acyclic Theorem-5 type programs), expressible as first-order /
    /// SQL text — any relational backend can run it.
    FirstOrder,
    /// At least one stratum needs a fixpoint loop: the plan is genuine
    /// recursive Datalog≠ and only fixpoint backends apply.
    DatalogOnly,
}

impl std::fmt::Display for Rewritability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rewritability::FirstOrder => write!(f, "first-order"),
            Rewritability::DatalogOnly => write!(f, "datalog-only"),
        }
    }
}

/// Rules grouped into SCC strata in topological (bodies-first) order.
///
/// Computed once per compiled plan and reused for every instance the
/// plan is evaluated against, by whichever backend.
#[derive(Clone, Debug)]
pub struct PlanIr {
    /// One rule partition per stratum, dependency order.
    pub strata: Vec<StratumIr>,
    /// The program's goal relation (answers are its tuples).
    pub goal: RelId,
}

impl PlanIr {
    /// Stratifies a program by the SCCs of its head-dependency graph.
    pub fn of(program: &Program) -> PlanIr {
        let idb: BTreeSet<RelId> = program.idb();
        // Dependency edges body-IDB-relation → head relation.
        let nodes: Vec<RelId> = idb.iter().copied().collect();
        let index_of: BTreeMap<RelId, usize> =
            nodes.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
        for rule in &program.rules {
            let h = index_of[&rule.head.rel];
            for atom in rule.positive_atoms() {
                if let Some(&b) = index_of.get(&atom.rel) {
                    succ[b].insert(h);
                }
            }
        }
        let comp = scc(&succ);
        let n_comps = comp.iter().copied().max().map_or(0, |m| m + 1);
        // Condensation edges + Kahn topological order.
        let mut cond_succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_comps];
        let mut indegree = vec![0usize; n_comps];
        for (b, hs) in succ.iter().enumerate() {
            for &h in hs {
                let (cb, ch) = (comp[b], comp[h]);
                if cb != ch && cond_succ[cb].insert(ch) {
                    indegree[ch] += 1;
                }
            }
        }
        let mut order: Vec<usize> = Vec::with_capacity(n_comps);
        let mut queue: Vec<usize> = (0..n_comps).filter(|&c| indegree[c] == 0).collect();
        while let Some(c) = queue.pop() {
            order.push(c);
            for &d in &cond_succ[c] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        debug_assert_eq!(order.len(), n_comps, "condensation must be acyclic");
        let rank_of_comp: BTreeMap<usize, usize> = order
            .iter()
            .enumerate()
            .map(|(rank, &c)| (c, rank))
            .collect();
        let mut buckets: Vec<Vec<Rule>> = vec![Vec::new(); n_comps];
        for rule in &program.rules {
            let c = comp[index_of[&rule.head.rel]];
            buckets[rank_of_comp[&c]].push(rule.clone());
        }
        let strata = buckets
            .into_iter()
            .filter(|rules| !rules.is_empty())
            .map(|rules| {
                let heads: BTreeSet<RelId> = rules.iter().map(|r| r.head.rel).collect();
                let recursive = rules
                    .iter()
                    .any(|r| r.positive_atoms().any(|a| heads.contains(&a.rel)));
                StratumIr { rules, recursive }
            })
            .collect();
        PlanIr {
            strata,
            goal: program.goal,
        }
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Whether there are no strata (empty program).
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// Whether any stratum needs a fixpoint loop.
    pub fn is_recursive(&self) -> bool {
        self.strata.iter().any(|s| s.recursive)
    }

    /// Whether any rule anywhere carries a `≠` guard.
    pub fn uses_neq(&self) -> bool {
        self.strata.iter().any(|s| s.uses_neq())
    }

    /// All rules in stratum order.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.strata.iter().flat_map(|s| s.rules.iter())
    }

    /// The backend verdict: SQL-expressible iff no stratum is recursive.
    pub fn rewritability(&self) -> Rewritability {
        if self.is_recursive() {
            Rewritability::DatalogOnly
        } else {
            Rewritability::FirstOrder
        }
    }
}

/// Iterative Tarjan SCC; returns the component id of every node.
fn scc(succ: &[BTreeSet<usize>]) -> Vec<usize> {
    let n = succ.len();
    let mut comp = vec![usize::MAX; n];
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    // Explicit DFS stack: (node, iterator position over successors).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let push = |v: usize,
                    dfs: &mut Vec<(usize, Vec<usize>, usize)>,
                    index: &mut Vec<usize>,
                    low: &mut Vec<usize>,
                    on_stack: &mut Vec<bool>,
                    stack: &mut Vec<usize>,
                    next_index: &mut usize| {
            index[v] = *next_index;
            low[v] = *next_index;
            *next_index += 1;
            stack.push(v);
            on_stack[v] = true;
            dfs.push((v, succ[v].iter().copied().collect(), 0));
        };
        push(
            root,
            &mut dfs,
            &mut index,
            &mut low,
            &mut on_stack,
            &mut stack,
            &mut next_index,
        );
        while let Some((v, children, pos)) = dfs.last_mut() {
            if *pos < children.len() {
                let w = children[*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    push(
                        w,
                        &mut dfs,
                        &mut index,
                        &mut low,
                        &mut on_stack,
                        &mut stack,
                        &mut next_index,
                    );
                } else if on_stack[w] {
                    let v = *v;
                    low[v] = low[v].min(index[w]);
                }
            } else {
                let v = *v;
                dfs.pop();
                if let Some((parent, _, _)) = dfs.last() {
                    low[*parent] = low[*parent].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{DAtom, DTerm, Literal};
    use gomq_core::Vocab;

    /// Reference acyclicity check: a head relation is recursive iff it
    /// can reach itself in the body-IDB → head dependency graph
    /// (transitive closure by naive iteration, independent of Tarjan).
    fn reachability_says_recursive(program: &Program) -> bool {
        let idb = program.idb();
        let mut reach: BTreeSet<(RelId, RelId)> = BTreeSet::new();
        for rule in &program.rules {
            for atom in rule.positive_atoms() {
                if idb.contains(&atom.rel) {
                    reach.insert((atom.rel, rule.head.rel));
                }
            }
        }
        loop {
            let mut grew = false;
            let edges: Vec<_> = reach.iter().copied().collect();
            for &(a, b) in &edges {
                for &(c, d) in &edges {
                    if b == c && reach.insert((a, d)) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        idb.iter().any(|&r| reach.contains(&(r, r)))
    }

    fn pos(rel: RelId, vars: &[u32]) -> Literal {
        Literal::Pos(DAtom::vars(rel, vars))
    }

    #[test]
    fn transitive_closure_is_recursive_and_datalog_only() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        let g = v.rel("goal", 2);
        let p = Program::new(
            vec![
                Rule::new(DAtom::vars(t, &[0, 1]), vec![pos(e, &[0, 1])]),
                Rule::new(
                    DAtom::vars(t, &[0, 2]),
                    vec![pos(t, &[0, 1]), pos(e, &[1, 2])],
                ),
                Rule::new(DAtom::vars(g, &[0, 1]), vec![pos(t, &[0, 1])]),
            ],
            g,
        );
        let ir = PlanIr::of(&p);
        assert!(ir.is_recursive());
        assert!(reachability_says_recursive(&p));
        assert_eq!(ir.rewritability(), Rewritability::DatalogOnly);
        // Exactly the T-stratum is recursive, not the goal layer.
        let flags: Vec<bool> = ir.strata.iter().map(|s| s.recursive).collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn layered_ucq_shape_is_first_order() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let g = v.rel("goal", 1);
        let p = Program::new(
            vec![
                Rule::new(DAtom::vars(b, &[0]), vec![pos(a, &[0])]),
                Rule::new(DAtom::vars(b, &[0]), vec![pos(e, &[0, 1])]),
                Rule::new(DAtom::vars(g, &[0]), vec![pos(b, &[0])]),
            ],
            g,
        );
        let ir = PlanIr::of(&p);
        assert!(!ir.is_recursive());
        assert!(!reachability_says_recursive(&p));
        assert_eq!(ir.rewritability(), Rewritability::FirstOrder);
        assert_eq!(ir.goal, g);
        assert_eq!(ir.len(), 2);
    }

    #[test]
    fn mutual_recursion_lands_in_one_stratum() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let odd = v.rel("Odd", 1);
        let even = v.rel("Even", 1);
        let g = v.rel("goal", 1);
        let p = Program::new(
            vec![
                Rule::new(
                    DAtom::vars(odd, &[0]),
                    vec![pos(e, &[1, 0]), pos(even, &[1])],
                ),
                Rule::new(
                    DAtom::vars(even, &[0]),
                    vec![pos(e, &[1, 0]), pos(odd, &[1])],
                ),
                Rule::new(DAtom::vars(even, &[0]), vec![pos(e, &[0, 1])]),
                Rule::new(DAtom::vars(g, &[0]), vec![pos(odd, &[0])]),
            ],
            g,
        );
        let ir = PlanIr::of(&p);
        assert!(ir.is_recursive());
        assert!(reachability_says_recursive(&p));
        // Odd and Even share one SCC; goal sits above it.
        assert_eq!(ir.len(), 2);
        assert_eq!(
            ir.strata[0].heads(),
            [odd, even].into_iter().collect::<BTreeSet<_>>()
        );
        assert!(ir.strata[0].recursive);
        assert!(!ir.strata[1].recursive);
    }

    #[test]
    fn neq_atoms_do_not_create_dependency_edges() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let s = v.rel("S", 2);
        let g = v.rel("goal", 2);
        // Identical programs except one ≠ guard: same stratification,
        // same (non-)recursion verdict, but the annotation flips.
        let without = Program::new(
            vec![
                Rule::new(DAtom::vars(s, &[0, 1]), vec![pos(e, &[0, 1])]),
                Rule::new(DAtom::vars(g, &[0, 1]), vec![pos(s, &[0, 1])]),
            ],
            g,
        );
        let with = Program::new(
            vec![
                Rule::new(
                    DAtom::vars(s, &[0, 1]),
                    vec![pos(e, &[0, 1]), Literal::Neq(DTerm::Var(0), DTerm::Var(1))],
                ),
                Rule::new(DAtom::vars(g, &[0, 1]), vec![pos(s, &[0, 1])]),
            ],
            g,
        );
        let ir_without = PlanIr::of(&without);
        let ir_with = PlanIr::of(&with);
        assert_eq!(ir_without.len(), ir_with.len());
        assert!(!ir_with.is_recursive());
        assert!(!reachability_says_recursive(&with));
        assert!(ir_with.uses_neq() && !ir_without.uses_neq());
        assert!(ir_with.strata[0].uses_neq());
        assert_eq!(ir_with.rewritability(), Rewritability::FirstOrder);
    }

    #[test]
    fn self_loop_rule_is_recursive_even_alone() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        let g = v.rel("goal", 2);
        let p = Program::new(
            vec![
                Rule::new(DAtom::vars(t, &[0, 1]), vec![pos(e, &[0, 1])]),
                Rule::new(DAtom::vars(t, &[1, 0]), vec![pos(t, &[0, 1])]),
                Rule::new(DAtom::vars(g, &[0, 1]), vec![pos(t, &[0, 1])]),
            ],
            g,
        );
        let ir = PlanIr::of(&p);
        assert!(ir.is_recursive());
        assert!(reachability_says_recursive(&p));
    }

    #[test]
    fn empty_program_is_first_order() {
        let mut v = Vocab::new();
        let g = v.rel("goal", 1);
        let ir = PlanIr::of(&Program::new(vec![], g));
        assert!(ir.is_empty());
        assert!(!ir.is_recursive());
        assert_eq!(ir.rewritability(), Rewritability::FirstOrder);
    }

    /// The Tarjan-based verdict and the naive reachability verdict agree
    /// on a family of random-ish layered programs (deterministic LCG).
    #[test]
    fn scc_verdict_matches_reachability_on_generated_programs() {
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for case in 0..200 {
            let mut v = Vocab::new();
            let n_rels = 2 + next() % 6;
            let rels: Vec<RelId> = (0..n_rels).map(|i| v.rel(&format!("R{i}"), 1)).collect();
            let edb = v.rel("edb", 1);
            let g = v.rel("goal", 1);
            let n_rules = 1 + next() % 8;
            let mut rules = Vec::new();
            for _ in 0..n_rules {
                let head = rels[next() % n_rels];
                let mut body = vec![pos(edb, &[0])];
                for _ in 0..(next() % 3) {
                    body.push(pos(rels[next() % n_rels], &[0]));
                }
                rules.push(Rule::new(DAtom::vars(head, &[0]), body));
            }
            rules.push(Rule::new(DAtom::vars(g, &[0]), vec![pos(rels[0], &[0])]));
            let p = Program::new(rules, g);
            let ir = PlanIr::of(&p);
            assert_eq!(
                ir.is_recursive(),
                reachability_says_recursive(&p),
                "case {case}"
            );
            // Strata are bodies-first: every positive body atom of a
            // non-recursive stratum resolves to EDB or an earlier head.
            let mut seen: BTreeSet<RelId> = BTreeSet::new();
            let idb = p.idb();
            for s in &ir.strata {
                if !s.recursive {
                    for r in &s.rules {
                        for a in r.positive_atoms() {
                            assert!(
                                !idb.contains(&a.rel) || seen.contains(&a.rel),
                                "case {case}: unsaturated input"
                            );
                        }
                    }
                }
                seen.extend(s.heads());
            }
        }
    }
}
