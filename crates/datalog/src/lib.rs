//! # gomq-datalog
//!
//! A Datalog / Datalog≠ engine (appendix B of the paper).
//!
//! A Datalog≠ rule is `S(x̄) ← R₁(x̄₁) ∧ … ∧ R_m(x̄_m)` where each `Rᵢ` is a
//! relation symbol or the built-in inequality `≠`; every head variable must
//! occur in a positive body atom. A program has a designated `goal`
//! relation that may not occur in rule bodies. `D ⊨ Π(ā)` iff `goal(ā)`
//! holds in every model of `D` and `Π` — equivalently, in the least
//! fixpoint, which [`Program::eval`] computes by semi-naive bottom-up
//! iteration.
//!
//! The engine is the target of the paper's Theorem-5 rewriting: for
//! unravelling-tolerant ontologies, certain answers of an OMQ are exactly
//! the answers of a Datalog≠ program, giving PTIME data complexity.

#![warn(missing_docs)]

pub mod eval;
pub mod ir;
pub mod ivm;
pub mod program;

pub use eval::{
    derive_all, derive_all_traced, derive_round, derive_round_traced, eval_naive, fixpoint_traced,
    Budget, BudgetExceeded, Derivation, Emitter, EvalStats, LimitKind, TracedBuf,
};
pub use ir::{PlanIr, Rewritability, StratumIr};
pub use ivm::Materialization;
pub use program::{DAtom, DTerm, Literal, Program, Rule};
