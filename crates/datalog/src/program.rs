//! Rule and program representation.

use gomq_core::{RelId, Term, Vocab};
use std::collections::BTreeSet;
use std::fmt;

/// A term in a rule: a variable or a fixed ground term.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DTerm {
    /// A rule variable (rule-scoped index).
    Var(u32),
    /// A ground term (constant or null) baked into the rule.
    Ground(Term),
}

/// An atom `R(t₁,…,t_k)` in a rule head or body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DAtom {
    /// The relation symbol.
    pub rel: RelId,
    /// The arguments.
    pub args: Vec<DTerm>,
}

impl DAtom {
    /// Creates an atom over variables only.
    pub fn vars(rel: RelId, vars: &[u32]) -> Self {
        DAtom {
            rel,
            args: vars.iter().map(|&v| DTerm::Var(v)).collect(),
        }
    }
}

/// A body literal: a positive atom or a built-in inequality.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// A positive relational atom.
    Pos(DAtom),
    /// The built-in `t ≠ u`.
    Neq(DTerm, DTerm),
}

/// A Datalog≠ rule `head ← body`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head atom.
    pub head: DAtom,
    /// The body literals.
    pub body: Vec<Literal>,
    /// Cached variable-slot count (1 + the largest variable index), so the
    /// matcher can allocate a flat binding frame without rescanning the rule.
    slots: u32,
}

impl Rule {
    /// Creates a rule, checking range restriction: every head variable and
    /// every inequality variable occurs in a positive body atom.
    ///
    /// # Panics
    ///
    /// Panics on violated range restriction.
    pub fn new(head: DAtom, body: Vec<Literal>) -> Self {
        let mut positive_vars: BTreeSet<u32> = BTreeSet::new();
        for l in &body {
            if let Literal::Pos(a) = l {
                for t in &a.args {
                    if let DTerm::Var(v) = t {
                        positive_vars.insert(*v);
                    }
                }
            }
        }
        let check = |t: &DTerm| {
            if let DTerm::Var(v) = t {
                assert!(
                    positive_vars.contains(v),
                    "variable ?{v} not bound by a positive body atom"
                );
            }
        };
        for t in &head.args {
            check(t);
        }
        for l in &body {
            if let Literal::Neq(a, b) = l {
                check(a);
                check(b);
            }
        }
        // Range restriction holds, so positive body atoms mention every
        // variable of the rule.
        let slots = positive_vars.last().map_or(0, |&v| v + 1);
        Rule { head, body, slots }
    }

    /// Number of variable slots a binding frame for this rule needs
    /// (1 + the largest variable index; 0 for a variable-free rule).
    pub fn num_slots(&self) -> usize {
        self.slots as usize
    }

    /// Whether the rule uses inequality.
    pub fn uses_neq(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Neq(_, _)))
    }

    /// The positive body atoms.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &DAtom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            Literal::Neq(_, _) => None,
        })
    }
}

/// A Datalog≠ program with a designated goal relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
    /// The goal relation (must not occur in rule bodies).
    pub goal: RelId,
}

impl Program {
    /// Creates a program, checking that `goal` never occurs in a body.
    ///
    /// # Panics
    ///
    /// Panics if the goal relation occurs in a rule body.
    pub fn new(rules: Vec<Rule>, goal: RelId) -> Self {
        for r in &rules {
            for a in r.positive_atoms() {
                assert!(a.rel != goal, "goal relation must not occur in rule bodies");
            }
        }
        Program { rules, goal }
    }

    /// Whether this is a pure Datalog program (no inequality).
    pub fn is_pure_datalog(&self) -> bool {
        !self.rules.iter().any(Rule::uses_neq)
    }

    /// The intensional (derived) relations: those occurring in a head.
    pub fn idb(&self) -> BTreeSet<RelId> {
        self.rules.iter().map(|r| r.head.rel).collect()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Simplifies the program without changing its answers:
    ///
    /// * drops rules with a trivially false body (`t ≠ t`),
    /// * deduplicates body literals within each rule,
    /// * deduplicates identical rules.
    pub fn optimize(&self) -> Program {
        let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut rules = Vec::new();
        for r in &self.rules {
            // Trivially false inequality?
            let falsum = r.body.iter().any(|l| match l {
                Literal::Neq(a, b) => a == b,
                Literal::Pos(_) => false,
            });
            if falsum {
                continue;
            }
            let mut body = r.body.clone();
            let mut kept: Vec<Literal> = Vec::new();
            for l in body.drain(..) {
                if !kept.contains(&l) {
                    kept.push(l);
                }
            }
            // Dropping duplicate literals keeps every variable bound, so
            // re-running the `Rule::new` checks is safe.
            let rule = Rule::new(r.head.clone(), kept);
            let key = format!("{rule:?}");
            if seen.insert(key) {
                rules.push(rule);
            }
        }
        Program {
            rules,
            goal: self.goal,
        }
    }

    /// Renders the program with relation names from the vocabulary.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> ProgramDisplay<'a> {
        ProgramDisplay {
            program: self,
            vocab,
        }
    }
}

/// Helper for rendering a [`Program`].
pub struct ProgramDisplay<'a> {
    program: &'a Program,
    vocab: &'a Vocab,
}

impl ProgramDisplay<'_> {
    fn fmt_term(&self, t: &DTerm, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match t {
            DTerm::Var(v) => write!(f, "?{v}"),
            DTerm::Ground(g) => write!(f, "{}", g.display(self.vocab)),
        }
    }

    fn fmt_atom(&self, a: &DAtom, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.vocab.rel_name(a.rel))?;
        for (i, t) in a.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            self.fmt_term(t, f)?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for ProgramDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.program.rules {
            self.fmt_atom(&r.head, f)?;
            write!(f, " <- ")?;
            for (i, l) in r.body.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                match l {
                    Literal::Pos(a) => self.fmt_atom(a, f)?,
                    Literal::Neq(a, b) => {
                        self.fmt_term(a, f)?;
                        write!(f, " != ")?;
                        self.fmt_term(b, f)?;
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_restriction_enforced() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        // T(x,y) <- E(x,y) is fine.
        let r = Rule::new(
            DAtom::vars(t, &[0, 1]),
            vec![Literal::Pos(DAtom::vars(e, &[0, 1]))],
        );
        assert!(!r.uses_neq());
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_head_variable_panics() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        Rule::new(
            DAtom::vars(t, &[0, 2]),
            vec![Literal::Pos(DAtom::vars(e, &[0, 1]))],
        );
    }

    #[test]
    #[should_panic(expected = "goal relation")]
    fn goal_in_body_panics() {
        let mut v = Vocab::new();
        let g = v.rel("goal", 1);
        let r = Rule::new(
            DAtom::vars(g, &[0]),
            vec![Literal::Pos(DAtom::vars(g, &[0]))],
        );
        Program::new(vec![r], g);
    }

    #[test]
    fn optimize_drops_dead_and_duplicate_rules() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let g = v.rel("goal", 2);
        let live = Rule::new(
            DAtom::vars(g, &[0, 1]),
            vec![
                Literal::Pos(DAtom::vars(e, &[0, 1])),
                Literal::Pos(DAtom::vars(e, &[0, 1])), // duplicate literal
            ],
        );
        let dead = Rule::new(
            DAtom::vars(g, &[0, 1]),
            vec![
                Literal::Pos(DAtom::vars(e, &[0, 1])),
                Literal::Neq(DTerm::Var(0), DTerm::Var(0)), // t ≠ t
            ],
        );
        let p = Program::new(vec![live.clone(), live, dead], g);
        let opt = p.optimize();
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.rules[0].body.len(), 1);
        // Answers unchanged.
        let a = v.constant("a");
        let b = v.constant("b");
        let mut d = gomq_core::Instance::new();
        d.insert(gomq_core::Fact::consts(e, &[a, b]));
        assert_eq!(p.eval(&d), opt.eval(&d));
    }

    #[test]
    fn idb_and_display() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        let g = v.rel("goal", 2);
        let rules = vec![
            Rule::new(
                DAtom::vars(t, &[0, 1]),
                vec![Literal::Pos(DAtom::vars(e, &[0, 1]))],
            ),
            Rule::new(
                DAtom::vars(t, &[0, 2]),
                vec![
                    Literal::Pos(DAtom::vars(t, &[0, 1])),
                    Literal::Pos(DAtom::vars(e, &[1, 2])),
                ],
            ),
            Rule::new(
                DAtom::vars(g, &[0, 1]),
                vec![
                    Literal::Pos(DAtom::vars(t, &[0, 1])),
                    Literal::Neq(DTerm::Var(0), DTerm::Var(1)),
                ],
            ),
        ];
        let p = Program::new(rules, g);
        assert_eq!(p.idb().len(), 2);
        assert!(!p.is_pure_datalog());
        let s = format!("{}", p.display(&v));
        assert!(s.contains("goal(?0,?1) <- T(?0,?1) & ?0 != ?1"));
    }
}
