//! Bottom-up evaluation: naive (reference) and semi-naive (production).
//!
//! The join loop is generic over [`FactLookup`], so the same matcher
//! runs against plain [`Interpretation`]s (per-relation scan) and
//! against [`gomq_core::IndexedInstance`]s (first-argument hash probes,
//! used by `gomq-engine`). Within a rule body the next atom to match is
//! chosen greedily by candidate count — smallest relation (or, once the
//! first argument is bound, smallest index bucket) first.

use crate::program::{DAtom, DTerm, Literal, Program, Rule};
use gomq_core::{
    DeltaView, FactBuf, FactLookup, FactRef, IndexedInstance, Instance, Interpretation, RelId,
    StoreStats, Term,
};
use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

/// Statistics of an evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint rounds.
    pub rounds: usize,
    /// Number of facts derived (beyond the EDB).
    pub derived: usize,
    /// Facts retracted by incremental view maintenance (the DRed
    /// overcount-deletion phase). Always 0 outside [`crate::ivm`].
    pub ivm_deleted: usize,
    /// Facts reinstated by incremental view maintenance (the DRed
    /// rederivation phase). Always 0 outside [`crate::ivm`].
    pub ivm_rederived: usize,
    /// Storage pressure of the evaluation's total store (EDB ∪ IDB):
    /// facts interned, arena terms, dedup hits.
    pub store: StoreStats,
}

/// A cooperative resource budget for fixpoint evaluation.
///
/// Fields set to `None` are unlimited. The evaluator checks the budget
/// between rounds (cooperatively — a single round always completes), so
/// an evaluation may overshoot a limit by at most one round's worth of
/// work before returning [`BudgetExceeded`]. This is what lets a
/// serving layer survive a pathological OMQ/ABox pair — e.g. the
/// paper's Example-6 odd-cycle ontology on a large cyclic ABox —
/// instead of monopolizing the session.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Maximum fixpoint rounds across all strata.
    pub max_rounds: Option<usize>,
    /// Maximum IDB facts derived beyond the EDB.
    pub max_derived: Option<usize>,
    /// Wall-clock deadline for the whole evaluation.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// The unlimited budget: every check passes.
    pub const UNLIMITED: Budget = Budget {
        max_rounds: None,
        max_derived: None,
        deadline: None,
    };

    /// Checks the accumulated statistics against the limits.
    pub fn check(&self, stats: &EvalStats) -> Result<(), BudgetExceeded> {
        let exceeded = |limit| {
            Err(BudgetExceeded {
                limit,
                rounds: stats.rounds,
                derived: stats.derived,
            })
        };
        if self.max_rounds.is_some_and(|max| stats.rounds > max) {
            return exceeded(LimitKind::Rounds);
        }
        if self.max_derived.is_some_and(|max| stats.derived > max) {
            return exceeded(LimitKind::Derived);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return exceeded(LimitKind::Deadline);
        }
        Ok(())
    }
}

/// Which budget limit an evaluation ran into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitKind {
    /// [`Budget::max_rounds`].
    Rounds,
    /// [`Budget::max_derived`].
    Derived,
    /// [`Budget::deadline`].
    Deadline,
}

impl LimitKind {
    /// The protocol name of the limit (`"rounds"`, `"derived"`,
    /// `"deadline"`).
    pub fn name(&self) -> &'static str {
        match self {
            LimitKind::Rounds => "rounds",
            LimitKind::Derived => "derived",
            LimitKind::Deadline => "deadline",
        }
    }
}

/// An evaluation gave up because its [`Budget`] ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The limit that was hit.
    pub limit: LimitKind,
    /// Rounds completed when evaluation stopped.
    pub rounds: usize,
    /// Facts derived when evaluation stopped.
    pub derived: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "evaluation exceeded its {} budget after {} rounds / {} derived facts",
            self.limit.name(),
            self.rounds,
            self.derived
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A sink for facts staged by the join matcher.
///
/// The matcher is generic over its sink so the production hot path
/// (plain [`FactBuf`], whose premise hooks are empty and fold away under
/// monomorphization) and the certificate-recording path ([`TracedBuf`])
/// share one join loop instead of two drifting copies.
pub trait Emitter {
    /// Called once per rule before its instantiations are enumerated;
    /// `rule_idx` is the rule's position in the slice being evaluated.
    fn begin_rule(&mut self, _rule_idx: usize) {}

    /// A body atom was matched against fact `id`: `atom_idx` is the
    /// atom's position among the rule's *positive* atoms (body order,
    /// not join order). Paired with [`Emitter::unnote_premise`] on
    /// backtrack.
    fn note_premise(&mut self, _atom_idx: usize, _id: u32) {}

    /// Backtrack over the most recent [`Emitter::note_premise`].
    fn unnote_premise(&mut self) {}

    /// All body literals are satisfied: stage the instantiated head.
    fn emit(&mut self, rel: RelId, args: impl Iterator<Item = Term>);
}

impl Emitter for FactBuf {
    fn emit(&mut self, rel: RelId, args: impl Iterator<Item = Term>) {
        self.push_with(rel, args);
    }
}

/// One recorded rule application: which rule fired and which facts
/// instantiated its positive body atoms.
///
/// `premises[i]` is the store id of the fact matched against the rule's
/// `i`-th positive body atom, so a checker can re-verify the step by
/// *linear substitution matching* — walk the atoms in order, unify each
/// against its cited premise, then compare the instantiated head. No
/// join search is ever needed to check a derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// Index of the fired rule in the evaluated program's rule slice.
    pub rule: u32,
    /// Premise fact ids, aligned with the rule's positive body atoms.
    pub premises: Vec<u32>,
}

/// A [`FactBuf`] that additionally records a [`Derivation`] per staged
/// fact (aligned by position: `derivs[i]` justifies `buf.get(i)`).
#[derive(Default)]
pub struct TracedBuf {
    /// The staged facts.
    pub buf: FactBuf,
    /// `derivs[i]` is the rule application that staged `buf.get(i)`.
    pub derivs: Vec<Derivation>,
    rule_idx: u32,
    trail: Vec<(u32, u32)>,
}

impl TracedBuf {
    /// Creates an empty traced buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears staged facts and derivations, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.derivs.clear();
        self.trail.clear();
    }

    /// Iterates staged facts together with their derivations.
    pub fn iter(&self) -> impl Iterator<Item = (FactRef<'_>, &Derivation)> {
        (0..self.buf.len()).map(|i| (self.buf.get(i), &self.derivs[i]))
    }
}

impl Emitter for TracedBuf {
    fn begin_rule(&mut self, rule_idx: usize) {
        self.rule_idx = rule_idx as u32;
        // A panic between note/unnote pairs (fault injection) may leave
        // a stale trail; rule entry is a safe reset point.
        self.trail.clear();
    }

    fn note_premise(&mut self, atom_idx: usize, id: u32) {
        self.trail.push((atom_idx as u32, id));
    }

    fn unnote_premise(&mut self) {
        self.trail.pop();
    }

    fn emit(&mut self, rel: RelId, args: impl Iterator<Item = Term>) {
        self.buf.push_with(rel, args);
        // The trail is in greedy join order; certificates cite premises
        // in body-atom order so the checker can match linearly.
        let mut cited = self.trail.clone();
        cited.sort_unstable_by_key(|&(atom_idx, _)| atom_idx);
        self.derivs.push(Derivation {
            rule: self.rule_idx,
            premises: cited.into_iter().map(|(_, id)| id).collect(),
        });
    }
}

impl Program {
    /// Semi-naive evaluation: computes the least fixpoint of the program
    /// over the instance and returns the set of goal tuples.
    pub fn eval(&self, d: &Instance) -> BTreeSet<Vec<Term>> {
        self.eval_with_stats(d).0
    }

    /// Semi-naive evaluation returning the full derived interpretation
    /// (EDB ∪ IDB) together with statistics.
    pub fn fixpoint(&self, d: &Instance) -> (Interpretation, EvalStats) {
        self.fixpoint_budgeted(d, &Budget::UNLIMITED)
            .expect("the unlimited budget cannot be exceeded")
    }

    /// [`Program::fixpoint`] under a cooperative resource [`Budget`]:
    /// rounds, derived-fact fuel and wall-clock deadline are checked
    /// between rounds, and evaluation returns [`BudgetExceeded`] instead
    /// of running to completion when a limit is hit.
    pub fn fixpoint_budgeted(
        &self,
        d: &Instance,
        budget: &Budget,
    ) -> Result<(Interpretation, EvalStats), BudgetExceeded> {
        // The total store is a clone of the EDB's columns (bulk copies,
        // no per-fact allocation); a round's delta is just the id range
        // past the previous round's frontier.
        let mut total = d.clone();
        let mut stats = EvalStats::default();
        budget.check(&stats)?;
        let mut staged = FactBuf::new();
        let mut frontier = 0u32;
        loop {
            gomq_core::faults::point(gomq_core::faults::EVAL_ROUND);
            stats.rounds = stats.rounds.saturating_add(1);
            staged.clear();
            // In the first round the frontier is 0, so the delta view is
            // `total` itself — no second clone of the input.
            derive_round(
                &self.rules,
                &total,
                &DeltaView::new(&total, frontier),
                &mut staged,
            );
            frontier = total.len() as u32;
            for f in staged.iter() {
                total.insert_ref(f.rel, f.args);
            }
            let derived_now = total.len() - frontier as usize;
            if derived_now == 0 {
                break;
            }
            stats.derived = stats.derived.saturating_add(derived_now);
            budget.check(&stats)?;
        }
        stats.store = total.store_stats();
        Ok((total, stats))
    }

    /// Semi-naive evaluation returning goal tuples and statistics.
    pub fn eval_with_stats(&self, d: &Instance) -> (BTreeSet<Vec<Term>>, EvalStats) {
        let (total, stats) = self.fixpoint(d);
        let answers = total.facts_of(self.goal).map(|f| f.args.to_vec()).collect();
        (answers, stats)
    }

    /// Whether `D ⊨ Π(ā)`.
    pub fn holds(&self, d: &Instance, tuple: &[Term]) -> bool {
        self.eval(d).contains(tuple)
    }
}

/// One semi-naive round: stages into `out` every head fact of `rules`
/// with at least one body atom matched in `delta` (`total` must include
/// `delta`; the delta is typically a [`DeltaView`] over the total store
/// past the previous round's frontier). This is the building block both
/// of [`Program::fixpoint`] and of the stratified parallel evaluator in
/// `gomq-engine`, which calls it concurrently on disjoint rule
/// partitions, merging the per-worker [`FactBuf`]s afterwards.
pub fn derive_round<T, D>(rules: &[Rule], total: &T, delta: &D, out: &mut FactBuf)
where
    T: FactLookup + ?Sized,
    D: FactLookup + ?Sized,
{
    derive_round_into(rules, total, delta, out);
}

/// [`derive_round`] with derivation recording: `out.derivs[i]` records
/// the rule application (rule index into `rules`, premise fact ids in
/// body-atom order) that staged `out.buf.get(i)`.
pub fn derive_round_traced<T, D>(rules: &[Rule], total: &T, delta: &D, out: &mut TracedBuf)
where
    T: FactLookup + ?Sized,
    D: FactLookup + ?Sized,
{
    derive_round_into(rules, total, delta, out);
}

fn derive_round_into<T, D, E>(rules: &[Rule], total: &T, delta: &D, out: &mut E)
where
    T: FactLookup + ?Sized,
    D: FactLookup + ?Sized,
    E: Emitter,
{
    for (i, rule) in rules.iter().enumerate() {
        out.begin_rule(i);
        derive(rule, total, delta, out);
    }
}

/// Derives all head facts of `rule` with at least one body atom matched in
/// `delta` (semi-naive restriction). `total` includes `delta`.
fn derive<T, D, E>(rule: &Rule, total: &T, delta: &D, out: &mut E)
where
    T: FactLookup + ?Sized,
    D: FactLookup + ?Sized,
    E: Emitter,
{
    let atoms: Vec<&DAtom> = rule.positive_atoms().collect();
    if atoms.is_empty() {
        return;
    }
    // Flat binding frame indexed by variable slot; the matcher restores
    // every slot it fills on backtrack, so one allocation serves all pivots.
    let mut frame: Vec<Option<Term>> = vec![None; rule.num_slots()];
    for pivot in 0..atoms.len() {
        let mut remaining: Vec<usize> = (0..atoms.len()).collect();
        match_atoms(
            rule,
            &atoms,
            Some(pivot),
            &mut remaining,
            total,
            delta,
            &mut frame,
            out,
        );
    }
}

/// The first argument of `atom` if it is already determined by `frame`
/// (ground, or a bound variable) — the key for an indexed probe.
fn bound_first(atom: &DAtom, frame: &[Option<Term>]) -> Option<Term> {
    match atom.args.first()? {
        DTerm::Ground(g) => Some(*g),
        DTerm::Var(v) => frame[*v as usize],
    }
}

/// Matches the remaining body atoms recursively, choosing at every step
/// the atom with the fewest candidate facts under the current binding
/// (the pivot matches `delta`, everything else `total`).
#[allow(clippy::too_many_arguments)]
fn match_atoms<T, D, E>(
    rule: &Rule,
    atoms: &[&DAtom],
    pivot: Option<usize>,
    remaining: &mut Vec<usize>,
    total: &T,
    delta: &D,
    frame: &mut Vec<Option<Term>>,
    out: &mut E,
) where
    T: FactLookup + ?Sized,
    D: FactLookup + ?Sized,
    E: Emitter,
{
    if remaining.is_empty() {
        // All positive atoms matched: check inequalities, then emit
        // straight into the columnar buffer (no per-fact `Vec<Term>`).
        for l in &rule.body {
            if let Literal::Neq(a, b) = l {
                if resolve(a, frame) == resolve(b, frame) {
                    return;
                }
            }
        }
        out.emit(
            rule.head.rel,
            rule.head.args.iter().map(|t| resolve(t, frame)),
        );
        return;
    }
    // Greedy join ordering: pick the cheapest remaining atom.
    let mut best_k = 0usize;
    let mut best_cost = usize::MAX;
    for (k, &ai) in remaining.iter().enumerate() {
        let first = bound_first(atoms[ai], frame);
        let cost = if pivot == Some(ai) {
            delta.candidate_count(atoms[ai].rel, first)
        } else {
            total.candidate_count(atoms[ai].rel, first)
        };
        if cost < best_cost {
            best_cost = cost;
            best_k = k;
            if cost == 0 {
                break;
            }
        }
    }
    let ai = remaining.swap_remove(best_k);
    let atom = atoms[ai];
    let first = bound_first(atom, frame);
    let from_delta = pivot == Some(ai);
    let candidates = if from_delta {
        delta.candidate_ids(atom.rel, first)
    } else {
        total.candidate_ids(atom.rel, first)
    };
    for &id in candidates {
        // Maintained stores keep retracted facts in place with support
        // 0; they are not part of the instance, so the join skips them.
        // For plain stores is_live is a constant `true` and the branch
        // folds away.
        let live = if from_delta {
            delta.is_live(id)
        } else {
            total.is_live(id)
        };
        if !live {
            continue;
        }
        let fact = if from_delta {
            delta.fact(id)
        } else {
            total.fact(id)
        };
        if fact.args.len() != atom.args.len() {
            continue;
        }
        let mut newly: Vec<u32> = Vec::new();
        let mut ok = true;
        for (pat, &t) in atom.args.iter().zip(fact.args.iter()) {
            match pat {
                DTerm::Ground(g) => {
                    if *g != t {
                        ok = false;
                        break;
                    }
                }
                DTerm::Var(v) => match frame[*v as usize] {
                    Some(prev) if prev != t => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        frame[*v as usize] = Some(t);
                        newly.push(*v);
                    }
                },
            }
        }
        if ok {
            out.note_premise(ai, id);
            match_atoms(rule, atoms, pivot, remaining, total, delta, frame, out);
            out.unnote_premise();
        }
        for v in newly {
            frame[v as usize] = None;
        }
    }
    remaining.push(ai);
}

fn resolve(t: &DTerm, frame: &[Option<Term>]) -> Term {
    match t {
        DTerm::Ground(g) => *g,
        DTerm::Var(v) => frame[*v as usize].unwrap_or_else(|| panic!("unbound rule variable ?{v}")),
    }
}

/// One *naive* derivation pass: stages every head fact of every
/// satisfying instantiation of `rules` over `total` — the `pivot: None`
/// mode of the matcher, with no delta restriction. [`eval_naive`] loops
/// this to a fixpoint; incremental maintenance ([`crate::ivm`]) uses a
/// single pass as the DRed rederivation probe, restricted to the rules
/// whose head relations were overdeleted.
pub fn derive_all<T>(rules: &[Rule], total: &T, out: &mut FactBuf)
where
    T: FactLookup + ?Sized,
{
    derive_all_into(rules, total, out);
}

/// [`derive_all`] with derivation recording (see
/// [`derive_round_traced`]). Rule indices in the recorded derivations
/// refer to positions in `rules` — a caller probing with a rule *subset*
/// must remap them to its full program afterwards.
pub fn derive_all_traced<T>(rules: &[Rule], total: &T, out: &mut TracedBuf)
where
    T: FactLookup + ?Sized,
{
    derive_all_into(rules, total, out);
}

fn derive_all_into<T, E>(rules: &[Rule], total: &T, out: &mut E)
where
    T: FactLookup + ?Sized,
    E: Emitter,
{
    for (i, rule) in rules.iter().enumerate() {
        out.begin_rule(i);
        let atoms: Vec<&DAtom> = rule.positive_atoms().collect();
        if atoms.is_empty() {
            continue;
        }
        let mut frame: Vec<Option<Term>> = vec![None; rule.num_slots()];
        let mut remaining: Vec<usize> = (0..atoms.len()).collect();
        match_atoms(
            rule,
            &atoms,
            None,
            &mut remaining,
            total,
            total,
            &mut frame,
            out,
        );
    }
}

/// A fixpoint together with one recorded [`Derivation`] per derived
/// fact: `derivs[id]` is `None` for the base facts (ids below
/// `base.len()`) and `Some` for every fact the fixpoint added. Each
/// recorded derivation's premises carry ids strictly below the derived
/// fact's own id, so replaying `derivs` in id order re-checks the whole
/// fixpoint in one linear pass — the shape a certificate checker wants.
///
/// This is the *reference* traced evaluation: sequential semi-naive
/// with no stratification. Program bodies contain only positive atoms
/// and inequalities, so the flat fixpoint is answer-equivalent to the
/// stratified parallel executor; the certificate path trades its speed
/// for a derivation order that is trivially topological. `base` must be
/// a plain (all-live) instance.
pub fn fixpoint_traced(
    rules: &[Rule],
    base: &IndexedInstance,
    budget: &Budget,
) -> Result<(IndexedInstance, Vec<Option<Derivation>>, EvalStats), BudgetExceeded> {
    let mut total = base.clone();
    let mut derivs: Vec<Option<Derivation>> = vec![None; total.len()];
    let mut stats = EvalStats::default();
    budget.check(&stats)?;
    let mut staged = TracedBuf::new();
    let mut frontier = 0u32;
    loop {
        gomq_core::faults::point(gomq_core::faults::EVAL_ROUND);
        stats.rounds = stats.rounds.saturating_add(1);
        staged.clear();
        derive_round_traced(
            rules,
            &total,
            &DeltaView::new(&total, frontier),
            &mut staged,
        );
        frontier = total.len() as u32;
        for (f, d) in staged.iter() {
            let (_, new) = total.intern_ref(f.rel, f.args);
            if new {
                derivs.push(Some(d.clone()));
            }
        }
        let derived_now = total.len() - frontier as usize;
        if derived_now == 0 {
            break;
        }
        stats.derived = stats.derived.saturating_add(derived_now);
        budget.check(&stats)?;
    }
    stats.store = total.store_stats();
    Ok((total, derivs, stats))
}

/// Naive (reference) evaluation: applies every rule against the whole
/// database each round. Used to cross-check the semi-naive engine.
pub fn eval_naive(p: &Program, d: &Instance) -> BTreeSet<Vec<Term>> {
    let mut total = d.clone();
    loop {
        let mut new_facts = FactBuf::new();
        derive_all(&p.rules, &total, &mut new_facts);
        let before = total.len();
        for f in new_facts.iter() {
            total.insert_ref(f.rel, f.args);
        }
        if total.len() == before {
            break;
        }
    }
    total.facts_of(p.goal).map(|f| f.args.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{DAtom, Literal, Rule};
    use gomq_core::{Fact, IndexedInstance, Vocab};

    /// Transitive closure program with goal = pairs of distinct connected
    /// nodes.
    fn tc_program(v: &mut Vocab) -> Program {
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        let g = v.rel("goal", 2);
        Program::new(
            vec![
                Rule::new(
                    DAtom::vars(t, &[0, 1]),
                    vec![Literal::Pos(DAtom::vars(e, &[0, 1]))],
                ),
                Rule::new(
                    DAtom::vars(t, &[0, 2]),
                    vec![
                        Literal::Pos(DAtom::vars(t, &[0, 1])),
                        Literal::Pos(DAtom::vars(e, &[1, 2])),
                    ],
                ),
                Rule::new(
                    DAtom::vars(g, &[0, 1]),
                    vec![
                        Literal::Pos(DAtom::vars(t, &[0, 1])),
                        Literal::Neq(DTerm::Var(0), DTerm::Var(1)),
                    ],
                ),
            ],
            g,
        )
    }

    fn path_instance(v: &mut Vocab, n: usize) -> Instance {
        let e = v.rel("E", 2);
        let mut d = Instance::new();
        for i in 0..n {
            let a = v.constant(&format!("n{i}"));
            let b = v.constant(&format!("n{}", i + 1));
            d.insert(Fact::consts(e, &[a, b]));
        }
        d
    }

    #[test]
    fn transitive_closure_on_path() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let d = path_instance(&mut v, 4); // n0→…→n4
        let ans = p.eval(&d);
        // All ordered pairs (i,j) with i<j: C(5,2) = 10.
        assert_eq!(ans.len(), 10);
    }

    #[test]
    fn inequality_filters_loops() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let mut d = Instance::new();
        d.insert(Fact::consts(e, &[a, a]));
        // Only the loop (a,a) is connected, and it is filtered by ≠.
        assert!(p.eval(&d).is_empty());
    }

    #[test]
    fn semi_naive_matches_naive_on_cycles() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let e = v.rel("E", 2);
        let mut d = Instance::new();
        for i in 0..6 {
            let a = v.constant(&format!("c{i}"));
            let b = v.constant(&format!("c{}", (i + 1) % 6));
            d.insert(Fact::consts(e, &[a, b]));
        }
        let semi = p.eval(&d);
        let naive = eval_naive(&p, &d);
        assert_eq!(semi, naive);
        // Every ordered pair of distinct nodes: 6*5 = 30.
        assert_eq!(semi.len(), 30);
    }

    #[test]
    fn stats_reflect_rounds() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let d = path_instance(&mut v, 8);
        let (_, stats) = p.eval_with_stats(&d);
        assert!(stats.rounds >= 3);
        assert!(stats.derived > 0);
    }

    #[test]
    fn budget_limits_abort_evaluation() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let d = path_instance(&mut v, 12);
        // Unlimited budget: identical to the plain fixpoint.
        let (full, full_stats) = p.fixpoint(&d);
        let (budgeted, budgeted_stats) = p
            .fixpoint_budgeted(&d, &Budget::UNLIMITED)
            .expect("unlimited");
        assert_eq!(full.len(), budgeted.len());
        assert_eq!(full_stats, budgeted_stats);
        // Round fuel: the transitive closure needs many rounds.
        let err = p
            .fixpoint_budgeted(
                &d,
                &Budget {
                    max_rounds: Some(2),
                    ..Budget::default()
                },
            )
            .unwrap_err();
        assert_eq!(err.limit, LimitKind::Rounds);
        assert!(err.rounds > 2);
        // Derived-fact fuel.
        let err = p
            .fixpoint_budgeted(
                &d,
                &Budget {
                    max_derived: Some(3),
                    ..Budget::default()
                },
            )
            .unwrap_err();
        assert_eq!(err.limit, LimitKind::Derived);
        // An already-expired deadline trips before the first round.
        let err = p
            .fixpoint_budgeted(
                &d,
                &Budget {
                    deadline: Some(Instant::now()),
                    ..Budget::default()
                },
            )
            .unwrap_err();
        assert_eq!(err.limit, LimitKind::Deadline);
        assert_eq!(err.rounds, 0);
    }

    #[test]
    fn ground_terms_in_rules() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let g = v.rel("goal", 1);
        let a = v.constant("a");
        // goal(x) <- E(a, x): only successors of the constant a.
        let rule = Rule::new(
            DAtom {
                rel: g,
                args: vec![DTerm::Var(0)],
            },
            vec![Literal::Pos(DAtom {
                rel: e,
                args: vec![DTerm::Ground(Term::Const(a)), DTerm::Var(0)],
            })],
        );
        let p = Program::new(vec![rule], g);
        let b = v.constant("b");
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(e, &[a, b]));
        d.insert(Fact::consts(e, &[b, c]));
        let ans = p.eval(&d);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Term::Const(b)]));
    }

    #[test]
    fn empty_program_derives_nothing() {
        let mut v = Vocab::new();
        let g = v.rel("goal", 1);
        let p = Program::new(vec![], g);
        let d = path_instance(&mut v, 2);
        assert!(p.eval(&d).is_empty());
    }

    /// Replays a recorded derivation by linear substitution matching —
    /// the same check `gomq-cert` performs — against the store the
    /// fixpoint produced.
    fn check_derivation(
        rules: &[Rule],
        total: &IndexedInstance,
        id: usize,
        d: &Derivation,
    ) -> Result<(), String> {
        let rule = &rules[d.rule as usize];
        let atoms: Vec<&DAtom> = rule.positive_atoms().collect();
        if atoms.len() != d.premises.len() {
            return Err(format!("premise count {} != atoms", d.premises.len()));
        }
        let mut frame: Vec<Option<Term>> = vec![None; rule.num_slots()];
        for (atom, &pid) in atoms.iter().zip(&d.premises) {
            if pid as usize >= id {
                return Err(format!("premise {pid} not before fact {id}"));
            }
            let f = total.fact(pid);
            if f.rel != atom.rel || f.args.len() != atom.args.len() {
                return Err("premise shape mismatch".into());
            }
            for (pat, &t) in atom.args.iter().zip(f.args.iter()) {
                match pat {
                    DTerm::Ground(g) if *g != t => return Err("ground mismatch".into()),
                    DTerm::Ground(_) => {}
                    DTerm::Var(v) => match frame[*v as usize] {
                        Some(prev) if prev != t => return Err("binding conflict".into()),
                        _ => frame[*v as usize] = Some(t),
                    },
                }
            }
        }
        for l in &rule.body {
            if let Literal::Neq(a, b) = l {
                if resolve(a, &frame) == resolve(b, &frame) {
                    return Err("inequality violated".into());
                }
            }
        }
        let head: Vec<Term> = rule.head.args.iter().map(|t| resolve(t, &frame)).collect();
        let got = total.fact(id as u32);
        if got.rel != rule.head.rel || got.args != head.as_slice() {
            return Err("instantiated head differs from derived fact".into());
        }
        Ok(())
    }

    #[test]
    fn traced_fixpoint_records_checkable_derivations() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let d = path_instance(&mut v, 6);
        let base = IndexedInstance::from_interpretation(&d);
        let (total, derivs, stats) =
            fixpoint_traced(&p.rules, &base, &Budget::UNLIMITED).expect("unlimited");
        // Same answers as the untraced reference evaluation.
        let traced_answers: BTreeSet<Vec<Term>> =
            total.facts_of(p.goal).map(|f| f.args.to_vec()).collect();
        assert_eq!(traced_answers, p.eval(&d));
        assert_eq!(derivs.len(), total.len());
        assert!(stats.derived > 0);
        // Base facts carry no derivation; every derived fact's recorded
        // rule application replays by substitution matching alone.
        let mut derived = 0usize;
        for (id, entry) in derivs.iter().enumerate() {
            match entry {
                None => assert!(id < base.len(), "underived non-base fact {id}"),
                Some(deriv) => {
                    derived += 1;
                    check_derivation(&p.rules, &total, id, deriv)
                        .unwrap_or_else(|e| panic!("fact {id}: {e}"));
                }
            }
        }
        assert_eq!(derived, stats.derived);
    }

    #[test]
    fn traced_round_matches_untraced_round() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let d = path_instance(&mut v, 6);
        let indexed = IndexedInstance::from_interpretation(&d);
        let mut plain_out = FactBuf::new();
        derive_round(&p.rules, &indexed, &indexed, &mut plain_out);
        let mut traced_out = TracedBuf::new();
        derive_round_traced(&p.rules, &indexed, &indexed, &mut traced_out);
        assert_eq!(plain_out.len(), traced_out.buf.len());
        for i in 0..plain_out.len() {
            assert_eq!(plain_out.get(i), traced_out.buf.get(i));
        }
        // Each staged fact has a premise per positive body atom.
        for (f, deriv) in traced_out.iter() {
            let rule = &p.rules[deriv.rule as usize];
            assert_eq!(rule.head.rel, f.rel);
            assert_eq!(rule.positive_atoms().count(), deriv.premises.len());
        }
    }

    #[test]
    fn derive_round_agrees_between_plain_and_indexed_stores() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let d = path_instance(&mut v, 6);
        let indexed = IndexedInstance::from_interpretation(&d);
        let mut plain_out = FactBuf::new();
        derive_round(&p.rules, &d, &d, &mut plain_out);
        let mut indexed_out = FactBuf::new();
        derive_round(&p.rules, &indexed, &indexed, &mut indexed_out);
        let plain: BTreeSet<Fact> = plain_out.iter().map(|f| f.to_fact()).collect();
        let indexed_set: BTreeSet<Fact> = indexed_out.iter().map(|f| f.to_fact()).collect();
        assert_eq!(plain, indexed_set);
        assert!(!plain.is_empty());
    }

    #[test]
    fn greedy_ordering_preserves_answers_with_ground_probe() {
        // A join whose cheap side is the singleton unary relation; the
        // greedy planner must start there and still find all answers.
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let u = v.rel("U", 1);
        let g = v.rel("goal", 1);
        let rule = Rule::new(
            DAtom::vars(g, &[1]),
            vec![
                Literal::Pos(DAtom::vars(e, &[0, 1])),
                Literal::Pos(DAtom::vars(u, &[0])),
            ],
        );
        let p = Program::new(vec![rule], g);
        let mut d = Instance::new();
        let names: Vec<_> = (0..20).map(|i| v.constant(&format!("m{i}"))).collect();
        for i in 0..19 {
            d.insert(Fact::consts(e, &[names[i], names[i + 1]]));
        }
        d.insert(Fact::consts(u, &[names[4]]));
        let ans = p.eval(&d);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Term::Const(names[5])]));
        assert_eq!(p.eval(&d), eval_naive(&p, &d));
    }
}
