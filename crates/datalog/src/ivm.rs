//! Incremental view maintenance: counting DRed over the columnar store.
//!
//! A [`Materialization`] keeps the least fixpoint of a Datalog≠ rule set
//! over a growing-and-shrinking base instance *maintained* instead of
//! recomputing it per query:
//!
//! * **Insertions** ([`Materialization::sync`]) are propagated
//!   semi-naively: the new base facts form an id-set delta
//!   ([`gomq_core::IdSetView`]) and [`derive_round`] runs restricted to
//!   it, so the cost is proportional to the consequences of the *changed*
//!   facts, not to the instance.
//! * **Retractions** ([`Materialization::rollback`]) run
//!   delete-rederive (DRed): first every fact with any derivation
//!   through a doomed fact is *overcounted* out (support set to 0 — the
//!   fact stays in place, dead, so ids never shift), then facts still
//!   derivable from the survivors are *rederived* and their
//!   consequences re-propagated as insertions.
//!
//! Support counts ([`gomq_core::FactStore::sub_support`]) are an upper
//! bound on the number of derivations (the semi-naive matcher counts an
//! instantiation once per delta atom it contains), so correctness never
//! rests on a count reaching zero — only the DRed mark/rederive phases
//! decide liveness. The counts exist to keep the dead/live boundary
//! cheap to test and to surface maintenance pressure in statistics.
//!
//! The maintained store only ever grows; a rolled-back fact that is
//! never re-derived stays dead in place. Sessions that churn heavily
//! should eventually rebuild (the serving layer's view registry drops a
//! view whenever maintenance fails, which doubles as the compaction
//! valve).

use crate::eval::{
    derive_all, derive_all_traced, derive_round, derive_round_traced, Budget, BudgetExceeded,
    Derivation, EvalStats, TracedBuf,
};
use crate::program::Rule;
use gomq_core::{FactBuf, FactId, IdSetView, IndexedInstance, RelId, Term};
use std::collections::{BTreeSet, HashSet};

/// A maintained fixpoint of one rule set over a base instance.
///
/// The base is identified positionally: fact `i` of the base instance
/// (its interning order) corresponds to `base_ids[i]` in the maintained
/// store. The base may only change by appending facts or truncating to
/// a prefix — exactly the session store's assert/rollback protocol.
#[derive(Clone, Debug)]
pub struct Materialization {
    /// The maintained rule set (flattened; positive Datalog≠ needs no
    /// stratification for maintenance correctness).
    rules: Vec<Rule>,
    /// The goal relation whose live facts are the answers.
    goal: RelId,
    /// Base ∪ IDB with stable ids; retracted facts stay dead in place.
    total: IndexedInstance,
    /// Base fact index → maintained fact id, in base insertion order.
    base_ids: Vec<u32>,
    /// Whether maintenance records witness derivations.
    record: bool,
    /// `derivs[id]` is the recorded rule application justifying fact
    /// `id`, kept current for every *live derived* fact while
    /// `record` is on. Base facts need no justification (emission cites
    /// them symbolically — which is also what keeps a kept EDB
    /// duplicate's certificate honest after its derived support is
    /// rolled back); entries of dead facts are stale until revival
    /// re-records them.
    derivs: Vec<Option<Derivation>>,
}

impl Materialization {
    /// Builds a materialization of `rules` over `base` by saturating
    /// from scratch (the one full fixpoint a maintained view ever pays).
    pub fn build(
        rules: &[Rule],
        goal: RelId,
        base: &IndexedInstance,
        budget: &Budget,
    ) -> Result<(Materialization, EvalStats), BudgetExceeded> {
        Self::build_inner(rules, goal, base, budget, false)
    }

    /// [`Materialization::build`] with witness recording: every derived
    /// fact keeps the rule application that produced it, so answers can
    /// be emitted with a derivation certificate without re-evaluating.
    pub fn build_recording(
        rules: &[Rule],
        goal: RelId,
        base: &IndexedInstance,
        budget: &Budget,
    ) -> Result<(Materialization, EvalStats), BudgetExceeded> {
        Self::build_inner(rules, goal, base, budget, true)
    }

    fn build_inner(
        rules: &[Rule],
        goal: RelId,
        base: &IndexedInstance,
        budget: &Budget,
        record: bool,
    ) -> Result<(Materialization, EvalStats), BudgetExceeded> {
        let mut m = Materialization {
            rules: rules.to_vec(),
            goal,
            total: IndexedInstance::new(),
            base_ids: Vec::new(),
            record,
            derivs: Vec::new(),
        };
        let mut stats = EvalStats::default();
        m.sync_inner(base, budget, &mut stats)?;
        stats.store = m.total.store_stats();
        Ok((m, stats))
    }

    /// Whether this view records witness derivations.
    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// The maintained store (base ∪ IDB, dead facts in place).
    pub fn instance(&self) -> &IndexedInstance {
        &self.total
    }

    /// The maintained fact ids of the current base, in base insertion
    /// order (an id appears once per duplicate assert).
    pub fn base_fact_ids(&self) -> &[u32] {
        &self.base_ids
    }

    /// Ids of the live goal facts — the answers, with their store
    /// identity (the id a certificate will cite).
    pub fn answer_ids(&self) -> Vec<u32> {
        let store = self.total.store();
        store
            .rel_ids(self.goal)
            .iter()
            .copied()
            .filter(|&id| store.is_live(id))
            .collect()
    }

    /// The recorded derivation of fact `id`, if recording is on and the
    /// fact was derived (base facts and pre-recording facts have none).
    pub fn derivation(&self, id: u32) -> Option<&Derivation> {
        self.derivs.get(id as usize).and_then(Option::as_ref)
    }

    /// The maintained rule set (indices match recorded derivations).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    fn record_deriv(&mut self, id: u32, d: Derivation) {
        if self.derivs.len() <= id as usize {
            self.derivs.resize(id as usize + 1, None);
        }
        self.derivs[id as usize] = Some(d);
    }

    /// Number of base facts currently incorporated.
    pub fn base_len(&self) -> usize {
        self.base_ids.len()
    }

    /// Total maintained facts (live and dead).
    pub fn len(&self) -> usize {
        self.total.len()
    }

    /// Whether the maintained store is empty.
    pub fn is_empty(&self) -> bool {
        self.total.is_empty()
    }

    /// Live maintained facts.
    pub fn live_len(&self) -> usize {
        self.total.store().live_len()
    }

    /// Dead (retracted, not rederived) maintained facts.
    pub fn dead_len(&self) -> usize {
        self.total.store().dead_count()
    }

    /// The goal relation.
    pub fn goal(&self) -> RelId {
        self.goal
    }

    /// The current answers: argument tuples of the live goal facts.
    pub fn answers(&self) -> BTreeSet<Vec<Term>> {
        let store = self.total.store();
        store
            .rel_ids(self.goal)
            .iter()
            .filter(|&&id| store.is_live(id))
            .map(|&id| store.args(FactId(id)).to_vec())
            .collect()
    }

    /// Incorporates the base facts appended since the last maintenance
    /// call (`base` must extend the prefix this view has seen) and
    /// propagates their consequences. O(consequences of the new facts).
    pub fn sync(
        &mut self,
        base: &IndexedInstance,
        budget: &Budget,
    ) -> Result<EvalStats, BudgetExceeded> {
        gomq_core::faults::point(gomq_core::faults::IVM_APPLY);
        let mut stats = EvalStats::default();
        self.sync_inner(base, budget, &mut stats)?;
        stats.store = self.total.store_stats();
        Ok(stats)
    }

    fn sync_inner(
        &mut self,
        base: &IndexedInstance,
        budget: &Budget,
        stats: &mut EvalStats,
    ) -> Result<(), BudgetExceeded> {
        debug_assert!(
            base.len() >= self.base_ids.len(),
            "sync on a shrunk base: rollback must run first"
        );
        let mut frontier: Vec<u32> = Vec::new();
        for idx in self.base_ids.len()..base.len() {
            let f = base.store().fact_ref(FactId(idx as u32));
            let (id, new) = self.total.intern_ref(f.rel, f.args);
            if new {
                frontier.push(id.0);
            } else if self.total.store().is_live(id.0) {
                // Already derivable: the assert just adds base support;
                // its consequences are all present.
                self.total.add_support(id, 1);
            } else {
                // Re-asserting a retracted fact revives it; retracted
                // consequences come back through propagation.
                self.total.set_support(id, 1);
                stats.ivm_rederived = stats.ivm_rederived.saturating_add(1);
                frontier.push(id.0);
            }
            self.base_ids.push(id.0);
        }
        self.propagate(frontier, budget, stats)
    }

    /// Retracts every base fact past the first `keep` (the session's
    /// rollback-to-mark) by counting DRed: overcount-delete everything
    /// with a derivation through a doomed fact, then rederive what the
    /// survivors still support.
    pub fn rollback(&mut self, keep: usize, budget: &Budget) -> Result<EvalStats, BudgetExceeded> {
        gomq_core::faults::point(gomq_core::faults::IVM_APPLY);
        let mut stats = EvalStats::default();
        debug_assert!(keep <= self.base_ids.len(), "rollback past the base");
        let doomed: Vec<u32> = self.base_ids.split_off(keep.min(self.base_ids.len()));
        if doomed.is_empty() {
            stats.store = self.total.store_stats();
            return Ok(stats);
        }
        // Facts of the surviving EDB can never be deleted, so deletions
        // are not propagated through them (the standard DRed shortcut).
        let kept: HashSet<u32> = self.base_ids.iter().copied().collect();

        // Phase 1 — overcount: transitively mark everything with a
        // derivation using a doomed fact. Nothing is dead yet, so the
        // delta rounds run over the full pre-deletion store.
        let mut marked: HashSet<u32> = doomed
            .iter()
            .filter(|id| !kept.contains(id))
            .copied()
            .collect();
        let mut frontier: Vec<u32> = marked.iter().copied().collect();
        frontier.sort_unstable();
        let mut staged = FactBuf::new();
        while !frontier.is_empty() {
            budget.check(&stats)?;
            stats.rounds = stats.rounds.saturating_add(1);
            staged.clear();
            let delta = IdSetView::new(&self.total, &frontier);
            derive_round(&self.rules, &self.total, &delta, &mut staged);
            frontier.clear();
            for i in 0..staged.len() {
                let f = staged.get(i);
                if let Some(id) = self.total.store().lookup(f.rel, f.args) {
                    if !kept.contains(&id.0) && marked.insert(id.0) {
                        frontier.push(id.0);
                    }
                }
            }
            frontier.sort_unstable();
        }

        // Phase 2 — delete: the marked facts go dead in place.
        stats.ivm_deleted = stats.ivm_deleted.saturating_add(marked.len());
        for &id in &marked {
            self.total.set_support(FactId(id), 0);
        }

        // Phase 3 — rederive: one naive probe of the rules whose head
        // relations lost facts, over the surviving live store; every
        // dead head it derives comes back, and revivals propagate as
        // insertions.
        budget.check(&stats)?;
        let dead_rels: HashSet<RelId> = marked
            .iter()
            .map(|&id| self.total.store().rel(FactId(id)))
            .collect();
        let mut probe_idx: Vec<u32> = Vec::new();
        let probe: Vec<Rule> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| dead_rels.contains(&r.head.rel))
            .map(|(i, r)| {
                probe_idx.push(i as u32);
                r.clone()
            })
            .collect();
        staged.clear();
        let mut traced = TracedBuf::new();
        if self.record {
            derive_all_traced(&probe, &self.total, &mut traced);
            // The traced probe ran over the rule *subset*; recorded rule
            // indices must refer to the full maintained program.
            for d in &mut traced.derivs {
                d.rule = probe_idx[d.rule as usize];
            }
        } else {
            derive_all(&probe, &self.total, &mut staged);
        }
        stats.rounds = stats.rounds.saturating_add(1);
        let mut revived: Vec<u32> = Vec::new();
        let count = if self.record {
            traced.buf.len()
        } else {
            staged.len()
        };
        for i in 0..count {
            let f = if self.record {
                traced.buf.get(i)
            } else {
                staged.get(i)
            };
            let (id, new) = self.total.intern_ref(f.rel, f.args);
            if new {
                // Unreachable for a correctly maintained view (the old
                // fixpoint contains the new one), but harmless to keep
                // sound: treat it as a fresh insertion.
                stats.derived = stats.derived.saturating_add(1);
                revived.push(id.0);
                if self.record {
                    self.record_deriv(id.0, traced.derivs[i].clone());
                }
            } else if !self.total.store().is_live(id.0) {
                self.total.set_support(id, 1);
                stats.ivm_rederived = stats.ivm_rederived.saturating_add(1);
                revived.push(id.0);
                if self.record {
                    // The pre-deletion witness went through a doomed
                    // fact (that is why the fact was overcounted out);
                    // re-record from the surviving premises the probe
                    // actually matched.
                    self.record_deriv(id.0, traced.derivs[i].clone());
                }
            }
        }
        self.propagate(revived, budget, &mut stats)?;
        stats.store = self.total.store_stats();
        Ok(stats)
    }

    /// Semi-naive insertion propagation from an explicit id-set
    /// frontier: each round restricts [`derive_round`] to the facts
    /// added or revived by the previous one.
    fn propagate(
        &mut self,
        mut frontier: Vec<u32>,
        budget: &Budget,
        stats: &mut EvalStats,
    ) -> Result<(), BudgetExceeded> {
        let mut staged = FactBuf::new();
        let mut traced = TracedBuf::new();
        while !frontier.is_empty() {
            budget.check(stats)?;
            gomq_core::faults::point(gomq_core::faults::EVAL_ROUND);
            stats.rounds = stats.rounds.saturating_add(1);
            staged.clear();
            traced.clear();
            {
                let delta = IdSetView::new(&self.total, &frontier);
                if self.record {
                    derive_round_traced(&self.rules, &self.total, &delta, &mut traced);
                } else {
                    derive_round(&self.rules, &self.total, &delta, &mut staged);
                }
            }
            frontier.clear();
            let count = if self.record {
                traced.buf.len()
            } else {
                staged.len()
            };
            for i in 0..count {
                let f = if self.record {
                    traced.buf.get(i)
                } else {
                    staged.get(i)
                };
                let (id, new) = self.total.intern_ref(f.rel, f.args);
                if new {
                    stats.derived = stats.derived.saturating_add(1);
                    frontier.push(id.0);
                    if self.record {
                        self.record_deriv(id.0, traced.derivs[i].clone());
                    }
                } else if self.total.store().is_live(id.0) {
                    // One more derivation of an already-live fact; the
                    // first recorded witness stays — its premises are
                    // older and themselves still justified.
                    self.total.add_support(id, 1);
                } else {
                    self.total.set_support(id, 1);
                    stats.ivm_rederived = stats.ivm_rederived.saturating_add(1);
                    frontier.push(id.0);
                    if self.record {
                        // Revival: the pre-retraction witness may cite
                        // facts that are now dead; replace it with the
                        // instantiation that just fired, whose premises
                        // were live this round.
                        self.record_deriv(id.0, traced.derivs[i].clone());
                    }
                }
            }
            frontier.sort_unstable();
            frontier.dedup();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{DAtom, DTerm, Literal, Program};
    use gomq_core::{Fact, Vocab};

    /// Transitive closure with a ≠-guarded goal — the same shape the
    /// evaluator tests use, so maintained answers can be cross-checked
    /// against `Program::eval`.
    fn tc_program(v: &mut Vocab) -> Program {
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        let g = v.rel("goal", 2);
        Program::new(
            vec![
                Rule::new(
                    DAtom::vars(t, &[0, 1]),
                    vec![Literal::Pos(DAtom::vars(e, &[0, 1]))],
                ),
                Rule::new(
                    DAtom::vars(t, &[0, 2]),
                    vec![
                        Literal::Pos(DAtom::vars(t, &[0, 1])),
                        Literal::Pos(DAtom::vars(e, &[1, 2])),
                    ],
                ),
                Rule::new(
                    DAtom::vars(g, &[0, 1]),
                    vec![
                        Literal::Pos(DAtom::vars(t, &[0, 1])),
                        Literal::Neq(DTerm::Var(0), DTerm::Var(1)),
                    ],
                ),
            ],
            g,
        )
    }

    fn recompute(p: &Program, base: &IndexedInstance) -> BTreeSet<Vec<Term>> {
        p.eval(&base.to_interpretation())
    }

    /// Asserts the recording invariant certificates rely on: every live
    /// fact is either base (cited symbolically) or carries a recorded
    /// derivation whose premises are live, match the rule's body by
    /// substitution, instantiate its head to the fact — and whose
    /// citation graph is acyclic (well-founded justification).
    fn assert_witnesses_sound(m: &Materialization) {
        use crate::program::DTerm;
        let store = m.instance().store();
        let base: HashSet<u32> = m.base_fact_ids().iter().copied().collect();
        // 0 = unvisited, 1 = in progress (cycle if revisited), 2 = done.
        let mut state = vec![0u8; m.len()];
        fn visit(m: &Materialization, base: &HashSet<u32>, state: &mut Vec<u8>, id: u32) {
            if state[id as usize] == 2 {
                return;
            }
            assert_ne!(state[id as usize], 1, "cyclic justification at fact {id}");
            state[id as usize] = 1;
            if !base.contains(&id) {
                let store = m.instance().store();
                let d = m
                    .derivation(id)
                    .unwrap_or_else(|| panic!("live derived fact {id} has no witness"));
                let rule = &m.rules()[d.rule as usize];
                let atoms: Vec<_> = rule.positive_atoms().collect();
                assert_eq!(atoms.len(), d.premises.len(), "fact {id}");
                let mut frame: Vec<Option<Term>> = vec![None; rule.num_slots()];
                for (atom, &pid) in atoms.iter().zip(&d.premises) {
                    assert!(store.is_live(pid), "fact {id} cites dead premise {pid}");
                    visit(m, base, state, pid);
                    let f = store.fact_ref(FactId(pid));
                    assert_eq!(f.rel, atom.rel, "fact {id}");
                    for (pat, &t) in atom.args.iter().zip(f.args.iter()) {
                        match pat {
                            DTerm::Ground(g) => assert_eq!(*g, t, "fact {id}"),
                            DTerm::Var(v) => match frame[*v as usize] {
                                Some(prev) => assert_eq!(prev, t, "fact {id}"),
                                None => frame[*v as usize] = Some(t),
                            },
                        }
                    }
                }
                let resolve = |t: &DTerm| match t {
                    DTerm::Ground(g) => *g,
                    DTerm::Var(v) => frame[*v as usize].expect("bound"),
                };
                for l in &rule.body {
                    if let crate::program::Literal::Neq(a, b) = l {
                        assert_ne!(resolve(a), resolve(b), "fact {id}");
                    }
                }
                let head: Vec<Term> = rule.head.args.iter().map(resolve).collect();
                let got = store.fact_ref(FactId(id));
                assert_eq!(got.rel, rule.head.rel, "fact {id}");
                assert_eq!(got.args, head.as_slice(), "fact {id}");
            }
            state[id as usize] = 2;
        }
        for id in 0..m.len() as u32 {
            if store.is_live(id) {
                visit(m, &base, &mut state, id);
            }
        }
    }

    fn edge(v: &mut Vocab, base: &mut IndexedInstance, from: &str, to: &str) {
        let e = v.rel("E", 2);
        let a = v.constant(from);
        let b = v.constant(to);
        base.insert(Fact::consts(e, &[a, b]));
    }

    #[test]
    fn sync_and_rollback_track_recompute() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let mut base = IndexedInstance::new();
        let (mut m, _) =
            Materialization::build(&p.rules, p.goal, &base, &Budget::UNLIMITED).unwrap();
        assert!(m.answers().is_empty());

        // Grow a path, syncing incrementally after each batch.
        edge(&mut v, &mut base, "n0", "n1");
        edge(&mut v, &mut base, "n1", "n2");
        m.sync(&base, &Budget::UNLIMITED).unwrap();
        assert_eq!(m.answers(), recompute(&p, &base));
        let mark = base.len();
        let answers_at_mark = m.answers();

        edge(&mut v, &mut base, "n2", "n3");
        edge(&mut v, &mut base, "n3", "n0"); // closes a cycle
        let stats = m.sync(&base, &Budget::UNLIMITED).unwrap();
        assert!(stats.derived > 0);
        assert_eq!(m.answers(), recompute(&p, &base));

        // Roll the cycle back out: DRed must retract its consequences.
        base.truncate(mark);
        let stats = m.rollback(mark, &Budget::UNLIMITED).unwrap();
        assert!(stats.ivm_deleted > 0);
        assert_eq!(m.answers(), answers_at_mark);
        assert_eq!(m.answers(), recompute(&p, &base));
        assert_eq!(m.base_len(), mark);
        assert!(m.dead_len() > 0, "retracted facts stay dead in place");

        // Re-assert one of the rolled-back edges: revival, not growth.
        let before = m.len();
        edge(&mut v, &mut base, "n2", "n3");
        let stats = m.sync(&base, &Budget::UNLIMITED).unwrap();
        assert!(stats.ivm_rederived > 0, "re-assert revives dead facts");
        assert_eq!(m.answers(), recompute(&p, &base));
        assert_eq!(m.len(), before, "revival allocates no new facts");
    }

    #[test]
    fn rollback_keeps_edb_duplicates_of_derived_facts() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let t = v.rel("T", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let mut base = IndexedInstance::new();
        // T(a,b) asserted directly as EDB…
        base.insert(Fact::consts(t, &[a, b]));
        let (mut m, _) =
            Materialization::build_recording(&p.rules, p.goal, &base, &Budget::UNLIMITED).unwrap();
        let mark = base.len();
        // …then also derived via E(a,b), then the edge rolled back.
        edge(&mut v, &mut base, "a", "b");
        m.sync(&base, &Budget::UNLIMITED).unwrap();
        base.truncate(mark);
        m.rollback(mark, &Budget::UNLIMITED).unwrap();
        // The kept EDB fact must survive the deletion of its derived
        // duplicate's support.
        assert_eq!(m.answers(), recompute(&p, &base));
        assert!(m.answers().contains(&vec![Term::Const(a), Term::Const(b)]));
        // Certificate path: the kept fact's justification must not go
        // through the doomed edge. It is cited as a *base* fact (it is
        // one), which sidesteps its stale derived witness entirely; the
        // soundness sweep below would catch a citation of the dead
        // E(a,b) or of any other doomed premise.
        let t_id = m
            .instance()
            .store()
            .lookup(t, &[Term::Const(a), Term::Const(b)])
            .expect("T(a,b) maintained");
        assert!(
            m.base_fact_ids().contains(&t_id.0),
            "kept EDB duplicate is certified as a base fact"
        );
        assert_witnesses_sound(&m);

        // The mirror case: derived fact loses its EDB duplicate but
        // stays derivable — rederivation must reinstate it, and its
        // fresh witness must cite the surviving premises.
        let mut base = IndexedInstance::new();
        edge(&mut v, &mut base, "a", "b");
        let mark = base.len();
        base.insert(Fact::consts(t, &[a, b]));
        let (mut m, _) =
            Materialization::build_recording(&p.rules, p.goal, &base, &Budget::UNLIMITED).unwrap();
        base.truncate(mark);
        let stats = m.rollback(mark, &Budget::UNLIMITED).unwrap();
        assert!(stats.ivm_rederived > 0, "T(a,b) must be rederived");
        assert_eq!(m.answers(), recompute(&p, &base));
        let t_id = m
            .instance()
            .store()
            .lookup(t, &[Term::Const(a), Term::Const(b)])
            .expect("T(a,b) maintained");
        assert!(
            !m.base_fact_ids().contains(&t_id.0),
            "rolled-back EDB duplicate is no longer base"
        );
        let witness = m.derivation(t_id.0).expect("rederived fact has a witness");
        for &pid in &witness.premises {
            assert!(
                m.instance().store().is_live(pid),
                "rederived T(a,b) cites doomed premise {pid}"
            );
        }
        assert_witnesses_sound(&m);
    }

    #[test]
    fn recorded_witnesses_stay_sound_across_maintenance() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let mut base = IndexedInstance::new();
        let (mut m, _) =
            Materialization::build_recording(&p.rules, p.goal, &base, &Budget::UNLIMITED).unwrap();
        assert!(m.is_recording());

        edge(&mut v, &mut base, "n0", "n1");
        edge(&mut v, &mut base, "n1", "n2");
        m.sync(&base, &Budget::UNLIMITED).unwrap();
        assert_witnesses_sound(&m);
        let mark = base.len();

        edge(&mut v, &mut base, "n2", "n3");
        edge(&mut v, &mut base, "n3", "n0"); // closes a cycle
        m.sync(&base, &Budget::UNLIMITED).unwrap();
        assert_witnesses_sound(&m);

        // Rollback kills the cycle's consequences; survivors must keep
        // well-founded witnesses and rederivations must re-record.
        base.truncate(mark);
        m.rollback(mark, &Budget::UNLIMITED).unwrap();
        assert_witnesses_sound(&m);
        assert_eq!(m.answers(), recompute(&p, &base));

        // Revival via re-assert replaces the stale witness.
        edge(&mut v, &mut base, "n2", "n3");
        m.sync(&base, &Budget::UNLIMITED).unwrap();
        assert_witnesses_sound(&m);
        assert_eq!(m.answers(), recompute(&p, &base));

        // Answer ids point at live goal facts.
        for id in m.answer_ids() {
            assert!(m.instance().store().is_live(id));
        }

        // A non-recording view records nothing.
        let (m2, _) = Materialization::build(&p.rules, p.goal, &base, &Budget::UNLIMITED).unwrap();
        assert!(!m2.is_recording());
        assert!((0..m2.len() as u32).all(|id| m2.derivation(id).is_none()));
    }

    #[test]
    fn maintenance_respects_the_budget() {
        let mut v = Vocab::new();
        let p = tc_program(&mut v);
        let mut base = IndexedInstance::new();
        for i in 0..12 {
            edge(&mut v, &mut base, &format!("m{i}"), &format!("m{}", i + 1));
        }
        let err = Materialization::build(
            &p.rules,
            p.goal,
            &base,
            &Budget {
                max_derived: Some(3),
                ..Budget::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.limit, crate::eval::LimitKind::Derived);
    }
}
