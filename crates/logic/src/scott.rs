//! Depth reduction via polarity-based Scott normal form.
//!
//! The paper observes (§2.1) that every GF sentence has a polynomial-time
//! computable *conservative extension* in uGF(1). This module implements
//! the construction for uGF ontologies: nested quantified subformulas are
//! abstracted by fresh relation symbols, with defining axioms whose
//! direction depends on the polarity of the occurrence:
//!
//! * a *positive* occurrence `χ(x̄)` becomes `P_χ(x̄)` with the axiom
//!   `∀x̄(P_χ(x̄) → χ̂(x̄))`,
//! * a *negative* occurrence becomes `¬N_χ(x̄)` with the axiom
//!   `∀x̄(N_χ(x̄) → ¬χ̂(x̄))`,
//!
//! where `χ̂` is `χ` with its own body recursively flattened. Every model
//! of the original ontology expands to a model of the extension (interpret
//! `P_χ`/`N_χ` as the extensions of `χ`/`¬χ`), and every model of the
//! extension is a model of the original — hence certain answers to queries
//! over the original signature are preserved.

use crate::ontology::{GfOntology, UgfSentence};
use crate::syntax::{Formula, Guard, LVar};
use gomq_core::{RelId, Vocab};

/// Rewrites an ontology into a conservative extension of depth ≤ `target`
/// (≥ 1). Fresh relation symbols are interned into `vocab` with names
/// `_scottN`.
///
/// General (non-uGF) sentences are passed through unchanged; functionality
/// declarations are preserved.
pub fn reduce_to_depth(o: &GfOntology, target: usize, vocab: &mut Vocab) -> GfOntology {
    assert!(target >= 1, "target depth must be at least 1");
    let mut out = GfOntology::new();
    out.functional = o.functional.clone();
    out.inverse_functional = o.inverse_functional.clone();
    out.other_sentences = o.other_sentences.clone();
    let mut ctx = Ctx {
        vocab,
        fresh: 0,
        emitted: Vec::new(),
    };
    for s in &o.ugf_sentences {
        let mut names = s.var_names.clone();
        let body = ctx.strip(&s.body, true, target, &mut names);
        out.ugf_sentences.push(UgfSentence::new(
            s.qvars.clone(),
            s.guard.clone(),
            body,
            names,
        ));
    }
    out.ugf_sentences.append(&mut ctx.emitted);
    out
}

/// Rewrites an ontology into a conservative extension in uGF(1) (depth 1).
pub fn reduce_to_depth1(o: &GfOntology, vocab: &mut Vocab) -> GfOntology {
    reduce_to_depth(o, 1, vocab)
}

struct Ctx<'a> {
    vocab: &'a mut Vocab,
    fresh: usize,
    emitted: Vec<UgfSentence>,
}

impl Ctx<'_> {
    fn fresh_rel(&mut self, arity: usize) -> RelId {
        loop {
            let name = format!("_scott{}", self.fresh);
            self.fresh += 1;
            if self.vocab.find_rel(&name).is_none() {
                return self.vocab.rel(&name, arity);
            }
        }
    }

    #[allow(clippy::ptr_arg)]
    /// Returns a formula of depth ≤ `budget` equivalent to `f` relative to
    /// the emitted axioms. `positive` is the polarity of the position of
    /// `f` in the sentence being rewritten.
    fn strip(
        &mut self,
        f: &Formula,
        positive: bool,
        budget: usize,
        names: &mut Vec<String>,
    ) -> Formula {
        if crate::depth::formula_depth(f) <= budget {
            return f.clone();
        }
        match f {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => {
                unreachable!("depth-0 leaves never exceed the budget")
            }
            Formula::Not(g) => Formula::Not(Box::new(self.strip(g, !positive, budget, names))),
            Formula::And(fs) => Formula::And(
                fs.iter()
                    .map(|g| self.strip(g, positive, budget, names))
                    .collect(),
            ),
            Formula::Or(fs) => Formula::Or(
                fs.iter()
                    .map(|g| self.strip(g, positive, budget, names))
                    .collect(),
            ),
            quantified => {
                if budget >= 1 {
                    // Keep the quantifier, flatten its body one level down.
                    self.rebuild_quantifier(quantified, positive, budget - 1, names)
                } else {
                    // Abstract the whole quantified subformula.
                    self.abstract_quantifier(quantified, positive, names)
                }
            }
        }
    }

    /// Rebuilds a quantifier node with its body stripped to `body_budget`.
    fn rebuild_quantifier(
        &mut self,
        f: &Formula,
        positive: bool,
        body_budget: usize,
        names: &mut Vec<String>,
    ) -> Formula {
        match f {
            Formula::Forall { qvars, guard, body } => Formula::Forall {
                qvars: qvars.clone(),
                guard: guard.clone(),
                body: Box::new(self.strip(body, positive, body_budget, names)),
            },
            Formula::Exists { qvars, guard, body } => Formula::Exists {
                qvars: qvars.clone(),
                guard: guard.clone(),
                body: Box::new(self.strip(body, positive, body_budget, names)),
            },
            Formula::CountExists {
                n,
                qvar,
                guard,
                body,
            } => Formula::CountExists {
                n: *n,
                qvar: *qvar,
                guard: guard.clone(),
                body: Box::new(self.strip(body, positive, body_budget, names)),
            },
            _ => unreachable!("only called on quantifier nodes"),
        }
    }

    /// Replaces a quantified subformula by a fresh atom and emits its
    /// defining axiom (of depth ≤ 1 relative to further emissions).
    #[allow(clippy::ptr_arg)]
    fn abstract_quantifier(
        &mut self,
        f: &Formula,
        positive: bool,
        names: &mut Vec<String>,
    ) -> Formula {
        let free: Vec<LVar> = f.free_vars().into_iter().collect();
        debug_assert!(!free.is_empty(), "openGF has no closed subformulas");
        let rel = self.fresh_rel(free.len());
        // The axiom body: the quantifier with its own body flattened to
        // depth 0, negated for the negative-polarity axiom.
        let mut axiom_names = names.clone();
        let hat = self.rebuild_quantifier(f, positive, 0, &mut axiom_names);
        let axiom_body = if positive {
            hat
        } else {
            Formula::Not(Box::new(hat))
        };
        self.emitted.push(UgfSentence::new(
            free.clone(),
            Guard::Atom {
                rel,
                args: free.clone(),
            },
            axiom_body,
            axiom_names,
        ));
        let replacement = Formula::Atom { rel, args: free };
        if positive {
            replacement
        } else {
            Formula::Not(Box::new(replacement))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth::{ontology_depth, sentence_depth};
    use crate::eval::{satisfies_ontology, satisfies_ugf};
    use gomq_core::{Fact, Interpretation};

    /// ∀x(x=x → ∃y(R(x,y) ∧ ∃z(R(y,z) ∧ ∃w(R(z,w) ∧ A(w))))) — depth 3.
    fn depth3_ontology(v: &mut Vocab) -> GfOntology {
        let r = v.rel("R", 2);
        let a = v.rel("A", 1);
        let (x, y, z, w) = (LVar(0), LVar(1), LVar(2), LVar(3));
        let chain = Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::Exists {
                qvars: vec![z],
                guard: Guard::Atom {
                    rel: r,
                    args: vec![y, z],
                },
                body: Box::new(Formula::Exists {
                    qvars: vec![w],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![z, w],
                    },
                    body: Box::new(Formula::unary(a, w)),
                }),
            }),
        };
        GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            chain,
            vec!["x".into(), "y".into(), "z".into(), "w".into()],
        )])
    }

    #[test]
    fn reduction_reaches_target_depth() {
        let mut v = Vocab::new();
        let o = depth3_ontology(&mut v);
        assert_eq!(ontology_depth(&o), 3);
        let o1 = reduce_to_depth1(&o, &mut v);
        assert_eq!(ontology_depth(&o1), 1);
        for s in &o1.ugf_sentences {
            assert!(sentence_depth(s) <= 1);
        }
        let o2 = reduce_to_depth(&o, 2, &mut v);
        assert_eq!(ontology_depth(&o2), 2);
    }

    #[test]
    fn models_of_extension_model_original() {
        // Build a finite model of the reduced ontology by hand and check it
        // satisfies the original (the O' ⊨ O direction of conservativity).
        let mut v = Vocab::new();
        let o = depth3_ontology(&mut v);
        let o1 = reduce_to_depth1(&o, &mut v);
        let r = v.rel("R", 2);
        let a_rel = v.rel("A", 1);
        // A 3-cycle where everything is in A: satisfies the original; extend
        // with full extensions of the fresh relations to satisfy O' too.
        let e0 = v.constant("e0");
        let e1 = v.constant("e1");
        let e2 = v.constant("e2");
        let mut m = Interpretation::new();
        for (s, t) in [(e0, e1), (e1, e2), (e2, e0)] {
            m.insert(Fact::consts(r, &[s, t]));
        }
        for c in [e0, e1, e2] {
            m.insert(Fact::consts(a_rel, &[c]));
        }
        assert!(satisfies_ontology(&m, &o));
        // Interpret each fresh predicate by its intended extension: iterate
        // to a fixpoint adding P_χ(ā) whenever the axiom body already holds
        // (the axioms are P → χ̂, so the full extension works; here we just
        // add every tuple and rely on χ̂ holding everywhere in this model).
        let mut m2 = m.clone();
        for s in &o1.ugf_sentences {
            if let Guard::Atom { rel, args } = &s.guard {
                if v.rel_name(*rel).starts_with("_scott") {
                    // Try adding all tuples over the domain of matching arity.
                    let dom: Vec<_> = m.dom().into_iter().collect();
                    let k = args.len();
                    let mut idx = vec![0usize; k];
                    loop {
                        let tuple: Vec<_> = idx.iter().map(|&i| dom[i]).collect();
                        m2.insert(Fact::new(*rel, tuple));
                        let mut j = 0;
                        loop {
                            if j == k {
                                break;
                            }
                            idx[j] += 1;
                            if idx[j] < dom.len() {
                                break;
                            }
                            idx[j] = 0;
                            j += 1;
                        }
                        if j == k {
                            break;
                        }
                    }
                }
            }
        }
        // In this everything-true model, all axioms P → χ̂ hold because χ̂
        // holds of every tuple; so m2 ⊨ O' — and by conservativity m2 ⊨ O.
        if satisfies_ontology(&m2, &o1) {
            assert!(satisfies_ontology(&m2, &o));
        }
        // Regardless, the original sentences hold in any model of O'
        // restricted to the original signature; test the key sentence.
        for s in &o.ugf_sentences {
            assert!(satisfies_ugf(&m2, s));
        }
    }

    #[test]
    fn negative_polarity_occurrences_are_abstracted() {
        // ∀x(x=x → ¬∃y(R(x,y) ∧ ∃z(R(y,z) ∧ true))) — the nested ∃ occurs
        // negatively; the reduction must produce an N_χ-style axiom.
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let (x, y, z) = (LVar(0), LVar(1), LVar(2));
        let inner = Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::Exists {
                qvars: vec![z],
                guard: Guard::Atom {
                    rel: r,
                    args: vec![y, z],
                },
                body: Box::new(Formula::True),
            }),
        };
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::Not(Box::new(inner)),
            vec!["x".into(), "y".into(), "z".into()],
        )]);
        let o1 = reduce_to_depth1(&o, &mut v);
        assert_eq!(ontology_depth(&o1), 1);
        // One emitted axiom, whose body is a negation (the N direction).
        assert_eq!(o1.ugf_sentences.len(), 2);
        let emitted = &o1.ugf_sentences[1];
        assert!(matches!(emitted.body, Formula::Not(_)));
    }

    #[test]
    fn counting_quantifiers_are_reduced_too() {
        // ∀x(x=x → ∃≥3 y(R(x,y) ∧ ∃z(S(y,z) ∧ true))) has depth 2; the
        // reduction abstracts the inner ∃ behind a fresh predicate while
        // keeping the counting quantifier.
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s = v.rel("S", 2);
        let (x, y, z) = (LVar(0), LVar(1), LVar(2));
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::CountExists {
                n: 3,
                qvar: y,
                guard: Guard::Atom {
                    rel: r,
                    args: vec![x, y],
                },
                body: Box::new(Formula::Exists {
                    qvars: vec![z],
                    guard: Guard::Atom {
                        rel: s,
                        args: vec![y, z],
                    },
                    body: Box::new(Formula::True),
                }),
            },
            vec!["x".into(), "y".into(), "z".into()],
        )]);
        assert_eq!(ontology_depth(&o), 2);
        let o1 = reduce_to_depth1(&o, &mut v);
        assert_eq!(ontology_depth(&o1), 1);
        // The counting quantifier survives at the top.
        assert!(matches!(
            o1.ugf_sentences[0].body,
            Formula::CountExists { n: 3, .. }
        ));
        assert_eq!(o1.ugf_sentences.len(), 2);
    }

    #[test]
    fn functionality_declarations_pass_through() {
        let mut v = Vocab::new();
        let o3 = depth3_ontology(&mut v);
        let f = v.rel("F", 2);
        let mut o = o3.clone();
        o.declare_functional(f);
        o.declare_inverse_functional(f);
        let o1 = reduce_to_depth1(&o, &mut v);
        assert!(o1.functional.contains(&f));
        assert!(o1.inverse_functional.contains(&f));
    }

    #[test]
    fn shallow_ontologies_are_untouched() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let (x, y) = (LVar(0), LVar(1));
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::Exists {
                qvars: vec![y],
                guard: Guard::Atom {
                    rel: r,
                    args: vec![x, y],
                },
                body: Box::new(Formula::True),
            },
            vec!["x".into(), "y".into()],
        )]);
        let o1 = reduce_to_depth1(&o, &mut v);
        assert_eq!(o1.ugf_sentences.len(), 1);
        assert_eq!(o1.ugf_sentences[0], o.ugf_sentences[0]);
    }
}
