//! Sentences and ontologies.
//!
//! A *uGF sentence* has the form `∀ȳ(α(ȳ) → φ(ȳ))` where `α` is an atom or
//! an equality guard containing all variables of `ȳ` and `φ ∈ openGF`
//! (§2.1). By Theorem 1 these are, up to equivalence, exactly the GF
//! sentences invariant under disjoint unions. General GF sentences (used by
//! the paper's Example 1 counterexamples) are represented by
//! [`GfSentence`].
//!
//! An ontology is a finite set of sentences plus, for the `(f)` fragments,
//! a set of relation symbols declared to be partial functions
//! (`∀x∀y₁∀y₂(R(x,y₁) ∧ R(x,y₂) → y₁ = y₂)`).

use crate::syntax::{Formula, Guard, LVar};
use gomq_core::RelId;
use std::collections::BTreeSet;
use std::fmt;

/// A closed GF(=) formula with its variable-name table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GfSentence {
    /// The closed formula.
    pub formula: Formula,
    /// Names for the variables `LVar(0..)`.
    pub var_names: Vec<String>,
}

impl GfSentence {
    /// Creates a sentence, validating closedness and well-guardedness of
    /// all *guarded* quantifiers (the formula may still combine closed
    /// subsentences boolean-ly, which full GF allows).
    ///
    /// # Panics
    ///
    /// Panics if the formula has free variables.
    pub fn new(formula: Formula, var_names: Vec<String>) -> Self {
        assert!(
            formula.is_sentence(),
            "a GfSentence must have no free variables"
        );
        GfSentence { formula, var_names }
    }

    /// Attempts to view this sentence as a uGF sentence.
    pub fn as_ugf(&self) -> Option<UgfSentence> {
        match &self.formula {
            Formula::Forall { qvars, guard, body } if body.is_open_gf() => {
                // The guard must contain exactly the quantified variables
                // (the sentence is closed, so guard vars ⊆ qvars suffices
                // together with well-guardedness).
                let gv = guard.vars();
                let qv: BTreeSet<LVar> = qvars.iter().copied().collect();
                (gv.is_subset(&qv) && body.free_vars().is_subset(&qv) && body.is_well_guarded())
                    .then(|| UgfSentence {
                        qvars: qvars.clone(),
                        guard: guard.clone(),
                        body: (**body).clone(),
                        var_names: self.var_names.clone(),
                    })
            }
            _ => None,
        }
    }
}

/// A uGF(=) / uGC₂(=) sentence `∀ȳ(α(ȳ) → φ(ȳ))`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UgfSentence {
    /// The outermost quantified variables `ȳ`.
    pub qvars: Vec<LVar>,
    /// The outermost guard `α(ȳ)`.
    pub guard: Guard,
    /// The body `φ(ȳ) ∈ openGF` (or openGC₂).
    pub body: Formula,
    /// Names for the variables.
    pub var_names: Vec<String>,
}

impl UgfSentence {
    /// Creates a uGF sentence, validating the side conditions: the guard
    /// covers all quantified variables, the body is openGF (openGC₂) with
    /// free variables among `ȳ`, and the body is well-guarded.
    ///
    /// # Panics
    ///
    /// Panics on violated side conditions.
    pub fn new(qvars: Vec<LVar>, guard: Guard, body: Formula, var_names: Vec<String>) -> Self {
        let qv: BTreeSet<LVar> = qvars.iter().copied().collect();
        assert!(
            guard.vars().is_subset(&qv),
            "outer guard must use only quantified variables"
        );
        assert!(
            body.free_vars().is_subset(&qv),
            "body free variables must be quantified"
        );
        assert!(body.is_open_gf(), "uGF body must be in openGF/openGC2");
        assert!(body.is_well_guarded(), "uGF body must be well-guarded");
        UgfSentence {
            qvars,
            guard,
            body,
            var_names,
        }
    }

    /// The sentence `∀x φ(x)`, i.e. `∀x(x = x → φ(x))`.
    pub fn forall_one(x: LVar, body: Formula, var_names: Vec<String>) -> Self {
        UgfSentence::new(vec![x], Guard::Eq(x, x), body, var_names)
    }

    /// Converts to the underlying closed formula.
    pub fn to_formula(&self) -> Formula {
        Formula::Forall {
            qvars: self.qvars.clone(),
            guard: self.guard.clone(),
            body: Box::new(self.body.clone()),
        }
    }

    /// Converts to a [`GfSentence`].
    pub fn to_gf(&self) -> GfSentence {
        GfSentence {
            formula: self.to_formula(),
            var_names: self.var_names.clone(),
        }
    }

    /// Whether the outermost guard is an equality (the `·⁻` fragments).
    pub fn outer_guard_is_equality(&self) -> bool {
        self.guard.is_equality()
    }

    /// All relation symbols of the sentence.
    pub fn rels(&self) -> BTreeSet<RelId> {
        let mut r = self.body.rels();
        if let Guard::Atom { rel, .. } = &self.guard {
            r.insert(*rel);
        }
        r
    }
}

impl fmt::Display for UgfSentence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_formula().display(&self.var_names))
    }
}

/// An ontology: a finite set of GF sentences (usually uGF sentences) plus
/// functionality declarations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GfOntology {
    /// uGF sentences (the invariant-under-disjoint-unions part).
    pub ugf_sentences: Vec<UgfSentence>,
    /// General GF sentences outside uGF (empty for uGF ontologies).
    pub other_sentences: Vec<GfSentence>,
    /// Binary relations declared to be partial functions.
    pub functional: BTreeSet<RelId>,
    /// Binary relations whose *inverse* is declared to be a partial
    /// function (`∀y∀x₁∀x₂(R(x₁,y) ∧ R(x₂,y) → x₁ = x₂)`).
    pub inverse_functional: BTreeSet<RelId>,
    /// Binary relations declared transitive — the extension the paper's
    /// conclusion names as future work; supported by the model checker
    /// and the countermodel engine, outside the Figure-1 fragments.
    pub transitive: BTreeSet<RelId>,
}

impl GfOntology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an ontology from uGF sentences.
    pub fn from_ugf(sentences: Vec<UgfSentence>) -> Self {
        GfOntology {
            ugf_sentences: sentences,
            ..Default::default()
        }
    }

    /// Adds a uGF sentence.
    pub fn push(&mut self, s: UgfSentence) -> &mut Self {
        self.ugf_sentences.push(s);
        self
    }

    /// Adds a general GF sentence.
    pub fn push_gf(&mut self, s: GfSentence) -> &mut Self {
        self.other_sentences.push(s);
        self
    }

    /// Declares a binary relation to be a partial function.
    pub fn declare_functional(&mut self, rel: RelId) -> &mut Self {
        self.functional.insert(rel);
        self
    }

    /// Declares the inverse of a binary relation to be a partial function.
    pub fn declare_inverse_functional(&mut self, rel: RelId) -> &mut Self {
        self.inverse_functional.insert(rel);
        self
    }

    /// Declares a binary relation to be transitive.
    pub fn declare_transitive(&mut self, rel: RelId) -> &mut Self {
        self.transitive.insert(rel);
        self
    }

    /// Whether the ontology is a uGF ontology (hence syntactically
    /// invariant under disjoint unions; Theorem 1).
    pub fn is_ugf(&self) -> bool {
        self.other_sentences.is_empty()
    }

    /// The signature `sig(O)`: all relation symbols occurring in the
    /// ontology.
    pub fn sig(&self) -> BTreeSet<RelId> {
        let mut s: BTreeSet<RelId> = BTreeSet::new();
        for u in &self.ugf_sentences {
            s.extend(u.rels());
        }
        for g in &self.other_sentences {
            s.extend(g.formula.rels());
        }
        s.extend(self.functional.iter().copied());
        s.extend(self.inverse_functional.iter().copied());
        s.extend(self.transitive.iter().copied());
        s
    }

    /// Union of two ontologies (the paper's `O₁ ∪ O₂`).
    pub fn union(&self, other: &GfOntology) -> GfOntology {
        let mut out = self.clone();
        out.ugf_sentences
            .extend(other.ugf_sentences.iter().cloned());
        out.other_sentences
            .extend(other.other_sentences.iter().cloned());
        out.functional.extend(other.functional.iter().copied());
        out.inverse_functional
            .extend(other.inverse_functional.iter().copied());
        out.transitive.extend(other.transitive.iter().copied());
        out
    }

    /// The size measure `|O|`: total number of symbols (relations,
    /// variables, connectives, numbers in unary).
    pub fn size(&self) -> usize {
        fn formula_size(f: &Formula) -> usize {
            match f {
                Formula::True | Formula::False => 1,
                Formula::Atom { args, .. } => 1 + args.len(),
                Formula::Eq(_, _) => 3,
                Formula::Not(g) => 1 + formula_size(g),
                Formula::And(fs) | Formula::Or(fs) => {
                    1 + fs.iter().map(formula_size).sum::<usize>()
                }
                Formula::Forall { qvars, guard, body } | Formula::Exists { qvars, guard, body } => {
                    1 + qvars.len() + guard.vars().len() + 1 + formula_size(body)
                }
                Formula::CountExists { n, guard, body, .. } => {
                    1 + *n as usize + guard.vars().len() + 1 + formula_size(body)
                }
            }
        }
        self.ugf_sentences
            .iter()
            .map(|s| formula_size(&s.to_formula()))
            .sum::<usize>()
            + self
                .other_sentences
                .iter()
                .map(|s| formula_size(&s.formula))
                .sum::<usize>()
            + 4 * (self.functional.len() + self.inverse_functional.len() + self.transitive.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::Vocab;

    /// Builds the paper's Example 2 sentence
    /// `∀xy(R(x,y) → (A(x) ∨ ∃z S(y,z)))`.
    fn example2(v: &mut Vocab) -> UgfSentence {
        let r = v.rel("R", 2);
        let a = v.rel("A", 1);
        let s = v.rel("S", 2);
        let (x, y, z) = (LVar(0), LVar(1), LVar(2));
        UgfSentence::new(
            vec![x, y],
            Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            Formula::Or(vec![
                Formula::unary(a, x),
                Formula::Exists {
                    qvars: vec![z],
                    guard: Guard::Atom {
                        rel: s,
                        args: vec![y, z],
                    },
                    body: Box::new(Formula::True),
                },
            ]),
            vec!["x".into(), "y".into(), "z".into()],
        )
    }

    #[test]
    fn example2_is_valid_ugf() {
        let mut v = Vocab::new();
        let s = example2(&mut v);
        assert!(!s.outer_guard_is_equality());
        assert_eq!(s.rels().len(), 3);
        let gf = s.to_gf();
        let back = gf.as_ugf().expect("round-trips through GfSentence");
        assert_eq!(back.body, s.body);
    }

    #[test]
    #[should_panic(expected = "openGF")]
    fn sentence_body_rejected() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.rel("A", 1);
        let (x, y) = (LVar(0), LVar(1));
        // Body ∀xy(R(x,y) → A(x)) is a sentence — not openGF.
        let body = Formula::Forall {
            qvars: vec![x, y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::unary(a, x)),
        };
        let z = LVar(2);
        UgfSentence::new(
            vec![z],
            Guard::Eq(z, z),
            body,
            vec!["x".into(), "y".into(), "z".into()],
        );
    }

    #[test]
    fn forall_one_builds_equality_guard() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let x = LVar(0);
        let s = UgfSentence::forall_one(x, Formula::unary(a, x), vec!["x".into()]);
        assert!(s.outer_guard_is_equality());
    }

    #[test]
    fn ontology_union_and_sig() {
        let mut v = Vocab::new();
        let s1 = example2(&mut v);
        let o1 = GfOntology::from_ugf(vec![s1]);
        let mut o2 = GfOntology::new();
        let f = v.rel("F", 2);
        o2.declare_functional(f);
        let u = o1.union(&o2);
        assert!(u.is_ugf());
        assert_eq!(u.sig().len(), 4);
        assert!(u.functional.contains(&f));
        assert!(u.size() > 0);
    }
}
