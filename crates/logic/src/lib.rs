//! # gomq-logic
//!
//! Syntax and finite-model semantics of the guarded fragment (GF) of
//! first-order logic and the ontology languages built from it in
//! *Dichotomies in Ontology-Mediated Querying with the Guarded Fragment*
//! (PODS 2017):
//!
//! * [`syntax`] — GF(=) formulas with guarded quantifiers, guarded counting
//!   quantifiers (GC₂) and equality; free variables; well-formedness,
//! * [`ontology`] — GF sentences, uGF sentences (`∀ȳ(α(ȳ) → φ)` with
//!   `φ ∈ openGF`), ontologies with functionality axioms,
//! * [`depth`] — quantifier depth in the paper's sense (the outermost uGF
//!   quantifier does not count),
//! * [`fragment`] — the Figure-1 fragment lattice (`uGF(1)`, `uGF⁻(1,=)`,
//!   `uGF⁻₂(2)`, `uGC⁻₂(1,=)`, `uGF₂(1,=)`, …) and feature extraction,
//! * [`eval`] — model checking over finite interpretations,
//! * [`scott`] — polarity-based Scott normal form reducing any uGF ontology
//!   to depth ≤ 1 as a conservative extension.

#![warn(missing_docs)]

pub mod depth;
pub mod eval;
pub mod fragment;
pub mod ontology;
pub mod scott;
pub mod syntax;

pub use fragment::{Fragment, FragmentFeatures};
pub use ontology::{GfOntology, GfSentence, UgfSentence};
pub use syntax::{Formula, Guard, LVar};
