//! Formula syntax of GF(=) and its counting extension GC₂.
//!
//! The constructors mirror §2.1 of the paper: formulas are built from
//! relational atoms and equalities by boolean connectives and *guarded*
//! quantifiers
//!
//! ```text
//! ∀ȳ(α(x̄,ȳ) → φ(x̄,ȳ))        ∃ȳ(α(x̄,ȳ) ∧ φ(x̄,ȳ))
//! ```
//!
//! where the guard `α` is an atom or an equality containing all variables
//! of `x̄,ȳ`, plus guarded counting quantifiers `∃≥n z₁(α(z₁,z₂) ∧ φ)` in
//! the two-variable case.

use gomq_core::RelId;
use std::collections::BTreeSet;
use std::fmt;

/// A logical variable, identified by an index into the owning sentence's
/// name table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LVar(pub u32);

/// A guard: the atom or equality that relativises a quantifier.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Guard {
    /// A relational atom `R(v₁,…,v_k)`.
    Atom {
        /// The guarding relation symbol.
        rel: RelId,
        /// The argument variables (repetitions allowed).
        args: Vec<LVar>,
    },
    /// An equality guard `v = w` (including the trivial `v = v` used by uGF
    /// sentences of the form `∀x φ(x)`).
    Eq(LVar, LVar),
}

impl Guard {
    /// The set of variables appearing in the guard.
    pub fn vars(&self) -> BTreeSet<LVar> {
        match self {
            Guard::Atom { args, .. } => args.iter().copied().collect(),
            Guard::Eq(a, b) => [*a, *b].into_iter().collect(),
        }
    }

    /// Whether the guard is an equality.
    pub fn is_equality(&self) -> bool {
        matches!(self, Guard::Eq(_, _))
    }
}

/// A GF(=)/GC₂ formula.
///
/// The representation is slightly more liberal than the official grammar
/// (e.g. it can express unguarded sentences like `∀x A(x) ∨ ∀x B(x)` by
/// combining closed `Forall`s); [`Formula::is_open_gf`] and the uGF
/// constructors in [`crate::ontology`] check the paper's side conditions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A relational atom.
    Atom {
        /// The relation symbol.
        rel: RelId,
        /// The argument variables.
        args: Vec<LVar>,
    },
    /// An equality between variables (a *non-guard* use of equality).
    Eq(LVar, LVar),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Guarded universal quantification `∀ȳ(guard → body)`.
    Forall {
        /// The quantified variables `ȳ`.
        qvars: Vec<LVar>,
        /// The guard `α`.
        guard: Guard,
        /// The body `φ`.
        body: Box<Formula>,
    },
    /// Guarded existential quantification `∃ȳ(guard ∧ body)`.
    Exists {
        /// The quantified variables `ȳ`.
        qvars: Vec<LVar>,
        /// The guard `α`.
        guard: Guard,
        /// The body `φ`.
        body: Box<Formula>,
    },
    /// Guarded counting quantifier `∃≥n y(guard ∧ body)` (GC₂ only: a
    /// single quantified variable, binary guard).
    CountExists {
        /// The threshold `n ≥ 1`.
        n: u32,
        /// The quantified variable.
        qvar: LVar,
        /// The guard `α(z₁,z₂)`.
        guard: Guard,
        /// The body.
        body: Box<Formula>,
    },
}

impl Formula {
    /// Convenience: implication `a → b` encoded as `¬a ∨ b`, simplifying
    /// the trivial antecedents/consequents.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        match (a, b) {
            (Formula::True, b) => b,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            (a, Formula::False) => Formula::Not(Box::new(a)),
            (a, b) => Formula::Or(vec![Formula::Not(Box::new(a)), b]),
        }
    }

    /// Whether the formula is a pure boolean constant (no atoms,
    /// equalities or quantifiers).
    pub fn is_constant(&self) -> bool {
        match self {
            Formula::True | Formula::False => true,
            Formula::Not(f) => f.is_constant(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.is_constant()),
            _ => false,
        }
    }

    /// Convenience: a unary atom.
    pub fn unary(rel: RelId, v: LVar) -> Formula {
        Formula::Atom { rel, args: vec![v] }
    }

    /// Convenience: a binary atom.
    pub fn binary(rel: RelId, a: LVar, b: LVar) -> Formula {
        Formula::Atom {
            rel,
            args: vec![a, b],
        }
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<LVar> {
        match self {
            Formula::True | Formula::False => BTreeSet::new(),
            Formula::Atom { args, .. } => args.iter().copied().collect(),
            Formula::Eq(a, b) => [*a, *b].into_iter().collect(),
            Formula::Not(f) => f.free_vars(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().flat_map(|f| f.free_vars()).collect(),
            Formula::Forall { qvars, guard, body } | Formula::Exists { qvars, guard, body } => {
                let mut fv = guard.vars();
                fv.extend(body.free_vars());
                for q in qvars {
                    fv.remove(q);
                }
                fv
            }
            Formula::CountExists {
                qvar, guard, body, ..
            } => {
                let mut fv = guard.vars();
                fv.extend(body.free_vars());
                fv.remove(qvar);
                fv
            }
        }
    }

    /// Whether the formula is a sentence (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Whether every guarded quantifier is well-guarded: the guard contains
    /// all free variables of the quantified formula (i.e. the quantified
    /// variables and the body's free variables restricted to the scope).
    pub fn is_well_guarded(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => true,
            Formula::Not(f) => f.is_well_guarded(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.is_well_guarded()),
            Formula::Forall { qvars, guard, body } | Formula::Exists { qvars, guard, body } => {
                let gv = guard.vars();
                let mut scope_vars = body.free_vars();
                scope_vars.extend(qvars.iter().copied());
                scope_vars.is_subset(&gv) && body.is_well_guarded()
            }
            Formula::CountExists {
                qvar, guard, body, ..
            } => {
                let gv = guard.vars();
                let mut scope_vars = body.free_vars();
                scope_vars.insert(*qvar);
                scope_vars.is_subset(&gv)
                    && matches!(guard, Guard::Atom { args, .. } if args.len() == 2)
                    && body.is_well_guarded()
            }
        }
    }

    /// Whether the formula lies in *openGF* (extended with counting for
    /// openGC₂): every subformula is open, and equality is never used as a
    /// guard.
    pub fn is_open_gf(&self) -> bool {
        if self.free_vars().is_empty() && !self.is_constant() {
            // Closed subformulas (sentences) are banned; pure boolean
            // constants are tolerated as degenerate leaves.
            return false;
        }
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => true,
            Formula::Not(f) => f.is_open_gf(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.is_open_gf()),
            Formula::Forall { guard, body, .. } | Formula::Exists { guard, body, .. } => {
                !guard.is_equality() && body.is_open_gf()
            }
            Formula::CountExists { guard, body, .. } => !guard.is_equality() && body.is_open_gf(),
        }
    }

    /// Whether equality occurs in a non-guard position.
    pub fn uses_equality(&self) -> bool {
        match self {
            Formula::Eq(_, _) => true,
            Formula::True | Formula::False | Formula::Atom { .. } => false,
            Formula::Not(f) => f.uses_equality(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|f| f.uses_equality()),
            Formula::Forall { body, .. }
            | Formula::Exists { body, .. }
            | Formula::CountExists { body, .. } => body.uses_equality(),
        }
    }

    /// Whether a counting quantifier occurs.
    pub fn uses_counting(&self) -> bool {
        match self {
            Formula::CountExists { .. } => true,
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => false,
            Formula::Not(f) => f.uses_counting(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|f| f.uses_counting()),
            Formula::Forall { body, .. } | Formula::Exists { body, .. } => body.uses_counting(),
        }
    }

    /// All variables (free or bound) mentioned anywhere in the formula.
    pub fn all_vars(&self) -> BTreeSet<LVar> {
        match self {
            Formula::True | Formula::False => BTreeSet::new(),
            Formula::Atom { args, .. } => args.iter().copied().collect(),
            Formula::Eq(a, b) => [*a, *b].into_iter().collect(),
            Formula::Not(f) => f.all_vars(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().flat_map(|f| f.all_vars()).collect(),
            Formula::Forall { qvars, guard, body } | Formula::Exists { qvars, guard, body } => {
                let mut v = guard.vars();
                v.extend(body.all_vars());
                v.extend(qvars.iter().copied());
                v
            }
            Formula::CountExists {
                qvar, guard, body, ..
            } => {
                let mut v = guard.vars();
                v.extend(body.all_vars());
                v.insert(*qvar);
                v
            }
        }
    }

    /// All relation symbols mentioned (in guards or atoms).
    pub fn rels(&self) -> BTreeSet<RelId> {
        fn guard_rel(g: &Guard, out: &mut BTreeSet<RelId>) {
            if let Guard::Atom { rel, .. } = g {
                out.insert(*rel);
            }
        }
        let mut out = BTreeSet::new();
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => {}
            Formula::Atom { rel, .. } => {
                out.insert(*rel);
            }
            Formula::Not(f) => out.extend(f.rels()),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    out.extend(f.rels());
                }
            }
            Formula::Forall { guard, body, .. } | Formula::Exists { guard, body, .. } => {
                guard_rel(guard, &mut out);
                out.extend(body.rels());
            }
            Formula::CountExists { guard, body, .. } => {
                guard_rel(guard, &mut out);
                out.extend(body.rels());
            }
        }
        out
    }

    /// Renders the formula with the given variable names (relation
    /// symbols appear as raw ids; see [`Formula::display_named`]).
    pub fn display<'a>(&'a self, var_names: &'a [String]) -> FormulaDisplay<'a> {
        FormulaDisplay {
            formula: self,
            var_names,
            vocab: None,
        }
    }

    /// Renders the formula with variable names and human-readable
    /// relation names from the vocabulary.
    pub fn display_named<'a>(
        &'a self,
        var_names: &'a [String],
        vocab: &'a gomq_core::Vocab,
    ) -> FormulaDisplay<'a> {
        FormulaDisplay {
            formula: self,
            var_names,
            vocab: Some(vocab),
        }
    }
}

/// Helper for rendering a [`Formula`].
pub struct FormulaDisplay<'a> {
    formula: &'a Formula,
    var_names: &'a [String],
    vocab: Option<&'a gomq_core::Vocab>,
}

impl FormulaDisplay<'_> {
    fn name(&self, v: LVar) -> String {
        self.var_names
            .get(v.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("v{}", v.0))
    }

    fn rel_name(&self, r: RelId) -> String {
        match self.vocab {
            Some(v) => v.rel_name(r).to_owned(),
            None => format!("{r}"),
        }
    }

    fn fmt_guard(&self, g: &Guard, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match g {
            Guard::Atom { rel, args } => {
                write!(f, "{}(", self.rel_name(*rel))?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.name(*a))?;
                }
                write!(f, ")")
            }
            Guard::Eq(a, b) => write!(f, "{}={}", self.name(*a), self.name(*b)),
        }
    }

    fn fmt_formula(&self, phi: &Formula, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match phi {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom { rel, args } => {
                write!(f, "{}(", self.rel_name(*rel))?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.name(*a))?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => write!(f, "{}={}", self.name(*a), self.name(*b)),
            Formula::Not(g) => {
                write!(f, "~")?;
                self.fmt_formula(g, f)
            }
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    self.fmt_formula(g, f)?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    self.fmt_formula(g, f)?;
                }
                write!(f, ")")
            }
            Formula::Forall { qvars, guard, body } => {
                write!(f, "forall ")?;
                for (i, q) in qvars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.name(*q))?;
                }
                write!(f, " (")?;
                self.fmt_guard(guard, f)?;
                write!(f, " -> ")?;
                self.fmt_formula(body, f)?;
                write!(f, ")")
            }
            Formula::Exists { qvars, guard, body } => {
                write!(f, "exists ")?;
                for (i, q) in qvars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.name(*q))?;
                }
                write!(f, " (")?;
                self.fmt_guard(guard, f)?;
                write!(f, " & ")?;
                self.fmt_formula(body, f)?;
                write!(f, ")")
            }
            Formula::CountExists {
                n,
                qvar,
                guard,
                body,
            } => {
                write!(f, "exists>={} {} (", n, self.name(*qvar))?;
                self.fmt_guard(guard, f)?;
                write!(f, " & ")?;
                self.fmt_formula(body, f)?;
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for FormulaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_formula(self.formula, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::Vocab;

    fn vars() -> (LVar, LVar, LVar) {
        (LVar(0), LVar(1), LVar(2))
    }

    #[test]
    fn free_vars_of_quantified_formula() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s = v.rel("S", 2);
        let (x, y, z) = vars();
        // ∃z(S(y,z) ∧ true) with free y
        let inner = Formula::Exists {
            qvars: vec![z],
            guard: Guard::Atom {
                rel: s,
                args: vec![y, z],
            },
            body: Box::new(Formula::True),
        };
        assert_eq!(inner.free_vars(), [y].into_iter().collect());
        // ∀xy(R(x,y) → ∃z S(y,z)) is a sentence
        let sent = Formula::Forall {
            qvars: vec![x, y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(inner),
        };
        assert!(sent.is_sentence());
        assert!(sent.is_well_guarded());
    }

    #[test]
    fn unguarded_quantifier_detected() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.rel("A", 1);
        let (x, y, _) = vars();
        // ∀y(A(y) → R(x,y)): guard A(y) does not contain the free x of the body.
        let bad = Formula::Forall {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: a,
                args: vec![y],
            },
            body: Box::new(Formula::binary(r, x, y)),
        };
        assert!(!bad.is_well_guarded());
    }

    #[test]
    fn open_gf_rejects_equality_guards_and_sentences() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let (x, y, _) = vars();
        // ∀y(y=y → A(y)) is not openGF (equality guard).
        let eq_guarded = Formula::Forall {
            qvars: vec![y],
            guard: Guard::Eq(y, y),
            body: Box::new(Formula::unary(a, y)),
        };
        assert!(!eq_guarded.is_open_gf());
        // Atom A(x) is openGF.
        assert!(Formula::unary(a, x).is_open_gf());
        // A sentence subformula is not open.
        let r = v.rel("R", 2);
        let sent = Formula::Forall {
            qvars: vec![x, y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::unary(a, x)),
        };
        assert!(!sent.is_open_gf());
    }

    #[test]
    fn equality_and_counting_flags() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let (x, y, _) = vars();
        let cnt = Formula::CountExists {
            n: 4,
            qvar: y,
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::True),
        };
        assert!(cnt.uses_counting());
        assert!(!cnt.uses_equality());
        let neq = Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::Not(Box::new(Formula::Eq(x, y)))),
        };
        assert!(neq.uses_equality());
        assert!(!neq.uses_counting());
    }

    #[test]
    fn rels_collects_guards_and_atoms() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s = v.rel("S", 2);
        let (x, y, _) = vars();
        let f = Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::binary(s, x, y)),
        };
        assert_eq!(f.rels().len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let (x, y, _) = vars();
        let names = vec!["x".to_owned(), "y".to_owned()];
        let f = Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::True),
        };
        let s = format!("{}", f.display(&names));
        assert!(s.contains("exists y"));
    }
}
