//! Model checking GF(=)/GC₂ formulas over finite interpretations.
//!
//! Quantifiers range over guard matches, so evaluation enumerates, for each
//! guarded quantifier, the facts of the guard relation that are compatible
//! with the current assignment; equality guards range over the active
//! domain. Counting quantifiers count distinct witnesses for the quantified
//! variable.

use crate::ontology::{GfOntology, GfSentence, UgfSentence};
use crate::syntax::{Formula, Guard, LVar};
use gomq_core::{Interpretation, Term};
use std::collections::BTreeMap;

/// A variable assignment.
pub type Assignment = BTreeMap<LVar, Term>;

/// Evaluates `f` in `a` under `asg` (which must bind all free variables).
///
/// # Panics
///
/// Panics if a free variable is unbound.
pub fn eval(f: &Formula, a: &Interpretation, asg: &Assignment) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom { rel, args } => {
            let fact = gomq_core::Fact::new(*rel, args.iter().map(|v| lookup(asg, *v)).collect());
            a.contains(&fact)
        }
        Formula::Eq(x, y) => lookup(asg, *x) == lookup(asg, *y),
        Formula::Not(g) => !eval(g, a, asg),
        Formula::And(fs) => fs.iter().all(|g| eval(g, a, asg)),
        Formula::Or(fs) => fs.iter().any(|g| eval(g, a, asg)),
        Formula::Forall { qvars, guard, body } => {
            // Quantified variables shadow outer bindings (the two-variable
            // translation of DLs re-uses x and y), so unbind them first.
            let mut scope = asg.clone();
            for q in qvars {
                scope.remove(q);
            }
            let mut all = true;
            for_guard_matches(guard, qvars, a, &scope, &mut |ext| {
                if !eval(body, a, ext) {
                    all = false;
                    return true; // stop
                }
                false
            });
            all
        }
        Formula::Exists { qvars, guard, body } => {
            let mut scope = asg.clone();
            for q in qvars {
                scope.remove(q);
            }
            let mut any = false;
            for_guard_matches(guard, qvars, a, &scope, &mut |ext| {
                if eval(body, a, ext) {
                    any = true;
                    return true;
                }
                false
            });
            any
        }
        Formula::CountExists {
            n,
            qvar,
            guard,
            body,
        } => {
            let mut scope = asg.clone();
            scope.remove(qvar);
            let mut witnesses: std::collections::BTreeSet<Term> = Default::default();
            for_guard_matches(guard, &[*qvar], a, &scope, &mut |ext| {
                if eval(body, a, ext) {
                    witnesses.insert(ext[qvar]);
                }
                false
            });
            witnesses.len() as u32 >= *n
        }
    }
}

fn lookup(asg: &Assignment, v: LVar) -> Term {
    *asg.get(&v)
        .unwrap_or_else(|| panic!("unbound variable v{} during evaluation", v.0))
}

/// Enumerates extensions of `asg` that bind `qvars` and satisfy the guard.
/// `cb` returns `true` to stop early.
fn for_guard_matches(
    guard: &Guard,
    qvars: &[LVar],
    a: &Interpretation,
    asg: &Assignment,
    cb: &mut dyn FnMut(&Assignment) -> bool,
) {
    match guard {
        Guard::Atom { rel, args } => {
            for fact in a.facts_of(*rel) {
                if fact.args.len() != args.len() {
                    continue;
                }
                let mut ext = asg.clone();
                let mut ok = true;
                for (&v, &t) in args.iter().zip(fact.args.iter()) {
                    match ext.get(&v) {
                        Some(&prev) if prev != t => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            if qvars.contains(&v) {
                                ext.insert(v, t);
                            } else {
                                // Guard mentions an unbound non-quantified
                                // variable: malformed formula.
                                panic!("guard variable v{} neither bound nor quantified", v.0);
                            }
                        }
                    }
                }
                if ok && cb(&ext) {
                    return;
                }
            }
        }
        Guard::Eq(x, y) => {
            // The guard x = y: if both are (or become) the same element.
            let bx = asg.get(x).copied();
            let by = asg.get(y).copied();
            match (bx, by) {
                (Some(tx), Some(ty)) => {
                    if tx == ty {
                        cb(asg);
                    }
                }
                (Some(t), None) | (None, Some(t)) => {
                    let unbound = if bx.is_none() { *x } else { *y };
                    let mut ext = asg.clone();
                    ext.insert(unbound, t);
                    cb(&ext);
                }
                (None, None) => {
                    if x == y {
                        // ∀x(x = x → …): range over the active domain.
                        for t in a.dom() {
                            let mut ext = asg.clone();
                            ext.insert(*x, t);
                            if cb(&ext) {
                                return;
                            }
                        }
                    } else {
                        // Two unbound variables forced equal: range over
                        // the diagonal.
                        for t in a.dom() {
                            let mut ext = asg.clone();
                            ext.insert(*x, t);
                            ext.insert(*y, t);
                            if cb(&ext) {
                                return;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Whether the interpretation satisfies a closed GF sentence.
pub fn satisfies_sentence(a: &Interpretation, s: &GfSentence) -> bool {
    eval(&s.formula, a, &Assignment::new())
}

/// Whether the interpretation satisfies a uGF sentence.
pub fn satisfies_ugf(a: &Interpretation, s: &UgfSentence) -> bool {
    eval(&s.to_formula(), a, &Assignment::new())
}

/// Whether a binary relation is interpreted as a partial function in `a`.
pub fn is_functional_in(a: &Interpretation, rel: gomq_core::RelId) -> bool {
    let mut seen: BTreeMap<Term, Term> = BTreeMap::new();
    for f in a.facts_of(rel) {
        if f.args.len() != 2 {
            return false;
        }
        match seen.get(&f.args[0]) {
            Some(&prev) if prev != f.args[1] => return false,
            _ => {
                seen.insert(f.args[0], f.args[1]);
            }
        }
    }
    true
}

/// Whether the inverse of a binary relation is functional in `a`.
pub fn is_inverse_functional_in(a: &Interpretation, rel: gomq_core::RelId) -> bool {
    let mut seen: BTreeMap<Term, Term> = BTreeMap::new();
    for f in a.facts_of(rel) {
        if f.args.len() != 2 {
            return false;
        }
        match seen.get(&f.args[1]) {
            Some(&prev) if prev != f.args[0] => return false,
            _ => {
                seen.insert(f.args[1], f.args[0]);
            }
        }
    }
    true
}

/// Whether a binary relation is transitively closed in `a`.
pub fn is_transitive_in(a: &Interpretation, rel: gomq_core::RelId) -> bool {
    for f1 in a.facts_of(rel) {
        if f1.args.len() != 2 {
            return false;
        }
        for f2 in a.facts_of(rel) {
            if f1.args[1] == f2.args[0] {
                let composed = gomq_core::Fact::new(rel, vec![f1.args[0], f2.args[1]]);
                if !a.contains(&composed) {
                    return false;
                }
            }
        }
    }
    true
}

/// Whether `a ⊨ O`: all sentences hold and all declared functions are
/// functional.
pub fn satisfies_ontology(a: &Interpretation, o: &GfOntology) -> bool {
    o.transitive.iter().all(|&r| is_transitive_in(a, r))
        && o.functional.iter().all(|&r| is_functional_in(a, r))
        && o.inverse_functional
            .iter()
            .all(|&r| is_inverse_functional_in(a, r))
        && o.ugf_sentences.iter().all(|s| satisfies_ugf(a, s))
        && o.other_sentences.iter().all(|s| satisfies_sentence(a, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::{Fact, Vocab};

    fn chain(v: &mut Vocab, n: usize) -> Interpretation {
        let r = v.rel("R", 2);
        let mut i = Interpretation::new();
        for k in 0..n {
            let a = v.constant(&format!("e{k}"));
            let b = v.constant(&format!("e{}", k + 1));
            i.insert(Fact::consts(r, &[a, b]));
        }
        i
    }

    #[test]
    fn exists_along_guard() {
        let mut v = Vocab::new();
        let i = chain(&mut v, 2);
        let r = v.rel("R", 2);
        let (x, y) = (LVar(0), LVar(1));
        // φ(x) = ∃y(R(x,y) ∧ true)
        let phi = Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::True),
        };
        let e0 = Term::Const(v.constant("e0"));
        let e2 = Term::Const(v.constant("e2"));
        let mut asg = Assignment::new();
        asg.insert(x, e0);
        assert!(eval(&phi, &i, &asg));
        asg.insert(x, e2);
        assert!(!eval(&phi, &i, &asg));
    }

    #[test]
    fn forall_with_equality_guard_ranges_over_domain() {
        let mut v = Vocab::new();
        let i = chain(&mut v, 2);
        let r = v.rel("R", 2);
        let (x, y) = (LVar(0), LVar(1));
        // ∀x ∃y(R(x,y) ∨ R(y,x)) — every node is incident to an edge.
        let body = Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::True),
        };
        let sent = Formula::Forall {
            qvars: vec![x],
            guard: Guard::Eq(x, x),
            body: Box::new(Formula::Or(vec![
                body,
                Formula::Exists {
                    qvars: vec![y],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![y, x],
                    },
                    body: Box::new(Formula::True),
                },
            ])),
        };
        assert!(eval(&sent, &i, &Assignment::new()));
    }

    #[test]
    fn counting_quantifier_counts_distinct_witnesses() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let h = v.constant("h");
        let mut i = Interpretation::new();
        for k in 0..5 {
            let f = v.constant(&format!("f{k}"));
            i.insert(Fact::consts(r, &[h, f]));
        }
        let (x, y) = (LVar(0), LVar(1));
        let mut asg = Assignment::new();
        asg.insert(x, Term::Const(h));
        let at_least = |n: u32| Formula::CountExists {
            n,
            qvar: y,
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::True),
        };
        assert!(eval(&at_least(5), &i, &asg));
        assert!(!eval(&at_least(6), &i, &asg));
    }

    #[test]
    fn functionality_check() {
        let mut v = Vocab::new();
        let r = v.rel("F", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let mut i = Interpretation::new();
        i.insert(Fact::consts(r, &[a, b]));
        assert!(is_functional_in(&i, r));
        i.insert(Fact::consts(r, &[a, c]));
        assert!(!is_functional_in(&i, r));
    }

    #[test]
    fn ontology_satisfaction_with_function() {
        let mut v = Vocab::new();
        let f = v.rel("F", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let mut o = GfOntology::new();
        o.declare_functional(f);
        let mut i = Interpretation::new();
        i.insert(Fact::consts(f, &[a, b]));
        assert!(satisfies_ontology(&i, &o));
        let c = v.constant("c");
        i.insert(Fact::consts(f, &[a, c]));
        assert!(!satisfies_ontology(&i, &o));
    }

    #[test]
    fn omat_ptime_example1_disjoint_union_failure() {
        // OMat/PTime = { ∀x A(x) ∨ ∀x B(x) } — a GF sentence outside uGF.
        // D1 = {A(a)} and D2 = {B(b)} are models but D1 ∪ D2 is not.
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let x = LVar(0);
        let all_a = Formula::Forall {
            qvars: vec![x],
            guard: Guard::Eq(x, x),
            body: Box::new(Formula::unary(a_rel, x)),
        };
        let all_b = Formula::Forall {
            qvars: vec![x],
            guard: Guard::Eq(x, x),
            body: Box::new(Formula::unary(b_rel, x)),
        };
        let s = GfSentence::new(Formula::Or(vec![all_a, all_b]), vec!["x".into()]);
        let a = v.constant("a");
        let b = v.constant("b");
        let d1 = Interpretation::from_facts(vec![Fact::consts(a_rel, &[a])]);
        let d2 = Interpretation::from_facts(vec![Fact::consts(b_rel, &[b])]);
        assert!(satisfies_sentence(&d1, &s));
        assert!(satisfies_sentence(&d2, &s));
        let union = d1.union(&d2);
        assert!(!satisfies_sentence(&union, &s));
    }
}
