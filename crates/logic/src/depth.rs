//! Quantifier depth (§2.1).
//!
//! The *depth* of an openGF formula is the nesting depth of guarded
//! quantifiers (guarded counting quantifiers count too). The depth of a uGF
//! sentence `∀ȳ(α → φ)` is the depth of `φ` — the outermost quantifier is
//! free. The depth of an ontology is the maximum depth of its sentences.

use crate::ontology::{GfOntology, UgfSentence};
use crate::syntax::Formula;

/// The quantifier depth of a formula.
pub fn formula_depth(f: &Formula) -> usize {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => 0,
        Formula::Not(g) => formula_depth(g),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().map(formula_depth).max().unwrap_or(0),
        Formula::Forall { body, .. }
        | Formula::Exists { body, .. }
        | Formula::CountExists { body, .. } => 1 + formula_depth(body),
    }
}

/// The depth of a uGF sentence: the depth of its body (the outermost
/// universal quantifier does not count).
pub fn sentence_depth(s: &UgfSentence) -> usize {
    formula_depth(&s.body)
}

/// The depth of an ontology: the maximum sentence depth. General GF
/// sentences count their full quantifier depth minus one if they are
/// outermost-universal, otherwise their full depth.
pub fn ontology_depth(o: &GfOntology) -> usize {
    let ugf = o
        .ugf_sentences
        .iter()
        .map(sentence_depth)
        .max()
        .unwrap_or(0);
    let other = o
        .other_sentences
        .iter()
        .map(|s| match &s.formula {
            Formula::Forall { body, .. } => formula_depth(body),
            f => formula_depth(f),
        })
        .max()
        .unwrap_or(0);
    ugf.max(other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Guard, LVar};
    use gomq_core::Vocab;

    #[test]
    fn example2_has_depth_one() {
        // ∀xy(R(x,y) → (A(x) ∨ ∃z S(y,z))) is in uGF(1).
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.rel("A", 1);
        let s = v.rel("S", 2);
        let (x, y, z) = (LVar(0), LVar(1), LVar(2));
        let sent = UgfSentence::new(
            vec![x, y],
            Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            Formula::Or(vec![
                Formula::unary(a, x),
                Formula::Exists {
                    qvars: vec![z],
                    guard: Guard::Atom {
                        rel: s,
                        args: vec![y, z],
                    },
                    body: Box::new(Formula::True),
                },
            ]),
            vec!["x".into(), "y".into(), "z".into()],
        );
        assert_eq!(sentence_depth(&sent), 1);
        let o = GfOntology::from_ugf(vec![sent]);
        assert_eq!(ontology_depth(&o), 1);
    }

    #[test]
    fn nested_quantifiers_accumulate() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let (x, y, z) = (LVar(0), LVar(1), LVar(2));
        // ∃y(R(x,y) ∧ ∃z(R(y,z) ∧ true)) has depth 2.
        let f = Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::Exists {
                qvars: vec![z],
                guard: Guard::Atom {
                    rel: r,
                    args: vec![y, z],
                },
                body: Box::new(Formula::True),
            }),
        };
        assert_eq!(formula_depth(&f), 2);
    }

    #[test]
    fn counting_quantifiers_count() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let (x, y) = (LVar(0), LVar(1));
        let f = Formula::CountExists {
            n: 5,
            qvar: y,
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(Formula::True),
        };
        assert_eq!(formula_depth(&f), 1);
    }

    #[test]
    fn empty_ontology_has_depth_zero() {
        assert_eq!(ontology_depth(&GfOntology::new()), 0);
    }
}
