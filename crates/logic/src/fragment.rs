//! The Figure-1 fragment lattice and ontology feature extraction.
//!
//! The paper parameterises uGF ontologies by: depth, number of variables
//! (`·₂`), whether the outermost guard must be equality (`·⁻`), whether
//! equality may occur in non-guard positions (`=`), whether partial
//! functions may be declared (`f`), and whether guarded counting
//! quantifiers are allowed (`GC₂`). This module extracts those features
//! from an ontology and matches them against the named fragments of
//! Figure 1, each of which carries its complexity-zone verdict.

use crate::depth::ontology_depth;
use crate::ontology::GfOntology;
use crate::syntax::Formula;
use gomq_core::Vocab;
use std::collections::BTreeSet;
use std::fmt;

/// Syntactic features of an ontology, extracted by [`FragmentFeatures::of`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FragmentFeatures {
    /// All sentences are uGF sentences (invariance under disjoint unions).
    pub is_ugf: bool,
    /// Maximum sentence depth (outermost quantifier not counted).
    pub depth: usize,
    /// Maximum number of distinct variables in any single sentence.
    pub max_vars: usize,
    /// Maximum arity of any relation symbol used.
    pub max_arity: usize,
    /// Every uGF sentence's outermost guard is an equality (`·⁻`).
    pub outer_guard_equality: bool,
    /// Equality occurs in a non-guard position (`=`).
    pub uses_equality: bool,
    /// A guarded counting quantifier occurs (GC₂).
    pub uses_counting: bool,
    /// A functionality axiom is declared (`f`).
    pub uses_functions: bool,
    /// A transitivity declaration occurs (outside every Figure-1
    /// fragment; the paper's conclusion leaves its study open).
    pub uses_transitivity: bool,
}

impl FragmentFeatures {
    /// Extracts the features of an ontology (the vocabulary supplies
    /// arities).
    pub fn of(o: &GfOntology, vocab: &Vocab) -> Self {
        let mut max_vars = 0usize;
        let mut uses_equality = false;
        let mut uses_counting = false;
        let mut outer_eq = true;
        let mut rels: BTreeSet<gomq_core::RelId> = BTreeSet::new();
        for s in &o.ugf_sentences {
            let mut vars = s.body.all_vars();
            vars.extend(s.qvars.iter().copied());
            vars.extend(s.guard.vars());
            max_vars = max_vars.max(vars.len());
            uses_equality |= s.body.uses_equality();
            uses_counting |= s.body.uses_counting();
            outer_eq &= s.outer_guard_is_equality();
            rels.extend(s.rels());
        }
        for s in &o.other_sentences {
            max_vars = max_vars.max(s.formula.all_vars().len());
            uses_equality |= formula_uses_equality_anywhere(&s.formula);
            uses_counting |= s.formula.uses_counting();
            outer_eq = false;
            rels.extend(s.formula.rels());
        }
        rels.extend(o.functional.iter().copied());
        rels.extend(o.inverse_functional.iter().copied());
        rels.extend(o.transitive.iter().copied());
        let max_arity = rels.iter().map(|&r| vocab.arity(r)).max().unwrap_or(0);
        FragmentFeatures {
            is_ugf: o.is_ugf(),
            depth: ontology_depth(o),
            max_vars,
            max_arity,
            outer_guard_equality: outer_eq,
            uses_equality,
            uses_counting,
            uses_functions: !o.functional.is_empty() || !o.inverse_functional.is_empty(),
            uses_transitivity: !o.transitive.is_empty(),
        }
    }
}

fn formula_uses_equality_anywhere(f: &Formula) -> bool {
    // For non-uGF sentences we count equality even in guards, conservatively.
    match f {
        Formula::Eq(_, _) => true,
        Formula::True | Formula::False | Formula::Atom { .. } => false,
        Formula::Not(g) => formula_uses_equality_anywhere(g),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(formula_uses_equality_anywhere),
        Formula::Forall { body, .. }
        | Formula::Exists { body, .. }
        | Formula::CountExists { body, .. } => formula_uses_equality_anywhere(body),
    }
}

/// The complexity zone of a fragment in Figure 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Zone {
    /// PTIME/coNP dichotomy holds; PTIME coincides with Datalog≠-
    /// rewritability (Theorem 7).
    Dichotomy,
    /// A dichotomy would imply the Feder–Vardi conjecture (Theorem 8).
    CspHard,
    /// Provably no dichotomy unless PTIME = NP (Theorem 11).
    NoDichotomy,
    /// Not placed by the paper.
    Unknown,
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Zone::Dichotomy => write!(f, "Dichotomy (Datalog!= = PTIME)"),
            Zone::CspHard => write!(f, "CSP-hard (Datalog!= != PTIME)"),
            Zone::NoDichotomy => write!(f, "No dichotomy"),
            Zone::Unknown => write!(f, "Unclassified"),
        }
    }
}

/// The named guarded-fragment ontology languages of Figure 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Fragment {
    /// uGF(1): depth 1, no equality (except the outer guard), no counting.
    Ugf1,
    /// uGF⁻(1,=): depth 1, outer guard equality, equality allowed.
    UgfMinus1Eq,
    /// uGF⁻₂(2): two variables, depth 2, outer guard equality.
    UgfMinus2_2,
    /// uGC⁻₂(1,=): two variables with counting, depth 1, outer equality.
    UgcMinus2_1Eq,
    /// uGF₂(1,=): two variables, depth 1, equality, unrestricted outer guard.
    Ugf2_1Eq,
    /// uGF₂(2): two variables, depth 2, unrestricted outer guard.
    Ugf2_2,
    /// uGF₂(1,f): two variables, depth 1, partial functions.
    Ugf2_1F,
    /// uGF⁻₂(2,f): two variables, depth 2, outer equality, partial functions.
    UgfMinus2_2F,
    /// Full uGF with equality, any depth.
    UgfFull,
    /// Full GF (not invariant under disjoint unions).
    GfFull,
}

impl Fragment {
    /// All fragments, most restrictive first (so the first match in
    /// [`classify`] is the tightest Figure-1 label).
    pub fn all() -> &'static [Fragment] {
        &[
            Fragment::Ugf1,
            Fragment::UgfMinus1Eq,
            Fragment::UgcMinus2_1Eq,
            Fragment::Ugf2_1Eq,
            Fragment::Ugf2_1F,
            Fragment::UgfMinus2_2,
            Fragment::Ugf2_2,
            Fragment::UgfMinus2_2F,
            Fragment::UgfFull,
            Fragment::GfFull,
        ]
    }

    /// The paper's name for the fragment.
    pub fn name(self) -> &'static str {
        match self {
            Fragment::Ugf1 => "uGF(1)",
            Fragment::UgfMinus1Eq => "uGF-(1,=)",
            Fragment::UgfMinus2_2 => "uGF-2(2)",
            Fragment::UgcMinus2_1Eq => "uGC-2(1,=)",
            Fragment::Ugf2_1Eq => "uGF2(1,=)",
            Fragment::Ugf2_2 => "uGF2(2)",
            Fragment::Ugf2_1F => "uGF2(1,f)",
            Fragment::UgfMinus2_2F => "uGF-2(2,f)",
            Fragment::UgfFull => "uGF(=)",
            Fragment::GfFull => "GF(=)",
        }
    }

    /// The complexity zone Figure 1 assigns to the fragment.
    pub fn zone(self) -> Zone {
        match self {
            Fragment::Ugf1
            | Fragment::UgfMinus1Eq
            | Fragment::UgfMinus2_2
            | Fragment::UgcMinus2_1Eq => Zone::Dichotomy,
            Fragment::Ugf2_1Eq | Fragment::Ugf2_2 | Fragment::Ugf2_1F => Zone::CspHard,
            Fragment::UgfMinus2_2F => Zone::NoDichotomy,
            Fragment::UgfFull | Fragment::GfFull => Zone::Unknown,
        }
    }

    /// Whether an ontology with the given features belongs to the fragment.
    pub fn contains(self, f: &FragmentFeatures) -> bool {
        if f.uses_transitivity {
            return false; // outside GF and every Figure-1 fragment
        }
        let two_var = f.max_vars <= 2 && f.max_arity <= 2;
        match self {
            Fragment::Ugf1 => {
                f.is_ugf
                    && f.depth <= 1
                    && !f.uses_equality
                    && !f.uses_counting
                    && !f.uses_functions
            }
            Fragment::UgfMinus1Eq => {
                f.is_ugf
                    && f.depth <= 1
                    && f.outer_guard_equality
                    && !f.uses_counting
                    && !f.uses_functions
            }
            Fragment::UgfMinus2_2 => {
                f.is_ugf
                    && two_var
                    && f.depth <= 2
                    && f.outer_guard_equality
                    && !f.uses_equality
                    && !f.uses_counting
                    && !f.uses_functions
            }
            Fragment::UgcMinus2_1Eq => {
                f.is_ugf && two_var && f.depth <= 1 && f.outer_guard_equality && !f.uses_functions
            }
            Fragment::Ugf2_1Eq => {
                f.is_ugf && two_var && f.depth <= 1 && !f.uses_counting && !f.uses_functions
            }
            Fragment::Ugf2_2 => {
                f.is_ugf
                    && two_var
                    && f.depth <= 2
                    && !f.uses_equality
                    && !f.uses_counting
                    && !f.uses_functions
            }
            Fragment::Ugf2_1F => {
                f.is_ugf && two_var && f.depth <= 1 && !f.uses_equality && !f.uses_counting
            }
            Fragment::UgfMinus2_2F => {
                f.is_ugf
                    && two_var
                    && f.depth <= 2
                    && f.outer_guard_equality
                    && !f.uses_equality
                    && !f.uses_counting
            }
            Fragment::UgfFull => f.is_ugf && !f.uses_counting && !f.uses_functions,
            Fragment::GfFull => !f.uses_counting && !f.uses_functions,
        }
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// All Figure-1 fragments containing the ontology, most restrictive first.
pub fn classify(o: &GfOntology, vocab: &Vocab) -> Vec<Fragment> {
    let features = FragmentFeatures::of(o, vocab);
    Fragment::all()
        .iter()
        .copied()
        .filter(|fr| fr.contains(&features))
        .collect()
}

/// The tightest Figure-1 fragment containing the ontology, if any.
pub fn best_fragment(o: &GfOntology, vocab: &Vocab) -> Option<Fragment> {
    classify(o, vocab).into_iter().next()
}

/// The best complexity zone derivable from Figure 1 for the ontology: the
/// most favourable zone among the containing fragments (a dichotomy
/// fragment membership dominates).
pub fn best_zone(o: &GfOntology, vocab: &Vocab) -> Zone {
    let mut best = Zone::Unknown;
    for fr in classify(o, vocab) {
        best = match (best, fr.zone()) {
            (_, Zone::Dichotomy) | (Zone::Dichotomy, _) => Zone::Dichotomy,
            (Zone::CspHard, _) | (_, Zone::CspHard) => Zone::CspHard,
            (Zone::NoDichotomy, _) | (_, Zone::NoDichotomy) => Zone::NoDichotomy,
            _ => Zone::Unknown,
        };
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::UgfSentence;
    use crate::syntax::{Guard, LVar};

    fn depth1_sentence(v: &mut Vocab) -> UgfSentence {
        let r = v.rel("R", 2);
        let a = v.rel("A", 1);
        let (x, y) = (LVar(0), LVar(1));
        // ∀x(x=x → ∃y(R(x,y) ∧ A(y)))
        UgfSentence::forall_one(
            x,
            Formula::Exists {
                qvars: vec![y],
                guard: Guard::Atom {
                    rel: r,
                    args: vec![x, y],
                },
                body: Box::new(Formula::unary(a, y)),
            },
            vec!["x".into(), "y".into()],
        )
    }

    #[test]
    fn depth1_no_eq_is_ugf1_dichotomy() {
        let mut v = Vocab::new();
        let o = GfOntology::from_ugf(vec![depth1_sentence(&mut v)]);
        let frags = classify(&o, &v);
        assert_eq!(frags[0], Fragment::Ugf1);
        assert_eq!(best_zone(&o, &v), Zone::Dichotomy);
    }

    #[test]
    fn functions_push_into_f_fragments() {
        let mut v = Vocab::new();
        let s = depth1_sentence(&mut v);
        let mut o = GfOntology::from_ugf(vec![s]);
        let f = v.rel("F", 2);
        o.declare_functional(f);
        let frags = classify(&o, &v);
        assert!(frags.contains(&Fragment::Ugf2_1F));
        assert!(!frags.contains(&Fragment::Ugf1));
        // Outer guard is equality and depth 1 ≤ 2, so uGF⁻₂(2,f) also contains it;
        // the best zone is still the CSP-hard uGF₂(1,f) → actually
        // dichotomy does not apply, so zone is CSP-hard at best.
        assert_eq!(best_zone(&o, &v), Zone::CspHard);
    }

    #[test]
    fn csp_hard_fragment_when_outer_guard_not_equality() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.rel("A", 1);
        let (x, y) = (LVar(0), LVar(1));
        // ∀xy(R(x,y) → (A(x) ∨ x=y)) — depth 0 body with equality, guard R.
        let s = UgfSentence::new(
            vec![x, y],
            Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            Formula::Or(vec![Formula::unary(a, x), Formula::Eq(x, y)]),
            vec!["x".into(), "y".into()],
        );
        let o = GfOntology::from_ugf(vec![s]);
        let frags = classify(&o, &v);
        // Equality in the body rules out uGF(1); non-equality outer guard
        // rules out the ·⁻ fragments except via counting-free uGC: the
        // tightest is uGF₂(1,=).
        assert_eq!(frags[0], Fragment::Ugf2_1Eq);
        assert_eq!(frags[0].zone(), Zone::CspHard);
    }

    #[test]
    fn counting_requires_ugc() {
        let mut v = Vocab::new();
        let r = v.rel("hasFinger", 2);
        let h = v.rel("Hand", 1);
        let (x, y) = (LVar(0), LVar(1));
        // ∀x(Hand(x) → ∃≥5 y hasFinger(x,y)) — as uGF⁻ sentence with equality
        // outer guard: ∀x(x=x → (Hand(x) → ∃≥5 y hasFinger(x,y))).
        let s = UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(h, x),
                Formula::CountExists {
                    n: 5,
                    qvar: y,
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![x, y],
                    },
                    body: Box::new(Formula::True),
                },
            ),
            vec!["x".into(), "y".into()],
        );
        let o = GfOntology::from_ugf(vec![s]);
        let frags = classify(&o, &v);
        assert_eq!(frags[0], Fragment::UgcMinus2_1Eq);
        assert_eq!(best_zone(&o, &v), Zone::Dichotomy);
    }

    #[test]
    fn three_variables_exclude_two_var_fragments() {
        let mut v = Vocab::new();
        let w = v.rel("W", 3);
        let (x, y, z) = (LVar(0), LVar(1), LVar(2));
        let s = UgfSentence::new(
            vec![x, y, z],
            Guard::Atom {
                rel: w,
                args: vec![x, y, z],
            },
            Formula::True,
            vec!["x".into(), "y".into(), "z".into()],
        );
        let o = GfOntology::from_ugf(vec![s]);
        let frags = classify(&o, &v);
        assert!(frags.contains(&Fragment::Ugf1));
        assert!(!frags.contains(&Fragment::Ugf2_2));
    }

    #[test]
    fn no_dichotomy_fragment() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let p = v.rel("P", 2);
        let (x, y, _) = (LVar(0), LVar(1), LVar(2));
        // depth-2, two-variable, outer equality, with a function: uGF⁻₂(2,f).
        let inner = Formula::Exists {
            qvars: vec![x],
            guard: Guard::Atom {
                rel: p,
                args: vec![y, x],
            },
            body: Box::new(Formula::True),
        };
        let s = UgfSentence::forall_one(
            x,
            Formula::Exists {
                qvars: vec![y],
                guard: Guard::Atom {
                    rel: r,
                    args: vec![x, y],
                },
                body: Box::new(inner),
            },
            vec!["x".into(), "y".into()],
        );
        let mut o = GfOntology::from_ugf(vec![s]);
        let f = v.rel("F", 2);
        o.declare_functional(f);
        let frags = classify(&o, &v);
        assert_eq!(frags[0], Fragment::UgfMinus2_2F);
        assert_eq!(best_zone(&o, &v), Zone::NoDichotomy);
    }
}
