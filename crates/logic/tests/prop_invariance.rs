//! Theorem 15 (appendix C), empirically: openGF formulas are invariant
//! under connected guarded bisimulation. Directed cycles of different
//! lengths are guarded bisimilar (each element has in/out degree one and
//! guarded sets cannot count around the cycle), so every openGF formula
//! must agree on corresponding elements — while a *conjunctive query* can
//! tell C3 from C4 (mapping the triangle), which is exactly why query
//! answering is not bisimulation-invariant and the paper's machinery
//! tracks types rather than formulas alone.

use gomq_core::bisim::guarded_bisimilar;
use gomq_core::{Fact, Instance, Term, Vocab};
use gomq_logic::eval::{eval, Assignment};
use gomq_logic::{Formula, Guard, LVar};
use proptest::prelude::*;

fn cycle(v: &mut Vocab, n: usize, tag: &str) -> Instance {
    let r = v.rel("R", 2);
    let mut d = Instance::new();
    for i in 0..n {
        let a = v.constant(&format!("{tag}{i}"));
        let b = v.constant(&format!("{tag}{}", (i + 1) % n));
        d.insert(Fact::consts(r, &[a, b]));
    }
    d
}

/// A vocabulary-independent openGF formula tree with one free variable.
#[derive(Clone, Debug)]
enum Tree {
    True,
    Loop, // R(x,x)
    Not(Box<Tree>),
    And(Box<Tree>, Box<Tree>),
    Or(Box<Tree>, Box<Tree>),
    ExistsFwd(Box<Tree>), // ∃y(R(x,y) ∧ φ(y))
    ExistsBwd(Box<Tree>), // ∃y(R(y,x) ∧ φ(y))
    ForallFwd(Box<Tree>), // ∀y(R(x,y) → φ(y))
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![Just(Tree::True), Just(Tree::Loop)];
    leaf.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| Tree::Not(Box::new(t))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|t| Tree::ExistsFwd(Box::new(t))),
            inner.clone().prop_map(|t| Tree::ExistsBwd(Box::new(t))),
            inner.prop_map(|t| Tree::ForallFwd(Box::new(t))),
        ]
    })
}

/// Realizes the tree as an openGF formula with free variable `LVar(depth)`
/// (fresh variables down the tree avoid capture).
fn realize(t: &Tree, r: gomq_core::RelId, me: u32) -> Formula {
    let x = LVar(me);
    let y = LVar(me + 1);
    match t {
        Tree::True => Formula::True,
        Tree::Loop => Formula::binary(r, x, x),
        Tree::Not(a) => Formula::Not(Box::new(realize(a, r, me))),
        Tree::And(a, b) => Formula::And(vec![realize(a, r, me), realize(b, r, me)]),
        Tree::Or(a, b) => Formula::Or(vec![realize(a, r, me), realize(b, r, me)]),
        Tree::ExistsFwd(a) => Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(realize(a, r, me + 1)),
        },
        Tree::ExistsBwd(a) => Formula::Exists {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![y, x],
            },
            body: Box::new(realize(a, r, me + 1)),
        },
        Tree::ForallFwd(a) => Formula::Forall {
            qvars: vec![y],
            guard: Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            body: Box::new(realize(a, r, me + 1)),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn open_gf_cannot_distinguish_bisimilar_cycles(tree in tree_strategy()) {
        let mut v = Vocab::new();
        let c3 = cycle(&mut v, 3, "a");
        let c4 = cycle(&mut v, 4, "b");
        let r = v.rel("R", 2);
        let a0 = Term::Const(v.constant("a0"));
        let b0 = Term::Const(v.constant("b0"));
        let phi = realize(&tree, r, 0);
        prop_assert!(phi.is_open_gf() || matches!(phi, Formula::True));
        let mut asg3 = Assignment::new();
        asg3.insert(LVar(0), a0);
        let mut asg4 = Assignment::new();
        asg4.insert(LVar(0), b0);
        prop_assert_eq!(
            eval(&phi, &c3, &asg3),
            eval(&phi, &c4, &asg4),
            "openGF formulas agree on bisimilar points: {:?}", tree
        );
    }
}

#[test]
fn the_cycles_really_are_bisimilar() {
    let mut v = Vocab::new();
    let c3 = cycle(&mut v, 3, "a");
    let c4 = cycle(&mut v, 4, "b");
    let a0 = Term::Const(v.constant("a0"));
    let b0 = Term::Const(v.constant("b0"));
    assert!(guarded_bisimilar(&c3, &[a0], &c4, &[b0]));
}

#[test]
fn conjunctive_queries_do_distinguish_the_cycles() {
    // The Boolean CQ "there is a 3-cycle" holds on C3, not on C4 — CQs are
    // preserved by homomorphisms, not by guarded bisimulation.
    use gomq_core::query::CqBuilder;
    let mut v = Vocab::new();
    let c3 = cycle(&mut v, 3, "a");
    let c4 = cycle(&mut v, 4, "b");
    let r = v.rel("R", 2);
    let mut b = CqBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let z = b.var("z");
    b.atom(r, &[x, y]).atom(r, &[y, z]).atom(r, &[z, x]);
    let q = b.build(vec![]);
    assert!(q.holds_boolean(&c3));
    assert!(!q.holds_boolean(&c4));
}
