//! The marker ontologies of Theorem 10: `O_cell` and `O_P` in ALCIF`
//! of depth 2.
//!
//! The grid is represented by binary relations `X` and `Y`, declared
//! locally functional in all four directions. A *marker* is the concept
//! `(= 1 Q)` for an auxiliary binary relation `Q` with the global axiom
//! `⊤ ⊑ ∃Q.⊤`: every element chooses between exactly one and more than
//! one `Q`-successor — a difference invisible to conjunctive queries (in
//! which equality and counting are unavailable). `O_cell` propagates
//! markers to detect closed grid cells (`(= 1 P)`); `O_P` verifies a
//! properly tiled rectangle from the top-right corner down to the
//! bottom-left, where it raises the marker `(= 1 A)` — and the
//! undecidability/non-dichotomy ontologies attach a disjunction
//! `(= 1 A) ⊑ B₁ ⊔ B₂` to it.

use crate::tiling::TilingSystem;
use gomq_core::{Fact, Instance, RelId, Vocab};
use gomq_dl::concept::{Concept, Role};
use gomq_dl::DlOntology;
use std::collections::BTreeMap;

/// A single letter of a marker word.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Letter {
    /// Follow `X` forward.
    X,
    /// Follow `Y` forward.
    Y,
    /// Follow `X` backward.
    Xi,
    /// Follow `Y` backward.
    Yi,
}

/// The grid-and-marker ontology builder.
pub struct CellOntology {
    /// The assembled axioms.
    pub onto: DlOntology,
    /// The grid relations.
    pub x: RelId,
    /// The vertical grid relation.
    pub y: RelId,
    /// The cell marker relation `P`.
    pub p: RelId,
    /// The choice relations `R₁`, `R₂`.
    pub r: [RelId; 2],
    /// All auxiliary relations (for the `⊤ ⊑ ∃Q.⊤` axioms).
    pub aux: Vec<RelId>,
    word_rels: BTreeMap<(usize, Vec<Letter>), RelId>,
}

impl CellOntology {
    /// The marker concept `(= 1 Q)`.
    fn marker(rel: RelId) -> Concept {
        Concept::exactly_one(Role::new(rel))
    }

    /// The relation `R^W_i`, with its chain of `≡`-definitions
    /// `(= 1 R^{ZW}_i) ≡ ∃Z.(= 1 R^W_i)` emitted on first use.
    fn word_rel(&mut self, i: usize, word: &[Letter], vocab: &mut Vocab) -> RelId {
        if word.is_empty() {
            return self.r[i];
        }
        if let Some(&r) = self.word_rels.get(&(i, word.to_vec())) {
            return r;
        }
        let suffix_rel = self.word_rel(i, &word[1..], vocab);
        let name = format!(
            "Rw{}_{}",
            i + 1,
            word.iter()
                .map(|l| match l {
                    Letter::X => "x",
                    Letter::Y => "y",
                    Letter::Xi => "u",
                    Letter::Yi => "v",
                })
                .collect::<String>()
        );
        let rel = vocab.rel(&name, 2);
        self.aux.push(rel);
        let step_role = match word[0] {
            Letter::X => Role::new(self.x),
            Letter::Y => Role::new(self.y),
            Letter::Xi => Role::inv(self.x),
            Letter::Yi => Role::inv(self.y),
        };
        self.onto.equiv(
            Self::marker(rel),
            Concept::Exists(step_role, Box::new(Self::marker(suffix_rel))),
        );
        self.word_rels.insert((i, word.to_vec()), rel);
        rel
    }

    /// The marker concept `(= 1 R^W_i)`.
    fn word_marker(&mut self, i: usize, word: &[Letter], vocab: &mut Vocab) -> Concept {
        let rel = self.word_rel(i, word, vocab);
        Self::marker(rel)
    }
}

/// Builds `O_cell` (the cell-closing ontology of Theorem 10).
pub fn build_cell_ontology(vocab: &mut Vocab) -> CellOntology {
    let x = vocab.rel("Xg", 2);
    let y = vocab.rel("Yg", 2);
    let p = vocab.rel("Pm", 2);
    let r1 = vocab.rel("R1m", 2);
    let r2 = vocab.rel("R2m", 2);
    let mut cell = CellOntology {
        onto: DlOntology::new(),
        x,
        y,
        p,
        r: [r1, r2],
        aux: vec![p, r1, r2],
        word_rels: BTreeMap::new(),
    };
    use Letter::{Xi, Yi, X, Y};
    // (1) Local functionality of X, Y and their inverses.
    for role in [Role::new(x), Role::new(y), Role::inv(x), Role::inv(y)] {
        cell.onto.sub(Concept::Top, Concept::at_most_one(role));
    }
    // (2) Every node carries exactly one R₁- or exactly one R₂-successor.
    cell.onto.sub(
        Concept::Top,
        Concept::Or(vec![CellOntology::marker(r1), CellOntology::marker(r2)]),
    );
    // (3) Both diagonal markers for both i set the cell marker.
    let m_xy_1 = cell.word_marker(0, &[X, Y], vocab);
    let m_yx_1 = cell.word_marker(0, &[Y, X], vocab);
    let m_xy_2 = cell.word_marker(1, &[X, Y], vocab);
    let m_yx_2 = cell.word_marker(1, &[Y, X], vocab);
    cell.onto.sub(
        Concept::And(vec![m_xy_1, m_yx_1, m_xy_2, m_yx_2]),
        CellOntology::marker(p),
    );
    // (4) On the C-cycles (C = X⁻Y⁻XY), (=1Rᵢ) recurs at least every third
    // node: (=1 R^CC_j) ⊑ (=1Rᵢ) ⊔ (=1 R^C_i) ⊔ (=1 R^CC_i), {i,j}={1,2}.
    let c_word = [Xi, Yi, X, Y];
    let cc_word: Vec<Letter> = c_word.iter().chain(c_word.iter()).copied().collect();
    for (i, j) in [(0usize, 1usize), (1, 0)] {
        let lhs = cell.word_marker(j, &cc_word, vocab);
        let ri = CellOntology::marker(cell.r[i]);
        let rc = cell.word_marker(i, &c_word, vocab);
        let rcc = cell.word_marker(i, &cc_word, vocab);
        cell.onto.sub(lhs, Concept::Or(vec![ri, rc, rcc]));
    }
    // (5) Joint markers propagate to neighbours: if both (=1R₁) and
    // (=1R₂) hold C-away (in either diagonal direction), they hold here.
    let r12 = Concept::And(vec![CellOntology::marker(r1), CellOntology::marker(r2)]);
    let c1 = cell.word_marker(0, &c_word, vocab);
    let c2 = cell.word_marker(1, &c_word, vocab);
    cell.onto.sub(Concept::And(vec![c1, c2]), r12.clone());
    let d_word = [Yi, Xi, Y, X];
    let d1 = cell.word_marker(0, &d_word, vocab);
    let d2 = cell.word_marker(1, &d_word, vocab);
    cell.onto.sub(Concept::And(vec![d1, d2]), r12);
    // (6) ⊤ ⊑ ∃Q.⊤ for all auxiliary relations.
    for q in cell.aux.clone() {
        cell.onto.sub(Concept::Top, Concept::some(Role::new(q)));
    }
    cell
}

/// The grid-verification ontology `O_P` for a tiling system, together
/// with the tile relations and the corner marker `A`.
pub struct GridOntology {
    /// The cell machinery (extended with the grid axioms).
    pub cell: CellOntology,
    /// Tile relations, one unary relation per tile type.
    pub tiles: Vec<RelId>,
    /// The corner marker relation `A`.
    pub a: RelId,
    /// The disjunction heads `B₁`, `B₂` of the undecidability ontology.
    pub b: [RelId; 2],
}

/// Builds `O_P ∪ {(=1A) ⊑ B₁ ⊔ B₂}` for a tiling system.
pub fn build_grid_ontology(p: &TilingSystem, vocab: &mut Vocab) -> GridOntology {
    let mut cell = build_cell_ontology(vocab);
    let tiles: Vec<RelId> = (0..p.num_tiles)
        .map(|t| vocab.rel(&format!("Tile{t}"), 1))
        .collect();
    let f = vocab.rel("Fm", 2);
    let fx = vocab.rel("FXm", 2);
    let fy = vocab.rel("FYm", 2);
    let u = vocab.rel("Um", 2);
    let r_m = vocab.rel("Rm", 2);
    let l = vocab.rel("Lm", 2);
    let d = vocab.rel("Dm", 2);
    let a = vocab.rel("Am", 2);
    for q in [f, fx, fy, u, r_m, l, d, a] {
        cell.aux.push(q);
        cell.onto.sub(Concept::Top, Concept::some(Role::new(q)));
    }
    let m = CellOntology::marker;
    let x_role = Role::new(cell.x);
    let y_role = Role::new(cell.y);
    let t_init = Concept::Name(tiles[p.init]);
    let t_final = Concept::Name(tiles[p.fin]);
    // Tfinal ⊑ (=1F) ⊓ (=1U) ⊓ (=1R).
    cell.onto
        .sub(t_final.clone(), Concept::And(vec![m(f), m(u), m(r_m)]));
    // Upper border propagation along H; right border along V.
    for &(ti, tj) in &p.h {
        cell.onto.sub(
            Concept::And(vec![
                Concept::Exists(
                    x_role,
                    Box::new(Concept::And(vec![m(u), m(f), Concept::Name(tiles[tj])])),
                ),
                Concept::Name(tiles[ti]),
            ]),
            Concept::And(vec![m(u), m(f)]),
        );
    }
    for &(ti, tl) in &p.v {
        cell.onto.sub(
            Concept::And(vec![
                Concept::Exists(
                    y_role,
                    Box::new(Concept::And(vec![m(r_m), m(f), Concept::Name(tiles[tl])])),
                ),
                Concept::Name(tiles[ti]),
            ]),
            Concept::And(vec![m(r_m), m(f)]),
        );
    }
    // ∃Y.(=1F) ⊑ (=1FY); ∃X.(=1F) ⊑ (=1FX).
    cell.onto
        .sub(Concept::Exists(y_role, Box::new(m(f))), m(fy));
    cell.onto
        .sub(Concept::Exists(x_role, Box::new(m(f))), m(fx));
    // Interior propagation through closed, properly tiled cells.
    for &(ti, tj) in &p.h {
        for &(ti2, tl) in &p.v {
            if ti != ti2 {
                continue;
            }
            cell.onto.sub(
                Concept::And(vec![
                    Concept::Exists(
                        x_role,
                        Box::new(Concept::And(vec![Concept::Name(tiles[tj]), m(f), m(fy)])),
                    ),
                    Concept::Exists(
                        y_role,
                        Box::new(Concept::And(vec![Concept::Name(tiles[tl]), m(f), m(fx)])),
                    ),
                    m(cell.p),
                    Concept::Name(tiles[ti]),
                ]),
                m(f),
            );
        }
    }
    // (=1F) ⊓ Tinit ⊑ (=1A) ⊓ (=1D) ⊓ (=1L).
    cell.onto.sub(
        Concept::And(vec![m(f), t_init]),
        Concept::And(vec![m(a), m(d), m(l)]),
    );
    // Tiles are mutually exclusive.
    for s in 0..p.num_tiles {
        for t in (s + 1)..p.num_tiles {
            cell.onto.sub(
                Concept::And(vec![Concept::Name(tiles[s]), Concept::Name(tiles[t])]),
                Concept::Bot,
            );
        }
    }
    // Border axioms.
    cell.onto
        .sub(m(u), Concept::Forall(y_role, Box::new(Concept::Bot)));
    cell.onto
        .sub(m(r_m), Concept::Forall(x_role, Box::new(Concept::Bot)));
    cell.onto.sub(m(u), Concept::Forall(x_role, Box::new(m(u))));
    cell.onto
        .sub(m(r_m), Concept::Forall(y_role, Box::new(m(r_m))));
    cell.onto.sub(
        m(d),
        Concept::Forall(Role::inv(cell.y), Box::new(Concept::Bot)),
    );
    cell.onto.sub(
        m(l),
        Concept::Forall(Role::inv(cell.x), Box::new(Concept::Bot)),
    );
    cell.onto.sub(m(d), Concept::Forall(x_role, Box::new(m(d))));
    cell.onto.sub(m(l), Concept::Forall(y_role, Box::new(m(l))));
    // The non-materializability head: (=1A) ⊑ B₁ ⊔ B₂.
    let b1 = vocab.rel("B1h", 1);
    let b2 = vocab.rel("B2h", 1);
    cell.onto.sub(
        m(a),
        Concept::Or(vec![Concept::Name(b1), Concept::Name(b2)]),
    );
    GridOntology {
        cell,
        tiles,
        a,
        b: [b1, b2],
    }
}

/// Builds the grid instance of a tiling (Lemma 13): the `X`/`Y` grid with
/// the tiles written on it. `grid[row][col]`, row 0 at the bottom.
#[allow(clippy::needless_range_loop)]
pub fn grid_instance(g: &GridOntology, grid: &[Vec<usize>], vocab: &mut Vocab) -> Instance {
    let rows = grid.len();
    let cols = grid[0].len();
    let mut d = Instance::new();
    let node = |vocab: &mut Vocab, ri: usize, ci: usize| vocab.constant(&format!("g_{ri}_{ci}"));
    for ri in 0..rows {
        for ci in 0..cols {
            let n = node(vocab, ri, ci);
            d.insert(Fact::consts(g.tiles[grid[ri][ci]], &[n]));
            if ci + 1 < cols {
                let nr = node(vocab, ri, ci + 1);
                d.insert(Fact::consts(g.cell.x, &[n, nr]));
            }
            if ri + 1 < rows {
                let nu = node(vocab, ri + 1, ci);
                d.insert(Fact::consts(g.cell.y, &[n, nu]));
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_dl::depth::ontology_depth;
    use gomq_dl::lang::DlFeatures;

    #[test]
    fn cell_ontology_is_alcifl_depth_2() {
        let mut v = Vocab::new();
        let cell = build_cell_ontology(&mut v);
        assert!(ontology_depth(&cell.onto) <= 2);
        let f = DlFeatures::of(&cell.onto);
        assert!(f.inverse, "uses inverse roles");
        assert!(f.local_functionality, "uses (≤1 R)");
        assert!(!f.functionality && !f.hierarchy);
    }

    #[test]
    fn grid_ontology_extends_cell_machinery() {
        let mut v = Vocab::new();
        let p = TilingSystem::solvable_example();
        let g = build_grid_ontology(&p, &mut v);
        assert!(ontology_depth(&g.cell.onto) <= 2);
        assert_eq!(g.tiles.len(), 3);
        assert!(g.cell.onto.axioms.len() > 30);
    }

    #[test]
    fn grid_instance_shape() {
        let mut v = Vocab::new();
        let p = TilingSystem::solvable_example();
        let g = build_grid_ontology(&p, &mut v);
        let grid = vec![vec![0, 1], vec![1, 2]];
        assert!(p.is_tiling(&grid));
        let d = grid_instance(&g, &grid, &mut v);
        // 2×2 grid: 4 tile facts + 2 X edges + 2 Y edges.
        assert_eq!(d.len(), 8);
        assert!(gomq_core::guarded::is_connected(&d));
    }

    #[test]
    fn marker_words_are_shared() {
        let mut v = Vocab::new();
        let cell = build_cell_ontology(&mut v);
        // The CC word relations exist for both i.
        let names: Vec<&str> = cell.aux.iter().map(|&r| v.rel_name(r)).collect();
        assert!(names.iter().any(|n| n.starts_with("Rw1_")));
        assert!(names.iter().any(|n| n.starts_with("Rw2_")));
        // Each auxiliary relation has the ∃Q.⊤ axiom.
        let exists_axioms = cell
            .onto
            .axioms
            .iter()
            .filter(|a| {
                matches!(a, gomq_dl::Axiom::ConceptInclusion(c, d)
                    if *c == Concept::Top && matches!(d, Concept::Exists(_, inner) if **inner == Concept::Top))
            })
            .count();
        assert_eq!(exists_axioms, cell.aux.len());
    }
}
