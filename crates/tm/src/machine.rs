//! Nondeterministic Turing machines with a single one-sided tape.
//!
//! A configuration is represented as the string `v q w` (§7): the tape
//! content with the state symbol inserted at the head position. Runs are
//! sequences of configurations of equal length, so the tape length is
//! fixed per run (the paper pads configurations to a common length).

use std::collections::BTreeSet;

/// A tape symbol (0 is the blank).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(pub u8);

/// The blank symbol.
pub const BLANK: Sym = Sym(0);

/// A machine state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct State(pub u8);

/// Head movement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Left.
    L,
    /// Right.
    R,
}

/// A transition `(q, a) → (q', a', d)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transition {
    /// Current state.
    pub from: State,
    /// Symbol under the head.
    pub read: Sym,
    /// Next state.
    pub to: State,
    /// Symbol written.
    pub write: Sym,
    /// Head movement.
    pub dir: Dir,
}

/// A nondeterministic Turing machine.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Number of states (states are `0..num_states`).
    pub num_states: u8,
    /// Number of tape symbols including the blank (`0..num_syms`).
    pub num_syms: u8,
    /// The transition relation.
    pub delta: Vec<Transition>,
    /// The start state.
    pub start: State,
    /// The accepting state (no outgoing transitions).
    pub accept: State,
}

/// A configuration: tape cells with the state inserted at the head
/// position (so `cells.len()` = tape length + 1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Config {
    /// The `v q w` string: each entry is either a symbol or the state.
    pub cells: Vec<Cell>,
}

/// A cell of the `v q w` representation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Cell {
    /// A tape symbol.
    S(Sym),
    /// The machine state (exactly one per configuration).
    Q(State),
}

impl Config {
    /// The initial configuration `q₀ w` padded to tape length `len`.
    pub fn initial(m: &Machine, input: &[Sym], len: usize) -> Config {
        assert!(input.len() <= len, "input longer than the tape");
        let mut cells = vec![Cell::Q(m.start)];
        cells.extend(input.iter().map(|&s| Cell::S(s)));
        cells.extend(std::iter::repeat_n(Cell::S(BLANK), len - input.len()));
        Config { cells }
    }

    /// The head position (index of the state cell).
    pub fn head(&self) -> usize {
        self.cells
            .iter()
            .position(|c| matches!(c, Cell::Q(_)))
            .expect("a configuration has a state cell")
    }

    /// The machine state.
    pub fn state(&self) -> State {
        match self.cells[self.head()] {
            Cell::Q(q) => q,
            Cell::S(_) => unreachable!(),
        }
    }

    /// Whether this is an accepting configuration of `m`.
    pub fn is_accepting(&self, m: &Machine) -> bool {
        self.state() == m.accept
    }

    /// Whether the configuration is well-formed: exactly one state cell.
    pub fn is_valid(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| matches!(c, Cell::Q(_)))
            .count()
            == 1
    }

    /// All successor configurations under the machine's transitions. The
    /// tape length stays fixed; a move off either end is dropped.
    pub fn successors(&self, m: &Machine) -> Vec<Config> {
        let h = self.head();
        let q = self.state();
        // The symbol under the head is the cell right of the state marker;
        // at the right end the head reads blank only if a cell exists.
        let Some(&Cell::S(read)) = self.cells.get(h + 1) else {
            return Vec::new(); // head at the right edge of the fixed tape
        };
        let mut out = Vec::new();
        for t in &m.delta {
            if t.from != q || t.read != read {
                continue;
            }
            match t.dir {
                Dir::R => {
                    // v q a w → v a' q w
                    let mut cells = self.cells.clone();
                    cells[h] = Cell::S(t.write);
                    cells[h + 1] = Cell::Q(t.to);
                    out.push(Config { cells });
                }
                Dir::L => {
                    if h == 0 {
                        continue; // cannot move left of the first cell
                    }
                    // v b q a w → v q' b a' w
                    let mut cells = self.cells.clone();
                    let b = cells[h - 1];
                    cells[h - 1] = Cell::Q(t.to);
                    cells[h] = b;
                    cells[h + 1] = Cell::S(t.write);
                    out.push(Config { cells });
                }
            }
        }
        out
    }
}

impl Machine {
    /// Whether the machine accepts `input` within `max_steps` steps on a
    /// tape of length `tape_len` (bounded-run acceptance).
    pub fn accepts_bounded(&self, input: &[Sym], tape_len: usize, max_steps: usize) -> bool {
        let start = Config::initial(self, input, tape_len);
        let mut frontier: BTreeSet<Config> = [start].into_iter().collect();
        for _ in 0..=max_steps {
            if frontier.iter().any(|c| c.is_accepting(self)) {
                return true;
            }
            let mut next = BTreeSet::new();
            for c in &frontier {
                next.extend(c.successors(self));
            }
            if next.is_subset(&frontier) && next.len() == frontier.len() {
                break;
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        frontier.iter().any(|c| c.is_accepting(self))
    }

    /// A tiny machine that scans right over `1`s and accepts iff the
    /// number of 1s is even (deterministic; useful in tests).
    pub fn even_ones() -> Machine {
        // States: 0 = even (start), 1 = odd, 2 = accept.
        // On 1: flip parity, move right. On blank: accept if even.
        Machine {
            num_states: 3,
            num_syms: 2,
            delta: vec![
                Transition {
                    from: State(0),
                    read: Sym(1),
                    to: State(1),
                    write: Sym(1),
                    dir: Dir::R,
                },
                Transition {
                    from: State(1),
                    read: Sym(1),
                    to: State(0),
                    write: Sym(1),
                    dir: Dir::R,
                },
                Transition {
                    from: State(0),
                    read: BLANK,
                    to: State(2),
                    write: BLANK,
                    dir: Dir::R,
                },
            ],
            start: State(0),
            accept: State(2),
        }
    }

    /// A nondeterministic machine that guesses a bit, writes it, and
    /// accepts iff the guessed bit matches the (single) input symbol —
    /// exercising nondeterminism in tests.
    pub fn guess_bit() -> Machine {
        // States: 0 start, 1 saw-1-guess, 2 accept.
        Machine {
            num_states: 3,
            num_syms: 3, // blank, 1, 2
            delta: vec![
                // Guess: on reading the input symbol s ∈ {1,2},
                // nondeterministically accept or loop forever.
                Transition {
                    from: State(0),
                    read: Sym(1),
                    to: State(2),
                    write: Sym(1),
                    dir: Dir::R,
                },
                Transition {
                    from: State(0),
                    read: Sym(1),
                    to: State(1),
                    write: Sym(1),
                    dir: Dir::R,
                },
                Transition {
                    from: State(1),
                    read: BLANK,
                    to: State(1),
                    write: BLANK,
                    dir: Dir::R,
                },
            ],
            start: State(0),
            accept: State(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ones_machine() {
        let m = Machine::even_ones();
        assert!(m.accepts_bounded(&[], 3, 10));
        assert!(!m.accepts_bounded(&[Sym(1)], 3, 10));
        assert!(m.accepts_bounded(&[Sym(1), Sym(1)], 4, 10));
        assert!(!m.accepts_bounded(&[Sym(1), Sym(1), Sym(1)], 5, 10));
    }

    #[test]
    fn configurations_track_head_and_state() {
        let m = Machine::even_ones();
        let c = Config::initial(&m, &[Sym(1), Sym(1)], 3);
        assert_eq!(c.head(), 0);
        assert_eq!(c.state(), State(0));
        assert!(c.is_valid());
        assert_eq!(c.cells.len(), 4);
        let succ = c.successors(&m);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].head(), 1);
        assert_eq!(succ[0].state(), State(1));
    }

    #[test]
    fn left_moves_and_edges() {
        // A machine that moves left immediately cannot move at position 0.
        let m = Machine {
            num_states: 2,
            num_syms: 2,
            delta: vec![Transition {
                from: State(0),
                read: BLANK,
                to: State(1),
                write: BLANK,
                dir: Dir::L,
            }],
            start: State(0),
            accept: State(1),
        };
        let c = Config::initial(&m, &[], 2);
        assert!(c.successors(&m).is_empty());
    }

    #[test]
    fn nondeterministic_branching() {
        let m = Machine::guess_bit();
        let c = Config::initial(&m, &[Sym(1)], 2);
        let succ = c.successors(&m);
        assert_eq!(succ.len(), 2);
        assert!(m.accepts_bounded(&[Sym(1)], 2, 5));
        assert!(!m.accepts_bounded(&[Sym(2)], 2, 5));
    }

    #[test]
    fn right_edge_blocks() {
        let m = Machine::even_ones();
        // Tape length equal to input length: after scanning, the head sits
        // at the right edge and cannot read the final blank — rejected.
        assert!(!m.accepts_bounded(&[Sym(1), Sym(1)], 2, 10));
    }
}
