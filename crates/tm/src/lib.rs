//! # gomq-tm
//!
//! The hardness-side substrates of the paper:
//!
//! * [`machine`] — nondeterministic Turing machines with a one-sided tape,
//!   configurations and runs (§7),
//! * [`runfit`] — the *run fitting problem* (Definition 8): does a partial
//!   run (with wildcards) match an accepting run? A complete backtracking
//!   solver, the NP membership witness, and the Ladner-style padded
//!   language `{1^(n^H(n))}` scaffolding,
//! * [`twotwo`] — 2+2-SAT (the reduction source of Theorem 3) with a
//!   brute-force solver and the gadget construction turning a
//!   non-materializability witness into coNP-hardness instances,
//! * [`tiling`] — finite rectangle tiling systems and a bounded solver,
//! * [`tiling_onto`] — the marker ontologies of Theorem 10: `O_cell`
//!   (closing grid cells with `(= 1 P)` markers) and `O_P` (verifying
//!   tiled grids), in ALCIF` of depth 2.

#![warn(missing_docs)]

pub mod machine;
pub mod runfit;
pub mod runfit_onto;
pub mod tiling;
pub mod tiling_onto;
pub mod twotwo;

pub use machine::{Config, Dir, Machine, Sym};
pub use runfit::{run_fitting, PartialConfig, PartialRun};
pub use tiling::TilingSystem;
pub use twotwo::{Clause, TwoTwoSat};
