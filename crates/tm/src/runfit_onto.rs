//! The Lemma-4 ontologies: simulating a Turing machine on the marker grid.
//!
//! For a machine `M`, the ontology `O_M` extends the grid machinery of
//! Theorem 10: rows of the `X`/`Y`-grid hold configurations, states `q`
//! and tape symbols `G` are represented by the markers `(≥ 2 q)` /
//! `(≥ 2 G)` over auxiliary binary relations — presettable *positively*
//! in an input instance (add two distinct successors), matching the run
//! fitting problem where cells of a partial run may be pinned. The
//! successor-row axioms enforce `M`'s transition relation cell-by-cell
//! using marker words `(≥ 2 S^X)`, `(≥ 2 S^{XY})`, … chained by
//! `≡`-definitions, and the accepting state at the top row drives the
//! verification that yields the `(= 1 A)` head marker and, in the
//! non-dichotomy ontology, the disjunction `B₁ ⊔ B₂`.

use crate::machine::{Machine, State, Sym};
use crate::tiling_onto::{build_cell_ontology, CellOntology};
use gomq_core::{Fact, Instance, RelId, Vocab};
use gomq_dl::concept::{Concept, Role};
use std::collections::BTreeMap;

/// The run-fitting ontology for a machine.
pub struct RunFitOntology {
    /// The grid + marker machinery, extended with the simulation axioms.
    pub cell: CellOntology,
    /// One binary relation per state (marker `(≥ 2 q)`).
    pub state_rels: Vec<RelId>,
    /// One binary relation per tape symbol (marker `(≥ 2 G)`).
    pub sym_rels: Vec<RelId>,
    /// The accepting head relation (marker `(= 1 N)`-style trigger).
    pub accept_head: RelId,
    /// Word-shifted marker relations, keyed by `(base relation, word)`.
    shifted: BTreeMap<(RelId, &'static str), RelId>,
}

/// The marker `(≥ 2 Q)` for a binary relation.
fn ge2(rel: RelId) -> Concept {
    Concept::at_least_two(Role::new(rel))
}

impl RunFitOntology {
    /// The marker relation for `base` shifted along `word` (a sequence of
    /// grid steps, e.g. `"x"`, `"xx"`, `"xy"`), with the `≡`-definitions
    /// `(≥2 S^{Zw}) ≡ ∃Z.(≥2 S^w)` emitted on first use.
    fn shift(&mut self, base: RelId, word: &'static str, vocab: &mut Vocab) -> RelId {
        if word.is_empty() {
            return base;
        }
        if let Some(&r) = self.shifted.get(&(base, word)) {
            return r;
        }
        let suffix = &word[1..];
        let suffix_static: &'static str = match suffix {
            "" => "",
            "x" => "x",
            "y" => "y",
            "xx" => "xx",
            "xy" => "xy",
            "xxy" => "xxy",
            other => panic!("unsupported marker word suffix {other}"),
        };
        let suffix_rel = self.shift(base, suffix_static, vocab);
        let name = format!("{}_{}", vocab.rel_name(base).to_owned(), word);
        let rel = vocab.rel(&name, 2);
        self.cell.aux.push(rel);
        self.cell
            .onto
            .sub(Concept::Top, Concept::some(Role::new(rel)));
        let step = match word.as_bytes()[0] {
            b'x' => Role::new(self.cell.x),
            b'y' => Role::new(self.cell.y),
            other => panic!("unsupported step {other}"),
        };
        self.cell
            .onto
            .equiv(ge2(rel), Concept::Exists(step, Box::new(ge2(suffix_rel))));
        self.shifted.insert((base, word), rel);
        rel
    }
}

/// Builds `O_M`: the grid machinery plus the machine-simulation axioms.
pub fn run_fitting_ontology(m: &Machine, vocab: &mut Vocab) -> RunFitOntology {
    let cell = build_cell_ontology(vocab);
    let state_rels: Vec<RelId> = (0..m.num_states)
        .map(|q| vocab.rel(&format!("stq{q}"), 2))
        .collect();
    let sym_rels: Vec<RelId> = (0..m.num_syms)
        .map(|g| vocab.rel(&format!("sy{g}"), 2))
        .collect();
    let accept_head = vocab.rel("accHead", 2);
    let mut rf = RunFitOntology {
        cell,
        state_rels: state_rels.clone(),
        sym_rels: sym_rels.clone(),
        accept_head,
        shifted: BTreeMap::new(),
    };
    for &r in state_rels
        .iter()
        .chain(sym_rels.iter())
        .chain([&accept_head])
    {
        rf.cell.aux.push(r);
        rf.cell.onto.sub(Concept::Top, Concept::some(Role::new(r)));
    }
    // Every grid cell carries exactly one content marker (state or
    // symbol) — mutual exclusion plus coverage.
    let all_contents: Vec<RelId> = state_rels.iter().chain(sym_rels.iter()).copied().collect();
    rf.cell.onto.sub(
        Concept::Top,
        Concept::Or(all_contents.iter().map(|&r| ge2(r)).collect()),
    );
    for (i, &a) in all_contents.iter().enumerate() {
        for &b in &all_contents[i + 1..] {
            rf.cell
                .onto
                .sub(Concept::And(vec![ge2(a), ge2(b)]), Concept::Bot);
        }
    }
    // Transition axioms: a cell x holding symbol G₀ whose right
    // neighbour holds state q and next-right holds G₁ constrains the row
    // above (the triple starting at the cell above x) to a successor
    // triple of G₀ q G₁ under Δ.
    for q in 0..m.num_states {
        for g0 in 0..m.num_syms {
            for g1 in 0..m.num_syms {
                let succ = successor_triples(m, State(q), Sym(g0), Sym(g1));
                let q_x = rf.shift(state_rels[q as usize], "x", vocab);
                let g1_xx = rf.shift(sym_rels[g1 as usize], "xx", vocab);
                let lhs = Concept::And(vec![ge2(sym_rels[g0 as usize]), ge2(q_x), ge2(g1_xx)]);
                let mut disjuncts: Vec<Concept> = Vec::new();
                for (s1, s2, s3) in succ {
                    let r1 = rf.shift(content_rel(&rf, s1), "y", vocab);
                    let r2 = rf.shift(content_rel(&rf, s2), "xy", vocab);
                    let r3 = rf.shift(content_rel(&rf, s3), "xxy", vocab);
                    disjuncts.push(Concept::And(vec![ge2(r1), ge2(r2), ge2(r3)]));
                }
                let rhs = if disjuncts.is_empty() {
                    // No applicable transition: the configuration may not
                    // continue upward — forbid a row above.
                    Concept::Forall(Role::new(rf.cell.y), Box::new(Concept::Bot))
                } else {
                    Concept::Or(disjuncts)
                };
                rf.cell.onto.sub(lhs, rhs);
            }
        }
    }
    // The accepting state marks the head cell.
    rf.cell.onto.sub(
        ge2(state_rels[m.accept.0 as usize]),
        Concept::exactly_one(Role::new(accept_head)),
    );
    rf
}

/// A content cell of the simulation: a state or a symbol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Content {
    Q(State),
    S(Sym),
}

fn content_rel(rf: &RunFitOntology, c: Content) -> RelId {
    match c {
        Content::Q(q) => rf.state_rels[q.0 as usize],
        Content::S(s) => rf.sym_rels[s.0 as usize],
    }
}

/// The possible successor triples of the window `G₀ q G₁` (the cell left
/// of the head, the head, and the cell right of the head) under one step
/// of `M`.
fn successor_triples(m: &Machine, q: State, g0: Sym, g1: Sym) -> Vec<(Content, Content, Content)> {
    let mut out = Vec::new();
    for t in &m.delta {
        if t.from != q || t.read != g1 {
            continue;
        }
        match t.dir {
            crate::machine::Dir::R => {
                // G₀ q G₁ → G₀ G₁' q'  (head moves right over the window).
                out.push((Content::S(g0), Content::S(t.write), Content::Q(t.to)));
            }
            crate::machine::Dir::L => {
                // G₀ q G₁ → q' G₀ G₁'.
                out.push((Content::Q(t.to), Content::S(g0), Content::S(t.write)));
            }
        }
    }
    out
}

/// Translates a partial run into a grid instance: a `rows × cols` grid of
/// `X`/`Y` edges where pinned cells carry their content marker preset
/// positively (two distinct successor nulls).
pub fn partial_run_instance(
    rf: &RunFitOntology,
    partial: &crate::runfit::PartialRun,
    vocab: &mut Vocab,
) -> Instance {
    use crate::machine::Cell;
    use crate::runfit::PCell;
    let rows = partial.rows.len();
    let cols = partial.rows[0].cells.len();
    let mut d = Instance::new();
    let node = |vocab: &mut Vocab, ri: usize, ci: usize| vocab.constant(&format!("rf_{ri}_{ci}"));
    for ri in 0..rows {
        for ci in 0..cols {
            let n = node(vocab, ri, ci);
            if ci + 1 < cols {
                let nr = node(vocab, ri, ci + 1);
                d.insert(Fact::consts(rf.cell.x, &[n, nr]));
            }
            if ri + 1 < rows {
                let nu = node(vocab, ri + 1, ci);
                d.insert(Fact::consts(rf.cell.y, &[n, nu]));
            }
            if let PCell::Fixed(content) = partial.rows[ri].cells[ci] {
                let rel = match content {
                    Cell::Q(q) => rf.state_rels[q.0 as usize],
                    Cell::S(s) => rf.sym_rels[s.0 as usize],
                };
                // Preset the (≥2 rel) marker positively: two successors.
                let w1 = gomq_core::Term::Null(vocab.fresh_null());
                let w2 = gomq_core::Term::Null(vocab.fresh_null());
                d.insert(Fact::new(rel, vec![gomq_core::Term::Const(n), w1]));
                d.insert(Fact::new(rel, vec![gomq_core::Term::Const(n), w2]));
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runfit::{PartialConfig, PartialRun};
    use gomq_dl::depth::ontology_depth;
    use gomq_dl::lang::DlFeatures;

    #[test]
    fn ontology_is_alcifl_depth_2() {
        let mut v = Vocab::new();
        let m = Machine::even_ones();
        let rf = run_fitting_ontology(&m, &mut v);
        assert!(ontology_depth(&rf.cell.onto) <= 2);
        let f = DlFeatures::of(&rf.cell.onto);
        assert!(f.inverse && !f.functionality && !f.hierarchy);
        // Simulation relations cover all states and symbols.
        assert_eq!(rf.state_rels.len(), 3);
        assert_eq!(rf.sym_rels.len(), 2);
    }

    #[test]
    fn transition_axioms_follow_delta() {
        // even_ones: 3 transitions, each generating one successor triple
        // per matching (q, g1) window; windows without transitions get the
        // ∀Y.⊥ cap.
        let mut v = Vocab::new();
        let m = Machine::even_ones();
        let rf = run_fitting_ontology(&m, &mut v);
        // At least num_states × num_syms² transition axioms were emitted.
        assert!(rf.cell.onto.axioms.len() > 3 * 2 * 2);
    }

    #[test]
    fn successor_triples_match_machine_semantics() {
        let m = Machine::even_ones();
        // Window _ q0 1 : reading 1 in the even state flips to odd, moving
        // right: successor _ 1 q1.
        let triples = successor_triples(&m, State(0), Sym(0), Sym(1));
        assert_eq!(triples.len(), 1);
        assert_eq!(
            triples[0],
            (Content::S(Sym(0)), Content::S(Sym(1)), Content::Q(State(1)))
        );
        // Window _ q1 _ : odd state on blank has no transition.
        assert!(successor_triples(&m, State(1), Sym(0), Sym(0)).is_empty());
    }

    #[test]
    fn partial_run_instance_shape() {
        let mut v = Vocab::new();
        let m = Machine::even_ones();
        let rf = run_fitting_ontology(&m, &mut v);
        let c0 = crate::machine::Config::initial(&m, &[Sym(1)], 2);
        let partial = PartialRun::new(vec![
            PartialConfig::from_config(&c0),
            PartialConfig::all_wild(3),
        ]);
        let d = partial_run_instance(&rf, &partial, &mut v);
        // Grid: 2 rows × 3 cols: X edges 2×2=4, Y edges 3; pinned row 0
        // has 3 cells × 2 marker facts.
        assert_eq!(d.len(), 4 + 3 + 6);
        // Preset markers are genuinely ≥ 2 (distinct nulls).
        let q0 = rf.state_rels[0];
        let succ: Vec<_> = d.facts_of(q0).collect();
        assert_eq!(succ.len(), 2);
        assert_ne!(succ[0].args[1], succ[1].args[1]);
    }

    #[test]
    fn marker_words_are_memoized() {
        let mut v = Vocab::new();
        let m = Machine::even_ones();
        let mut rf = run_fitting_ontology(&m, &mut v);
        let base = rf.sym_rels[0];
        let a = rf.shift(base, "xy", &mut v);
        let b = rf.shift(base, "xy", &mut v);
        assert_eq!(a, b);
    }
}
