//! Finite rectangle tiling systems (§7).
//!
//! An instance of the finite rectangle tiling problem is
//! `P = (T, H, V)` with an initial tile placed at the lower-left corner
//! (and nowhere else), a final tile at the upper-right corner (and
//! nowhere else), and horizontal/vertical matching relations. Whether `P`
//! admits a tiling of *some* rectangle is undecidable; the bounded solver
//! below searches rectangles up to a given size.

use std::collections::BTreeSet;

/// A tiling system.
#[derive(Clone, Debug)]
pub struct TilingSystem {
    /// Number of tile types (tiles are `0..num_tiles`).
    pub num_tiles: usize,
    /// Horizontal matching: allowed pairs `(left, right)`.
    pub h: BTreeSet<(usize, usize)>,
    /// Vertical matching: allowed pairs `(below, above)`.
    pub v: BTreeSet<(usize, usize)>,
    /// The initial tile (lower-left corner only).
    pub init: usize,
    /// The final tile (upper-right corner only).
    pub fin: usize,
}

impl TilingSystem {
    /// Whether `grid[row][col]` (row 0 = bottom) is a valid tiling.
    pub fn is_tiling(&self, grid: &[Vec<usize>]) -> bool {
        let rows = grid.len();
        if rows == 0 {
            return false;
        }
        let cols = grid[0].len();
        if cols == 0 || grid.iter().any(|r| r.len() != cols) {
            return false;
        }
        for (ri, row) in grid.iter().enumerate() {
            for (ci, &t) in row.iter().enumerate() {
                let is_corner_init = ri == 0 && ci == 0;
                let is_corner_fin = ri == rows - 1 && ci == cols - 1;
                if (t == self.init) != is_corner_init && self.init != self.fin {
                    return false;
                }
                if (t == self.fin) != is_corner_fin && self.init != self.fin {
                    return false;
                }
                if is_corner_init && t != self.init {
                    return false;
                }
                if is_corner_fin && t != self.fin {
                    return false;
                }
                if ci + 1 < cols && !self.h.contains(&(t, row[ci + 1])) {
                    return false;
                }
                if ri + 1 < rows && !self.v.contains(&(t, grid[ri + 1][ci])) {
                    return false;
                }
            }
        }
        true
    }

    /// Searches for a tiling of any rectangle with dimensions up to
    /// `max_n × max_m`.
    pub fn find_tiling(&self, max_cols: usize, max_rows: usize) -> Option<Vec<Vec<usize>>> {
        for rows in 1..=max_rows {
            for cols in 1..=max_cols {
                if let Some(grid) = self.fill(cols, rows) {
                    return Some(grid);
                }
            }
        }
        None
    }

    fn fill(&self, cols: usize, rows: usize) -> Option<Vec<Vec<usize>>> {
        let mut grid = vec![vec![usize::MAX; cols]; rows];
        self.fill_cell(&mut grid, 0, 0, cols, rows).then_some(grid)
    }

    fn fill_cell(
        &self,
        grid: &mut Vec<Vec<usize>>,
        ri: usize,
        ci: usize,
        cols: usize,
        rows: usize,
    ) -> bool {
        if ri == rows {
            return true;
        }
        let (nri, nci) = if ci + 1 == cols {
            (ri + 1, 0)
        } else {
            (ri, ci + 1)
        };
        for t in 0..self.num_tiles {
            // Corner constraints.
            let is_init_pos = ri == 0 && ci == 0;
            let is_fin_pos = ri == rows - 1 && ci == cols - 1;
            if is_init_pos && t != self.init {
                continue;
            }
            if is_fin_pos && t != self.fin {
                continue;
            }
            if !is_init_pos && t == self.init && self.init != self.fin {
                continue;
            }
            if !is_fin_pos && t == self.fin && self.init != self.fin {
                continue;
            }
            // Matching constraints with already placed neighbours.
            if ci > 0 && !self.h.contains(&(grid[ri][ci - 1], t)) {
                continue;
            }
            if ri > 0 && !self.v.contains(&(grid[ri - 1][ci], t)) {
                continue;
            }
            grid[ri][ci] = t;
            if self.fill_cell(grid, nri, nci, cols, rows) {
                return true;
            }
            grid[ri][ci] = usize::MAX;
        }
        false
    }

    /// A trivially solvable system: tiles {init=0, mid=1, fin=2}, all
    /// adjacencies allowed.
    pub fn solvable_example() -> TilingSystem {
        let mut h = BTreeSet::new();
        let mut v = BTreeSet::new();
        for a in 0..3 {
            for b in 0..3 {
                h.insert((a, b));
                v.insert((a, b));
            }
        }
        TilingSystem {
            num_tiles: 3,
            h,
            v,
            init: 0,
            fin: 2,
        }
    }

    /// An unsolvable system: the final tile can never sit to the right of
    /// or above anything, and the initial tile admits no right/up
    /// neighbour — so no rectangle larger than 1×1 works, and 1×1 fails
    /// because init ≠ fin.
    pub fn unsolvable_example() -> TilingSystem {
        TilingSystem {
            num_tiles: 2,
            h: BTreeSet::new(),
            v: BTreeSet::new(),
            init: 0,
            fin: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solvable_system_finds_a_tiling() {
        let p = TilingSystem::solvable_example();
        let grid = p.find_tiling(3, 3).expect("solvable");
        assert!(p.is_tiling(&grid));
        assert_eq!(grid[0][0], 0);
        let last = grid.last().expect("rows");
        assert_eq!(*last.last().expect("cols"), 2);
    }

    #[test]
    fn unsolvable_system_finds_nothing() {
        let p = TilingSystem::unsolvable_example();
        assert!(p.find_tiling(3, 3).is_none());
    }

    #[test]
    fn corner_constraints_enforced() {
        let p = TilingSystem::solvable_example();
        // Initial tile in a non-corner position invalidates the grid.
        let bad = vec![vec![0, 0], vec![1, 2]];
        assert!(!p.is_tiling(&bad));
        let good = vec![vec![0, 1], vec![1, 2]];
        assert!(p.is_tiling(&good));
    }

    #[test]
    fn matching_constraints_enforced() {
        // Only 0→1→2 horizontally; vertical all-allowed within {0,1,2}.
        let mut h = BTreeSet::new();
        h.insert((0, 1));
        h.insert((1, 2));
        let mut v = BTreeSet::new();
        for a in 0..3 {
            for b in 0..3 {
                v.insert((a, b));
            }
        }
        let p = TilingSystem {
            num_tiles: 3,
            h,
            v,
            init: 0,
            fin: 2,
        };
        let grid = p.find_tiling(3, 1).expect("a 3×1 strip works");
        assert_eq!(grid, vec![vec![0, 1, 2]]);
    }
}
