//! 2+2-SAT and the Theorem-3 reduction.
//!
//! A 2+2 clause has exactly two positive and two negative literals over
//! propositional variables and the truth constants. 2+2-SAT is
//! NP-complete [Schaerf 1993] and is the paper's reduction source: if an
//! ontology `O` (invariant under disjoint unions) is not materializable —
//! witnessed by an instance `D` and queries `q₁, q₂` whose disjunction is
//! certain while neither disjunct is — then evaluating a fixed rAQ
//! w.r.t. `O` is coNP-hard. The gadget: one fresh copy of `D` per
//! variable (truth of `v` = which disjunct holds in the copy), one fresh
//! clause element per clause, linked to the four literal gadgets by fresh
//! relations, and a query matching exactly the falsified clauses.

use gomq_core::query::CqBuilder;
use gomq_core::{Fact, Instance, RelId, Term, Ucq, Vocab};
use std::collections::BTreeMap;

/// A literal: variable index or a truth constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Atom2 {
    /// A propositional variable.
    Var(usize),
    /// The constant true.
    True,
    /// The constant false.
    False,
}

/// A 2+2 clause `(p₁ ∨ p₂ ∨ ¬n₁ ∨ ¬n₂)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Clause {
    /// The two positive atoms.
    pub pos: [Atom2; 2],
    /// The two negated atoms.
    pub neg: [Atom2; 2],
}

/// A 2+2-SAT formula.
#[derive(Clone, Debug, Default)]
pub struct TwoTwoSat {
    /// Number of propositional variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl TwoTwoSat {
    /// Evaluates a clause under an assignment.
    fn clause_satisfied(c: &Clause, asg: &[bool]) -> bool {
        let val = |a: Atom2| match a {
            Atom2::Var(v) => asg[v],
            Atom2::True => true,
            Atom2::False => false,
        };
        val(c.pos[0]) || val(c.pos[1]) || !val(c.neg[0]) || !val(c.neg[1])
    }

    /// Brute-force satisfiability (reference; formulas in tests are small).
    pub fn satisfiable(&self) -> Option<Vec<bool>> {
        let n = self.num_vars;
        assert!(n <= 20, "brute-force solver limited to 20 variables");
        for bits in 0u32..(1u32 << n) {
            let asg: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            if self.clauses.iter().all(|c| Self::clause_satisfied(c, &asg)) {
                return Some(asg);
            }
        }
        None
    }
}

/// The Theorem-3 gadget built from a non-materializability witness.
pub struct TwoTwoGadget {
    /// The constructed instance `D_φ`.
    pub instance: Instance,
    /// The Boolean query whose certainty equals unsatisfiability.
    pub query: Ucq,
}

/// Builds the coNP-hardness gadget for a formula `φ`, given a witness
/// consisting of a base instance `D`, an anchor element `d ∈ dom(D)`, and
/// two unary relations `b_rel`/`c_rel` such that `O,D ⊨ B(d) ∨ C(d)` while
/// neither disjunct is certain (e.g. `O = {A ⊑ B ⊔ C}`, `D = {A(a)}`).
///
/// Truth constants use dedicated gadgets with `B`/`C` asserted outright.
pub fn build_gadget(
    phi: &TwoTwoSat,
    base: &Instance,
    anchor: Term,
    b_rel: RelId,
    c_rel: RelId,
    vocab: &mut Vocab,
) -> TwoTwoGadget {
    let mut instance = Instance::new();
    // Fresh relations for the clause gadget.
    let cl_rel = vocab.rel("_ttCl", 1);
    let link: [RelId; 4] = [
        vocab.rel("_ttP1", 2),
        vocab.rel("_ttP2", 2),
        vocab.rel("_ttN1", 2),
        vocab.rel("_ttN2", 2),
    ];
    // One copy of the base instance per variable; remember the anchors.
    let mut anchors: BTreeMap<usize, Term> = BTreeMap::new();
    for v in 0..phi.num_vars {
        let mut renaming: BTreeMap<Term, Term> = BTreeMap::new();
        for t in base.dom() {
            renaming.insert(t, Term::Null(vocab.fresh_null()));
        }
        for f in base.iter() {
            instance.insert(f.map_terms(|t| renaming[&t]));
        }
        anchors.insert(v, renaming[&anchor]);
    }
    // Truth-constant gadgets: a `true` element satisfies B, a `false`
    // element satisfies C (truth of v ↔ B at the anchor).
    let true_elem = Term::Null(vocab.fresh_null());
    let false_elem = Term::Null(vocab.fresh_null());
    instance.insert(Fact::new(b_rel, vec![true_elem]));
    instance.insert(Fact::new(c_rel, vec![false_elem]));
    let atom_elem = |a: Atom2, anchors: &BTreeMap<usize, Term>| match a {
        Atom2::Var(v) => anchors[&v],
        Atom2::True => true_elem,
        Atom2::False => false_elem,
    };
    // Clause gadgets.
    for clause in &phi.clauses {
        let e = Term::Null(vocab.fresh_null());
        instance.insert(Fact::new(cl_rel, vec![e]));
        instance.insert(Fact::new(
            link[0],
            vec![e, atom_elem(clause.pos[0], &anchors)],
        ));
        instance.insert(Fact::new(
            link[1],
            vec![e, atom_elem(clause.pos[1], &anchors)],
        ));
        instance.insert(Fact::new(
            link[2],
            vec![e, atom_elem(clause.neg[0], &anchors)],
        ));
        instance.insert(Fact::new(
            link[3],
            vec![e, atom_elem(clause.neg[1], &anchors)],
        ));
    }
    // The query: a clause whose positive atoms are false (C) and negative
    // atoms true (B).
    let mut b = CqBuilder::new();
    let z = b.var("z");
    let x1 = b.var("x1");
    let x2 = b.var("x2");
    let x3 = b.var("x3");
    let x4 = b.var("x4");
    b.atom(cl_rel, &[z])
        .atom(link[0], &[z, x1])
        .atom(c_rel, &[x1])
        .atom(link[1], &[z, x2])
        .atom(c_rel, &[x2])
        .atom(link[2], &[z, x3])
        .atom(b_rel, &[x3])
        .atom(link[3], &[z, x4])
        .atom(b_rel, &[x4]);
    let query = Ucq::from_cq(b.build(vec![]));
    TwoTwoGadget { instance, query }
}

/// A deterministic pseudo-random 2+2-SAT generator (for experiments).
pub fn random_formula(num_vars: usize, num_clauses: usize, seed: u64) -> TwoTwoSat {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let mut pick = || Atom2::Var((next() % num_vars as u64) as usize);
        clauses.push(Clause {
            pos: [pick(), pick()],
            neg: [pick(), pick()],
        });
    }
    TwoTwoSat { num_vars, clauses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_dl::concept::Concept;
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;
    use gomq_reasoning::CertainEngine;

    fn witness_setup(vocab: &mut Vocab) -> (gomq_logic::GfOntology, Instance, Term, RelId, RelId) {
        let a = vocab.rel("A", 1);
        let b = vocab.rel("B", 1);
        let c = vocab.rel("C", 1);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a),
            Concept::Or(vec![Concept::Name(b), Concept::Name(c)]),
        );
        let o = to_gf(&dl);
        let ca = vocab.constant("a0");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[ca]));
        (o, d, Term::Const(ca), b, c)
    }

    #[test]
    fn brute_force_solver() {
        // (v0 ∨ v0 ∨ ¬v1 ∨ ¬v1) ∧ (v1 ∨ v1 ∨ ¬v0 ∨ ¬v0): v0 ↔ v1.
        let phi = TwoTwoSat {
            num_vars: 2,
            clauses: vec![
                Clause {
                    pos: [Atom2::Var(0), Atom2::Var(0)],
                    neg: [Atom2::Var(1), Atom2::Var(1)],
                },
                Clause {
                    pos: [Atom2::Var(1), Atom2::Var(1)],
                    neg: [Atom2::Var(0), Atom2::Var(0)],
                },
            ],
        };
        let asg = phi.satisfiable().expect("satisfiable");
        assert_eq!(asg[0], asg[1]);
        // (F ∨ F ∨ ¬T ∨ ¬T) alone is unsatisfiable.
        let unsat = TwoTwoSat {
            num_vars: 0,
            clauses: vec![Clause {
                pos: [Atom2::False, Atom2::False],
                neg: [Atom2::True, Atom2::True],
            }],
        };
        assert!(unsat.satisfiable().is_none());
    }

    #[test]
    fn reduction_on_satisfiable_formula() {
        let mut vocab = Vocab::new();
        let (o, d, anchor, b, c) = witness_setup(&mut vocab);
        // Single clause (v0 ∨ v0 ∨ ¬v0 ∨ ¬v0): trivially satisfiable.
        let phi = TwoTwoSat {
            num_vars: 1,
            clauses: vec![Clause {
                pos: [Atom2::Var(0), Atom2::Var(0)],
                neg: [Atom2::Var(0), Atom2::Var(0)],
            }],
        };
        assert!(phi.satisfiable().is_some());
        let gadget = build_gadget(&phi, &d, anchor, b, c, &mut vocab);
        let engine = CertainEngine::new(1);
        let outcome = engine.certain(&o, &gadget.instance, &gadget.query, &[], &mut vocab);
        assert!(!outcome.is_certain(), "satisfiable ⇒ query not certain");
    }

    #[test]
    fn reduction_on_unsatisfiable_formula() {
        let mut vocab = Vocab::new();
        let (o, d, anchor, b, c) = witness_setup(&mut vocab);
        // (F ∨ F ∨ ¬v0 ∨ ¬v0) ∧ (v0 ∨ v0 ∨ ¬T ∨ ¬T): v0 false and true.
        let phi = TwoTwoSat {
            num_vars: 1,
            clauses: vec![
                Clause {
                    pos: [Atom2::False, Atom2::False],
                    neg: [Atom2::Var(0), Atom2::Var(0)],
                },
                Clause {
                    pos: [Atom2::Var(0), Atom2::Var(0)],
                    neg: [Atom2::True, Atom2::True],
                },
            ],
        };
        assert!(phi.satisfiable().is_none());
        let gadget = build_gadget(&phi, &d, anchor, b, c, &mut vocab);
        let engine = CertainEngine::new(1);
        let outcome = engine.certain(&o, &gadget.instance, &gadget.query, &[], &mut vocab);
        assert!(outcome.is_certain(), "unsatisfiable ⇒ query certain");
    }

    #[test]
    fn reduction_agrees_with_sat_on_random_formulas() {
        let mut ok = 0;
        for seed in 0..6u64 {
            let mut vocab = Vocab::new();
            let (o, d, anchor, b, c) = witness_setup(&mut vocab);
            let phi = random_formula(2, 2, seed);
            let sat = phi.satisfiable().is_some();
            let gadget = build_gadget(&phi, &d, anchor, b, c, &mut vocab);
            let engine = CertainEngine::new(1);
            let certain = engine
                .certain(&o, &gadget.instance, &gadget.query, &[], &mut vocab)
                .is_certain();
            assert_eq!(sat, !certain, "seed {seed}");
            ok += 1;
        }
        assert_eq!(ok, 6);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = random_formula(5, 8, 42);
        let b = random_formula(5, 8, 42);
        assert_eq!(a.clauses.len(), b.clauses.len());
        for (x, y) in a.clauses.iter().zip(b.clauses.iter()) {
            assert_eq!(x, y);
        }
    }
}
