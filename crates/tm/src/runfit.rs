//! The run fitting problem (Definition 8) and the Ladner-style padding.
//!
//! A *partial configuration* replaces some cells of a configuration by a
//! wildcard `?`; a *partial run* is a sequence of equal-length partial
//! configurations. The run fitting problem for a machine `M` asks whether
//! a given partial run matches an accepting run of `M`. It is in NP
//! (guess the completion); Theorem 12 constructs a machine whose run
//! fitting problem is NP-intermediate, via a padded diagonalization — the
//! [`PaddedLanguage`] scaffolding reproduces the padding arithmetic
//! (`1^(n^H(n))` inputs).

use crate::machine::{Cell, Config, Machine, State, Sym};

/// A partial configuration cell: fixed or wildcard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PCell {
    /// A fixed cell.
    Fixed(Cell),
    /// The wildcard `?`.
    Wild,
}

/// A partial configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartialConfig {
    /// The cells.
    pub cells: Vec<PCell>,
}

impl PartialConfig {
    /// A fully-wild partial configuration of the given length.
    pub fn all_wild(len: usize) -> Self {
        PartialConfig {
            cells: vec![PCell::Wild; len],
        }
    }

    /// A fully-fixed partial configuration from a configuration.
    pub fn from_config(c: &Config) -> Self {
        PartialConfig {
            cells: c.cells.iter().map(|&x| PCell::Fixed(x)).collect(),
        }
    }

    /// Whether `c` matches this partial configuration.
    pub fn matches(&self, c: &Config) -> bool {
        self.cells.len() == c.cells.len()
            && self
                .cells
                .iter()
                .zip(c.cells.iter())
                .all(|(p, &x)| match p {
                    PCell::Wild => true,
                    PCell::Fixed(f) => *f == x,
                })
    }

    /// All valid configurations (exactly one state cell) matching this
    /// partial configuration, over the machine's states and symbols.
    pub fn completions(&self, m: &Machine) -> Vec<Config> {
        let mut out = Vec::new();
        // Choose the head position first: either a fixed Q cell, or any
        // wildcard position.
        let fixed_q: Vec<usize> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, PCell::Fixed(Cell::Q(_))))
            .map(|(i, _)| i)
            .collect();
        if fixed_q.len() > 1 {
            return out;
        }
        let head_positions: Vec<usize> = if let Some(&h) = fixed_q.first() {
            vec![h]
        } else {
            self.cells
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p, PCell::Wild))
                .map(|(i, _)| i)
                .collect()
        };
        for h in head_positions {
            let states: Vec<State> = match self.cells[h] {
                PCell::Fixed(Cell::Q(q)) => vec![q],
                PCell::Wild => (0..m.num_states).map(State).collect(),
                PCell::Fixed(Cell::S(_)) => unreachable!(),
            };
            for q in states {
                // Enumerate symbols for remaining wildcards.
                let wild_positions: Vec<usize> = self
                    .cells
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| *i != h && matches!(p, PCell::Wild))
                    .map(|(i, _)| i)
                    .collect();
                let mut choice = vec![0u8; wild_positions.len()];
                loop {
                    let mut cells: Vec<Cell> = Vec::with_capacity(self.cells.len());
                    for (i, p) in self.cells.iter().enumerate() {
                        cells.push(if i == h {
                            Cell::Q(q)
                        } else {
                            match p {
                                PCell::Fixed(c) => *c,
                                PCell::Wild => {
                                    let wi = wild_positions
                                        .iter()
                                        .position(|&w| w == i)
                                        .expect("wild position");
                                    Cell::S(Sym(choice[wi]))
                                }
                            }
                        });
                    }
                    out.push(Config { cells });
                    // Increment the choice counter.
                    let mut j = 0;
                    loop {
                        if j == choice.len() {
                            break;
                        }
                        choice[j] += 1;
                        if choice[j] < m.num_syms {
                            break;
                        }
                        choice[j] = 0;
                        j += 1;
                    }
                    if j == choice.len() {
                        break;
                    }
                }
            }
        }
        out
    }
}

/// A partial run: a sequence of equal-length partial configurations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartialRun {
    /// The partial configurations.
    pub rows: Vec<PartialConfig>,
}

impl PartialRun {
    /// Creates a partial run, validating equal lengths.
    ///
    /// # Panics
    ///
    /// Panics if rows have different lengths or the run is empty.
    pub fn new(rows: Vec<PartialConfig>) -> Self {
        assert!(!rows.is_empty(), "a partial run has at least one row");
        let len = rows[0].cells.len();
        assert!(
            rows.iter().all(|r| r.cells.len() == len),
            "all rows of a partial run must have the same length"
        );
        PartialRun { rows }
    }
}

/// Decides the run fitting problem: is there an accepting run of `m`
/// matching the partial run? Returns the matching run if so.
pub fn run_fitting(m: &Machine, partial: &PartialRun) -> Option<Vec<Config>> {
    // DFS over rows: complete row 0, then repeatedly pick successors
    // matching the next row.
    let first = partial.rows[0].completions(m);
    for start in first {
        if let Some(run) = extend(m, partial, vec![start]) {
            return Some(run);
        }
    }
    None
}

fn extend(m: &Machine, partial: &PartialRun, run: Vec<Config>) -> Option<Vec<Config>> {
    if run.len() == partial.rows.len() {
        return run
            .last()
            .expect("non-empty run")
            .is_accepting(m)
            .then_some(run);
    }
    let current = run.last().expect("non-empty run");
    for succ in current.successors(m) {
        if partial.rows[run.len()].matches(&succ) {
            let mut next = run.clone();
            next.push(succ);
            if let Some(found) = extend(m, partial, next) {
                return Some(found);
            }
        }
    }
    None
}

/// The padded-language arithmetic of Theorem 12: inputs of the
/// diagonalizing machine `M_H` are unary strings `1^(n^H(n))`. The real
/// construction ties `H` to a machine enumeration; this scaffolding keeps
/// `H` abstract (a monotone function) and exposes the padding arithmetic
/// used in the proof.
pub struct PaddedLanguage<F: Fn(usize) -> u32> {
    /// The (monotone, slowly growing) exponent function `H`.
    pub h: F,
}

impl<F: Fn(usize) -> u32> PaddedLanguage<F> {
    /// Whether `len` is a valid padded input length, i.e. `len = n^H(n)`
    /// for some `n`; returns the witness `n`.
    pub fn valid_padding(&self, len: usize) -> Option<usize> {
        for n in 0..=len.max(1) {
            let h = (self.h)(n).max(1);
            // n^h computed with overflow care.
            let mut p: usize = 1;
            let mut overflow = false;
            for _ in 0..h {
                match p.checked_mul(n) {
                    Some(v) => p = v,
                    None => {
                        overflow = true;
                        break;
                    }
                }
            }
            if !overflow && p == len && n > 0 {
                return Some(n);
            }
            if !overflow && p > len && n > 1 {
                // Monotone in n beyond this point.
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::BLANK;

    #[test]
    fn fully_specified_accepting_run_fits() {
        let m = Machine::even_ones();
        // Run of even_ones on "11": q0 1 1 _ → 1 q1 1 _ → 1 1 q0 _ → 1 1 _ q2
        let c0 = Config::initial(&m, &[Sym(1), Sym(1)], 3);
        let c1 = c0.successors(&m)[0].clone();
        let c2 = c1.successors(&m)[0].clone();
        let c3 = c2.successors(&m)[0].clone();
        assert!(c3.is_accepting(&m));
        let partial = PartialRun::new(vec![
            PartialConfig::from_config(&c0),
            PartialConfig::from_config(&c1),
            PartialConfig::from_config(&c2),
            PartialConfig::from_config(&c3),
        ]);
        assert!(run_fitting(&m, &partial).is_some());
    }

    #[test]
    fn wildcards_are_filled() {
        let m = Machine::even_ones();
        // Only the first row is pinned: q0 ? ? ?; 4 steps must reach accept.
        let mut row0 = PartialConfig::all_wild(4);
        row0.cells[0] = PCell::Fixed(Cell::Q(State(0)));
        let partial = PartialRun::new(vec![
            row0,
            PartialConfig::all_wild(4),
            PartialConfig::all_wild(4),
            PartialConfig::all_wild(4),
        ]);
        let run = run_fitting(&m, &partial).expect("some accepting completion");
        assert_eq!(run.len(), 4);
        assert!(run[3].is_accepting(&m));
        // Every consecutive pair is a legal step.
        for w in run.windows(2) {
            assert!(w[0].successors(&m).contains(&w[1]));
        }
    }

    #[test]
    fn contradictory_pinning_fails() {
        let m = Machine::even_ones();
        // Pin an odd number of ones and require acceptance in 4 rows.
        let c0 = Config::initial(&m, &[Sym(1)], 2);
        let mut rows = vec![PartialConfig::from_config(&c0)];
        rows.push(PartialConfig::all_wild(3));
        rows.push(PartialConfig::all_wild(3));
        let partial = PartialRun::new(rows);
        assert!(run_fitting(&m, &partial).is_none());
    }

    #[test]
    fn fitting_respects_mid_run_constraints() {
        let m = Machine::guess_bit();
        // Two-row runs from q0 1: accept iff second row is the accepting
        // branch; pinning the state of row 1 to the looping state fails
        // (because the machine cannot then accept within the run length).
        let c0 = Config::initial(&m, &[Sym(1)], 2);
        let mut pinned = PartialConfig::all_wild(3);
        pinned.cells[1] = PCell::Fixed(Cell::Q(State(1)));
        let partial = PartialRun::new(vec![PartialConfig::from_config(&c0), pinned]);
        assert!(run_fitting(&m, &partial).is_none());
        // Unpinned: fits via the accepting branch.
        let partial2 = PartialRun::new(vec![
            PartialConfig::from_config(&c0),
            PartialConfig::all_wild(3),
        ]);
        assert!(run_fitting(&m, &partial2).is_some());
    }

    #[test]
    fn padded_language_arithmetic() {
        // H(n) = 2: valid lengths are perfect squares.
        let lang = PaddedLanguage { h: |_n| 2 };
        assert_eq!(lang.valid_padding(9), Some(3));
        assert_eq!(lang.valid_padding(16), Some(4));
        assert_eq!(lang.valid_padding(10), None);
        // H(n) = 1: every positive length is valid.
        let id = PaddedLanguage { h: |_n| 1 };
        assert_eq!(id.valid_padding(7), Some(7));
    }

    #[test]
    fn completions_enumerate_all_heads_and_symbols() {
        let m = Machine::even_ones();
        let pc = PartialConfig::all_wild(2);
        let cs = pc.completions(&m);
        // Head in either of 2 positions × 3 states × 2 symbols for the
        // other cell = 12.
        assert_eq!(cs.len(), 12);
        assert!(cs.iter().all(|c| c.is_valid()));
        // A fixed symbol cell limits choices.
        let pc2 = PartialConfig {
            cells: vec![PCell::Wild, PCell::Fixed(Cell::S(BLANK))],
        };
        let cs2 = pc2.completions(&m);
        assert_eq!(cs2.len(), 3);
    }
}
