//! E19: certificate overhead — certified vs plain answering on
//! e15-style session streams.
//!
//! Workload: the Example-6 odd-cycle ontology compiled by the engine's
//! own planner, posed as a query stream against an `R`-cycle of `n`
//! base facts that keeps growing: blocks of asserts (fresh `R`-edges
//! chained off the cycle) interleaved with queries at assert:query
//! ratios 1:10, 1:1 and 10:1. Three pipelines over identical streams:
//!
//! * `plain`: `Engine::answer_indexed_budgeted` — the untraced serving
//!   executor (the no-certificate baseline; must stay within noise of
//!   the pre-certificate numbers).
//! * `certified`: `Engine::answer_indexed_certified` — the traced
//!   fixpoint plus certificate assembly; the certificate JSON's length
//!   is black-boxed so assembly cannot be optimized away.
//! * `verified`: certified plus a standalone `gomq_cert::verify` per
//!   response — what a client that trusts nothing pays end to end.
//!
//! All pipelines produce the same answer sets; the harness asserts
//! per-query equality outside the measured region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::cycle_instance;
use gomq_core::{Fact, IndexedInstance, RelId, Term, Vocab};
use gomq_datalog::Budget;
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_engine::Engine;
use gomq_logic::GfOntology;
use std::collections::BTreeSet;
use std::sync::Mutex;

fn odd_cycle_dl(vocab: &mut Vocab) -> (GfOntology, RelId, RelId) {
    let text = "A6 and ex R6.A6 sub E6\n\
                not A6 and ex R6.not A6 sub E6\n\
                E6 sub all R6.E6\n\
                E6 sub all R6-.E6\n";
    let dl = parse_ontology(text, vocab).expect("odd-cycle DL text parses");
    let o = to_gf(&dl);
    let r = vocab.find_rel("R6").expect("R6");
    let e = vocab.find_rel("E6").expect("E6");
    (o, r, e)
}

#[derive(Clone, Copy)]
enum Op {
    Assert,
    Query,
}

/// `blocks` repetitions of (`a` asserts, then `q` queries).
fn stream(a: usize, q: usize, blocks: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..blocks {
        ops.extend(std::iter::repeat_n(Op::Assert, a));
        ops.extend(std::iter::repeat_n(Op::Query, q));
    }
    ops
}

/// How each query of the stream is answered.
enum Mode<'a> {
    Plain,
    Certified {
        vocab: &'a Mutex<Vocab>,
        verify: bool,
    },
}

/// Drives one stream; returns per-query answers and total cert bytes.
fn run(
    engine: &Engine,
    plan: &gomq_engine::OmqPlan,
    base: &IndexedInstance,
    ops: &[Op],
    fresh: &[Fact],
    mode: &Mode<'_>,
) -> (Vec<BTreeSet<Vec<Term>>>, usize) {
    let budget = Budget::UNLIMITED;
    let mut store = base.clone();
    let mut next = 0usize;
    let mut answers = Vec::new();
    let mut cert_bytes = 0usize;
    for op in ops {
        match op {
            Op::Assert => {
                let f = &fresh[next];
                store.insert_ref(f.rel, &f.args);
                next += 1;
            }
            Op::Query => match mode {
                Mode::Plain => {
                    let (a, _) = engine
                        .answer_indexed_budgeted(plan, &store, &budget)
                        .expect("unlimited");
                    answers.push(a);
                }
                Mode::Certified { vocab, verify } => {
                    let (a, cert, _) = engine
                        .answer_indexed_certified(plan, &store, &budget, vocab, None)
                        .expect("unlimited");
                    cert_bytes += cert.len();
                    if *verify {
                        gomq_cert::verify(&cert).expect("certificate verifies");
                    }
                    answers.push(a);
                }
            },
        }
    }
    (answers, cert_bytes)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_cert");
    group.sample_size(10);
    let mut v = Vocab::new();
    let (o, r, e) = odd_cycle_dl(&mut v);
    let engine = Engine::with_threads(1);
    let (plan, _, _) = engine.plan(&o, e, &mut v);
    let plan = plan.expect("odd-cycle OMQ is rewritable");

    // CI smoke (xtests/ci.sh) runs the tiny size only; the recorded
    // BENCH_cert.json numbers come from the full sweep.
    let sizes: &[usize] = if std::env::var_os("E16_TINY").is_some() {
        &[30]
    } else {
        &[30, 300]
    };
    let ratios: &[(&str, usize, usize, usize)] =
        &[("1to10", 1, 10, 3), ("1to1", 1, 1, 8), ("10to1", 10, 1, 3)];

    for &n in sizes {
        let base = IndexedInstance::from_instance(cycle_instance(r, n, &format!("s{n}_"), &mut v));
        let max_asserts = ratios.iter().map(|&(_, a, _, b)| a * b).max().unwrap();
        let fresh: Vec<Fact> = (0..max_asserts)
            .map(|i| {
                let from = if i == 0 {
                    v.constant(&format!("s{n}_0"))
                } else {
                    v.constant(&format!("f{n}_{}", i - 1))
                };
                let to = v.constant(&format!("f{n}_{i}"));
                Fact::consts(r, &[from, to])
            })
            .collect();
        // Certificate assembly reads the vocab behind the serving tier's
        // mutex; constants are interned above, outside the measured
        // region, so the lock is uncontended here exactly as in a
        // single-connection serving session.
        let vocab = Mutex::new(std::mem::take(&mut v));

        for &(label, a, q, blocks) in ratios {
            let ops = stream(a, q, blocks);
            let (plain, _) = run(&engine, &plan, &base, &ops, &fresh, &Mode::Plain);
            let certified_mode = Mode::Certified {
                vocab: &vocab,
                verify: false,
            };
            let verified_mode = Mode::Certified {
                vocab: &vocab,
                verify: true,
            };
            let (certified, bytes) = run(&engine, &plan, &base, &ops, &fresh, &certified_mode);
            assert_eq!(
                plain, certified,
                "certified answers diverged from plain ({label}, n={n})"
            );
            assert!(bytes > 0, "certified stream emitted no certificates");

            let id = format!("{label}_{n}");
            group.bench_with_input(BenchmarkId::new("plain", &id), &n, |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        run(&engine, &plan, &base, &ops, &fresh, &Mode::Plain)
                            .0
                            .len(),
                    )
                })
            });
            group.bench_with_input(BenchmarkId::new("certified", &id), &n, |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        run(&engine, &plan, &base, &ops, &fresh, &certified_mode).1,
                    )
                })
            });
            group.bench_with_input(BenchmarkId::new("verified", &id), &n, |b, _| {
                b.iter(|| {
                    std::hint::black_box(run(&engine, &plan, &base, &ops, &fresh, &verified_mode).1)
                })
            });
        }
        v = vocab.into_inner().expect("unpoisoned");
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
