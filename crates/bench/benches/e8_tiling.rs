//! E8: tiling systems, the Theorem-10 ontology builder, and run fitting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_core::Vocab;
use gomq_tm::runfit::{run_fitting, PartialConfig, PartialRun};
use gomq_tm::tiling_onto::build_grid_ontology;
use gomq_tm::{Machine, TilingSystem};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_tiling");
    group.sample_size(20);
    group.bench_function("find_tiling_3x3", |b| {
        let p = TilingSystem::solvable_example();
        b.iter(|| std::hint::black_box(p.find_tiling(3, 3).is_some()))
    });
    group.bench_function("build_grid_ontology", |b| {
        let p = TilingSystem::solvable_example();
        b.iter(|| {
            let mut v = Vocab::new();
            std::hint::black_box(build_grid_ontology(&p, &mut v).cell.onto.axioms.len())
        })
    });
    let m = Machine::even_ones();
    for rows in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("run_fitting", rows), &rows, |b, &rows| {
            let partial = PartialRun::new(vec![PartialConfig::all_wild(5); rows]);
            b.iter(|| std::hint::black_box(run_fitting(&m, &partial).is_some()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
