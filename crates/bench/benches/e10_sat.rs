//! E10: the SAT substrate — solver and grounding costs underlying the
//! bounded countermodel search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_core::{Fact, Instance, Vocab};
use gomq_reasoning::ground::{domain_with_fresh, Grounder};
use gomq_reasoning::sat::{Cnf, Lit};

fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
    let mut cnf = Cnf::new();
    let var = |p: usize, h: usize| (p * holes + h) as u32;
    for _ in 0..pigeons * holes {
        cnf.fresh_var();
    }
    for p in 0..pigeons {
        cnf.add_clause((0..holes).map(|h| Lit::pos(var(p, h))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    cnf
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_sat");
    group.sample_size(10);
    for n in [5usize, 6] {
        group.bench_with_input(BenchmarkId::new("pigeonhole_unsat", n), &n, |b, &n| {
            let cnf = pigeonhole(n + 1, n);
            b.iter(|| assert!(std::hint::black_box(cnf.solve()).is_none()))
        });
    }
    group.bench_function("ground_hand_ontology", |b| {
        b.iter(|| {
            let mut v = Vocab::new();
            let (_, _, union, hand, _, hf) = gomq_bench::hand_ontologies(3, &mut v);
            let h = v.constant("h");
            let mut d = Instance::new();
            d.insert(Fact::consts(hand, &[h]));
            for i in 0..3 {
                let f = v.constant(&format!("f{i}"));
                d.insert(Fact::consts(hf, &[h, f]));
            }
            let dom = domain_with_fresh(&d, 1, &mut v);
            let mut g = Grounder::new(dom);
            g.assert_instance(&d);
            g.assert_ontology(&union);
            std::hint::black_box(g.num_clauses())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
