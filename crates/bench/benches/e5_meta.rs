//! E5: the Theorem-13 decision procedure — runtime growth with the
//! bouquet space (the expected EXPTIME behaviour in `|O|`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_core::Vocab;
use gomq_dl::concept::{Concept, Role};
use gomq_dl::translate::to_gf;
use gomq_dl::DlOntology;
use gomq_meta::bouquet::BouquetConfig;
use gomq_meta::decide::decide_ptime;
use gomq_reasoning::CertainEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_meta");
    group.sample_size(10);
    // Growing signature: k concept names chained, one role.
    for k in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("decide_horn", k), &k, |b, &k| {
            b.iter(|| {
                let mut v = Vocab::new();
                let names: Vec<_> = (0..=k).map(|i| v.rel(&format!("C{i}"), 1)).collect();
                let r = Role::new(v.rel("R", 2));
                let mut dl = DlOntology::new();
                for w in names.windows(2) {
                    dl.sub(Concept::Name(w[0]), Concept::Name(w[1]));
                }
                dl.sub(
                    Concept::Name(names[k]),
                    Concept::Exists(r, Box::new(Concept::Name(names[0]))),
                );
                let o = to_gf(&dl);
                let engine = CertainEngine::new(1);
                let verdict = decide_ptime(
                    &o,
                    &engine,
                    BouquetConfig {
                        max_outdegree: 1,
                        max_bouquets: 5_000,
                        include_loops: false,
                    },
                    &mut v,
                );
                assert!(verdict.ptime);
                std::hint::black_box(verdict.bouquets_checked)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
