//! E18: incremental view maintenance for session materializations vs
//! from-scratch recompute.
//!
//! Workload: the Example-6 odd-cycle ontology compiled by the real
//! rewriting pipeline into a Datalog≠ program, posed as a *session*
//! query stream against an `R`-cycle of `n` base facts that keeps
//! growing: blocks of asserts (fresh `R`-edges chained off the cycle)
//! interleaved with repeat queries at assert:query ratios 1:10, 1:1 and
//! 10:1. Two implementations of the same stream:
//!
//! * `maintained_*`: one `Materialization::build` (the single full
//!   fixpoint a view ever pays), then each query is an incremental
//!   `sync` over the facts asserted since the view last looked —
//!   counting semi-naive insertion propagation restricted to the delta.
//! * `recompute_*`: what a view-less session does — every query
//!   re-runs the full stratified fixpoint over the current store
//!   (`eval_strata_budgeted`, the serving executor itself).
//!
//! Both streams produce the same answer sets; the harness asserts
//! per-query equality outside the measured region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::cycle_instance;
use gomq_core::{Fact, IndexedInstance, RelId, Term, Vocab};
use gomq_datalog::{Budget, Materialization, Rule};
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_engine::{eval_strata_budgeted, Strata};
use gomq_logic::GfOntology;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::ElementTypeSystem;
use std::collections::BTreeSet;

fn odd_cycle_dl(vocab: &mut Vocab) -> (GfOntology, RelId, RelId) {
    let text = "A6 and ex R6.A6 sub E6\n\
                not A6 and ex R6.not A6 sub E6\n\
                E6 sub all R6.E6\n\
                E6 sub all R6-.E6\n";
    let dl = parse_ontology(text, vocab).expect("odd-cycle DL text parses");
    let o = to_gf(&dl);
    let r = vocab.find_rel("R6").expect("R6");
    let e = vocab.find_rel("E6").expect("E6");
    (o, r, e)
}

/// One step of the session stream.
#[derive(Clone, Copy)]
enum Op {
    /// Assert the next fresh fact.
    Assert,
    /// Pose the session query.
    Query,
}

/// `blocks` repetitions of (`a` asserts, then `q` queries).
fn stream(a: usize, q: usize, blocks: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..blocks {
        ops.extend(std::iter::repeat_n(Op::Assert, a));
        ops.extend(std::iter::repeat_n(Op::Query, q));
    }
    ops
}

/// The maintained side: build once, then sync per query.
fn run_maintained(
    rules: &[Rule],
    goal: RelId,
    base: &IndexedInstance,
    ops: &[Op],
    fresh: &[Fact],
) -> Vec<BTreeSet<Vec<Term>>> {
    let budget = Budget::UNLIMITED;
    let mut store = base.clone();
    let (mut view, _) = Materialization::build(rules, goal, &store, &budget).expect("unlimited");
    let mut next = 0usize;
    let mut answers = Vec::new();
    for op in ops {
        match op {
            Op::Assert => {
                let f = &fresh[next];
                store.insert_ref(f.rel, &f.args);
                next += 1;
            }
            Op::Query => {
                view.sync(&store, &budget).expect("unlimited");
                answers.push(view.answers());
            }
        }
    }
    answers
}

/// The recompute side: every query re-runs the full fixpoint.
fn run_recompute(
    strata: &Strata,
    goal: RelId,
    base: &IndexedInstance,
    ops: &[Op],
    fresh: &[Fact],
) -> Vec<BTreeSet<Vec<Term>>> {
    let budget = Budget::UNLIMITED;
    let mut store = base.clone();
    let mut next = 0usize;
    let mut answers = Vec::new();
    for op in ops {
        match op {
            Op::Assert => {
                let f = &fresh[next];
                store.insert_ref(f.rel, &f.args);
                next += 1;
            }
            Op::Query => {
                let (a, _) =
                    eval_strata_budgeted(strata, goal, &store, 1, &budget).expect("unlimited");
                answers.push(a);
            }
        }
    }
    answers
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_ivm");
    group.sample_size(10);
    let mut v = Vocab::new();
    let (o, r, e) = odd_cycle_dl(&mut v);
    let sys = ElementTypeSystem::build(&o, &v).expect("supported");
    let program = emit_datalog(&sys, e, &mut v).optimize();
    let strata = Strata::of(&program);

    // CI smoke (xtests/ci.sh) runs the tiny size only; the recorded
    // BENCH_ivm.json numbers come from the full sweep.
    let sizes: &[usize] = if std::env::var_os("E15_TINY").is_some() {
        &[30]
    } else {
        &[30, 300]
    };
    // (label, asserts per block, queries per block, blocks): the three
    // assert:query mixes, comparable stream lengths.
    let ratios: &[(&str, usize, usize, usize)] =
        &[("1to10", 1, 10, 3), ("1to1", 1, 1, 8), ("10to1", 10, 1, 3)];

    for &n in sizes {
        let base = IndexedInstance::from_instance(cycle_instance(r, n, &format!("s{n}_"), &mut v));
        // Fresh R-edges chained off cycle node 0, so every assert can
        // participate in derivations instead of floating disconnected.
        let max_asserts = ratios.iter().map(|&(_, a, _, b)| a * b).max().unwrap();
        let fresh: Vec<Fact> = (0..max_asserts)
            .map(|i| {
                let from = if i == 0 {
                    v.constant(&format!("s{n}_0"))
                } else {
                    v.constant(&format!("f{n}_{}", i - 1))
                };
                let to = v.constant(&format!("f{n}_{i}"));
                Fact::consts(r, &[from, to])
            })
            .collect();

        for &(label, a, q, blocks) in ratios {
            let ops = stream(a, q, blocks);
            // Equal answer sets — checked once, outside the measured
            // region.
            let maintained = run_maintained(&program.rules, e, &base, &ops, &fresh);
            let recomputed = run_recompute(&strata, e, &base, &ops, &fresh);
            assert_eq!(
                maintained, recomputed,
                "maintained answers diverged from recompute ({label}, n={n})"
            );

            let id = format!("{label}_{n}");
            group.bench_with_input(BenchmarkId::new("maintained", &id), &n, |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        run_maintained(&program.rules, e, &base, &ops, &fresh).len(),
                    )
                })
            });
            group.bench_with_input(BenchmarkId::new("recompute", &id), &n, |b, _| {
                b.iter(|| {
                    std::hint::black_box(run_recompute(&strata, e, &base, &ops, &fresh).len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
