//! E13: the bitset AC-3 type-propagation kernel vs the reference
//! sweep-based `instance_types` computation.
//!
//! Workload: the `type_closure_ontology` fixture — a three-label
//! ∀/∃/∀⁻ propagation cycle widened by tautological labels so the
//! global type space crosses the 64-type bar — posed against dense
//! deterministic instances (cycle + long-range chords) of growing
//! size. Both sides compute the full per-element surviving-type
//! fixpoint; the kernel build (compatibility matrices) is paid once
//! outside the measured region, exactly as it is amortised by the
//! engine's plan cache.
//!
//! Axes: instance size `n ∈ {50, 150, 300}` × closure width
//! (`narrow` = no free labels, `wide` = 4 free labels ⇒ ≥ 64 types).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::{type_bench_instance, type_closure_ontology};
use gomq_core::Vocab;
use gomq_rewriting::ElementTypeSystem;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_types");
    group.sample_size(10);

    for (width, free) in [("narrow", 0usize), ("wide", 4)] {
        let mut v = Vocab::new();
        let (o, labels, r) = type_closure_ontology(free, &mut v);
        let sys = ElementTypeSystem::build(&o, &v).expect("fixture is supported");
        sys.kernel(); // pre-build, as the engine's plan cache does
        for n in [50usize, 150, 300] {
            let d = type_bench_instance(n, &labels, r, &mut v);

            group.bench_with_input(
                BenchmarkId::new(format!("reference_{width}"), n),
                &n,
                |b, _| b.iter(|| std::hint::black_box(sys.instance_types_reference(&d))),
            );

            group.bench_with_input(
                BenchmarkId::new(format!("bitset_{width}"), n),
                &n,
                |b, _| b.iter(|| std::hint::black_box(sys.instance_types(&d))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
