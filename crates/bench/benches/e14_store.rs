//! E17: the columnar fact plane (`FactStore`) vs the seed-style row
//! store it replaced.
//!
//! Workload: the Example-6 odd-cycle ontology compiled by the real
//! rewriting pipeline into a Datalog≠ program, posed against `R`-cycles
//! of growing size. Two axes:
//!
//! * `ingest_*`: turning `n` parsed facts into an indexed evaluation
//!   instance. The row side allocates one `Vec<Term>` per fact, dedups
//!   through a `HashSet<Fact>` and clones every fact again into
//!   per-relation index buckets — exactly the seed's
//!   `Interpretation` + `IndexedInstance::from_interpretation` shape.
//!   The columnar side interns argument slices into one arena and moves
//!   the store into the index without touching a fact.
//! * `fixpoint_*`: the semi-naive saturation itself. The row side is a
//!   faithful reimplementation of the seed evaluator (owned `Fact`
//!   staging vectors, per-round delta sets of cloned facts); the
//!   columnar side is the live `Program::fixpoint`, whose rounds stage
//!   into a reused `FactBuf` and pass deltas as id ranges — no per-fact
//!   heap allocation in steady state.
//!
//! Both evaluators compute the same fixpoint; the harness asserts equal
//! derived counts outside the measured region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::cycle_instance;
use gomq_core::{Fact, IndexedInstance, Instance, RelId, Term, Vocab};
use gomq_datalog::{DAtom, DTerm, Literal, Rule};
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_logic::GfOntology;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::ElementTypeSystem;
use std::collections::{HashMap, HashSet};

fn odd_cycle_dl(vocab: &mut Vocab) -> (GfOntology, RelId, RelId) {
    let text = "A6 and ex R6.A6 sub E6\n\
                not A6 and ex R6.not A6 sub E6\n\
                E6 sub all R6.E6\n\
                E6 sub all R6-.E6\n";
    let dl = parse_ontology(text, vocab).expect("odd-cycle DL text parses");
    let o = to_gf(&dl);
    let r = vocab.find_rel("R6").expect("R6");
    let e = vocab.find_rel("E6").expect("E6");
    (o, r, e)
}

/// The seed's storage shape: ordered owned rows, a hash set for dedup,
/// per-relation buckets of row indices, and the by-term index the seed
/// `Interpretation` maintained (including its quadratic repeated-term
/// scan per insertion).
#[derive(Default)]
struct RowStore {
    facts: Vec<Fact>,
    seen: HashSet<Fact>,
    by_rel: HashMap<RelId, Vec<usize>>,
    by_term: HashMap<Term, Vec<usize>>,
}

impl RowStore {
    fn insert(&mut self, fact: Fact) -> bool {
        if self.seen.contains(&fact) {
            return false;
        }
        let id = self.facts.len();
        self.by_rel.entry(fact.rel).or_default().push(id);
        for (k, &t) in fact.args.iter().enumerate() {
            if !fact.args[..k].contains(&t) {
                self.by_term.entry(t).or_default().push(id);
            }
        }
        self.seen.insert(fact.clone());
        self.facts.push(fact);
        true
    }
}

type RowIndex = HashMap<(RelId, Term), Vec<usize>>;

/// The seed's `IndexedInstance::from_interpretation`: every fact cloned
/// again into the evaluation index's own storage.
fn index_rows(store: &RowStore) -> (Vec<Fact>, RowIndex) {
    let mut facts = Vec::with_capacity(store.facts.len());
    let mut by_rel_first = RowIndex::new();
    for f in &store.facts {
        let id = facts.len();
        if let Some(&first) = f.args.first() {
            by_rel_first.entry((f.rel, first)).or_default().push(id);
        }
        facts.push(f.clone());
    }
    (facts, by_rel_first)
}

fn resolve(t: &DTerm, frame: &[Option<Term>]) -> Option<Term> {
    match t {
        DTerm::Ground(g) => Some(*g),
        DTerm::Var(v) => frame[*v as usize],
    }
}

/// Seed-style matcher: nested-loop join over owned facts, the
/// `pivot`-th positive atom drawn from the delta rows.
#[allow(clippy::too_many_arguments)]
fn row_match(
    rule: &Rule,
    atoms: &[&DAtom],
    ai: usize,
    pivot: usize,
    total: &RowStore,
    delta: &[Fact],
    frame: &mut Vec<Option<Term>>,
    out: &mut Vec<Fact>,
) {
    if ai == atoms.len() {
        for lit in &rule.body {
            if let Literal::Neq(x, y) = lit {
                let (a, b) = (resolve(x, frame), resolve(y, frame));
                if a.is_none() || a == b {
                    return;
                }
            }
        }
        // The seed's per-derivation heap allocation: one Vec per head.
        let args: Vec<Term> = rule
            .head
            .args
            .iter()
            .map(|t| resolve(t, frame).expect("range-restricted head"))
            .collect();
        out.push(Fact::new(rule.head.rel, args));
        return;
    }
    let atom = atoms[ai];
    let candidates: Box<dyn Iterator<Item = &Fact>> = if ai == pivot {
        Box::new(delta.iter().filter(|f| f.rel == atom.rel))
    } else {
        let bucket = total
            .by_rel
            .get(&atom.rel)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        Box::new(bucket.iter().map(|&i| &total.facts[i]))
    };
    'cand: for fact in candidates {
        if fact.args.len() != atom.args.len() {
            continue;
        }
        let mut bound: Vec<u32> = Vec::new();
        for (t, &val) in atom.args.iter().zip(fact.args.iter()) {
            match t {
                DTerm::Ground(g) => {
                    if *g != val {
                        for v in bound.drain(..) {
                            frame[v as usize] = None;
                        }
                        continue 'cand;
                    }
                }
                DTerm::Var(v) => match frame[*v as usize] {
                    Some(prev) if prev != val => {
                        for b in bound.drain(..) {
                            frame[b as usize] = None;
                        }
                        continue 'cand;
                    }
                    Some(_) => {}
                    None => {
                        frame[*v as usize] = Some(val);
                        bound.push(*v);
                    }
                },
            }
        }
        row_match(rule, atoms, ai + 1, pivot, total, delta, frame, out);
        for v in bound {
            frame[v as usize] = None;
        }
    }
}

/// The seed semi-naive loop: clone the instance into rows, then per
/// round stage owned facts and rebuild the delta as a fresh `Vec<Fact>`.
fn row_fixpoint(rules: &[Rule], d: &Instance) -> usize {
    let mut total = RowStore::default();
    for f in d.iter() {
        total.insert(f.to_fact());
    }
    let mut delta: Vec<Fact> = total.facts.clone();
    let mut derived = 0usize;
    while !delta.is_empty() {
        let mut staged: Vec<Fact> = Vec::new();
        for rule in rules {
            let atoms: Vec<&DAtom> = rule.positive_atoms().collect();
            let mut frame: Vec<Option<Term>> = vec![None; rule.num_slots()];
            for pivot in 0..atoms.len() {
                row_match(
                    rule,
                    &atoms,
                    0,
                    pivot,
                    &total,
                    &delta,
                    &mut frame,
                    &mut staged,
                );
            }
        }
        delta = staged
            .into_iter()
            .filter(|f| total.insert(f.clone()))
            .collect();
        derived += delta.len();
    }
    derived
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_store");
    group.sample_size(10);
    let mut v = Vocab::new();
    let (o, r, e) = odd_cycle_dl(&mut v);
    let sys = ElementTypeSystem::build(&o, &v).expect("supported");
    let program = emit_datalog(&sys, e, &mut v).optimize();

    // CI smoke (xtests/ci.sh) runs the tiny size only; the recorded
    // BENCH_store.json numbers come from the full sweep.
    let sizes: &[usize] = if std::env::var_os("E14_TINY").is_some() {
        &[30]
    } else {
        &[30, 100, 300]
    };
    for &n in sizes {
        let d = cycle_instance(r, n, &format!("s{n}_"), &mut v);
        let rows: Vec<Fact> = d.iter().map(|f| f.to_fact()).collect();

        // Equal fixpoints — checked once, outside the measured region.
        let (sat, stats) = program.fixpoint(&d);
        assert_eq!(row_fixpoint(&program.rules, &d), stats.derived);
        assert!(sat.len() >= d.len());

        group.bench_with_input(BenchmarkId::new("ingest_row", n), &n, |b, _| {
            b.iter(|| {
                let mut store = RowStore::default();
                for f in &rows {
                    store.insert(f.clone());
                }
                let (facts, index) = index_rows(&store);
                std::hint::black_box((facts.len(), index.len()))
            })
        });

        group.bench_with_input(BenchmarkId::new("ingest_columnar", n), &n, |b, _| {
            b.iter(|| {
                let mut d = Instance::new();
                for f in &rows {
                    d.insert_ref(f.rel, &f.args);
                }
                std::hint::black_box(IndexedInstance::from_instance(d).len())
            })
        });

        group.bench_with_input(BenchmarkId::new("fixpoint_row", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(row_fixpoint(&program.rules, &d)))
        });

        group.bench_with_input(BenchmarkId::new("fixpoint_columnar", n), &n, |b, _| {
            b.iter(|| {
                let (_, stats) = program.fixpoint(&d);
                std::hint::black_box(stats.derived)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
