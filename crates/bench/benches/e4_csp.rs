//! E4: Theorem 8 — CSP templates and their OMQ encodings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::cycle_instance;
use gomq_core::Vocab;
use gomq_csp::encode::encode_gf;
use gomq_csp::reduce::omq_certain_via_csp;
use gomq_csp::solve::solve_csp;
use gomq_csp::Template;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_csp");
    group.sample_size(20);
    for k in [2usize, 3] {
        for n in [11usize, 31] {
            group.bench_with_input(BenchmarkId::new(format!("{k}col_solve"), n), &n, |b, &n| {
                let mut v = Vocab::new();
                let t = Template::k_coloring(k, &mut v).with_precoloring(&mut v);
                let edge = v.find_rel("edge").expect("edge");
                let d = cycle_instance(edge, n, "cy", &mut v);
                b.iter(|| std::hint::black_box(solve_csp(&d, &t).is_some()))
            });
            group.bench_with_input(
                BenchmarkId::new(format!("{k}col_via_omq"), n),
                &n,
                |b, &n| {
                    let mut v = Vocab::new();
                    let t = Template::k_coloring(k, &mut v).with_precoloring(&mut v);
                    let enc = encode_gf(&t, &mut v);
                    let edge = v.find_rel("edge").expect("edge");
                    let d = cycle_instance(edge, n, "cy", &mut v);
                    b.iter(|| std::hint::black_box(omq_certain_via_csp(&d, &t, &enc)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
