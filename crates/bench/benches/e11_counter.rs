//! E11: the Example-8 counter family — the certain-disjunction check on
//! the full 2ⁿ chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_core::query::CqBuilder;
use gomq_core::{Term, Ucq, Vocab};
use gomq_meta::examples::{counter_chain, counter_ontology};
use gomq_reasoning::CertainEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_counter");
    group.sample_size(10);
    for n in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("full_chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut v = Vocab::new();
                let f = counter_ontology(n, &mut v);
                let engine = CertainEngine::new(2);
                let d = counter_chain(&f, 1 << n, &mut v);
                let head = Term::Const(v.constant("cc0"));
                let mk = |rel| {
                    let mut b = CqBuilder::new();
                    let x = b.var("x");
                    b.atom(rel, &[x]);
                    Ucq::from_cq(b.build(vec![x]))
                };
                let queries = vec![(mk(f.b[0]), vec![head]), (mk(f.b[1]), vec![head])];
                let certain = engine
                    .certain_disjunction(&f.onto, &d, &queries, &mut v)
                    .is_certain();
                assert!(certain);
                std::hint::black_box(certain)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
