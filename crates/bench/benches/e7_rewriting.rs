//! E7: PTIME behaviour of the emitted Datalog rewriting — evaluation time
//! on growing instances (the paper's Datalog≠ = PTIME side of Theorem 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::{horn_chain_ontology, propagation_instance};
use gomq_core::Vocab;
use gomq_datalog::eval::eval_naive;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::types::ElementTypeSystem;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_rewriting");
    group.sample_size(10);
    let mut v = Vocab::new();
    let (o, names, r) = horn_chain_ontology(3, &mut v);
    let sys = ElementTypeSystem::build(&o, &v).expect("supported");
    let program = emit_datalog(&sys, names[3], &mut v);
    for len in [25usize, 50, 100] {
        let d = propagation_instance(len, names[0], r, &mut v);
        group.bench_with_input(BenchmarkId::new("semi_naive", len), &len, |b, _| {
            b.iter(|| std::hint::black_box(program.eval(&d).len()))
        });
        group.bench_with_input(BenchmarkId::new("type_elimination", len), &len, |b, _| {
            b.iter(|| std::hint::black_box(sys.certain_unary(&d, names[3]).len()))
        });
    }
    // Semi-naive vs naive on the medium instance.
    let d = propagation_instance(50, names[0], r, &mut v);
    group.bench_function("naive_50", |b| {
        b.iter(|| std::hint::black_box(eval_naive(&program, &d).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
