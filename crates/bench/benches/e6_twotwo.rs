//! E6: the 2+2-SAT reduction of Theorem 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_core::{Fact, Instance, Term, Vocab};
use gomq_dl::concept::Concept;
use gomq_dl::translate::to_gf;
use gomq_dl::DlOntology;
use gomq_reasoning::CertainEngine;
use gomq_tm::twotwo::{build_gadget, random_formula};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_twotwo");
    group.sample_size(10);
    for (vars, clauses) in [(1usize, 1usize), (2, 2)] {
        group.bench_with_input(
            BenchmarkId::new("reduction", format!("{vars}v{clauses}c")),
            &(vars, clauses),
            |b, &(vars, clauses)| {
                b.iter(|| {
                    let mut v = Vocab::new();
                    let a = v.rel("A", 1);
                    let b_rel = v.rel("B", 1);
                    let c_rel = v.rel("C", 1);
                    let mut dl = DlOntology::new();
                    dl.sub(
                        Concept::Name(a),
                        Concept::Or(vec![Concept::Name(b_rel), Concept::Name(c_rel)]),
                    );
                    let o = to_gf(&dl);
                    let ca = v.constant("w");
                    let mut d0 = Instance::new();
                    d0.insert(Fact::consts(a, &[ca]));
                    let phi = random_formula(vars, clauses, 7);
                    let gadget = build_gadget(&phi, &d0, Term::Const(ca), b_rel, c_rel, &mut v);
                    let engine = CertainEngine::new(1);
                    let certain = engine
                        .certain(&o, &gadget.instance, &gadget.query, &[], &mut v)
                        .is_certain();
                    assert_eq!(certain, phi.satisfiable().is_none());
                    std::hint::black_box(certain)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
