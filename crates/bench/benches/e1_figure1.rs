//! E1: throughput of the Figure-1 fragment classifier.

use criterion::{criterion_group, criterion_main, Criterion};
use gomq_core::Vocab;
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_logic::fragment::{best_zone, classify};

fn bench(c: &mut Criterion) {
    let texts = [
        "A sub ex R.B\nB sub C\n",
        "A sub >=5 R.Top and <=5 R.Top\n",
        "A sub ex R.(all S.B)\nrole R sub S\n",
        "A sub ex R.(<=1 S.Top)\nfunc(R-)\n",
    ];
    let mut group = c.benchmark_group("e1_figure1");
    group.sample_size(20);
    group.bench_function("classify_4_ontologies", |b| {
        b.iter(|| {
            for text in &texts {
                let mut v = Vocab::new();
                let dl = parse_ontology(text, &mut v).expect("parses");
                let gf = to_gf(&dl);
                std::hint::black_box((classify(&gf, &v), best_zone(&gf, &v)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
