//! Ablation: the three certain-answer routes on the same Horn workload.
//!
//! DESIGN.md calls out the design choice of computing certain answers by
//! (a) bounded countermodel search (general but exponential), (b) the
//! chase (terminating Horn only), and (c) element-type elimination /
//! Datalog (depth-1 fragments, PTIME). This bench shows the cost split
//! that justifies routing: the Datalog route is orders of magnitude
//! faster on instances where all three apply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::{horn_chain_ontology, propagation_instance};
use gomq_core::query::CqBuilder;
use gomq_core::{Ucq, Vocab};
use gomq_reasoning::chase::{chase, ChaseConfig};
use gomq_reasoning::CertainEngine;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::types::ElementTypeSystem;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_engines");
    group.sample_size(10);
    for len in [4usize, 8] {
        // Shared setup per size.
        group.bench_with_input(BenchmarkId::new("sat_engine", len), &len, |b, &len| {
            b.iter(|| {
                let mut v = Vocab::new();
                let (o, names, r) = horn_chain_ontology(2, &mut v);
                let d = propagation_instance(len, names[0], r, &mut v);
                let engine = CertainEngine::new(1);
                let mut bq = CqBuilder::new();
                let x = bq.var("x");
                bq.atom(names[2], &[x]);
                let q = Ucq::from_cq(bq.build(vec![x]));
                std::hint::black_box(engine.certain_answers(&o, &d, &q, &mut v).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("chase", len), &len, |b, &len| {
            b.iter(|| {
                let mut v = Vocab::new();
                let (o, names, r) = horn_chain_ontology(2, &mut v);
                let d = propagation_instance(len, names[0], r, &mut v);
                let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
                let mut bq = CqBuilder::new();
                let x = bq.var("x");
                bq.atom(names[2], &[x]);
                let q = Ucq::from_cq(bq.build(vec![x]));
                std::hint::black_box(result.certain_answers(&q, &d).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("datalog", len), &len, |b, &len| {
            b.iter(|| {
                let mut v = Vocab::new();
                let (o, names, r) = horn_chain_ontology(2, &mut v);
                let d = propagation_instance(len, names[0], r, &mut v);
                let sys = ElementTypeSystem::build(&o, &v).expect("supported");
                let program = emit_datalog(&sys, names[2], &mut v);
                std::hint::black_box(program.eval(&d).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
