//! E3: the hand–finger ontologies — the PTIME/coNP contrast of §1.
//!
//! The coNP side (certain disjunction under O₁ ∪ O₂) grows quickly with
//! the number of fingers, while the PTIME sides stay flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::{hand_instance, hand_ontologies};
use gomq_core::query::CqBuilder;
use gomq_core::{Term, Ucq, Vocab};
use gomq_reasoning::CertainEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_hand_fingers");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("union_disjunction", n), &n, |b, &n| {
            b.iter(|| {
                let mut v = Vocab::new();
                let (_, _, union, hand, thumb, hf) = hand_ontologies(n as u32, &mut v);
                let d = hand_instance(n, hand, hf, &mut v);
                let engine = CertainEngine::new(1);
                let mut bld = CqBuilder::new();
                let x = bld.var("x");
                bld.atom(thumb, &[x]);
                let q = Ucq::from_cq(bld.build(vec![x]));
                let queries: Vec<(Ucq, Vec<Term>)> =
                    d.dom().into_iter().map(|t| (q.clone(), vec![t])).collect();
                let certain = engine
                    .certain_disjunction(&union, &d, &queries, &mut v)
                    .is_certain();
                assert!(certain);
            })
        });
        group.bench_with_input(BenchmarkId::new("o2_alone", n), &n, |b, &n| {
            b.iter(|| {
                let mut v = Vocab::new();
                let (_, o2, _, hand, thumb, hf) = hand_ontologies(n as u32, &mut v);
                let d = hand_instance(n, hand, hf, &mut v);
                let engine = CertainEngine::new(1);
                let mut bld = CqBuilder::new();
                let x = bld.var("x");
                bld.atom(thumb, &[x]);
                let q = Ucq::from_cq(bld.build(vec![x]));
                std::hint::black_box(engine.certain_answers(&o2, &d, &q, &mut v).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
