//! E12: serving throughput of `gomq-engine` — cached-plan batched
//! evaluation vs the one-shot build-emit-eval loop.
//!
//! Workload: the Example-6 odd-cycle ontology in its engine-compatible
//! DL form (`A ⊓ ∃R.A ⊑ E`, `¬A ⊓ ∃R.¬A ⊑ E`, `E ⊑ ∀R.E`, `E ⊑ ∀R⁻.E`)
//! posed against batches of `R`-cycles of growing size. Note the OMQ
//! `(O₆, E)` itself is the paper's coNP-hard example — the type
//! rewriting evaluated here is the Theorem-5 machinery, whose tree-type
//! propagation is what a serving engine would run; the bench measures
//! that serving cost, not the (coNP-hard) exact certain answers.
//!
//! Per batch of `BATCH` ABoxes:
//! * `one_shot`: rebuild the element-type system, re-emit the Datalog≠
//!   program and evaluate with the reference evaluator — per ABox, the
//!   way the research crates are driven.
//! * `cached_batched`: fetch the plan from the engine's cache (a hit
//!   after the first request) and evaluate the batch concurrently on
//!   indexed instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::cycle_instance;
use gomq_core::{IndexedInstance, Instance, RelId, Vocab};
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_engine::Engine;
use gomq_logic::GfOntology;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::ElementTypeSystem;

const BATCH: usize = 8;

fn odd_cycle_dl(vocab: &mut Vocab) -> (GfOntology, RelId, RelId) {
    let text = "A6 and ex R6.A6 sub E6\n\
                not A6 and ex R6.not A6 sub E6\n\
                E6 sub all R6.E6\n\
                E6 sub all R6-.E6\n";
    let dl = parse_ontology(text, vocab).expect("odd-cycle DL text parses");
    let o = to_gf(&dl);
    let r = vocab.find_rel("R6").expect("R6");
    let e = vocab.find_rel("E6").expect("E6");
    (o, r, e)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_engine");
    group.sample_size(10);
    let mut v = Vocab::new();
    let (o, r, e) = odd_cycle_dl(&mut v);

    for n in [30usize, 100, 300] {
        let aboxes: Vec<Instance> = (0..BATCH)
            .map(|i| cycle_instance(r, n, &format!("b{n}_{i}_"), &mut v))
            .collect();

        // The research-pipeline loop: every request pays type
        // elimination, program emission and unindexed evaluation.
        group.bench_with_input(BenchmarkId::new("one_shot", n), &n, |b, _| {
            b.iter(|| {
                let mut total_answers = 0usize;
                for d in &aboxes {
                    let sys = ElementTypeSystem::build(&o, &v).expect("supported");
                    let program = emit_datalog(&sys, e, &mut v).optimize();
                    total_answers += program.eval(d).len();
                }
                std::hint::black_box(total_answers)
            })
        });

        // The engine: plan compiled once (cache hit on every iteration
        // after the first), batch evaluated in parallel on indexed
        // instances. Indexing cost is inside the measured region.
        let engine = Engine::new();
        group.bench_with_input(BenchmarkId::new("cached_batched", n), &n, |b, _| {
            b.iter(|| {
                let (plan, _, _) = engine.plan(&o, e, &mut v);
                let plan = plan.expect("supported");
                let indexed: Vec<IndexedInstance> = aboxes
                    .iter()
                    .map(IndexedInstance::from_interpretation)
                    .collect();
                let (answers, _) = engine.answer_batch(&plan, &indexed);
                std::hint::black_box(answers.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
