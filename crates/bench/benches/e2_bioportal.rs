//! E2: the BioPortal-style survey — corpus generation and analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use gomq_core::Vocab;
use gomq_corpus::{generate_corpus, survey, CorpusSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_bioportal");
    group.sample_size(10);
    group.bench_function("generate_411", |b| {
        b.iter(|| {
            let mut v = Vocab::new();
            std::hint::black_box(generate_corpus(&CorpusSpec::default(), &mut v).len())
        })
    });
    let mut v = Vocab::new();
    let corpus = generate_corpus(&CorpusSpec::default(), &mut v);
    group.bench_function("survey_411", |b| {
        b.iter(|| {
            let t = survey(&corpus, &mut v);
            assert_eq!(t.alchif_depth2_count(), 405);
            assert_eq!(t.alchiq_depth1_count(), 385);
            std::hint::black_box(t.total())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
