//! E20: SQL backend overhead — native fixpoint vs in-process emitted
//! SQL on non-recursive (hierarchy) OMQs.
//!
//! Workload: a pure concept hierarchy of depth 8 (the only shape both
//! backends answer — role axioms make the rewriting recursive and
//! SQL-refused), queried at the top concept against ABoxes of `n`
//! facts spread uniformly over the concepts. Two pipelines per size:
//!
//! * `native`: `Engine::answer_indexed_budgeted` — the stratified
//!   semi-naive executor over interned term columns.
//! * `sql`: `Engine::answer_indexed_sql` — render the ABox to string
//!   tables, run the plan's emitted SQL on the `gomq-sqlexec`
//!   nested-loop executor, map rows back to terms.
//!
//! The SQL path is a portability reference, not a performance contender
//! (it re-renders the ABox per request and joins without indexes); the
//! bench quantifies exactly what that costs. Answer equality is
//! asserted outside the measured region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_core::{IndexedInstance, Vocab};
use gomq_datalog::Budget;
use gomq_dl::parser::parse_ontology;
use gomq_dl::translate::to_gf;
use gomq_engine::Engine;
use std::sync::Mutex;

const DEPTH: usize = 8;

fn hierarchy_text() -> String {
    (0..DEPTH)
        .map(|i| format!("C{} sub C{}\n", i, i + 1))
        .collect()
}

fn abox_text(n: usize) -> String {
    // Facts spread over every level; only the C0 chain contributes new
    // derivations at the top, the rest is realistic dead weight.
    (0..n)
        .map(|i| format!("C{}(x{i})\n", i % (DEPTH + 1)))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_sql");
    group.sample_size(10);
    let mut v = Vocab::new();
    let dl = parse_ontology(&hierarchy_text(), &mut v).expect("hierarchy parses");
    let o = to_gf(&dl);
    let goal = v.find_rel(&format!("C{DEPTH}")).expect("top concept");
    let engine = Engine::with_threads(1);
    let (plan, _, _) = engine.plan(&o, goal, &mut v);
    let plan = plan.expect("hierarchies are rewritable");
    assert!(plan.sql.is_ok(), "hierarchy plans must emit SQL");

    // CI smoke (xtests/ci.sh) runs the tiny size only; the recorded
    // BENCH_sql.json numbers come from the full sweep.
    let sizes: &[usize] = if std::env::var_os("E17_TINY").is_some() {
        &[100]
    } else {
        &[100, 1000]
    };

    for &n in sizes {
        let abox = gomq_core::parse::parse_instance(&abox_text(n), &mut v).expect("abox parses");
        let indexed = IndexedInstance::from_interpretation(&abox);
        let vocab = Mutex::new(std::mem::take(&mut v));

        let (native, _) = engine.answer_indexed(&plan, &indexed);
        let (sql, _) = engine
            .answer_indexed_sql(&plan, &indexed, &Budget::UNLIMITED, &vocab)
            .expect("non-recursive plan runs on the SQL backend");
        assert_eq!(native, sql, "backends diverged at n={n}");

        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    engine
                        .answer_indexed_budgeted(&plan, &indexed, &Budget::UNLIMITED)
                        .expect("unlimited")
                        .0
                        .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sql", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    engine
                        .answer_indexed_sql(&plan, &indexed, &Budget::UNLIMITED, &vocab)
                        .expect("non-recursive")
                        .0
                        .len(),
                )
            })
        });
        v = vocab.into_inner().expect("unpoisoned");
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
