//! E9: unravelling construction cost as the radius grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gomq_bench::cycle_instance;
use gomq_core::Vocab;
use gomq_reasoning::unravel::{unravel, UnravelKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_unravel");
    group.sample_size(20);
    for radius in [3usize, 5, 7] {
        group.bench_with_input(
            BenchmarkId::new("ugf_triangle", radius),
            &radius,
            |b, &radius| {
                b.iter(|| {
                    let mut v = Vocab::new();
                    let r = v.rel("R", 2);
                    let tri = cycle_instance(r, 3, "t", &mut v);
                    std::hint::black_box(
                        unravel(&tri, UnravelKind::Ugf, radius, &mut v).nodes.len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ugc2_c5", radius),
            &radius,
            |b, &radius| {
                b.iter(|| {
                    let mut v = Vocab::new();
                    let r = v.rel("R", 2);
                    let c5 = cycle_instance(r, 5, "p", &mut v);
                    std::hint::black_box(
                        unravel(&c5, UnravelKind::Ugc2, radius, &mut v).nodes.len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
