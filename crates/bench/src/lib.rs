//! Shared fixtures for the benchmark harness and the table-regeneration
//! binaries.

#![warn(missing_docs)]

use gomq_core::{Fact, Instance, RelId, Vocab};
use gomq_dl::concept::{Concept, Role};
use gomq_dl::translate::to_gf;
use gomq_dl::DlOntology;
use gomq_logic::GfOntology;

/// The hand–finger ontologies `(O₁, O₂, O₁ ∪ O₂)` with `n` fingers.
pub fn hand_ontologies(
    n: u32,
    vocab: &mut Vocab,
) -> (GfOntology, GfOntology, GfOntology, RelId, RelId, RelId) {
    let hand = vocab.rel("Hand", 1);
    let thumb = vocab.rel("Thumb", 1);
    let hf_rel = vocab.rel("hasFinger", 2);
    let hf = Role::new(hf_rel);
    let mut dl1 = DlOntology::new();
    dl1.sub(Concept::Name(hand), Concept::exactly(n, hf, Concept::Top));
    let mut dl2 = DlOntology::new();
    dl2.sub(
        Concept::Name(hand),
        Concept::Exists(hf, Box::new(Concept::Name(thumb))),
    );
    let o1 = to_gf(&dl1);
    let o2 = to_gf(&dl2);
    let union = o1.union(&o2);
    (o1, o2, union, hand, thumb, hf_rel)
}

/// The hand instance with `n` explicit fingers.
pub fn hand_instance(n: usize, hand: RelId, hf: RelId, vocab: &mut Vocab) -> Instance {
    let h = vocab.constant("bench_hand");
    let mut d = Instance::new();
    d.insert(Fact::consts(hand, &[h]));
    for i in 0..n {
        let f = vocab.constant(&format!("bench_f{i}"));
        d.insert(Fact::consts(hf, &[h, f]));
    }
    d
}

/// A Horn subsumption-chain ontology `C₀ ⊑ C₁ ⊑ … ⊑ C_k` plus one
/// existential, for rewriting benchmarks.
pub fn horn_chain_ontology(k: usize, vocab: &mut Vocab) -> (GfOntology, Vec<RelId>, RelId) {
    let names: Vec<RelId> = (0..=k).map(|i| vocab.rel(&format!("HC{i}"), 1)).collect();
    let r = vocab.rel("HCr", 2);
    let mut dl = DlOntology::new();
    for w in names.windows(2) {
        dl.sub(Concept::Name(w[0]), Concept::Name(w[1]));
    }
    dl.sub(Concept::Name(names[k]), Concept::some(Role::new(r)));
    (to_gf(&dl), names, r)
}

/// An `R`-path instance with `C₀` at the start and propagation edges.
pub fn propagation_instance(len: usize, start: RelId, r: RelId, vocab: &mut Vocab) -> Instance {
    let mut d = Instance::new();
    let c0 = vocab.constant("bp0");
    d.insert(Fact::consts(start, &[c0]));
    for i in 0..len {
        let a = vocab.constant(&format!("bp{i}"));
        let b = vocab.constant(&format!("bp{}", i + 1));
        d.insert(Fact::consts(r, &[a, b]));
    }
    d
}

/// An ontology with a controllably wide type closure: a three-label
/// propagation cycle `TL0 ⊑ ∀R.TL1`, `TL1 ⊑ ∃R.TL2`, `TL2 ⊑ ∀R⁻.TL0`
/// plus `free` tautologically-axiomatised labels that enter the closure
/// without constraining it — each roughly doubles the number of
/// globally realizable types. Returns `(ontology, labels, role)` where
/// `labels` lists the three cycle labels followed by the free ones.
pub fn type_closure_ontology(free: usize, vocab: &mut Vocab) -> (GfOntology, Vec<RelId>, RelId) {
    let mut labels: Vec<RelId> = (0..3).map(|i| vocab.rel(&format!("TL{i}"), 1)).collect();
    let r = vocab.rel("TR", 2);
    let mut dl = DlOntology::new();
    dl.sub(
        Concept::Name(labels[0]),
        Concept::Forall(Role::new(r), Box::new(Concept::Name(labels[1]))),
    );
    dl.sub(
        Concept::Name(labels[1]),
        Concept::Exists(Role::new(r), Box::new(Concept::Name(labels[2]))),
    );
    dl.sub(
        Concept::Name(labels[2]),
        Concept::Forall(Role::inv(r), Box::new(Concept::Name(labels[0]))),
    );
    for i in 0..free {
        let f = vocab.rel(&format!("TF{i}"), 1);
        // Tautology: puts the label into the signature (hence the type
        // closure) without eliminating any type.
        dl.sub(Concept::Name(f), Concept::Name(f));
        labels.push(f);
    }
    (to_gf(&dl), labels, r)
}

/// A deterministic dense instance for type-propagation benchmarks: a
/// cycle `i → i+1` plus long-range chords `i → 7i+3 (mod n)`, with
/// label `j` asserted at every element divisible by `j + 2`.
pub fn type_bench_instance(n: usize, labels: &[RelId], r: RelId, vocab: &mut Vocab) -> Instance {
    let consts: Vec<_> = (0..n).map(|i| vocab.constant(&format!("tb{i}"))).collect();
    let mut d = Instance::new();
    for i in 0..n {
        d.insert(Fact::consts(r, &[consts[i], consts[(i + 1) % n]]));
        d.insert(Fact::consts(r, &[consts[i], consts[(i * 7 + 3) % n]]));
        for (j, &l) in labels.iter().enumerate() {
            if i % (j + 2) == 0 {
                d.insert(Fact::consts(l, &[consts[i]]));
            }
        }
    }
    d
}

/// A directed cycle over a binary relation.
pub fn cycle_instance(rel: RelId, n: usize, tag: &str, vocab: &mut Vocab) -> Instance {
    let mut d = Instance::new();
    for i in 0..n {
        let a = vocab.constant(&format!("{tag}{i}"));
        let b = vocab.constant(&format!("{tag}{}", (i + 1) % n));
        d.insert(Fact::consts(rel, &[a, b]));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let mut v = Vocab::new();
        let (o1, o2, u, hand, _, hf) = hand_ontologies(3, &mut v);
        assert!(o1.ugf_sentences.len() + o2.ugf_sentences.len() == u.ugf_sentences.len());
        let d = hand_instance(3, hand, hf, &mut v);
        assert_eq!(d.len(), 4);
        let (hc, names, r) = horn_chain_ontology(4, &mut v);
        assert_eq!(hc.ugf_sentences.len(), 5);
        let p = propagation_instance(10, names[0], r, &mut v);
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn type_closure_fixture_is_wide() {
        let mut v = Vocab::new();
        let (o, labels, r) = type_closure_ontology(4, &mut v);
        assert_eq!(labels.len(), 7);
        let sys = gomq_rewriting::ElementTypeSystem::build(&o, &v).unwrap();
        // The acceptance bar for E13: at least 64 globally realizable types.
        assert!(sys.num_types() >= 64, "only {} types", sys.num_types());
        let d = type_bench_instance(20, &labels, r, &mut v);
        assert!(d.len() >= 40);
        let it = sys.instance_types(&d);
        assert!(!it.inconsistent);
    }
}
