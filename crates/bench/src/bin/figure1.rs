//! Regenerates Figure 1 of the paper: the classification of
//! guarded-fragment ontology languages into the dichotomy / CSP-hard /
//! no-dichotomy zones, derived by running the classifier on
//! representative ontologies of each fragment.
//!
//! Run with `cargo run -p gomq-bench --bin figure1`.

use gomq_core::Vocab;
use gomq_dl::lang::dl_figure1_zone;
use gomq_dl::parser::parse_ontology;
use gomq_logic::fragment::{best_zone, classify, Zone};
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};

const X: LVar = LVar(0);
const Y: LVar = LVar(1);

fn nm() -> Vec<String> {
    vec!["x".into(), "y".into()]
}

type Builder = Box<dyn Fn(&mut Vocab) -> GfOntology>;

fn representatives() -> Vec<(&'static str, Builder)> {
    vec![
        (
            "uGF(1)",
            Box::new(|v: &mut Vocab| {
                let a = v.rel("A", 1);
                let r = v.rel("R", 2);
                GfOntology::from_ugf(vec![UgfSentence::forall_one(
                    X,
                    Formula::implies(
                        Formula::unary(a, X),
                        Formula::Exists {
                            qvars: vec![Y],
                            guard: Guard::Atom {
                                rel: r,
                                args: vec![X, Y],
                            },
                            body: Box::new(Formula::True),
                        },
                    ),
                    nm(),
                )])
            }),
        ),
        (
            "uGF-(1,=)",
            Box::new(|v: &mut Vocab| {
                let r = v.rel("R", 2);
                GfOntology::from_ugf(vec![UgfSentence::forall_one(
                    X,
                    Formula::Exists {
                        qvars: vec![Y],
                        guard: Guard::Atom {
                            rel: r,
                            args: vec![X, Y],
                        },
                        body: Box::new(Formula::Not(Box::new(Formula::Eq(X, Y)))),
                    },
                    nm(),
                )])
            }),
        ),
        (
            "uGF-2(2)",
            Box::new(|v: &mut Vocab| {
                let a = v.rel("A", 1);
                let r = v.rel("R", 2);
                let inner = Formula::Exists {
                    qvars: vec![X],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![Y, X],
                    },
                    body: Box::new(Formula::unary(a, X)),
                };
                GfOntology::from_ugf(vec![UgfSentence::forall_one(
                    X,
                    Formula::Exists {
                        qvars: vec![Y],
                        guard: Guard::Atom {
                            rel: r,
                            args: vec![X, Y],
                        },
                        body: Box::new(inner),
                    },
                    nm(),
                )])
            }),
        ),
        (
            "uGC-2(1,=)",
            Box::new(|v: &mut Vocab| {
                let a = v.rel("A", 1);
                let r = v.rel("R", 2);
                GfOntology::from_ugf(vec![UgfSentence::forall_one(
                    X,
                    Formula::implies(
                        Formula::unary(a, X),
                        Formula::CountExists {
                            n: 5,
                            qvar: Y,
                            guard: Guard::Atom {
                                rel: r,
                                args: vec![X, Y],
                            },
                            body: Box::new(Formula::True),
                        },
                    ),
                    nm(),
                )])
            }),
        ),
        (
            "uGF2(1,=)",
            Box::new(|v: &mut Vocab| {
                let r = v.rel("R", 2);
                let s = v.rel("S", 2);
                GfOntology::from_ugf(vec![UgfSentence::new(
                    vec![X, Y],
                    Guard::Atom {
                        rel: r,
                        args: vec![X, Y],
                    },
                    Formula::Or(vec![
                        Formula::Eq(X, Y),
                        Formula::Exists {
                            qvars: vec![Y],
                            guard: Guard::Atom {
                                rel: s,
                                args: vec![X, Y],
                            },
                            body: Box::new(Formula::True),
                        },
                    ]),
                    nm(),
                )])
            }),
        ),
        (
            "uGF2(2)",
            Box::new(|v: &mut Vocab| {
                let a = v.rel("A", 1);
                let r = v.rel("R", 2);
                let inner = Formula::Exists {
                    qvars: vec![X],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![Y, X],
                    },
                    body: Box::new(Formula::unary(a, X)),
                };
                GfOntology::from_ugf(vec![UgfSentence::new(
                    vec![X, Y],
                    Guard::Atom {
                        rel: r,
                        args: vec![X, Y],
                    },
                    Formula::Exists {
                        qvars: vec![X],
                        guard: Guard::Atom {
                            rel: r,
                            args: vec![Y, X],
                        },
                        body: Box::new(inner),
                    },
                    nm(),
                )])
            }),
        ),
        (
            "uGF2(1,f)",
            Box::new(|v: &mut Vocab| {
                let a = v.rel("A", 1);
                let r = v.rel("R", 2);
                let f = v.rel("F", 2);
                let mut o = GfOntology::from_ugf(vec![UgfSentence::new(
                    vec![X, Y],
                    Guard::Atom {
                        rel: r,
                        args: vec![X, Y],
                    },
                    Formula::unary(a, X),
                    nm(),
                )]);
                o.declare_functional(f);
                o
            }),
        ),
        (
            "uGF-2(2,f)",
            Box::new(|v: &mut Vocab| {
                let a = v.rel("A", 1);
                let r = v.rel("R", 2);
                let f = v.rel("F", 2);
                let inner = Formula::Exists {
                    qvars: vec![X],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![Y, X],
                    },
                    body: Box::new(Formula::unary(a, X)),
                };
                let mut o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
                    X,
                    Formula::Exists {
                        qvars: vec![Y],
                        guard: Guard::Atom {
                            rel: r,
                            args: vec![X, Y],
                        },
                        body: Box::new(inner),
                    },
                    nm(),
                )]);
                o.declare_functional(f);
                o
            }),
        ),
    ]
}

fn dl_representatives() -> Vec<(&'static str, &'static str)> {
    vec![
        ("ALCHIQ depth 1", "A sub >=2 R.B\nrole R sub S\n"),
        ("ALCHIF depth 2", "A sub ex R.(all S.B)\nfunc(R)\n"),
        ("ALC depth 3 [42]", "A sub ex R.(ex R.(ex R.B))\n"),
        ("ALCF` depth 2", "A sub ex R.(<=1 S.Top)\n"),
        ("ALCF` depth 2 (>=2)", "A sub >=2 R.Top and <=1 S.Top\n"),
        ("ALCIF` depth 2", "A sub ex R-.(<=1 S.Top)\n"),
        ("ALCF depth 3 [42]", "A sub ex R.(ex R.(ex R.B))\nfunc(R)\n"),
    ]
}

fn main() {
    println!("Figure 1 — classification of ontology languages (reproduced)\n");
    let mut rows: Vec<(Zone, String)> = Vec::new();
    for (name, build) in representatives() {
        let mut v = Vocab::new();
        let o = build(&mut v);
        let frags = classify(&o, &v);
        let zone = best_zone(&o, &v);
        rows.push((
            zone,
            format!("{name:<14} tightest fragment: {:<12}", frags[0].name()),
        ));
    }
    for (name, text) in dl_representatives() {
        let mut v = Vocab::new();
        let dl = parse_ontology(text, &mut v).expect("well-formed");
        let zone = dl_figure1_zone(&dl);
        let lang = gomq_dl::lang::DlFeatures::of(&dl).language();
        rows.push((zone, format!("{name:<22} (detected {lang})")));
    }
    for (title, zone) in [
        ("NO DICHOTOMY", Zone::NoDichotomy),
        ("CSP-HARD (Datalog!= != PTIME)", Zone::CspHard),
        ("DICHOTOMY (Datalog!= = PTIME)", Zone::Dichotomy),
    ] {
        println!("== {title} ==");
        for (z, row) in &rows {
            if *z == zone {
                println!("   {row}");
            }
        }
        println!();
    }
    println!(
        "paper Figure 1: dichotomy = {{uGF(1), uGF-(1,=), uGF-2(2), uGC-2(1,=),\n\
         ALCHIQ d1, ALCHIF d2}}; CSP-hard = {{uGF2(1,=), uGF2(2), uGF2(1,f),\n\
         ALC d3, ALCF` d2}}; no dichotomy = {{uGF-2(2,f), ALCIF` d2, ALCF d3}}."
    );
}
