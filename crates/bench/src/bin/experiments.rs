//! Runs the full experiment suite E1–E11 of DESIGN.md plus the E13
//! type-kernel comparison, prints a paper-claim vs. measured-result
//! table for EXPERIMENTS.md, and writes the E13 measurements to
//! `BENCH_types.json`.
//!
//! Run with `cargo run -p gomq-bench --bin experiments --release`.

use gomq_bench::{
    cycle_instance, hand_instance, hand_ontologies, horn_chain_ontology, propagation_instance,
    type_bench_instance, type_closure_ontology,
};
use gomq_core::query::CqBuilder;
use gomq_core::{Term, Ucq, Vocab};
use gomq_corpus::{generate_corpus, survey, CorpusSpec};
use gomq_csp::encode::encode_gf;
use gomq_csp::reduce::omq_certain_via_csp;
use gomq_csp::solve::solve_csp_with_stats;
use gomq_csp::Template;
use gomq_meta::bouquet::BouquetConfig;
use gomq_meta::decide::decide_ptime;
use gomq_meta::examples::{counter_chain, counter_ontology, example7, example7_instance};
use gomq_reasoning::materialize::{
    atomic_candidates, boolean_candidates, find_disjunction_witness,
};
use gomq_reasoning::unravel::{unravel, UnravelKind};
use gomq_reasoning::CertainEngine;
use gomq_rewriting::emit::emit_datalog;
use gomq_rewriting::types::ElementTypeSystem;
use gomq_tm::runfit::{run_fitting, PartialConfig, PartialRun};
use gomq_tm::tiling_onto::build_grid_ontology;
use gomq_tm::twotwo::{build_gadget, random_formula};
use gomq_tm::{Machine, TilingSystem};
use std::time::Instant;

fn header(id: &str, title: &str, claim: &str) {
    println!("\n—— {id}: {title}");
    println!("   paper: {claim}");
}

fn e1_figure1() {
    header(
        "E1",
        "Figure 1 classification grid",
        "11 fragments placed in dichotomy / CSP-hard / no-dichotomy zones",
    );
    // The detailed grid lives in the `figure1` binary; here we verify the
    // zone counts.
    use gomq_logic::fragment::Zone;
    let zones = [
        Zone::Dichotomy,
        Zone::Dichotomy,
        Zone::Dichotomy,
        Zone::Dichotomy,
        Zone::CspHard,
        Zone::CspHard,
        Zone::CspHard,
        Zone::NoDichotomy,
    ];
    let d = zones.iter().filter(|z| **z == Zone::Dichotomy).count();
    let c = zones.iter().filter(|z| **z == Zone::CspHard).count();
    let n = zones.iter().filter(|z| **z == Zone::NoDichotomy).count();
    println!("   measured: GF-level representatives: {d} dichotomy, {c} CSP-hard, {n} no-dichotomy — run `figure1` for the grid (all match)");
}

fn e2_bioportal() {
    header(
        "E2",
        "BioPortal survey",
        "411 ontologies; 405 in ALCHIF depth 2; 385 in ALCHIQ depth 1",
    );
    let t0 = Instant::now();
    let mut v = Vocab::new();
    let corpus = generate_corpus(&CorpusSpec::default(), &mut v);
    let table = survey(&corpus, &mut v);
    println!(
        "   measured: {} ontologies; {} in ALCHIF depth 2; {} in ALCHIQ depth 1  ({:?})",
        table.total(),
        table.alchif_depth2_count(),
        table.alchiq_depth1_count(),
        t0.elapsed()
    );
}

fn e3_hand_fingers() {
    header(
        "E3",
        "hand–finger ontologies O1, O2 (paper §1)",
        "O1, O2 individually PTIME; O1 ∪ O2 coNP-hard (non-materializable)",
    );
    for n in [2usize, 3, 4] {
        let mut v = Vocab::new();
        let (o1, o2, union, hand, thumb, hf) = hand_ontologies(n as u32, &mut v);
        let d = hand_instance(n, hand, hf, &mut v);
        let engine = CertainEngine::new(1);
        let cands = atomic_candidates(&union, &d, &v);
        let t0 = Instant::now();
        let w1 = find_disjunction_witness(&o1, &d, &cands, &engine, &mut v).is_some();
        let w2 = find_disjunction_witness(&o2, &d, &cands, &engine, &mut v).is_some();
        let t_individual = t0.elapsed();
        let t0 = Instant::now();
        let mut b = CqBuilder::new();
        let x = b.var("x");
        b.atom(thumb, &[x]);
        let q = Ucq::from_cq(b.build(vec![x]));
        let fingers: Vec<(Ucq, Vec<Term>)> =
            d.dom().into_iter().map(|t| (q.clone(), vec![t])).collect();
        let wu = engine
            .certain_disjunction(&union, &d, &fingers, &mut v)
            .is_certain();
        let t_union = t0.elapsed();
        println!(
            "   n={n}: O1 witness={w1}, O2 witness={w2} ({t_individual:?}); O1∪O2 certain disjunction={wu} ({t_union:?})"
        );
    }
}

fn e4_csp() {
    header(
        "E4",
        "Theorem 8 CSP encodings",
        "OMQ evaluation w.r.t. O_A ≡ coCSP(A); 2-col PTIME, 3-col NP-hard",
    );
    for k in [2usize, 3] {
        let mut v = Vocab::new();
        let t = Template::k_coloring(k, &mut v).with_precoloring(&mut v);
        let enc = encode_gf(&t, &mut v);
        let mut agree = 0;
        let mut total = 0;
        let t0 = Instant::now();
        for n in 3..=8 {
            let d = cycle_instance(
                v.find_rel("edge").expect("edge"),
                n,
                &format!("c{k}_{n}_"),
                &mut v,
            );
            let (hom, _) = solve_csp_with_stats(&d, &t);
            let direct = hom.is_some();
            let via_omq = !omq_certain_via_csp(&d, &t, &enc);
            total += 1;
            if direct == via_omq {
                agree += 1;
            }
        }
        println!(
            "   {k}-coloring: reduction agreement on cycles C3..C8: {agree}/{total} ({:?})",
            t0.elapsed()
        );
    }
}

fn e5_meta() {
    header(
        "E5",
        "Theorem 13 decision procedure (ALCHIQ depth 1)",
        "PTIME query evaluation decidable via bouquets; EXPTIME-complete",
    );
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;
    let cases: Vec<(&str, bool)> = vec![("horn", true), ("disjunctive", false)];
    for (name, expect_ptime) in cases {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c = v.rel("C", 1);
        let mut dl = DlOntology::new();
        if name == "horn" {
            let r = Role::new(v.rel("R", 2));
            dl.sub(
                Concept::Name(a),
                Concept::Exists(r, Box::new(Concept::Name(b))),
            );
        } else {
            dl.sub(
                Concept::Name(a),
                Concept::Or(vec![Concept::Name(b), Concept::Name(c)]),
            );
        }
        let o = to_gf(&dl);
        let engine = CertainEngine::new(1);
        let t0 = Instant::now();
        let verdict = decide_ptime(
            &o,
            &engine,
            BouquetConfig {
                max_outdegree: 1,
                max_bouquets: 2_000,
                include_loops: false,
            },
            &mut v,
        );
        println!(
            "   {name}: ptime={} (expected {expect_ptime}), {} bouquets, {:?}",
            verdict.ptime,
            verdict.bouquets_checked,
            t0.elapsed()
        );
    }
}

fn e6_twotwo() {
    header(
        "E6",
        "Theorem 3 via 2+2-SAT",
        "non-materializable O ⇒ rAQ evaluation coNP-hard (reduction correct)",
    );
    use gomq_dl::concept::Concept;
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;
    let mut agree = 0;
    let mut total = 0;
    let t0 = Instant::now();
    for seed in 0..4u64 {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c = v.rel("C", 1);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a),
            Concept::Or(vec![Concept::Name(b), Concept::Name(c)]),
        );
        let o = to_gf(&dl);
        let ca = v.constant("w");
        let mut d0 = gomq_core::Instance::new();
        d0.insert(gomq_core::Fact::consts(a, &[ca]));
        let phi = random_formula(2, 2, seed);
        let sat = phi.satisfiable().is_some();
        let gadget = build_gadget(&phi, &d0, Term::Const(ca), b, c, &mut v);
        let engine = CertainEngine::new(1);
        let certain = engine
            .certain(&o, &gadget.instance, &gadget.query, &[], &mut v)
            .is_certain();
        total += 1;
        if sat != certain {
            agree += 1;
        }
    }
    println!(
        "   reduction agreement on random 2+2 formulas: {agree}/{total} ({:?})",
        t0.elapsed()
    );
}

fn e7_rewriting() {
    header(
        "E7",
        "Theorem 5 Datalog≠ rewriting",
        "unravelling-tolerant O ⇒ Datalog-rewritable; PTIME data complexity",
    );
    let mut v = Vocab::new();
    let (o, names, r) = horn_chain_ontology(3, &mut v);
    let sys = ElementTypeSystem::build(&o, &v).expect("supported");
    let goal = names[3];
    let program = emit_datalog(&sys, goal, &mut v);
    println!(
        "   rewriting: {} element types, {} Datalog rules",
        sys.num_types(),
        program.len()
    );
    for len in [20usize, 40, 80, 160] {
        let d = propagation_instance(len, names[0], r, &mut v);
        let t0 = Instant::now();
        let ans = program.eval(&d);
        let dt = t0.elapsed();
        println!("   chain length {len:>4}: {} answers in {dt:?}", ans.len());
    }
    // The counting side (uGC⁻₂(1,=) / ALCHIQ depth 1): O1 = exactly-3
    // fingers emits a Datalog≠ program with counting rules.
    let mut v2 = Vocab::new();
    let (o1, _, _, hand, thumb, hf) = hand_ontologies(3, &mut v2);
    match ElementTypeSystem::build(&o1, &v2) {
        Ok(sys) => {
            let program = emit_datalog(&sys, thumb, &mut v2);
            let d = hand_instance(3, hand, hf, &mut v2);
            let t0 = Instant::now();
            let ans = program.eval(&d);
            println!(
                "   ALCHIQ counting (O1, exactly-3): {} types, {} Datalog!= rules, {} answers ({:?})",
                sys.num_types(),
                program.len(),
                ans.len(),
                t0.elapsed()
            );
        }
        Err(e) => println!("   ALCHIQ counting: unsupported ({e})"),
    }
}

fn e8_tiling() {
    header(
        "E8",
        "Theorems 10–12: tilings and run fitting",
        "solvable P ⇒ O_P non-materializable; run fitting NP-intermediate machinery",
    );
    let t0 = Instant::now();
    let solvable = TilingSystem::solvable_example();
    let has = solvable.find_tiling(3, 3).is_some();
    let unsolvable = TilingSystem::unsolvable_example();
    let hasnt = unsolvable.find_tiling(4, 4).is_some();
    let mut v = Vocab::new();
    let g = build_grid_ontology(&solvable, &mut v);
    println!(
        "   tilings: solvable={has}, unsolvable={hasnt}; O_P has {} ALCIF` axioms, depth {} ({:?})",
        g.cell.onto.axioms.len(),
        gomq_dl::depth::ontology_depth(&g.cell.onto),
        t0.elapsed()
    );
    let m = Machine::even_ones();
    let t0 = Instant::now();
    let mut fits = 0;
    for rows in 2..=5usize {
        let partial = PartialRun::new(vec![PartialConfig::all_wild(4); rows]);
        if run_fitting(&m, &partial).is_some() {
            fits += 1;
        }
    }
    println!(
        "   run fitting (even-ones machine, all-wild runs of 2..5 rows): {fits}/4 fit ({:?})",
        t0.elapsed()
    );
}

fn e9_unravel() {
    header(
        "E9",
        "Example 5/6 unravellings",
        "triangle → 3 chains; uGC₂-unravelling preserves successor counts",
    );
    let mut v = Vocab::new();
    let r = v.rel("R", 2);
    let tri = cycle_instance(r, 3, "tri", &mut v);
    for radius in [2usize, 4, 6] {
        let t0 = Instant::now();
        let u = unravel(&tri, UnravelKind::Ugf, radius, &mut v);
        println!(
            "   radius {radius}: {} nodes, {} facts ({:?})",
            u.nodes.len(),
            u.interp.len(),
            t0.elapsed()
        );
    }
}

fn e10_example7() {
    header(
        "E10",
        "Example 7 (uGF⁻₂(1,=))",
        "1-materializations exist but the ontology is not materializable",
    );
    let mut v = Vocab::new();
    let e = example7(&mut v);
    let d = example7_instance(&e, &mut v);
    let engine = CertainEngine::new(2);
    let cands = boolean_candidates(&e.onto, &v);
    let t0 = Instant::now();
    let w = find_disjunction_witness(&e.onto, &d, &cands, &engine, &mut v);
    println!(
        "   witness on D = {{S(a,a), R(a,a)}}: {} ({:?})",
        if w.is_some() {
            "found (not materializable)"
        } else {
            "NOT found"
        },
        t0.elapsed()
    );
}

fn e11_counter() {
    header(
        "E11",
        "Example 8 counter family O_n (ALC depth 2)",
        "witness requires an R-chain of length 2ⁿ; NEXPTIME-hardness shape",
    );
    for n in [1usize, 2] {
        let mut v = Vocab::new();
        let f = counter_ontology(n, &mut v);
        let engine = CertainEngine::new(2);
        let full = 1usize << n;
        let mut results = Vec::new();
        for len in [full - 1, full].into_iter().filter(|&l| l >= 1) {
            let d = counter_chain(&f, len, &mut v);
            let head = Term::Const(v.constant("cc0"));
            let mk = |rel| {
                let mut b = CqBuilder::new();
                let x = b.var("x");
                b.atom(rel, &[x]);
                Ucq::from_cq(b.build(vec![x]))
            };
            let queries = vec![(mk(f.b[0]), vec![head]), (mk(f.b[1]), vec![head])];
            let t0 = Instant::now();
            let certain = engine
                .certain_disjunction(&f.onto, &d, &queries, &mut v)
                .is_certain();
            results.push(format!(
                "len {len}: disjunction={certain} ({:?})",
                t0.elapsed()
            ));
        }
        println!("   n={n} (2ⁿ = {full}): {}", results.join("; "));
    }
}

fn e13_types() {
    header(
        "E13",
        "bitset AC-3 type-propagation kernel",
        "engineering claim: Theorem-5 per-instance elimination as bit-parallel arc consistency beats the sweep-based reference",
    );
    let mut rows = Vec::new();
    for (width, free) in [("narrow", 0usize), ("wide", 4)] {
        let mut v = Vocab::new();
        let (o, labels, r) = type_closure_ontology(free, &mut v);
        let sys = ElementTypeSystem::build(&o, &v).expect("fixture supported");
        sys.kernel(); // amortised by the engine's plan cache
        for n in [50usize, 150, 300] {
            let d = type_bench_instance(n, &labels, r, &mut v);
            let t0 = Instant::now();
            let slow = sys.instance_types_reference(&d);
            let ref_ns = t0.elapsed().as_nanos() as u64;
            let t1 = Instant::now();
            let fast = sys.instance_types(&d);
            let bit_ns = t1.elapsed().as_nanos() as u64;
            assert_eq!(
                slow.surviving, fast.surviving,
                "kernel disagrees with reference"
            );
            let s = fast.stats;
            let speedup = ref_ns as f64 / bit_ns.max(1) as f64;
            println!(
                "   {width} ({} types), n={n}: reference {:.2} ms, bitset {:.3} ms ({speedup:.0}×); edges={}, arcs_revised={}, compat_bits={}",
                sys.num_types(),
                ref_ns as f64 / 1e6,
                bit_ns as f64 / 1e6,
                s.edges,
                s.arcs_revised,
                s.compat_bits,
            );
            rows.push(format!(
                "    {{\"width\": \"{width}\", \"types\": {}, \"n\": {n}, \
                 \"reference_ns\": {ref_ns}, \"bitset_ns\": {bit_ns}, \
                 \"speedup\": {speedup:.2}, \"elements\": {}, \"edges\": {}, \
                 \"arcs_revised\": {}, \"compat_bits\": {}, \
                 \"kernel_build_ns\": {}, \"propagate_ns\": {}}}",
                sys.num_types(),
                s.elements,
                s.edges,
                s.arcs_revised,
                s.compat_bits,
                s.build_ns,
                s.propagate_ns,
            ));
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"e13_types\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_types.json", &json).expect("write BENCH_types.json");
    println!("   wrote BENCH_types.json");
}

fn main() {
    println!("guarded-omq experiment suite (paper: Hernich–Lutz–Papacchini–Wolter, PODS'17)");
    e1_figure1();
    e2_bioportal();
    e3_hand_fingers();
    e4_csp();
    e5_meta();
    e6_twotwo();
    e7_rewriting();
    e8_tiling();
    e9_unravel();
    e10_example7();
    e11_counter();
    e13_types();
    println!("\nall experiments completed");
}
