//! Property tests for the DL layer: NNF, depth, stripping, normalization
//! and the parser round-trip.

use gomq_core::Vocab;
use gomq_dl::concept::{Concept, Role};
use gomq_dl::depth::{concept_depth, ontology_depth};
use gomq_dl::lang::{strip_to_alchif, DlFeatures};
use gomq_dl::normalize::normalize_depth1;
use gomq_dl::parser::parse_ontology;
use gomq_dl::DlOntology;
use proptest::prelude::*;

/// A strategy producing random concepts over a fixed tiny signature.
/// Indices: concept names 0..3, roles 0..2 (possibly inverse).
fn concept_strategy() -> impl Strategy<Value = ConceptTree> {
    let leaf = prop_oneof![
        Just(ConceptTree::Top),
        Just(ConceptTree::Bot),
        (0u8..3).prop_map(ConceptTree::Name),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|c| ConceptTree::Not(Box::new(c))),
            prop::collection::vec(inner.clone(), 2..4).prop_map(ConceptTree::And),
            prop::collection::vec(inner.clone(), 2..4).prop_map(ConceptTree::Or),
            (0u8..2, any::<bool>(), inner.clone()).prop_map(|(r, i, c)| ConceptTree::Exists(
                r,
                i,
                Box::new(c)
            )),
            (0u8..2, any::<bool>(), inner.clone()).prop_map(|(r, i, c)| ConceptTree::Forall(
                r,
                i,
                Box::new(c)
            )),
            (1u32..4, 0u8..2, inner.clone()).prop_map(|(n, r, c)| ConceptTree::AtLeast(
                n,
                r,
                Box::new(c)
            )),
            (0u32..3, 0u8..2, inner).prop_map(|(n, r, c)| ConceptTree::AtMost(n, r, Box::new(c))),
        ]
    })
}

/// A vocabulary-independent concept description (proptest values must be
/// `'static`, so we intern lazily).
#[derive(Clone, Debug)]
enum ConceptTree {
    Top,
    Bot,
    Name(u8),
    Not(Box<ConceptTree>),
    And(Vec<ConceptTree>),
    Or(Vec<ConceptTree>),
    Exists(u8, bool, Box<ConceptTree>),
    Forall(u8, bool, Box<ConceptTree>),
    AtLeast(u32, u8, Box<ConceptTree>),
    AtMost(u32, u8, Box<ConceptTree>),
}

fn realize(t: &ConceptTree, v: &mut Vocab) -> Concept {
    let role = |r: u8, inv: bool, v: &mut Vocab| {
        let rel = v.rel(&format!("r{r}"), 2);
        if inv {
            Role::inv(rel)
        } else {
            Role::new(rel)
        }
    };
    match t {
        ConceptTree::Top => Concept::Top,
        ConceptTree::Bot => Concept::Bot,
        ConceptTree::Name(i) => Concept::Name(v.rel(&format!("A{i}"), 1)),
        ConceptTree::Not(c) => Concept::Not(Box::new(realize(c, v))),
        ConceptTree::And(cs) => Concept::And(cs.iter().map(|c| realize(c, v)).collect()),
        ConceptTree::Or(cs) => Concept::Or(cs.iter().map(|c| realize(c, v)).collect()),
        ConceptTree::Exists(r, i, c) => {
            let role = role(*r, *i, v);
            Concept::Exists(role, Box::new(realize(c, v)))
        }
        ConceptTree::Forall(r, i, c) => {
            let role = role(*r, *i, v);
            Concept::Forall(role, Box::new(realize(c, v)))
        }
        ConceptTree::AtLeast(n, r, c) => {
            let role = role(*r, false, v);
            Concept::AtLeast(*n, role, Box::new(realize(c, v)))
        }
        ConceptTree::AtMost(n, r, c) => {
            let role = role(*r, false, v);
            Concept::AtMost(*n, role, Box::new(realize(c, v)))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nnf_is_idempotent_and_preserves_depth(tree in concept_strategy()) {
        let mut v = Vocab::new();
        let c = realize(&tree, &mut v);
        let n = c.nnf();
        prop_assert_eq!(n.nnf(), n.clone());
        prop_assert_eq!(concept_depth(&n), concept_depth(&c));
    }

    #[test]
    fn double_negation_nnf_equals_nnf(tree in concept_strategy()) {
        let mut v = Vocab::new();
        let c = realize(&tree, &mut v);
        let nn = c.clone().neg().neg().nnf();
        prop_assert_eq!(nn, c.nnf());
    }

    #[test]
    fn stripping_lands_in_alchif(tree in concept_strategy()) {
        let mut v = Vocab::new();
        let c = realize(&tree, &mut v);
        let d = realize(&tree, &mut v);
        let mut o = DlOntology::new();
        o.sub(c, d.neg());
        let stripped = strip_to_alchif(&o);
        prop_assert!(DlFeatures::of(&stripped).within_alchif());
        // Stripping never increases the depth.
        prop_assert!(ontology_depth(&stripped) <= ontology_depth(&o));
    }

    #[test]
    fn normalization_reaches_depth_one(tree in concept_strategy()) {
        let mut v = Vocab::new();
        let c = realize(&tree, &mut v);
        let mut o = DlOntology::new();
        o.sub(Concept::Top, c);
        let n = normalize_depth1(&o, &mut v);
        prop_assert!(ontology_depth(&n) <= 1);
    }

    #[test]
    fn display_parse_roundtrip(tree in concept_strategy()) {
        // The parser applies `neg()` simplification (`not Top` → `Bot`),
        // so the round-trip is compared modulo negation normal form.
        let mut v = Vocab::new();
        let c = realize(&tree, &mut v);
        let mut o = DlOntology::new();
        o.sub(c, Concept::Top);
        let printed = format!("{}", o.display(&v));
        let reparsed = parse_ontology(&printed, &mut v).expect("round-trip parses");
        let nnf_of = |onto: &DlOntology| -> Vec<(Concept, Concept)> {
            onto.concept_inclusions()
                .map(|(a, b)| (a.nnf(), b.nnf()))
                .collect()
        };
        prop_assert_eq!(nnf_of(&o), nnf_of(&reparsed));
    }

    #[test]
    fn subconcepts_contains_self_and_is_monotone(tree in concept_strategy()) {
        let mut v = Vocab::new();
        let c = realize(&tree, &mut v);
        let subs = c.subconcepts();
        prop_assert!(subs.contains(&c));
        for s in &subs {
            prop_assert!(s.subconcepts().is_subset(&subs));
        }
    }
}
