//! A compact text syntax for DL ontologies.
//!
//! ```text
//! # comments start with '#'
//! Hand sub ex hasFinger.Thumb
//! Hand sub >=5 hasFinger.Top
//! A equiv B and (not C)
//! role child sub descendant
//! func(hasMother)
//! func(hasMother-)            # inverse functionality
//! ```
//!
//! Grammar (one axiom per line):
//!
//! ```text
//! axiom   := concept "sub" concept | concept "equiv" concept
//!          | "role" role "sub" role | "func" "(" role ")"
//! concept := and_c ("or" and_c)*
//! and_c   := unary ("and" unary)*
//! unary   := "not" unary | ("ex"|"all") role "." unary
//!          | (">="|"<=") INT role "." unary
//!          | "(" concept ")" | "Top" | "Bot" | NAME
//! role    := NAME ["-"]
//! ```

use crate::concept::{Concept, Role};
use crate::ontology::DlOntology;
use gomq_core::Vocab;
use std::fmt;

/// A parse error with its 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Name(String),
    Int(u32),
    LParen,
    RParen,
    Dot,
    Minus,
    Geq,
    Leq,
}

fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '#' => break,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '>' | '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    out.push(if c == '>' { Tok::Geq } else { Tok::Leq });
                    i += 2;
                } else {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("expected `=` after `{c}`"),
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: u32 = line[start..i].parse().map_err(|_| ParseError {
                    line: lineno,
                    message: "number too large".to_owned(),
                })?;
                out.push(Tok::Int(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_alphanumeric() || ch == '_' || ch == '`' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok::Name(line[start..i].to_owned()));
            }
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    vocab: &'a mut Vocab,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_name(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Name(n)) if n == kw => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn role(&mut self) -> Result<Role, ParseError> {
        match self.next() {
            Some(Tok::Name(n)) => {
                let rel = self.vocab.rel(&n, 2);
                if matches!(self.peek(), Some(Tok::Minus)) {
                    self.pos += 1;
                    Ok(Role::inv(rel))
                } else {
                    Ok(Role::new(rel))
                }
            }
            other => Err(self.err(format!("expected role name, found {other:?}"))),
        }
    }

    fn concept(&mut self) -> Result<Concept, ParseError> {
        let mut parts = vec![self.and_concept()?];
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "or") {
            self.pos += 1;
            parts.push(self.and_concept()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Concept::Or(parts)
        })
    }

    fn and_concept(&mut self) -> Result<Concept, ParseError> {
        let mut parts = vec![self.unary()?];
        while matches!(self.peek(), Some(Tok::Name(n)) if n == "and") {
            self.pos += 1;
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Concept::And(parts)
        })
    }

    fn restriction(
        &mut self,
        make: impl FnOnce(Role, Box<Concept>) -> Concept,
    ) -> Result<Concept, ParseError> {
        let role = self.role()?;
        match self.next() {
            Some(Tok::Dot) => {}
            other => return Err(self.err(format!("expected `.`, found {other:?}"))),
        }
        let inner = self.unary()?;
        Ok(make(role, Box::new(inner)))
    }

    fn unary(&mut self) -> Result<Concept, ParseError> {
        match self.next() {
            Some(Tok::Name(n)) => match n.as_str() {
                "not" => Ok(self.unary()?.neg()),
                "ex" => self.restriction(Concept::Exists),
                "all" => self.restriction(Concept::Forall),
                "Top" => Ok(Concept::Top),
                "Bot" => Ok(Concept::Bot),
                "and" | "or" | "sub" | "equiv" => {
                    Err(self.err(format!("unexpected keyword `{n}`")))
                }
                name => Ok(Concept::Name(self.vocab.rel(name, 1))),
            },
            Some(Tok::Geq) => {
                let n = self.int()?;
                if n == 0 {
                    return Ok(Concept::Top);
                }
                self.restriction(move |r, c| Concept::AtLeast(n, r, c))
            }
            Some(Tok::Leq) => {
                let n = self.int()?;
                self.restriction(move |r, c| Concept::AtMost(n, r, c))
            }
            Some(Tok::LParen) => {
                let c = self.concept()?;
                match self.next() {
                    Some(Tok::RParen) => Ok(c),
                    other => Err(self.err(format!("expected `)`, found {other:?}"))),
                }
            }
            other => Err(self.err(format!("expected concept, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<u32, ParseError> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }
}

/// Parses an ontology from its text representation, interning symbols into
/// `vocab` (concept names as unary relations, role names as binary).
///
/// ```
/// use gomq_core::Vocab;
/// use gomq_dl::parser::parse_ontology;
///
/// let mut vocab = Vocab::new();
/// let onto = parse_ontology(
///     "Hand sub >=5 hasFinger.Top\nfunc(hasMother-)\n",
///     &mut vocab,
/// ).unwrap();
/// assert_eq!(onto.axioms.len(), 2);
/// assert_eq!(gomq_dl::depth::ontology_depth(&onto), 1);
/// ```
pub fn parse_ontology(text: &str, vocab: &mut Vocab) -> Result<DlOntology, ParseError> {
    let mut onto = DlOntology::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let toks = tokenize(raw_line, lineno)?;
        if toks.is_empty() {
            continue;
        }
        let mut p = Parser {
            toks,
            pos: 0,
            vocab,
            line: lineno,
        };
        match p.peek() {
            Some(Tok::Name(n)) if n == "role" => {
                p.pos += 1;
                let r = p.role()?;
                p.expect_name("sub")?;
                let s = p.role()?;
                onto.role_sub(r, s);
            }
            Some(Tok::Name(n)) if n == "trans" => {
                p.pos += 1;
                match p.next() {
                    Some(Tok::LParen) => {}
                    other => return Err(p.err(format!("expected `(`, found {other:?}"))),
                }
                let r = p.role()?;
                match p.next() {
                    Some(Tok::RParen) => {}
                    other => return Err(p.err(format!("expected `)`, found {other:?}"))),
                }
                onto.transitive(r);
            }
            Some(Tok::Name(n)) if n == "func" => {
                p.pos += 1;
                match p.next() {
                    Some(Tok::LParen) => {}
                    other => return Err(p.err(format!("expected `(`, found {other:?}"))),
                }
                let r = p.role()?;
                match p.next() {
                    Some(Tok::RParen) => {}
                    other => return Err(p.err(format!("expected `)`, found {other:?}"))),
                }
                onto.functional(r);
            }
            _ => {
                let c = p.concept()?;
                match p.next() {
                    Some(Tok::Name(k)) if k == "sub" => {
                        let d = p.concept()?;
                        onto.sub(c, d);
                    }
                    Some(Tok::Name(k)) if k == "equiv" => {
                        let d = p.concept()?;
                        onto.equiv(c, d);
                    }
                    other => return Err(p.err(format!("expected `sub`/`equiv`, found {other:?}"))),
                }
            }
        }
        if p.pos != p.toks.len() {
            return Err(p.err("trailing tokens after axiom"));
        }
    }
    Ok(onto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth::ontology_depth;
    use crate::lang::DlFeatures;

    #[test]
    fn parses_hand_finger_ontologies() {
        let mut v = Vocab::new();
        let text = "\
# O1 and O2 from the paper's introduction
Hand sub >=5 hasFinger.Top and <=5 hasFinger.Top
Hand sub ex hasFinger.Thumb
";
        let o = parse_ontology(text, &mut v).expect("parses");
        assert_eq!(o.axioms.len(), 2);
        assert_eq!(ontology_depth(&o), 1);
        let f = DlFeatures::of(&o);
        assert!(f.qualified_number);
    }

    #[test]
    fn parses_role_axioms_and_functionality() {
        let mut v = Vocab::new();
        let text = "\
role child sub descendant
func(hasMother)
func(hasMother-)
";
        let o = parse_ontology(text, &mut v).expect("parses");
        assert_eq!(o.role_inclusions().count(), 1);
        let funcs: Vec<_> = o.functional_roles().collect();
        assert_eq!(funcs.len(), 2);
        assert!(!funcs[0].inverse);
        assert!(funcs[1].inverse);
    }

    #[test]
    fn precedence_and_parens() {
        let mut v = Vocab::new();
        let o = parse_ontology("A sub B and C or D\n", &mut v).expect("parses");
        // (B ⊓ C) ⊔ D
        match &o.axioms[0] {
            crate::ontology::Axiom::ConceptInclusion(_, d) => match d {
                Concept::Or(parts) => {
                    assert_eq!(parts.len(), 2);
                    assert!(matches!(parts[0], Concept::And(_)));
                }
                other => panic!("expected Or, got {other:?}"),
            },
            _ => panic!("expected inclusion"),
        }
        let o2 = parse_ontology("A sub B and (C or D)\n", &mut v).expect("parses");
        match &o2.axioms[0] {
            crate::ontology::Axiom::ConceptInclusion(_, d) => {
                assert!(matches!(d, Concept::And(_)));
            }
            _ => panic!("expected inclusion"),
        }
    }

    #[test]
    fn nested_restrictions() {
        let mut v = Vocab::new();
        let o = parse_ontology("A sub ex R.(all S-.(not B))\n", &mut v).expect("parses");
        assert_eq!(ontology_depth(&o), 2);
        let f = DlFeatures::of(&o);
        assert!(f.inverse);
    }

    #[test]
    fn error_reporting_includes_line() {
        let mut v = Vocab::new();
        let err = parse_ontology("A sub B\nA sub\n", &mut v).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut v = Vocab::new();
        assert!(parse_ontology("A sub B C\n", &mut v).is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let mut v = Vocab::new();
        let o = parse_ontology("# nothing\n\n   \nA sub Top\n", &mut v).expect("parses");
        assert_eq!(o.axioms.len(), 1);
    }

    #[test]
    fn display_parse_roundtrip() {
        let mut v = Vocab::new();
        let text = "Hand sub ex hasFinger.Thumb\nrole child sub descendant\nfunc(hasMother-)\n";
        let o = parse_ontology(text, &mut v).expect("parses");
        let printed = format!("{}", o.display(&v));
        let o2 = parse_ontology(&printed, &mut v).expect("reparses");
        assert_eq!(o, o2);
    }

    #[test]
    fn transitivity_token() {
        let mut v = Vocab::new();
        let o = parse_ontology("trans(partOf)\nA sub ex partOf.B\n", &mut v).expect("parses");
        assert_eq!(o.transitive_roles().count(), 1);
        let f = DlFeatures::of(&o);
        assert!(f.transitivity);
        assert!(!f.within_alchif());
        // Display round-trips.
        let printed = format!("{}", o.display(&v));
        assert!(printed.contains("trans(partOf)"));
        let o2 = parse_ontology(&printed, &mut v).expect("reparses");
        assert_eq!(o, o2);
    }

    #[test]
    fn local_functionality_token() {
        let mut v = Vocab::new();
        let o = parse_ontology("A sub <=1 R.Top\n", &mut v).expect("parses");
        let f = DlFeatures::of(&o);
        assert!(f.local_functionality && !f.qualified_number);
    }
}
