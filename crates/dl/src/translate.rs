//! Translation of DL ontologies into guarded-fragment ontologies (the
//! appendix's standard translation, Lemma 7).
//!
//! A concept `C` translates to an openGF/openGC₂ formula `C*(x)` with one
//! free variable, using two variables overall (the classic alternation
//! trick). A concept inclusion `C ⊑ D` becomes the uGF⁻₂ sentence
//! `∀x(C*(x) → D*(x))`; role inclusions become guarded sentences; `func(R)`
//! becomes a functionality declaration.

use crate::concept::{Concept, Role};
use crate::ontology::{Axiom, DlOntology};
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};

const X: LVar = LVar(0);
const Y: LVar = LVar(1);

fn other(v: LVar) -> LVar {
    if v == X {
        Y
    } else {
        X
    }
}

/// The atom `R°(a, b)` for a role: `R(a,b)` for a forward role, `R(b,a)`
/// for an inverse.
fn role_atom(r: Role, a: LVar, b: LVar) -> Formula {
    if r.inverse {
        Formula::binary(r.rel, b, a)
    } else {
        Formula::binary(r.rel, a, b)
    }
}

fn role_guard(r: Role, a: LVar, b: LVar) -> Guard {
    if r.inverse {
        Guard::Atom {
            rel: r.rel,
            args: vec![b, a],
        }
    } else {
        Guard::Atom {
            rel: r.rel,
            args: vec![a, b],
        }
    }
}

/// The standard translation `C*(v)` of a concept at variable `v`,
/// alternating between the two variables.
pub fn concept_to_formula(c: &Concept, v: LVar) -> Formula {
    match c {
        Concept::Top => Formula::True,
        Concept::Bot => Formula::False,
        Concept::Name(a) => Formula::unary(*a, v),
        Concept::Not(d) => Formula::Not(Box::new(concept_to_formula(d, v))),
        Concept::And(ds) => Formula::And(ds.iter().map(|d| concept_to_formula(d, v)).collect()),
        Concept::Or(ds) => Formula::Or(ds.iter().map(|d| concept_to_formula(d, v)).collect()),
        Concept::Exists(r, d) => {
            let w = other(v);
            Formula::Exists {
                qvars: vec![w],
                guard: role_guard(*r, v, w),
                body: Box::new(concept_to_formula(d, w)),
            }
        }
        Concept::Forall(r, d) => {
            let w = other(v);
            Formula::Forall {
                qvars: vec![w],
                guard: role_guard(*r, v, w),
                body: Box::new(concept_to_formula(d, w)),
            }
        }
        Concept::AtLeast(n, r, d) => {
            let w = other(v);
            Formula::CountExists {
                n: *n,
                qvar: w,
                guard: role_guard(*r, v, w),
                body: Box::new(concept_to_formula(d, w)),
            }
        }
        Concept::AtMost(n, r, d) => {
            let w = other(v);
            Formula::Not(Box::new(Formula::CountExists {
                n: n + 1,
                qvar: w,
                guard: role_guard(*r, v, w),
                body: Box::new(concept_to_formula(d, w)),
            }))
        }
    }
}

/// Translates a DL ontology into a guarded-fragment ontology.
///
/// * `C ⊑ D` ⇒ `∀x(x = x → (C*(x) → D*(x)))` — a uGF⁻₂ sentence whose depth
///   equals the ontology's DL depth,
/// * `R ⊑ S` ⇒ `∀xy(R°(x,y) → S°(x,y))`,
/// * `func(R)` ⇒ a (possibly inverse) functionality declaration.
pub fn to_gf(o: &DlOntology) -> GfOntology {
    let names = vec!["x".to_owned(), "y".to_owned()];
    let mut out = GfOntology::new();
    for a in &o.axioms {
        match a {
            Axiom::ConceptInclusion(c, d) => {
                let body = Formula::implies(concept_to_formula(c, X), concept_to_formula(d, X));
                out.push(UgfSentence::forall_one(X, body, names.clone()));
            }
            Axiom::RoleInclusion(r, s) => {
                // Translated in equality-guarded form
                // ∀x(x = x → ∀y(R°(x,y) → S°(x,y))) so that the result
                // stays within the ·⁻ fragments (Lemma 7 maps ALCHIQ
                // depth 1 into uGC⁻₂(1)).
                out.push(UgfSentence::forall_one(
                    X,
                    Formula::Forall {
                        qvars: vec![Y],
                        guard: role_guard(*r, X, Y),
                        body: Box::new(role_atom(*s, X, Y)),
                    },
                    names.clone(),
                ));
            }
            Axiom::Functional(r) => {
                if r.inverse {
                    out.declare_inverse_functional(r.rel);
                } else {
                    out.declare_functional(r.rel);
                }
            }
            Axiom::Transitive(r) => {
                // trans(R⁻) is equivalent to trans(R).
                out.declare_transitive(r.rel);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::{Fact, Interpretation, Vocab};
    use gomq_logic::depth::ontology_depth;
    use gomq_logic::eval::satisfies_ontology;
    use gomq_logic::fragment::{best_fragment, Fragment};

    /// `Hand ⊑ ∃hasFinger.Thumb` — the paper's O₂.
    fn o2(v: &mut Vocab) -> DlOntology {
        let hand = v.rel("Hand", 1);
        let thumb = v.rel("Thumb", 1);
        let hf = Role::new(v.rel("hasFinger", 2));
        let mut o = DlOntology::new();
        o.sub(
            Concept::Name(hand),
            Concept::Exists(hf, Box::new(Concept::Name(thumb))),
        );
        o
    }

    #[test]
    fn translation_preserves_depth_and_lands_in_ugc() {
        let mut v = Vocab::new();
        let o = o2(&mut v);
        let gf = to_gf(&o);
        assert_eq!(ontology_depth(&gf), 1);
        assert_eq!(best_fragment(&gf, &v), Some(Fragment::Ugf1));
    }

    #[test]
    fn counting_concepts_translate_to_counting_quantifiers() {
        // O₁ = { Hand ⊑ (= 5 hasFinger ⊤) }.
        let mut v = Vocab::new();
        let hand = v.rel("Hand", 1);
        let hf = Role::new(v.rel("hasFinger", 2));
        let mut o = DlOntology::new();
        o.sub(Concept::Name(hand), Concept::exactly(5, hf, Concept::Top));
        let gf = to_gf(&o);
        assert_eq!(best_fragment(&gf, &v), Some(Fragment::UgcMinus2_1Eq));
    }

    #[test]
    fn model_checking_translated_ontology() {
        let mut v = Vocab::new();
        let o = o2(&mut v);
        let gf = to_gf(&o);
        let hand = v.rel("Hand", 1);
        let thumb = v.rel("Thumb", 1);
        let hf = v.rel("hasFinger", 2);
        let h = v.constant("h");
        let t = v.constant("t");
        // {Hand(h)} alone violates the ontology...
        let d0 = Interpretation::from_facts(vec![Fact::consts(hand, &[h])]);
        assert!(!satisfies_ontology(&d0, &gf));
        // ...but adding a thumb finger satisfies it.
        let mut d1 = d0.clone();
        d1.insert(Fact::consts(hf, &[h, t]));
        d1.insert(Fact::consts(thumb, &[t]));
        assert!(satisfies_ontology(&d1, &gf));
    }

    #[test]
    fn inverse_roles_swap_arguments() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = v.rel("R", 2);
        let mut o = DlOntology::new();
        // A ⊑ ∃R⁻.B : an A-element needs an incoming R-edge from a B.
        o.sub(
            Concept::Name(a),
            Concept::Exists(Role::inv(r), Box::new(Concept::Name(b))),
        );
        let gf = to_gf(&o);
        let x = v.constant("x");
        let y = v.constant("y");
        let good = Interpretation::from_facts(vec![
            Fact::consts(a, &[x]),
            Fact::consts(r, &[y, x]),
            Fact::consts(b, &[y]),
        ]);
        assert!(satisfies_ontology(&good, &gf));
        let bad = Interpretation::from_facts(vec![
            Fact::consts(a, &[x]),
            Fact::consts(r, &[x, y]),
            Fact::consts(b, &[y]),
        ]);
        assert!(!satisfies_ontology(&bad, &gf));
    }

    #[test]
    fn role_inclusion_translates_to_guarded_sentence() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s = v.rel("S", 2);
        let mut o = DlOntology::new();
        o.role_sub(Role::new(r), Role::new(s));
        let gf = to_gf(&o);
        let a = v.constant("a");
        let b = v.constant("b");
        let bad = Interpretation::from_facts(vec![Fact::consts(r, &[a, b])]);
        assert!(!satisfies_ontology(&bad, &gf));
        let mut good = bad.clone();
        good.insert(Fact::consts(s, &[a, b]));
        assert!(satisfies_ontology(&good, &gf));
    }

    #[test]
    fn functionality_translates_to_declarations() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let mut o = DlOntology::new();
        o.functional(Role::new(r));
        o.functional(Role::inv(r));
        let gf = to_gf(&o);
        assert!(gf.functional.contains(&r));
        assert!(gf.inverse_functional.contains(&r));
    }

    #[test]
    fn at_most_translates_to_negated_counting() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let c = Concept::at_most_one(Role::new(r));
        let f = concept_to_formula(&c, X);
        match f {
            Formula::Not(inner) => match *inner {
                Formula::CountExists { n, .. } => assert_eq!(n, 2),
                other => panic!("expected counting, got {other:?}"),
            },
            other => panic!("expected negation, got {other:?}"),
        }
    }
}
