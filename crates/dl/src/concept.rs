//! Concepts and roles.

use gomq_core::{RelId, Vocab};
use std::collections::BTreeSet;
use std::fmt;

/// A role: a binary relation or its inverse.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Role {
    /// The underlying binary relation symbol.
    pub rel: RelId,
    /// Whether the role is the inverse `R⁻`.
    pub inverse: bool,
}

impl Role {
    /// A plain (forward) role.
    pub fn new(rel: RelId) -> Self {
        Role {
            rel,
            inverse: false,
        }
    }

    /// The inverse role `R⁻`.
    pub fn inv(rel: RelId) -> Self {
        Role { rel, inverse: true }
    }

    /// The inverse of this role.
    pub fn inverted(self) -> Self {
        Role {
            rel: self.rel,
            inverse: !self.inverse,
        }
    }

    /// Renders with the vocabulary.
    pub fn display(self, vocab: &Vocab) -> String {
        if self.inverse {
            format!("{}-", vocab.rel_name(self.rel))
        } else {
            vocab.rel_name(self.rel).to_owned()
        }
    }
}

/// A DL concept over unary relation symbols (concept names) and roles.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Concept {
    /// ⊤.
    Top,
    /// ⊥.
    Bot,
    /// A concept name `A` (a unary relation symbol).
    Name(RelId),
    /// ¬C.
    Not(Box<Concept>),
    /// C ⊓ D (n-ary).
    And(Vec<Concept>),
    /// C ⊔ D (n-ary).
    Or(Vec<Concept>),
    /// ∃R.C.
    Exists(Role, Box<Concept>),
    /// ∀R.C.
    Forall(Role, Box<Concept>),
    /// (≥ n R C), `n ≥ 1`.
    AtLeast(u32, Role, Box<Concept>),
    /// (≤ n R C), `n ≥ 0`.
    AtMost(u32, Role, Box<Concept>),
}

impl Concept {
    /// `∃R.⊤`.
    pub fn some(role: Role) -> Concept {
        Concept::Exists(role, Box::new(Concept::Top))
    }

    /// `(≤ 1 R)` — local functionality, i.e. `(≤ 1 R ⊤)`.
    pub fn at_most_one(role: Role) -> Concept {
        Concept::AtMost(1, role, Box::new(Concept::Top))
    }

    /// `(≥ 2 R)` — the `∃≥2` marker used in the paper's encodings.
    pub fn at_least_two(role: Role) -> Concept {
        Concept::AtLeast(2, role, Box::new(Concept::Top))
    }

    /// `(= 1 R)` — exactly one `R`-successor, as `∃R.⊤ ⊓ (≤ 1 R)`.
    pub fn exactly_one(role: Role) -> Concept {
        Concept::And(vec![Concept::some(role), Concept::at_most_one(role)])
    }

    /// `(= n R C)` as `(≥ n R C) ⊓ (≤ n R C)`.
    pub fn exactly(n: u32, role: Role, c: Concept) -> Concept {
        Concept::And(vec![
            Concept::AtLeast(n, role, Box::new(c.clone())),
            Concept::AtMost(n, role, Box::new(c)),
        ])
    }

    /// Negation with double-negation elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Concept {
        match self {
            Concept::Not(c) => *c,
            Concept::Top => Concept::Bot,
            Concept::Bot => Concept::Top,
            c => Concept::Not(Box::new(c)),
        }
    }

    /// Negation normal form: negation only in front of concept names.
    pub fn nnf(&self) -> Concept {
        match self {
            Concept::Top | Concept::Bot | Concept::Name(_) => self.clone(),
            Concept::Not(inner) => inner.nnf_neg(),
            Concept::And(cs) => Concept::And(cs.iter().map(|c| c.nnf()).collect()),
            Concept::Or(cs) => Concept::Or(cs.iter().map(|c| c.nnf()).collect()),
            Concept::Exists(r, c) => Concept::Exists(*r, Box::new(c.nnf())),
            Concept::Forall(r, c) => Concept::Forall(*r, Box::new(c.nnf())),
            Concept::AtLeast(n, r, c) => Concept::AtLeast(*n, *r, Box::new(c.nnf())),
            Concept::AtMost(n, r, c) => Concept::AtMost(*n, *r, Box::new(c.nnf())),
        }
    }

    fn nnf_neg(&self) -> Concept {
        match self {
            Concept::Top => Concept::Bot,
            Concept::Bot => Concept::Top,
            Concept::Name(_) => Concept::Not(Box::new(self.clone())),
            Concept::Not(inner) => inner.nnf(),
            Concept::And(cs) => Concept::Or(cs.iter().map(|c| c.nnf_neg()).collect()),
            Concept::Or(cs) => Concept::And(cs.iter().map(|c| c.nnf_neg()).collect()),
            Concept::Exists(r, c) => Concept::Forall(*r, Box::new(c.nnf_neg())),
            Concept::Forall(r, c) => Concept::Exists(*r, Box::new(c.nnf_neg())),
            // ¬(≥ n R C) ≡ (≤ n−1 R C); n ≥ 1 by construction.
            Concept::AtLeast(n, r, c) => Concept::AtMost(n - 1, *r, Box::new(c.nnf())),
            // ¬(≤ n R C) ≡ (≥ n+1 R C).
            Concept::AtMost(n, r, c) => Concept::AtLeast(n + 1, *r, Box::new(c.nnf())),
        }
    }

    /// All subconcepts, including `self`.
    pub fn subconcepts(&self) -> BTreeSet<Concept> {
        let mut out = BTreeSet::new();
        self.collect_sub(&mut out);
        out
    }

    fn collect_sub(&self, out: &mut BTreeSet<Concept>) {
        if !out.insert(self.clone()) {
            return;
        }
        match self {
            Concept::Top | Concept::Bot | Concept::Name(_) => {}
            Concept::Not(c) => c.collect_sub(out),
            Concept::And(cs) | Concept::Or(cs) => {
                for c in cs {
                    c.collect_sub(out);
                }
            }
            Concept::Exists(_, c)
            | Concept::Forall(_, c)
            | Concept::AtLeast(_, _, c)
            | Concept::AtMost(_, _, c) => c.collect_sub(out),
        }
    }

    /// All concept names occurring in the concept.
    pub fn concept_names(&self) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        for c in self.subconcepts() {
            if let Concept::Name(a) = c {
                out.insert(a);
            }
        }
        out
    }

    /// All roles occurring in the concept.
    pub fn roles(&self) -> BTreeSet<Role> {
        let mut out = BTreeSet::new();
        for c in self.subconcepts() {
            match c {
                Concept::Exists(r, _)
                | Concept::Forall(r, _)
                | Concept::AtLeast(_, r, _)
                | Concept::AtMost(_, r, _) => {
                    out.insert(r);
                }
                _ => {}
            }
        }
        out
    }

    /// Renders the concept with the vocabulary, in the parser's syntax.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> ConceptDisplay<'a> {
        ConceptDisplay {
            concept: self,
            vocab,
        }
    }
}

/// Helper for rendering a [`Concept`].
pub struct ConceptDisplay<'a> {
    concept: &'a Concept,
    vocab: &'a Vocab,
}

impl ConceptDisplay<'_> {
    fn go(&self, c: &Concept, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match c {
            Concept::Top => write!(f, "Top"),
            Concept::Bot => write!(f, "Bot"),
            Concept::Name(a) => write!(f, "{}", self.vocab.rel_name(*a)),
            Concept::Not(inner) => {
                write!(f, "not ")?;
                self.paren(inner, f)
            }
            Concept::And(cs) => {
                for (i, d) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    self.paren(d, f)?;
                }
                Ok(())
            }
            Concept::Or(cs) => {
                for (i, d) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    self.paren(d, f)?;
                }
                Ok(())
            }
            Concept::Exists(r, inner) => {
                write!(f, "ex {}.", r.display(self.vocab))?;
                self.paren(inner, f)
            }
            Concept::Forall(r, inner) => {
                write!(f, "all {}.", r.display(self.vocab))?;
                self.paren(inner, f)
            }
            Concept::AtLeast(n, r, inner) => {
                write!(f, ">={} {}.", n, r.display(self.vocab))?;
                self.paren(inner, f)
            }
            Concept::AtMost(n, r, inner) => {
                write!(f, "<={} {}.", n, r.display(self.vocab))?;
                self.paren(inner, f)
            }
        }
    }

    fn paren(&self, c: &Concept, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let atomic = matches!(c, Concept::Top | Concept::Bot | Concept::Name(_));
        if atomic {
            self.go(c, f)
        } else {
            write!(f, "(")?;
            self.go(c, f)?;
            write!(f, ")")
        }
    }
}

impl fmt::Display for ConceptDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.go(self.concept, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &mut Vocab) -> (RelId, RelId, RelId) {
        (v.rel("A", 1), v.rel("B", 1), v.rel("R", 2))
    }

    #[test]
    fn nnf_pushes_negation_inward() {
        let mut v = Vocab::new();
        let (a, b, r) = names(&mut v);
        // ¬(A ⊓ ∃R.B) → ¬A ⊔ ∀R.¬B
        let c = Concept::And(vec![
            Concept::Name(a),
            Concept::Exists(Role::new(r), Box::new(Concept::Name(b))),
        ])
        .neg();
        let n = c.nnf();
        match n {
            Concept::Or(ds) => {
                assert!(matches!(&ds[0], Concept::Not(x) if **x == Concept::Name(a)));
                assert!(matches!(&ds[1], Concept::Forall(_, _)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn nnf_of_number_restrictions() {
        let mut v = Vocab::new();
        let (_, _, r) = names(&mut v);
        // ¬(≥ 2 R ⊤) ≡ (≤ 1 R ⊤)
        let c = Concept::at_least_two(Role::new(r)).neg().nnf();
        assert_eq!(c, Concept::at_most_one(Role::new(r)));
        // ¬(≤ 1 R ⊤) ≡ (≥ 2 R ⊤)
        let d = Concept::at_most_one(Role::new(r)).neg().nnf();
        assert_eq!(d, Concept::at_least_two(Role::new(r)));
    }

    #[test]
    fn double_negation_cancels() {
        let mut v = Vocab::new();
        let (a, _, _) = names(&mut v);
        assert_eq!(Concept::Name(a).neg().neg(), Concept::Name(a));
    }

    #[test]
    fn subconcepts_collects_everything() {
        let mut v = Vocab::new();
        let (a, b, r) = names(&mut v);
        let c = Concept::Exists(
            Role::new(r),
            Box::new(Concept::And(vec![Concept::Name(a), Concept::Name(b)])),
        );
        let subs = c.subconcepts();
        assert_eq!(subs.len(), 4); // c, A⊓B, A, B
        assert_eq!(c.concept_names().len(), 2);
        assert_eq!(c.roles().len(), 1);
    }

    #[test]
    fn inverse_roles_roundtrip() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let role = Role::inv(r);
        assert_eq!(role.inverted(), Role::new(r));
        assert_eq!(role.display(&v), "R-");
    }

    #[test]
    fn display_is_parseable_shape() {
        let mut v = Vocab::new();
        let (a, _, r) = names(&mut v);
        let c = Concept::Exists(Role::new(r), Box::new(Concept::Name(a)));
        assert_eq!(format!("{}", c.display(&v)), "ex R.A");
    }
}
