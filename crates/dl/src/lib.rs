//! # gomq-dl
//!
//! Description logics as used in the paper: the base logic ALC and its
//! extensions with inverse roles (`I`), role hierarchies (`H`), qualified
//! number restrictions (`Q`), globally functional roles (`F`) and local
//! functionality `(≤ 1 R)` (`F\``).
//!
//! * [`concept`] — concept and role syntax, negation normal form, subconcepts,
//! * [`ontology`] — TBoxes (concept inclusions, role inclusions,
//!   functionality assertions),
//! * [`depth`] — concept/ontology depth (nesting of `∃R`/`∀R`/number
//!   restrictions),
//! * [`lang`] — detection of the minimal DL language of an ontology
//!   (`ALC`, `ALCHIF`, `ALCHIQ`, …) and constructor stripping,
//! * [`translate`] — the appendix's translation into guarded-fragment
//!   ontologies (Lemma 7),
//! * [`parser`] — a compact text syntax for ontology files,
//! * [`normalize`] — conservative depth-1 normalization.

#![warn(missing_docs)]

pub mod concept;
pub mod depth;
pub mod lang;
pub mod normalize;
pub mod ontology;
pub mod parser;
pub mod translate;

pub use concept::{Concept, Role};
pub use lang::{DlFeatures, DlLanguage};
pub use ontology::{Axiom, DlOntology};
