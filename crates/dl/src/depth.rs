//! Concept and ontology depth.
//!
//! The depth of a concept is the maximal nesting of `∃R`, `∀R` and number
//! restrictions; the depth of an ontology is the maximum depth of concepts
//! occurring in it (§2.1). The paper's BioPortal survey and the Figure-1
//! fragments are parameterised by this measure.

use crate::concept::Concept;
use crate::ontology::{Axiom, DlOntology};

/// The depth of a concept.
pub fn concept_depth(c: &Concept) -> usize {
    match c {
        Concept::Top | Concept::Bot | Concept::Name(_) => 0,
        Concept::Not(d) => concept_depth(d),
        Concept::And(ds) | Concept::Or(ds) => ds.iter().map(concept_depth).max().unwrap_or(0),
        Concept::Exists(_, d)
        | Concept::Forall(_, d)
        | Concept::AtLeast(_, _, d)
        | Concept::AtMost(_, _, d) => 1 + concept_depth(d),
    }
}

/// The depth of an ontology: the maximum depth of a concept occurring in it.
pub fn ontology_depth(o: &DlOntology) -> usize {
    o.axioms
        .iter()
        .map(|a| match a {
            Axiom::ConceptInclusion(c, d) => concept_depth(c).max(concept_depth(d)),
            Axiom::RoleInclusion(_, _) | Axiom::Functional(_) | Axiom::Transitive(_) => 0,
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::Role;
    use gomq_core::Vocab;

    #[test]
    fn example3_inclusion_has_depth_two() {
        // ∃S.A ⊑ ∀R.∃S.B has depth 2 (the right-hand side).
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let s = Role::new(v.rel("S", 2));
        let lhs = Concept::Exists(s, Box::new(Concept::Name(a)));
        let rhs = Concept::Forall(r, Box::new(Concept::Exists(s, Box::new(Concept::Name(b)))));
        assert_eq!(concept_depth(&lhs), 1);
        assert_eq!(concept_depth(&rhs), 2);
        let mut o = DlOntology::new();
        o.sub(lhs, rhs);
        assert_eq!(ontology_depth(&o), 2);
    }

    #[test]
    fn boolean_structure_does_not_add_depth() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let c = Concept::And(vec![
            Concept::Name(a).neg(),
            Concept::Or(vec![Concept::Name(a), Concept::Top]),
        ]);
        assert_eq!(concept_depth(&c), 0);
    }

    #[test]
    fn role_axioms_have_depth_zero() {
        let mut v = Vocab::new();
        let r = Role::new(v.rel("R", 2));
        let s = Role::new(v.rel("S", 2));
        let mut o = DlOntology::new();
        o.role_sub(r, s).functional(r);
        assert_eq!(ontology_depth(&o), 0);
    }
}
