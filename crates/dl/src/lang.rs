//! DL language detection and constructor stripping.
//!
//! The paper's BioPortal survey classifies ontologies by (a) the minimal DL
//! language containing them after removing constructors outside `ALCHIF`
//! (or `ALCHIQ`) and (b) their depth. This module extracts the constructor
//! features of an ontology, names the minimal language, and implements the
//! stripping used in the survey.

use crate::concept::{Concept, Role};
use crate::ontology::{Axiom, DlOntology};
use std::fmt;

/// The DL constructor features of an ontology.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DlFeatures {
    /// Inverse roles occur (`I`).
    pub inverse: bool,
    /// Role inclusions occur (`H`).
    pub hierarchy: bool,
    /// Qualified number restrictions beyond `(≤ 1 R ⊤)` occur (`Q`).
    pub qualified_number: bool,
    /// Global functionality assertions occur (`F`).
    pub functionality: bool,
    /// Local functionality `(≤ 1 R ⊤)` occurs (`F\``).
    pub local_functionality: bool,
    /// Transitivity assertions occur (outside the paper's fragments).
    pub transitivity: bool,
}

impl DlFeatures {
    /// Extracts the features of an ontology.
    pub fn of(o: &DlOntology) -> Self {
        let mut f = DlFeatures::default();
        let scan_concept = |c: &Concept, f: &mut DlFeatures| {
            for s in c.subconcepts() {
                match s {
                    Concept::Exists(r, _) | Concept::Forall(r, _) => {
                        f.inverse |= r.inverse;
                    }
                    Concept::AtMost(1, r, ref inner) if **inner == Concept::Top => {
                        f.inverse |= r.inverse;
                        f.local_functionality = true;
                    }
                    Concept::AtLeast(_, r, _) | Concept::AtMost(_, r, _) => {
                        f.inverse |= r.inverse;
                        f.qualified_number = true;
                    }
                    _ => {}
                }
            }
        };
        for a in &o.axioms {
            match a {
                Axiom::ConceptInclusion(c, d) => {
                    scan_concept(c, &mut f);
                    scan_concept(d, &mut f);
                }
                Axiom::RoleInclusion(r, s) => {
                    f.hierarchy = true;
                    f.inverse |= r.inverse || s.inverse;
                }
                Axiom::Functional(r) => {
                    f.functionality = true;
                    f.inverse |= r.inverse;
                }
                Axiom::Transitive(r) => {
                    f.transitivity = true;
                    f.inverse |= r.inverse;
                }
            }
        }
        f
    }

    /// The name of the minimal language with these features, e.g.
    /// `ALCHIQ` or `ALCIF``.
    pub fn language(&self) -> DlLanguage {
        DlLanguage(*self)
    }

    /// Whether the ontology fits into `ALCHIF` (no qualified number
    /// restrictions, no local functionality beyond what `F` covers, no
    /// transitivity).
    pub fn within_alchif(&self) -> bool {
        !self.qualified_number && !self.local_functionality && !self.transitivity
    }

    /// Whether the ontology fits into `ALCHIQ` (no global functionality —
    /// although `F` is expressible in `Q` only via local functionality on
    /// both ends, the paper treats `ALCHIQ` as subsuming `(≤ 1 R)`).
    pub fn within_alchiq(&self) -> bool {
        !self.functionality && !self.transitivity
    }
}

/// A printable DL language name derived from [`DlFeatures`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DlLanguage(pub DlFeatures);

impl fmt::Display for DlLanguage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ALC")?;
        if self.0.hierarchy {
            write!(f, "H")?;
        }
        if self.0.inverse {
            write!(f, "I")?;
        }
        if self.0.qualified_number {
            write!(f, "Q")?;
        }
        if self.0.functionality {
            write!(f, "F")?;
        }
        if self.0.local_functionality && !self.0.qualified_number {
            write!(f, "F`")?;
        }
        if self.0.transitivity {
            write!(f, "+trans")?;
        }
        Ok(())
    }
}

/// The Figure-1 zone of a DL ontology, read off the DL-level entries of
/// the figure (grey labels): `ALCHIQ` depth 1 and `ALCHIF` depth 2 enjoy
/// the dichotomy; `ALC` depth 3 and `ALCF\`` depth 2 are CSP-hard;
/// `ALCIF\`` depth 2 and `ALCF` depth 3 have no dichotomy.
pub fn dl_figure1_zone(o: &DlOntology) -> gomq_logic::fragment::Zone {
    use gomq_logic::fragment::Zone;
    let f = DlFeatures::of(o);
    let d = crate::depth::ontology_depth(o);
    if f.within_alchiq() && d <= 1 {
        return Zone::Dichotomy; // ALCHIQ depth 1 (Thm 7 + Thm 13)
    }
    if f.within_alchif() && d <= 2 {
        return Zone::Dichotomy; // ALCHIF depth 2 (Thm 7)
    }
    let only_local = f.local_functionality && !f.functionality && !f.qualified_number;
    if only_local && f.inverse && d <= 2 {
        return Zone::NoDichotomy; // ALCIF` depth 2 (Thm 11)
    }
    if f.functionality && !f.inverse && !f.qualified_number && !f.local_functionality && d <= 3 {
        return Zone::NoDichotomy; // ALCF depth 3 [LW12]
    }
    if only_local && !f.inverse && d <= 2 {
        return Zone::CspHard; // ALCF` depth 2 (Thm 8)
    }
    if !f.inverse && !f.qualified_number && !f.functionality && !f.local_functionality && d <= 3 {
        return Zone::CspHard; // ALC(H) depth 3 [LW12]
    }
    Zone::Unknown
}

/// Removes every constructor outside `ALCHIF` from the ontology, mirroring
/// the paper's BioPortal preprocessing: qualified number restrictions
/// `(≥ n R C)`/`(≤ n R C)` are weakened (`≥` → `∃R.C` for `n ≥ 1`, `≤` →
/// `⊤`), local functionality `(≤ 1 R ⊤)` is promoted to a global
/// functionality assertion only when it appears at top level on the
/// right-hand side under `⊤` on the left, otherwise dropped (replaced by
/// `⊤`).
pub fn strip_to_alchif(o: &DlOntology) -> DlOntology {
    let mut out = DlOntology::new();
    for a in &o.axioms {
        match a {
            Axiom::ConceptInclusion(c, d) => {
                // ⊤ ⊑ (≤ 1 R) is exactly global functionality.
                if *c == Concept::Top {
                    if let Concept::AtMost(1, r, inner) = d {
                        if **inner == Concept::Top {
                            out.functional(*r);
                            continue;
                        }
                    }
                }
                out.sub(strip_concept(c, true), strip_concept(d, false));
            }
            Axiom::Transitive(_) => { /* outside ALCHIF: dropped */ }
            other => out.axioms.push(other.clone()),
        }
    }
    out
}

/// Strips a concept to ALCHIF constructors. `lhs` tells whether the concept
/// occurs on the left of an inclusion (negative polarity), which determines
/// the sound direction of weakening: on the right (positive) we weaken
/// (replace by a weaker concept), on the left we strengthen.
fn strip_concept(c: &Concept, lhs: bool) -> Concept {
    match c {
        Concept::Top | Concept::Bot | Concept::Name(_) => c.clone(),
        Concept::Not(d) => Concept::Not(Box::new(strip_concept(d, !lhs))),
        Concept::And(ds) => Concept::And(ds.iter().map(|d| strip_concept(d, lhs)).collect()),
        Concept::Or(ds) => Concept::Or(ds.iter().map(|d| strip_concept(d, lhs)).collect()),
        Concept::Exists(r, d) => Concept::Exists(*r, Box::new(strip_concept(d, lhs))),
        Concept::Forall(r, d) => Concept::Forall(*r, Box::new(strip_concept(d, lhs))),
        Concept::AtLeast(n, r, d) => {
            if *n >= 1 {
                // (≥ n R C) weakens to ∃R.C.
                Concept::Exists(*r, Box::new(strip_concept(d, lhs)))
            } else {
                Concept::Top
            }
        }
        Concept::AtMost(_, _, _) => {
            // Not expressible in ALCHIF at this position; replace by the
            // polarity-appropriate trivial concept.
            if lhs {
                Concept::Bot
            } else {
                Concept::Top
            }
        }
    }
}

/// The role hierarchy closure: all super-roles of `r` under the ontology's
/// role inclusions (reflexive-transitive, respecting inverses).
pub fn super_roles(o: &DlOntology, r: Role) -> Vec<Role> {
    let mut out = vec![r];
    let mut changed = true;
    while changed {
        changed = false;
        for (s, t) in o.role_inclusions() {
            for i in 0..out.len() {
                let cur = out[i];
                let next = if cur == s {
                    Some(t)
                } else if cur == s.inverted() {
                    Some(t.inverted())
                } else {
                    None
                };
                if let Some(n) = next {
                    if !out.contains(&n) {
                        out.push(n);
                        changed = true;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::Vocab;

    #[test]
    fn language_naming() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let r = Role::new(v.rel("R", 2));
        let s = Role::new(v.rel("S", 2));
        let mut o = DlOntology::new();
        o.sub(
            Concept::Name(a),
            Concept::AtLeast(3, r, Box::new(Concept::Top)),
        );
        o.role_sub(r, s);
        let f = DlFeatures::of(&o);
        assert!(f.hierarchy && f.qualified_number && !f.inverse);
        assert_eq!(format!("{}", f.language()), "ALCHQ");
    }

    #[test]
    fn local_functionality_detected_separately() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let r = Role::new(v.rel("R", 2));
        let mut o = DlOntology::new();
        o.sub(Concept::Name(a), Concept::at_most_one(r));
        let f = DlFeatures::of(&o);
        assert!(f.local_functionality && !f.qualified_number);
        assert_eq!(format!("{}", f.language()), "ALCF`");
    }

    #[test]
    fn strip_removes_number_restrictions() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let mut o = DlOntology::new();
        o.sub(
            Concept::Name(a),
            Concept::AtLeast(5, r, Box::new(Concept::Name(b))),
        );
        let stripped = strip_to_alchif(&o);
        let f = DlFeatures::of(&stripped);
        assert!(f.within_alchif());
        // (≥ 5 R B) became ∃R.B.
        match &stripped.axioms[0] {
            Axiom::ConceptInclusion(_, d) => {
                assert!(matches!(d, Concept::Exists(_, _)));
            }
            _ => panic!("expected inclusion"),
        }
    }

    #[test]
    fn top_level_local_functionality_becomes_global() {
        let mut v = Vocab::new();
        let r = Role::new(v.rel("R", 2));
        let mut o = DlOntology::new();
        o.sub(Concept::Top, Concept::at_most_one(r));
        let stripped = strip_to_alchif(&o);
        assert_eq!(stripped.functional_roles().count(), 1);
        assert!(DlFeatures::of(&stripped).within_alchif());
    }

    #[test]
    fn super_roles_respect_inverse() {
        let mut v = Vocab::new();
        let r = Role::new(v.rel("R", 2));
        let s = Role::new(v.rel("S", 2));
        let t = Role::new(v.rel("T", 2));
        let mut o = DlOntology::new();
        o.role_sub(r, s);
        o.role_sub(s.inverted(), t);
        let sup = super_roles(&o, r);
        assert!(sup.contains(&s));
        let sup_inv = super_roles(&o, r.inverted());
        assert!(sup_inv.contains(&s.inverted()));
        assert!(sup_inv.contains(&t));
    }

    #[test]
    fn alchiq_membership() {
        let mut v = Vocab::new();
        let r = Role::new(v.rel("R", 2));
        let mut o = DlOntology::new();
        o.functional(r);
        let f = DlFeatures::of(&o);
        assert!(!f.within_alchiq());
        assert!(f.within_alchif());
    }
}
