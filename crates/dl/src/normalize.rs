//! Conservative depth-1 normalization of DL ontologies.
//!
//! The paper notes (§2.1) that every DL ontology has a polynomial-time
//! conservative extension of depth 1, and that most DL algorithms assume
//! normalized depth-1 input. This module implements the polarity-based
//! construction: a nested filler concept `C'` of depth ≥ 1 inside a role
//! restriction is replaced by a fresh concept name `X`, with the defining
//! axiom `X ⊑ C'` (positive occurrences) or `C' ⊑ X` (negative
//! occurrences). Fillers of `(≤ n R C)` flip polarity.

use crate::concept::Concept;
use crate::depth::{concept_depth, ontology_depth};
use crate::ontology::{Axiom, DlOntology};
use gomq_core::Vocab;

/// Rewrites the ontology into a conservative extension of depth ≤ 1. Fresh
/// concept names `_nrmN` are interned into `vocab`.
pub fn normalize_depth1(o: &DlOntology, vocab: &mut Vocab) -> DlOntology {
    let mut ctx = Ctx {
        vocab,
        fresh: 0,
        emitted: Vec::new(),
    };
    let mut out = DlOntology::new();
    for a in &o.axioms {
        match a {
            Axiom::ConceptInclusion(c, d) => {
                let c1 = ctx.norm(c, false, 1);
                let d1 = ctx.norm(d, true, 1);
                out.sub(c1, d1);
            }
            other => out.axioms.push(other.clone()),
        }
    }
    out.axioms.append(&mut ctx.emitted);
    debug_assert!(ontology_depth(&out) <= 1);
    out
}

struct Ctx<'a> {
    vocab: &'a mut Vocab,
    fresh: usize,
    emitted: Vec<Axiom>,
}

impl Ctx<'_> {
    fn fresh_name(&mut self) -> Concept {
        loop {
            let name = format!("_nrm{}", self.fresh);
            self.fresh += 1;
            if self.vocab.find_rel(&name).is_none() {
                return Concept::Name(self.vocab.rel(&name, 1));
            }
        }
    }

    /// Returns a concept of depth ≤ `budget` that is a sound replacement
    /// for `c` at the given polarity, relative to the emitted axioms.
    fn norm(&mut self, c: &Concept, positive: bool, budget: usize) -> Concept {
        if concept_depth(c) <= budget {
            return c.clone();
        }
        match c {
            Concept::Top | Concept::Bot | Concept::Name(_) => unreachable!("depth 0"),
            Concept::Not(d) => Concept::Not(Box::new(self.norm(d, !positive, budget))),
            Concept::And(ds) => {
                Concept::And(ds.iter().map(|d| self.norm(d, positive, budget)).collect())
            }
            Concept::Or(ds) => {
                Concept::Or(ds.iter().map(|d| self.norm(d, positive, budget)).collect())
            }
            restriction => {
                if budget == 0 {
                    // Abstract the whole restriction behind a fresh name.
                    let x = self.fresh_name();
                    let inner = self.rebuild(restriction, positive, 0);
                    if positive {
                        self.emitted.push(Axiom::ConceptInclusion(x.clone(), inner));
                    } else {
                        self.emitted.push(Axiom::ConceptInclusion(inner, x.clone()));
                    }
                    x
                } else {
                    self.rebuild(restriction, positive, budget - 1)
                }
            }
        }
    }

    /// Rebuilds a role restriction with its filler normalized to
    /// `filler_budget`.
    fn rebuild(&mut self, c: &Concept, positive: bool, filler_budget: usize) -> Concept {
        match c {
            Concept::Exists(r, d) => {
                Concept::Exists(*r, Box::new(self.norm(d, positive, filler_budget)))
            }
            Concept::Forall(r, d) => {
                Concept::Forall(*r, Box::new(self.norm(d, positive, filler_budget)))
            }
            Concept::AtLeast(n, r, d) => {
                Concept::AtLeast(*n, *r, Box::new(self.norm(d, positive, filler_budget)))
            }
            // (≤ n R C) is antitone in C.
            Concept::AtMost(n, r, d) => {
                Concept::AtMost(*n, *r, Box::new(self.norm(d, !positive, filler_budget)))
            }
            _ => unreachable!("only restrictions are rebuilt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::Role;
    use crate::translate::to_gf;
    use gomq_core::{Fact, Interpretation};
    use gomq_logic::eval::satisfies_ontology;

    fn deep_ontology(v: &mut Vocab) -> DlOntology {
        // A ⊑ ∃R.∃R.∃R.B — depth 3.
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let mut o = DlOntology::new();
        o.sub(
            Concept::Name(a),
            Concept::Exists(
                r,
                Box::new(Concept::Exists(
                    r,
                    Box::new(Concept::Exists(r, Box::new(Concept::Name(b)))),
                )),
            ),
        );
        o
    }

    #[test]
    fn normalization_reaches_depth_one() {
        let mut v = Vocab::new();
        let o = deep_ontology(&mut v);
        assert_eq!(ontology_depth(&o), 3);
        let n = normalize_depth1(&o, &mut v);
        assert_eq!(ontology_depth(&n), 1);
        // Two fresh names are needed for the two nested fillers.
        assert_eq!(n.axioms.len(), 3);
    }

    #[test]
    fn normalized_models_satisfy_original() {
        let mut v = Vocab::new();
        let o = deep_ontology(&mut v);
        let n = normalize_depth1(&o, &mut v);
        let gf_o = to_gf(&o);
        let gf_n = to_gf(&n);
        // An R-chain a→b→c→d with A(a), B(d) and the fresh names made true
        // at the right spots is a model of the normalized ontology, and
        // must satisfy the original.
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let r = v.rel("R", 2);
        let n0 = v.rel("_nrm0", 1);
        let n1 = v.rel("_nrm1", 1);
        let ca = v.constant("a");
        let cb = v.constant("b");
        let cc = v.constant("c");
        let cd = v.constant("d");
        let mut m = Interpretation::new();
        m.insert(Fact::consts(a_rel, &[ca]));
        m.insert(Fact::consts(r, &[ca, cb]));
        m.insert(Fact::consts(r, &[cb, cc]));
        m.insert(Fact::consts(r, &[cc, cd]));
        m.insert(Fact::consts(b_rel, &[cd]));
        // The fresh names: chase which one defines which filler is an
        // implementation detail, so just try both placements.
        let mut m1 = m.clone();
        m1.insert(Fact::consts(n0, &[cb]));
        m1.insert(Fact::consts(n1, &[cc]));
        let mut m2 = m.clone();
        m2.insert(Fact::consts(n0, &[cc]));
        m2.insert(Fact::consts(n1, &[cb]));
        let ok1 = satisfies_ontology(&m1, &gf_n);
        let ok2 = satisfies_ontology(&m2, &gf_n);
        assert!(ok1 || ok2, "one placement of fresh names must work");
        let good = if ok1 { m1 } else { m2 };
        assert!(satisfies_ontology(&good, &gf_o));
    }

    #[test]
    fn negative_fillers_get_reverse_axioms() {
        // ∃R.∃R.A ⊑ B : the nested filler occurs negatively, so the emitted
        // axiom must read `∃R.A ⊑ X`.
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let mut o = DlOntology::new();
        o.sub(
            Concept::Exists(r, Box::new(Concept::Exists(r, Box::new(Concept::Name(a))))),
            Concept::Name(b),
        );
        let n = normalize_depth1(&o, &mut v);
        assert_eq!(ontology_depth(&n), 1);
        let fresh_on_rhs = n.axioms.iter().any(|ax| {
            matches!(ax, Axiom::ConceptInclusion(lhs, rhs)
                if matches!(rhs, Concept::Name(_)) && matches!(lhs, Concept::Exists(_, _)))
        });
        assert!(fresh_on_rhs);
    }

    #[test]
    fn at_most_filler_flips_polarity() {
        // A ⊑ (≤ 1 R ∃S.B): the filler ∃S.B sits at *negative* polarity, so
        // the emitted axiom is ∃S.B ⊑ X.
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let s = Role::new(v.rel("S", 2));
        let mut o = DlOntology::new();
        o.sub(
            Concept::Name(a),
            Concept::AtMost(
                1,
                r,
                Box::new(Concept::Exists(s, Box::new(Concept::Name(b)))),
            ),
        );
        let n = normalize_depth1(&o, &mut v);
        assert_eq!(ontology_depth(&n), 1);
        let has_reverse = n.axioms.iter().any(|ax| {
            matches!(ax, Axiom::ConceptInclusion(lhs, _) if matches!(lhs, Concept::Exists(_, _)))
        });
        assert!(has_reverse);
    }

    #[test]
    fn shallow_ontology_untouched() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let r = Role::new(v.rel("R", 2));
        let mut o = DlOntology::new();
        o.sub(Concept::Name(a), Concept::some(r));
        let n = normalize_depth1(&o, &mut v);
        assert_eq!(n, o);
    }
}
