//! DL ontologies (TBoxes).

use crate::concept::{Concept, Role};
use gomq_core::{RelId, Vocab};
use std::collections::BTreeSet;
use std::fmt;

/// A TBox axiom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Axiom {
    /// A concept inclusion `C ⊑ D`.
    ConceptInclusion(Concept, Concept),
    /// A role inclusion `R ⊑ S` (the `H` constructor).
    RoleInclusion(Role, Role),
    /// A functionality assertion `func(R)` (the `F` constructor); `R` may
    /// be an inverse role.
    Functional(Role),
    /// A transitivity assertion `trans(R)` — the future-work extension
    /// named in the paper's conclusion (outside the Figure-1 fragments).
    Transitive(Role),
}

/// A DL ontology: a finite set of axioms.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DlOntology {
    /// The axioms.
    pub axioms: Vec<Axiom>,
}

impl DlOntology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an ontology from axioms.
    pub fn from_axioms(axioms: Vec<Axiom>) -> Self {
        DlOntology { axioms }
    }

    /// Adds a concept inclusion `C ⊑ D`.
    pub fn sub(&mut self, c: Concept, d: Concept) -> &mut Self {
        self.axioms.push(Axiom::ConceptInclusion(c, d));
        self
    }

    /// Adds an equivalence `C ≡ D` (as two inclusions).
    pub fn equiv(&mut self, c: Concept, d: Concept) -> &mut Self {
        self.axioms
            .push(Axiom::ConceptInclusion(c.clone(), d.clone()));
        self.axioms.push(Axiom::ConceptInclusion(d, c));
        self
    }

    /// Adds a role inclusion.
    pub fn role_sub(&mut self, r: Role, s: Role) -> &mut Self {
        self.axioms.push(Axiom::RoleInclusion(r, s));
        self
    }

    /// Declares a role functional.
    pub fn functional(&mut self, r: Role) -> &mut Self {
        self.axioms.push(Axiom::Functional(r));
        self
    }

    /// Declares a role transitive.
    pub fn transitive(&mut self, r: Role) -> &mut Self {
        self.axioms.push(Axiom::Transitive(r));
        self
    }

    /// The concept inclusions.
    pub fn concept_inclusions(&self) -> impl Iterator<Item = (&Concept, &Concept)> {
        self.axioms.iter().filter_map(|a| match a {
            Axiom::ConceptInclusion(c, d) => Some((c, d)),
            _ => None,
        })
    }

    /// The role inclusions.
    pub fn role_inclusions(&self) -> impl Iterator<Item = (Role, Role)> + '_ {
        self.axioms.iter().filter_map(|a| match a {
            Axiom::RoleInclusion(r, s) => Some((*r, *s)),
            _ => None,
        })
    }

    /// The functional roles.
    pub fn functional_roles(&self) -> impl Iterator<Item = Role> + '_ {
        self.axioms.iter().filter_map(|a| match a {
            Axiom::Functional(r) => Some(*r),
            _ => None,
        })
    }

    /// The transitive roles.
    pub fn transitive_roles(&self) -> impl Iterator<Item = Role> + '_ {
        self.axioms.iter().filter_map(|a| match a {
            Axiom::Transitive(r) => Some(*r),
            _ => None,
        })
    }

    /// All concept names of the ontology.
    pub fn concept_names(&self) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        for (c, d) in self.concept_inclusions() {
            out.extend(c.concept_names());
            out.extend(d.concept_names());
        }
        out
    }

    /// All role relation symbols of the ontology (inverses collapsed).
    pub fn role_names(&self) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        for a in &self.axioms {
            match a {
                Axiom::ConceptInclusion(c, d) => {
                    out.extend(c.roles().into_iter().map(|r| r.rel));
                    out.extend(d.roles().into_iter().map(|r| r.rel));
                }
                Axiom::RoleInclusion(r, s) => {
                    out.insert(r.rel);
                    out.insert(s.rel);
                }
                Axiom::Functional(r) | Axiom::Transitive(r) => {
                    out.insert(r.rel);
                }
            }
        }
        out
    }

    /// The signature: all relation symbols (concept and role names).
    pub fn sig(&self) -> BTreeSet<RelId> {
        let mut out = self.concept_names();
        out.extend(self.role_names());
        out
    }

    /// Union of two ontologies.
    pub fn union(&self, other: &DlOntology) -> DlOntology {
        let mut axioms = self.axioms.clone();
        axioms.extend(other.axioms.iter().cloned());
        DlOntology { axioms }
    }

    /// A symbol-count size measure `|O|`.
    pub fn size(&self) -> usize {
        fn concept_size(c: &Concept) -> usize {
            match c {
                Concept::Top | Concept::Bot | Concept::Name(_) => 1,
                Concept::Not(d) => 1 + concept_size(d),
                Concept::And(ds) | Concept::Or(ds) => {
                    1 + ds.iter().map(concept_size).sum::<usize>()
                }
                Concept::Exists(_, d) | Concept::Forall(_, d) => 2 + concept_size(d),
                Concept::AtLeast(n, _, d) | Concept::AtMost(n, _, d) => {
                    2 + *n as usize + concept_size(d)
                }
            }
        }
        self.axioms
            .iter()
            .map(|a| match a {
                Axiom::ConceptInclusion(c, d) => 1 + concept_size(c) + concept_size(d),
                Axiom::RoleInclusion(_, _) => 3,
                Axiom::Functional(_) | Axiom::Transitive(_) => 2,
            })
            .sum()
    }

    /// Renders the ontology in the parser's text syntax.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> DlOntologyDisplay<'a> {
        DlOntologyDisplay { onto: self, vocab }
    }
}

/// Helper for rendering a [`DlOntology`].
pub struct DlOntologyDisplay<'a> {
    onto: &'a DlOntology,
    vocab: &'a Vocab,
}

impl fmt::Display for DlOntologyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.onto.axioms {
            match a {
                Axiom::ConceptInclusion(c, d) => {
                    writeln!(f, "{} sub {}", c.display(self.vocab), d.display(self.vocab))?
                }
                Axiom::RoleInclusion(r, s) => writeln!(
                    f,
                    "role {} sub {}",
                    r.display(self.vocab),
                    s.display(self.vocab)
                )?,
                Axiom::Functional(r) => writeln!(f, "func({})", r.display(self.vocab))?,
                Axiom::Transitive(r) => writeln!(f, "trans({})", r.display(self.vocab))?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_accessors() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = v.rel("R", 2);
        let s = v.rel("S", 2);
        let mut o = DlOntology::new();
        o.sub(Concept::Name(a), Concept::Name(b))
            .role_sub(Role::new(r), Role::new(s))
            .functional(Role::inv(r));
        assert_eq!(o.concept_inclusions().count(), 1);
        assert_eq!(o.role_inclusions().count(), 1);
        assert_eq!(o.functional_roles().count(), 1);
        assert_eq!(o.concept_names().len(), 2);
        assert_eq!(o.role_names().len(), 2);
        assert_eq!(o.sig().len(), 4);
        assert!(o.size() > 0);
    }

    #[test]
    fn equiv_expands_to_two_inclusions() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let mut o = DlOntology::new();
        o.equiv(Concept::Name(a), Concept::Name(b));
        assert_eq!(o.concept_inclusions().count(), 2);
    }

    #[test]
    fn union_concatenates() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let mut o1 = DlOntology::new();
        o1.sub(Concept::Name(a), Concept::Top);
        let mut o2 = DlOntology::new();
        o2.sub(Concept::Name(b), Concept::Top);
        assert_eq!(o1.union(&o2).axioms.len(), 2);
    }

    #[test]
    fn display_round_shape() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let mut o = DlOntology::new();
        o.sub(Concept::Name(a), Concept::Name(b));
        assert_eq!(format!("{}", o.display(&v)), "A sub B\n");
    }
}
