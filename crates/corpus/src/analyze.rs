//! The survey analyzer: strip → classify → depth statistics.

use crate::generate::CorpusEntry;
use gomq_dl::depth::ontology_depth;
use gomq_dl::lang::{strip_to_alchif, DlFeatures};
use std::fmt;

/// Per-ontology survey result.
#[derive(Clone, Debug)]
pub struct SurveyRow {
    /// The ontology's name.
    pub name: String,
    /// The detected DL language (before stripping).
    pub language: String,
    /// Raw depth.
    pub depth: usize,
    /// Depth after stripping to ALCHIF.
    pub alchif_depth: usize,
    /// Whether the ontology is (expressible in) ALCHIQ.
    pub in_alchiq: bool,
    /// Whether the ontology is an ALCHIQ ontology of depth ≤ 1 (the
    /// paper's 385-of-411 class, landing in the Theorem-13 decidable
    /// dichotomy fragment).
    pub alchiq_depth1: bool,
    /// Whether the stripped ontology has depth ≤ 2 (the paper's
    /// 405-of-411 class, landing in the ALCHIF-depth-2 dichotomy
    /// fragment).
    pub alchif_depth2: bool,
    /// Whether the Theorem-13 element-type machinery applies after
    /// depth-1 normalization (the shape check; type enumeration may
    /// still be capped), and the resulting closure size in bits.
    pub thm13_applicable: Option<usize>,
}

/// The aggregated survey table.
#[derive(Clone, Debug)]
pub struct SurveyTable {
    /// Per-ontology rows.
    pub rows: Vec<SurveyRow>,
}

impl SurveyTable {
    /// Total ontology count.
    pub fn total(&self) -> usize {
        self.rows.len()
    }

    /// Ontologies in the ALCHIF-depth-2 dichotomy class.
    pub fn alchif_depth2_count(&self) -> usize {
        self.rows.iter().filter(|r| r.alchif_depth2).count()
    }

    /// Ontologies in the ALCHIQ-depth-1 class.
    pub fn alchiq_depth1_count(&self) -> usize {
        self.rows.iter().filter(|r| r.alchiq_depth1).count()
    }

    /// Ontologies whose normalization fits the Theorem-13 machinery.
    pub fn thm13_applicable_count(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.thm13_applicable.is_some())
            .count()
    }
}

impl fmt::Display for SurveyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BioPortal-style survey ({} ontologies)", self.total())?;
        writeln!(
            f,
            "  ALCHIF depth <= 2 (dichotomy, Thm 7):   {:>4} / {} ({:.1}%)",
            self.alchif_depth2_count(),
            self.total(),
            100.0 * self.alchif_depth2_count() as f64 / self.total() as f64
        )?;
        writeln!(
            f,
            "  ALCHIQ depth <= 1 (decidable, Thm 13):  {:>4} / {} ({:.1}%)",
            self.alchiq_depth1_count(),
            self.total(),
            100.0 * self.alchiq_depth1_count() as f64 / self.total() as f64
        )?;
        writeln!(
            f,
            "  Thm-13 machinery applies (normalized):  {:>4} / {} ({:.1}%)",
            self.thm13_applicable_count(),
            self.total(),
            100.0 * self.thm13_applicable_count() as f64 / self.total() as f64
        )?;
        writeln!(
            f,
            "  paper reports:                           405 / 411 (98.5%) and 385 / 411 (93.7%)"
        )
    }
}

/// Runs the survey over a corpus. The vocabulary is needed for the
/// Theorem-13 applicability probe (normalization interns fresh names).
pub fn survey(corpus: &[CorpusEntry], vocab: &mut gomq_core::Vocab) -> SurveyTable {
    let rows = corpus
        .iter()
        .map(|e| {
            let features = DlFeatures::of(&e.onto);
            let depth = ontology_depth(&e.onto);
            let stripped = strip_to_alchif(&e.onto);
            let alchif_depth = ontology_depth(&stripped);
            let in_alchiq = features.within_alchiq();
            // Theorem-13 probe: normalize to depth 1, translate, check
            // the element-type machinery's shape requirements.
            let normalized = gomq_dl::normalize::normalize_depth1(&e.onto, vocab);
            let gf = gomq_dl::translate::to_gf(&normalized);
            let thm13_applicable = gomq_rewriting::types::closure_stats(&gf, vocab)
                .ok()
                .map(|s| s.bits);
            SurveyRow {
                name: e.name.clone(),
                language: format!("{}", features.language()),
                depth,
                alchif_depth,
                in_alchiq,
                alchiq_depth1: depth <= 1,
                alchif_depth2: alchif_depth <= 2,
                thm13_applicable,
            }
        })
        .collect();
    SurveyTable { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_corpus, CorpusSpec};
    use gomq_core::Vocab;

    #[test]
    fn full_survey_matches_paper_statistics() {
        let mut v = Vocab::new();
        let corpus = generate_corpus(&CorpusSpec::default(), &mut v);
        let table = survey(&corpus, &mut v);
        assert_eq!(table.total(), 411);
        assert_eq!(table.alchif_depth2_count(), 405, "paper: 405 of 411");
        assert_eq!(table.alchiq_depth1_count(), 385, "paper: 385 of 411");
        let text = format!("{table}");
        assert!(text.contains("405 / 411"));
    }

    #[test]
    fn rows_carry_language_names() {
        let mut v = Vocab::new();
        let spec = CorpusSpec {
            count: 10,
            depth1: 8,
            depth2: 1,
            seed: 5,
        };
        let corpus = generate_corpus(&spec, &mut v);
        let table = survey(&corpus, &mut v);
        for row in &table.rows {
            assert!(row.language.starts_with("ALC"));
            assert!(row.alchif_depth <= row.depth.max(2));
        }
    }
}
