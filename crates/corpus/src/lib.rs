//! # gomq-corpus
//!
//! A stand-in for the paper's BioPortal survey (§1): 411 ontologies were
//! analyzed; after removing constructors outside ALCHIF, 405 had depth ≤ 2
//! (landing in the ALCHIF-depth-2 dichotomy fragment), and 385 were
//! ALCHIQ ontologies of depth 1 (sometimes after an easy
//! complexity-preserving rewriting).
//!
//! The real repository is not available offline, so [`generate_corpus`]
//! produces a deterministic synthetic corpus whose *measured surface* —
//! constructor usage and depth distribution — is calibrated to the
//! paper's reported statistics, and [`survey`] runs the same analysis one
//! would run on the real corpus: strip → classify → depth statistics.

#![warn(missing_docs)]

pub mod analyze;
pub mod generate;

pub use analyze::{survey, SurveyRow, SurveyTable};
pub use generate::{generate_corpus, CorpusEntry, CorpusSpec};
