//! The synthetic corpus generator.
//!
//! Each generated ontology mimics the axiom mix of biomedical ontologies:
//! mostly atomic subsumptions and definitions with existential
//! restrictions (`Arm ⊑ ∃partOf.Body`), disjointness between siblings,
//! occasional role hierarchies, inverse roles, functionality and number
//! restrictions. The generator draws the *depth class* of each ontology
//! from a distribution matching the paper's survey:
//!
//! * 385 of 411 ontologies have depth ≤ 1 within ALCHIQ,
//! * a further 20 have depth 2 (within ALCHIF after stripping),
//! * the remaining 6 have depth ≥ 3.

use gomq_core::Vocab;
use gomq_dl::concept::{Concept, Role};
use gomq_dl::DlOntology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Corpus shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct CorpusSpec {
    /// Number of ontologies (the paper surveyed 411).
    pub count: usize,
    /// How many have depth ≤ 1 (the paper's 385).
    pub depth1: usize,
    /// How many have depth exactly 2 (the paper's 405 − 385 = 20).
    pub depth2: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            count: 411,
            depth1: 385,
            depth2: 20,
            seed: 2017, // PODS'17
        }
    }
}

/// A generated corpus entry.
pub struct CorpusEntry {
    /// A BioPortal-flavoured name.
    pub name: String,
    /// The ontology.
    pub onto: DlOntology,
}

/// Generates the corpus. Each entry gets its own namespace of concept and
/// role names inside the shared vocabulary.
pub fn generate_corpus(spec: &CorpusSpec, vocab: &mut Vocab) -> Vec<CorpusEntry> {
    assert!(spec.depth1 + spec.depth2 <= spec.count);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.count);
    for idx in 0..spec.count {
        let depth_class = if idx < spec.depth1 {
            1
        } else if idx < spec.depth1 + spec.depth2 {
            2
        } else {
            3
        };
        let name = format!("BIO{idx:03}");
        let onto = generate_one(&name, depth_class, &mut rng, vocab);
        out.push(CorpusEntry { name, onto });
    }
    // Shuffle so depth classes are not clustered (deterministic order).
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

fn generate_one(ns: &str, depth_class: usize, rng: &mut SmallRng, vocab: &mut Vocab) -> DlOntology {
    let n_concepts = rng.gen_range(8..30);
    let n_roles = rng.gen_range(2..6);
    let concepts: Vec<_> = (0..n_concepts)
        .map(|i| vocab.rel(&format!("{ns}_C{i}"), 1))
        .collect();
    let roles: Vec<_> = (0..n_roles)
        .map(|i| Role::new(vocab.rel(&format!("{ns}_r{i}"), 2)))
        .collect();
    let mut o = DlOntology::new();
    let n_axioms = rng.gen_range(10..60);
    let pick_c = |rng: &mut SmallRng| concepts[rng.gen_range(0..concepts.len())];
    let pick_r = |rng: &mut SmallRng| roles[rng.gen_range(0..roles.len())];
    for _ in 0..n_axioms {
        let kind = rng.gen_range(0..100);
        match kind {
            // Plain subsumption (the dominant axiom shape in BioPortal).
            0..=49 => {
                let (c, d) = (pick_c(rng), pick_c(rng));
                o.sub(Concept::Name(c), Concept::Name(d));
            }
            // Existential definition: C ⊑ ∃r.D.
            50..=69 => {
                let (c, d, r) = (pick_c(rng), pick_c(rng), pick_r(rng));
                o.sub(
                    Concept::Name(c),
                    Concept::Exists(r, Box::new(Concept::Name(d))),
                );
            }
            // Value restriction: C ⊑ ∀r.D.
            70..=79 => {
                let (c, d, r) = (pick_c(rng), pick_c(rng), pick_r(rng));
                o.sub(
                    Concept::Name(c),
                    Concept::Forall(r, Box::new(Concept::Name(d))),
                );
            }
            // Disjoint siblings.
            80..=87 => {
                let (c, d) = (pick_c(rng), pick_c(rng));
                if c != d {
                    o.sub(
                        Concept::And(vec![Concept::Name(c), Concept::Name(d)]),
                        Concept::Bot,
                    );
                }
            }
            // Role hierarchy.
            88..=91 => {
                let (r, s) = (pick_r(rng), pick_r(rng));
                if r != s {
                    o.role_sub(r, s);
                }
            }
            // Inverse-role existential: C ⊑ ∃r⁻.D.
            92..=94 => {
                let (c, d, r) = (pick_c(rng), pick_c(rng), pick_r(rng));
                o.sub(
                    Concept::Name(c),
                    Concept::Exists(r.inverted(), Box::new(Concept::Name(d))),
                );
            }
            // Functionality.
            95..=96 => {
                o.functional(pick_r(rng));
            }
            // Qualified number restriction (Q; stripped for ALCHIF).
            _ => {
                let (c, d, r) = (pick_c(rng), pick_c(rng), pick_r(rng));
                let n = rng.gen_range(2..4);
                o.sub(
                    Concept::Name(c),
                    Concept::AtLeast(n, r, Box::new(Concept::Name(d))),
                );
            }
        }
    }
    // Ensure the requested depth class with a distinguished definition.
    let anchor = pick_c(rng);
    let mid = pick_c(rng);
    let leaf = pick_c(rng);
    let r = pick_r(rng);
    match depth_class {
        1 => { /* depth ≤ 1 by construction above */ }
        2 => {
            o.sub(
                Concept::Name(anchor),
                Concept::Exists(
                    r,
                    Box::new(Concept::Exists(r, Box::new(Concept::Name(leaf)))),
                ),
            );
        }
        _ => {
            o.sub(
                Concept::Name(anchor),
                Concept::Exists(
                    r,
                    Box::new(Concept::Forall(
                        r,
                        Box::new(Concept::Exists(r, Box::new(Concept::Name(mid)))),
                    )),
                ),
            );
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_dl::depth::ontology_depth;

    #[test]
    fn corpus_has_requested_size_and_is_deterministic() {
        let spec = CorpusSpec {
            count: 25,
            depth1: 20,
            depth2: 3,
            seed: 7,
        };
        let mut v1 = Vocab::new();
        let c1 = generate_corpus(&spec, &mut v1);
        let mut v2 = Vocab::new();
        let c2 = generate_corpus(&spec, &mut v2);
        assert_eq!(c1.len(), 25);
        for (a, b) in c1.iter().zip(c2.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.onto.axioms.len(), b.onto.axioms.len());
        }
    }

    #[test]
    fn depth_classes_are_respected() {
        let spec = CorpusSpec {
            count: 30,
            depth1: 20,
            depth2: 6,
            seed: 11,
        };
        let mut v = Vocab::new();
        let corpus = generate_corpus(&spec, &mut v);
        let d1 = corpus
            .iter()
            .filter(|e| ontology_depth(&e.onto) <= 1)
            .count();
        let d2 = corpus
            .iter()
            .filter(|e| ontology_depth(&e.onto) == 2)
            .count();
        let d3 = corpus
            .iter()
            .filter(|e| ontology_depth(&e.onto) >= 3)
            .count();
        assert_eq!(d1, 20);
        assert_eq!(d2, 6);
        assert_eq!(d3, 4);
    }

    #[test]
    fn ontologies_are_nonempty() {
        let spec = CorpusSpec {
            count: 5,
            depth1: 5,
            depth2: 0,
            seed: 3,
        };
        let mut v = Vocab::new();
        for e in generate_corpus(&spec, &mut v) {
            assert!(e.onto.axioms.len() >= 10);
        }
    }
}
