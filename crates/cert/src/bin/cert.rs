//! `gomq-cert`: verify derivation certificates from the command line.
//!
//! Reads JSONL from the given files (or stdin), verifies every
//! certificate it finds, and exits nonzero on the first failure. A line
//! may be either a bare certificate object or a full `gomq-serve` query
//! response carrying a `"certificate"` field, so server output can be
//! piped straight in:
//!
//! ```text
//! gomq-serve < requests.jsonl | gomq-cert
//! ```
//!
//! Lines without a certificate (mutation acknowledgements, error
//! responses) are skipped. By default at least one certificate must be
//! present — an accidentally certificate-free stream should fail CI,
//! not pass it silently; `--allow-empty` lifts that requirement.

use gomq_cert::json::{self, Value};
use std::io::{BufRead, BufReader, Read};
use std::process::ExitCode;

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("gomq-cert: {msg}");
    eprintln!("usage: gomq-cert [--allow-empty] [--quiet] [FILE...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut allow_empty = false;
    let mut quiet = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--allow-empty" => allow_empty = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: gomq-cert [--allow-empty] [--quiet] [FILE...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag {other}"));
            }
            file => files.push(file.to_owned()),
        }
    }

    let mut verified = 0usize;
    let mut answers = 0usize;
    let mut check = |line: &str, origin: &str| -> Result<(), String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(());
        }
        let doc = json::parse(trimmed).map_err(|e| format!("{origin}: bad JSON: {e}"))?;
        // A bare certificate has "v"+"steps"; a serve response nests the
        // certificate under "certificate" (and may legitimately lack
        // one, e.g. mutation acknowledgements).
        let cert: &Value = match doc.as_obj() {
            Some(obj) if obj.contains_key("steps") => &doc,
            Some(obj) => match obj.get("certificate") {
                Some(c) if *c != Value::Null => c,
                _ => return Ok(()),
            },
            None => return Err(format!("{origin}: not a JSON object")),
        };
        let summary =
            gomq_cert::verify_value(cert).map_err(|e| format!("{origin}: INVALID: {e}"))?;
        verified += 1;
        answers += summary.answers.len();
        if !quiet {
            let binding = match summary.snapshot {
                Some(s) => format!(" @ lsn {} / {} base facts", s.lsn, s.base),
                None => String::new(),
            };
            eprintln!(
                "gomq-cert: {origin}: ok — {} answers, {} steps, {} rules{binding}",
                summary.answers.len(),
                summary.steps,
                summary.rules
            );
        }
        Ok(())
    };

    let outcome: Result<(), String> = if files.is_empty() {
        run_lines(BufReader::new(std::io::stdin().lock()), "stdin", &mut check)
    } else {
        files.iter().try_for_each(|path| {
            let file =
                std::fs::File::open(path).map_err(|e| format!("{path}: cannot open: {e}"))?;
            run_lines(BufReader::new(file), path, &mut check)
        })
    };
    if let Err(msg) = outcome {
        eprintln!("gomq-cert: {msg}");
        return ExitCode::FAILURE;
    }
    if verified == 0 && !allow_empty {
        eprintln!("gomq-cert: no certificates found (use --allow-empty to accept)");
        return ExitCode::FAILURE;
    }
    eprintln!("gomq-cert: {verified} certificates verified ({answers} answers)");
    ExitCode::SUCCESS
}

fn run_lines<R: Read>(
    reader: BufReader<R>,
    origin: &str,
    check: &mut impl FnMut(&str, &str) -> Result<(), String>,
) -> Result<(), String> {
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("{origin}: read error: {e}"))?;
        check(&line, &format!("{origin}:{}", i + 1))?;
    }
    Ok(())
}
