//! # gomq-cert
//!
//! Standalone verifier for OMQ derivation certificates.
//!
//! The serving engine (`gomq-engine`) can attach a *certificate* to a
//! query response: the Datalog≠ rules of the compiled rewriting, the
//! base facts the derivation touched (symbolically, as relation and
//! constant *names*), one derivation step per derived fact (which rule
//! fired, which premise facts instantiated its body), and the answer
//! tuples. This crate re-checks such a certificate **without any
//! evaluation engine**: each step is verified by linear substitution
//! matching — walk the rule's positive body atoms in order, unify each
//! against its cited premise, check the inequalities, compare the
//! instantiated head. No joins, no search, no fixpoint.
//!
//! The crate has **no dependencies**, in particular none on the engine
//! whose output it audits: the trusted computing base for "this answer
//! tuple really is derivable" is this crate plus the certificate. That
//! is the certificate-first design — untrusted engines compute, a small
//! trusted checker verifies — and what makes untrusted replicas safe to
//! serve from.
//!
//! What verification establishes: every answer tuple is derivable from
//! the certificate's base facts by the certificate's rules
//! (*soundness* of the listed answers, relative to the base facts being
//! the session's — which the `snapshot` binding ties to a WAL position).
//! What it does not establish: *completeness* (that no answer is
//! missing) — that is cross-checked engine-side by proptests comparing
//! independent answer paths.

#![warn(missing_docs)]

pub mod json;

use json::Value;
use std::collections::HashMap;
use std::fmt;

/// The certificate format version this verifier understands.
pub const VERSION: u64 = 1;

/// A term inside a rule: a variable slot or a ground constant name.
#[derive(Clone, Debug, PartialEq, Eq)]
enum RTerm {
    Var(u32),
    Const(String),
}

/// One positive atom of a rule (head or body).
#[derive(Clone, Debug)]
struct RAtom {
    rel: String,
    args: Vec<RTerm>,
}

/// One rule: head, positive body atoms, inequality constraints.
#[derive(Clone, Debug)]
struct CRule {
    head: RAtom,
    body: Vec<RAtom>,
    neq: Vec<(RTerm, RTerm)>,
}

/// Why a certificate failed to verify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// The document is not valid JSON.
    BadJson(String),
    /// The document parses but is not a structurally valid certificate.
    Malformed(String),
    /// The certificate declares a version this verifier does not speak.
    UnsupportedVersion(u64),
    /// Two facts (base or derived) claim the same id.
    DuplicateFact(u64),
    /// A step cites a rule index outside the rule table.
    UnknownRule {
        /// The derived fact id of the offending step.
        step: u64,
        /// The out-of-range rule index.
        rule: u64,
    },
    /// A step cites a premise id not established before it.
    MissingPremise {
        /// The derived fact id of the offending step.
        step: u64,
        /// The missing premise id.
        premise: u64,
    },
    /// A cited premise does not match its body atom under the
    /// substitution built so far.
    PremiseMismatch {
        /// The derived fact id of the offending step.
        step: u64,
        /// Index of the body atom that failed to match.
        atom: usize,
        /// What went wrong.
        reason: String,
    },
    /// An inequality constraint of the fired rule is violated.
    InequalityViolated {
        /// The derived fact id of the offending step.
        step: u64,
    },
    /// The instantiated head differs from the fact the step claims.
    HeadMismatch {
        /// The derived fact id of the offending step.
        step: u64,
    },
    /// An answer tuple is not backed by a proven goal fact.
    AnswerUnproven {
        /// The cited fact id.
        fact: u64,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadJson(e) => write!(f, "bad JSON: {e}"),
            CertError::Malformed(msg) => write!(f, "malformed certificate: {msg}"),
            CertError::UnsupportedVersion(v) => write!(f, "unsupported certificate version {v}"),
            CertError::DuplicateFact(id) => write!(f, "duplicate fact id {id}"),
            CertError::UnknownRule { step, rule } => {
                write!(f, "step {step} cites unknown rule {rule}")
            }
            CertError::MissingPremise { step, premise } => {
                write!(
                    f,
                    "step {step} cites premise {premise} not established before it"
                )
            }
            CertError::PremiseMismatch { step, atom, reason } => {
                write!(f, "step {step}, body atom {atom}: {reason}")
            }
            CertError::InequalityViolated { step } => {
                write!(f, "step {step} violates an inequality constraint")
            }
            CertError::HeadMismatch { step } => {
                write!(
                    f,
                    "step {step}: instantiated head differs from the claimed fact"
                )
            }
            CertError::AnswerUnproven { fact, reason } => {
                write!(f, "answer cites fact {fact}: {reason}")
            }
        }
    }
}

impl std::error::Error for CertError {}

/// The session position a certificate is bound to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Last WAL log sequence number applied when the answer was computed.
    pub lsn: u64,
    /// Number of base (session) facts at that position.
    pub base: u64,
}

/// A successfully verified certificate, summarized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verified {
    /// The goal relation name.
    pub goal: String,
    /// The verified answer tuples, in certificate order.
    pub answers: Vec<Vec<String>>,
    /// Number of base facts the certificate cites.
    pub base_facts: usize,
    /// Number of derivation steps checked.
    pub steps: usize,
    /// Number of rules in the certificate's rule table.
    pub rules: usize,
    /// The session position the certificate claims to be bound to, if
    /// any. The verifier reports it; *comparing* it against the live
    /// session is the caller's job.
    pub snapshot: Option<Snapshot>,
}

/// Verifies a certificate given as a JSON string.
pub fn verify(text: &str) -> Result<Verified, CertError> {
    let doc = json::parse(text).map_err(|e| CertError::BadJson(e.to_string()))?;
    verify_value(&doc)
}

/// Verifies an already-parsed certificate object.
pub fn verify_value(doc: &Value) -> Result<Verified, CertError> {
    let obj = doc
        .as_obj()
        .ok_or_else(|| malformed("certificate is not an object"))?;
    let version = obj
        .get("v")
        .and_then(Value::as_u64)
        .ok_or_else(|| malformed("missing integer \"v\""))?;
    if version != VERSION {
        return Err(CertError::UnsupportedVersion(version));
    }
    let goal = obj
        .get("goal")
        .and_then(Value::as_str)
        .ok_or_else(|| malformed("missing string \"goal\""))?
        .to_owned();
    let snapshot = match obj.get("snapshot") {
        None | Some(Value::Null) => None,
        Some(v) => {
            let s = v
                .as_obj()
                .ok_or_else(|| malformed("\"snapshot\" is not an object"))?;
            let lsn = s
                .get("lsn")
                .and_then(Value::as_u64)
                .ok_or_else(|| malformed("snapshot missing integer \"lsn\""))?;
            let base = s
                .get("base")
                .and_then(Value::as_u64)
                .ok_or_else(|| malformed("snapshot missing integer \"base\""))?;
            Some(Snapshot { lsn, base })
        }
    };
    let rules: Vec<CRule> = obj
        .get("rules")
        .and_then(Value::as_arr)
        .ok_or_else(|| malformed("missing array \"rules\""))?
        .iter()
        .map(parse_rule)
        .collect::<Result<_, _>>()?;

    // Fact table: id → (relation name, argument names).
    let mut facts: HashMap<u64, (String, Vec<String>)> = HashMap::new();
    let base = obj
        .get("base")
        .and_then(Value::as_arr)
        .ok_or_else(|| malformed("missing array \"base\""))?;
    for entry in base {
        let (id, rel, args) = parse_fact(entry, 1)?;
        if facts.insert(id, (rel, args)).is_some() {
            return Err(CertError::DuplicateFact(id));
        }
    }
    let base_facts = facts.len();

    // Derivation steps, checked in listed order: every premise must
    // already be established, so the order itself witnesses
    // well-foundedness (no cyclic justification can pass).
    let steps = obj
        .get("steps")
        .and_then(Value::as_arr)
        .ok_or_else(|| malformed("missing array \"steps\""))?;
    for entry in steps {
        let items = entry
            .as_arr()
            .ok_or_else(|| malformed("step is not an array"))?;
        if items.len() < 4 {
            return Err(malformed("step needs [id, rule, premises, rel, args...]"));
        }
        let id = items[0]
            .as_u64()
            .ok_or_else(|| malformed("step id is not an integer"))?;
        let rule_idx = items[1]
            .as_u64()
            .ok_or_else(|| malformed("step rule index is not an integer"))?;
        let premises: Vec<u64> = items[2]
            .as_arr()
            .ok_or_else(|| malformed("step premises are not an array"))?
            .iter()
            .map(|p| {
                p.as_u64()
                    .ok_or_else(|| malformed("premise id is not an integer"))
            })
            .collect::<Result<_, _>>()?;
        let (rel, args) = parse_named_tuple(&items[3..])?;
        if facts.contains_key(&id) {
            return Err(CertError::DuplicateFact(id));
        }
        let rule = rules.get(rule_idx as usize).ok_or(CertError::UnknownRule {
            step: id,
            rule: rule_idx,
        })?;
        check_step(id, rule, &premises, &rel, &args, &facts)?;
        facts.insert(id, (rel, args));
    }

    // Answers: each must cite a proven goal fact with matching tuple.
    let answers_in = obj
        .get("answers")
        .and_then(Value::as_arr)
        .ok_or_else(|| malformed("missing array \"answers\""))?;
    let mut answers = Vec::with_capacity(answers_in.len());
    for entry in answers_in {
        let (id, args) = {
            let items = entry
                .as_arr()
                .ok_or_else(|| malformed("answer is not an array"))?;
            if items.is_empty() {
                return Err(malformed("answer needs [id, args...]"));
            }
            let id = items[0]
                .as_u64()
                .ok_or_else(|| malformed("answer id is not an integer"))?;
            let args: Vec<String> = items[1..]
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| malformed("answer argument is not a string"))
                })
                .collect::<Result<_, _>>()?;
            (id, args)
        };
        let (rel, fact_args) = facts.get(&id).ok_or(CertError::AnswerUnproven {
            fact: id,
            reason: "no such fact".into(),
        })?;
        if *rel != goal {
            return Err(CertError::AnswerUnproven {
                fact: id,
                reason: format!("fact is {rel}, not the goal {goal}"),
            });
        }
        if *fact_args != args {
            return Err(CertError::AnswerUnproven {
                fact: id,
                reason: "tuple differs from the proven fact".into(),
            });
        }
        answers.push(args);
    }

    Ok(Verified {
        goal,
        answers,
        base_facts,
        steps: steps.len(),
        rules: rules.len(),
        snapshot,
    })
}

/// Checks one derivation step by linear substitution matching.
fn check_step(
    id: u64,
    rule: &CRule,
    premises: &[u64],
    rel: &str,
    args: &[String],
    facts: &HashMap<u64, (String, Vec<String>)>,
) -> Result<(), CertError> {
    if premises.len() != rule.body.len() {
        return Err(CertError::PremiseMismatch {
            step: id,
            atom: premises.len().min(rule.body.len()),
            reason: format!(
                "{} premises cited for {} body atoms",
                premises.len(),
                rule.body.len()
            ),
        });
    }
    // The substitution: variable slot → constant name.
    let mut frame: HashMap<u32, String> = HashMap::new();
    for (k, (atom, &pid)) in rule.body.iter().zip(premises).enumerate() {
        let mismatch = |reason: String| CertError::PremiseMismatch {
            step: id,
            atom: k,
            reason,
        };
        let (prel, pargs) = facts.get(&pid).ok_or(CertError::MissingPremise {
            step: id,
            premise: pid,
        })?;
        if *prel != atom.rel {
            return Err(mismatch(format!(
                "premise {pid} is {prel}, atom wants {}",
                atom.rel
            )));
        }
        if pargs.len() != atom.args.len() {
            return Err(mismatch(format!(
                "premise {pid} has arity {}, atom wants {}",
                pargs.len(),
                atom.args.len()
            )));
        }
        for (pat, got) in atom.args.iter().zip(pargs) {
            match pat {
                RTerm::Const(c) => {
                    if c != got {
                        return Err(mismatch(format!("constant {c} vs premise term {got}")));
                    }
                }
                RTerm::Var(v) => match frame.get(v) {
                    Some(bound) if bound != got => {
                        return Err(mismatch(format!(
                            "variable ?{v} bound to {bound}, premise has {got}"
                        )));
                    }
                    Some(_) => {}
                    None => {
                        frame.insert(*v, got.clone());
                    }
                },
            }
        }
    }
    let resolve = |t: &RTerm| -> Result<String, CertError> {
        match t {
            RTerm::Const(c) => Ok(c.clone()),
            RTerm::Var(v) => frame
                .get(v)
                .cloned()
                .ok_or_else(|| malformed(&format!("step {id}: variable ?{v} left unbound"))),
        }
    };
    for (a, b) in &rule.neq {
        if resolve(a)? == resolve(b)? {
            return Err(CertError::InequalityViolated { step: id });
        }
    }
    if rule.head.rel != rel || rule.head.args.len() != args.len() {
        return Err(CertError::HeadMismatch { step: id });
    }
    for (pat, got) in rule.head.args.iter().zip(args) {
        if resolve(pat)? != *got {
            return Err(CertError::HeadMismatch { step: id });
        }
    }
    Ok(())
}

fn malformed(msg: &str) -> CertError {
    CertError::Malformed(msg.to_owned())
}

/// Parses `["Rel", name...]` slices shared by base facts and steps.
fn parse_named_tuple(items: &[Value]) -> Result<(String, Vec<String>), CertError> {
    let rel = items
        .first()
        .and_then(Value::as_str)
        .ok_or_else(|| malformed("fact relation is not a string"))?
        .to_owned();
    let args: Vec<String> = items[1..]
        .iter()
        .map(|a| {
            a.as_str()
                .map(str::to_owned)
                .ok_or_else(|| malformed("fact argument is not a string"))
        })
        .collect::<Result<_, _>>()?;
    Ok((rel, args))
}

/// Parses a `[id, "Rel", name...]` fact entry; `skip` is the index of
/// the relation name (1 for base facts).
fn parse_fact(entry: &Value, skip: usize) -> Result<(u64, String, Vec<String>), CertError> {
    let items = entry
        .as_arr()
        .ok_or_else(|| malformed("fact is not an array"))?;
    if items.len() <= skip {
        return Err(malformed("fact needs [id, rel, args...]"));
    }
    let id = items[0]
        .as_u64()
        .ok_or_else(|| malformed("fact id is not an integer"))?;
    let (rel, args) = parse_named_tuple(&items[skip..])?;
    Ok((id, rel, args))
}

/// Parses a rule object: `{"head": atom, "body": [atom...], "neq":
/// [[t, t]...]}` where an atom is `["Rel", term...]` and a term is an
/// integer (variable slot) or a string (ground constant name). The
/// integer/string split is what makes the encoding unambiguous —
/// constants never collide with variable spellings.
fn parse_rule(entry: &Value) -> Result<CRule, CertError> {
    let obj = entry
        .as_obj()
        .ok_or_else(|| malformed("rule is not an object"))?;
    let head = parse_atom(
        obj.get("head")
            .ok_or_else(|| malformed("rule missing \"head\""))?,
    )?;
    let body: Vec<RAtom> = obj
        .get("body")
        .and_then(Value::as_arr)
        .ok_or_else(|| malformed("rule missing array \"body\""))?
        .iter()
        .map(parse_atom)
        .collect::<Result<_, _>>()?;
    let neq: Vec<(RTerm, RTerm)> = match obj.get("neq") {
        None => Vec::new(),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| malformed("rule \"neq\" is not an array"))?
            .iter()
            .map(|pair| {
                let items = pair
                    .as_arr()
                    .ok_or_else(|| malformed("neq entry is not an array"))?;
                if items.len() != 2 {
                    return Err(malformed("neq entry needs exactly two terms"));
                }
                Ok((parse_rterm(&items[0])?, parse_rterm(&items[1])?))
            })
            .collect::<Result<_, _>>()?,
    };
    Ok(CRule { head, body, neq })
}

fn parse_atom(v: &Value) -> Result<RAtom, CertError> {
    let items = v
        .as_arr()
        .ok_or_else(|| malformed("atom is not an array"))?;
    let rel = items
        .first()
        .and_then(Value::as_str)
        .ok_or_else(|| malformed("atom relation is not a string"))?
        .to_owned();
    let args: Vec<RTerm> = items[1..]
        .iter()
        .map(parse_rterm)
        .collect::<Result<_, _>>()?;
    Ok(RAtom { rel, args })
}

fn parse_rterm(v: &Value) -> Result<RTerm, CertError> {
    match v {
        Value::Num(_) => {
            let n = v
                .as_u64()
                .ok_or_else(|| malformed("variable slot is not a non-negative integer"))?;
            u32::try_from(n)
                .map(RTerm::Var)
                .map_err(|_| malformed("variable slot out of range"))
        }
        Value::Str(s) => Ok(RTerm::Const(s.clone())),
        _ => Err(malformed(
            "rule term must be an integer slot or a string constant",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transitive-closure certificate: E(a,b), E(b,c) ⊢ T(a,c) with a
    /// goal that filters loops by inequality.
    fn tc_cert() -> String {
        r#"{
          "v": 1,
          "goal": "goal",
          "snapshot": {"lsn": 3, "base": 2},
          "rules": [
            {"head": ["T", 0, 1], "body": [["E", 0, 1]], "neq": []},
            {"head": ["T", 0, 2], "body": [["T", 0, 1], ["E", 1, 2]], "neq": []},
            {"head": ["goal", 0, 1], "body": [["T", 0, 1]], "neq": [[0, 1]]}
          ],
          "base": [[0, "E", "a", "b"], [1, "E", "b", "c"]],
          "steps": [
            [2, 0, [0], "T", "a", "b"],
            [3, 1, [2, 1], "T", "a", "c"],
            [4, 2, [3], "goal", "a", "c"]
          ],
          "answers": [[4, "a", "c"]]
        }"#
        .to_owned()
    }

    #[test]
    fn valid_certificate_verifies() {
        let v = verify(&tc_cert()).expect("verifies");
        assert_eq!(v.goal, "goal");
        assert_eq!(v.answers, vec![vec!["a".to_owned(), "c".to_owned()]]);
        assert_eq!(v.base_facts, 2);
        assert_eq!(v.steps, 3);
        assert_eq!(v.snapshot, Some(Snapshot { lsn: 3, base: 2 }));
    }

    #[test]
    fn forward_premise_citation_is_rejected() {
        // Step 2 cites fact 3, which is only established afterwards:
        // the in-order check makes cyclic justification impossible.
        let cert = tc_cert().replace(
            r#"[2, 0, [0], "T", "a", "b"]"#,
            r#"[2, 1, [3, 1], "T", "a", "b"]"#,
        );
        assert!(matches!(
            verify(&cert),
            Err(CertError::MissingPremise {
                step: 2,
                premise: 3
            })
        ));
    }

    #[test]
    fn wrong_instantiation_is_rejected() {
        let cert = tc_cert().replace(
            r#"[3, 1, [2, 1], "T", "a", "c"]"#,
            r#"[3, 1, [2, 1], "T", "a", "b"]"#,
        );
        assert!(matches!(
            verify(&cert),
            Err(CertError::HeadMismatch { step: 3 })
        ));
    }

    #[test]
    fn binding_conflicts_are_rejected() {
        // Premise T(a,b) forces ?1 = b, but E(b,c) is cited where the
        // atom E(?1, ?2) would need ?1 = b — make it conflict by citing
        // fact 0 (E(a,b)) instead: ?1 must be both b and a.
        let cert = tc_cert().replace(
            r#"[3, 1, [2, 1], "T", "a", "c"]"#,
            r#"[3, 1, [2, 0], "T", "a", "c"]"#,
        );
        assert!(matches!(
            verify(&cert),
            Err(CertError::PremiseMismatch {
                step: 3,
                atom: 1,
                ..
            })
        ));
    }

    #[test]
    fn inequality_violations_are_rejected() {
        let cert = r#"{
          "v": 1, "goal": "goal",
          "rules": [
            {"head": ["T", 0, 1], "body": [["E", 0, 1]], "neq": []},
            {"head": ["goal", 0, 1], "body": [["T", 0, 1]], "neq": [[0, 1]]}
          ],
          "base": [[0, "E", "a", "a"]],
          "steps": [[1, 0, [0], "T", "a", "a"], [2, 1, [1], "goal", "a", "a"]],
          "answers": [[2, "a", "a"]]
        }"#;
        assert!(matches!(
            verify(cert),
            Err(CertError::InequalityViolated { step: 2 })
        ));
    }

    #[test]
    fn answers_must_cite_goal_facts() {
        let cert = tc_cert().replace(
            r#""answers": [[4, "a", "c"]]"#,
            r#""answers": [[3, "a", "c"]]"#,
        );
        assert!(matches!(
            verify(&cert),
            Err(CertError::AnswerUnproven { fact: 3, .. })
        ));
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let cert = tc_cert().replace(
            r#"[2, 0, [0], "T", "a", "b"]"#,
            r#"[1, 0, [0], "T", "a", "b"]"#,
        );
        let got = verify(&cert);
        assert!(matches!(got, Err(CertError::DuplicateFact(1))), "{got:?}");
    }

    #[test]
    fn versions_other_than_one_are_refused() {
        let cert = tc_cert().replace(r#""v": 1"#, r#""v": 2"#);
        assert!(matches!(
            verify(&cert),
            Err(CertError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn missing_snapshot_is_unbound_not_invalid() {
        let cert = tc_cert().replace(r#""snapshot": {"lsn": 3, "base": 2},"#, "");
        let v = verify(&cert).expect("verifies without a binding");
        assert_eq!(v.snapshot, None);
    }

    #[test]
    fn ground_rule_constants_must_match() {
        let cert = r#"{
          "v": 1, "goal": "g",
          "rules": [{"head": ["g", 0], "body": [["E", "a", 0]], "neq": []}],
          "base": [[0, "E", "b", "c"]],
          "steps": [[1, 0, [0], "g", "c"]],
          "answers": [[1, "c"]]
        }"#;
        assert!(matches!(
            verify(cert),
            Err(CertError::PremiseMismatch {
                step: 1,
                atom: 0,
                ..
            })
        ));
    }
}
