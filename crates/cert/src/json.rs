//! A minimal JSON reader for certificates.
//!
//! The verifier cannot depend on the engine's JSON module — the prover
//! and the checker must not share code, or a bug in the shared half
//! escapes the audit. This parser is deliberately small: it accepts
//! exactly the JSON subset certificates use (objects, arrays, strings
//! with `\uXXXX` escapes, integers, `true`/`false`/`null`) and rejects
//! everything else with a position-carrying error.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Certificates only use unsigned integers; the parser
    /// still accepts general JSON numbers and the accessors reject
    /// non-integers.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_certificate_shapes() {
        let v = parse(r#"{"v": 1, "base": [[0, "R", "a", "b"]], "ok": true}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["v"].as_u64(), Some(1));
        let base = obj["base"].as_arr().unwrap();
        let fact = base[0].as_arr().unwrap();
        assert_eq!(fact[0].as_u64(), Some(0));
        assert_eq!(fact[1].as_str(), Some("R"));
        assert_eq!(obj["ok"], Value::Bool(true));
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse(r#""a\né😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\né😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse(r#""\ud800""#).is_err());
        assert!(parse("1.5e").is_err());
    }

    #[test]
    fn integer_accessor_rejects_fractions() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
