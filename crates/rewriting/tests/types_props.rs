//! Property test: the bitset AC-3 kernel (`instance_types`) computes
//! exactly the same per-instance fixpoint as the retained reference
//! implementation (`instance_types_reference`) — surviving sets,
//! inconsistency verdict and certain answers — on random ontologies
//! drawn from the full supported fragment, counting thresholds,
//! functionality and role hierarchies included, over random instances
//! with self-loops.

use gomq_core::{Fact, Instance, Vocab};
use gomq_dl::concept::{Concept, Role};
use gomq_dl::translate::to_gf;
use gomq_dl::DlOntology;
use gomq_rewriting::ElementTypeSystem;
use proptest::prelude::*;

/// One random axiom over 3 concept names and 2 roles. The pool spans
/// every kernel code path: plain boolean constraints, ∃/∀ propagation in
/// both orientations, qualified counting (`AtMost`), exact cardinalities
/// (which compile to ∃≥n plus ¬∃≥n+1), functionality (a counting
/// constraint), and role hierarchies (possibly inverted).
#[derive(Clone, Debug)]
enum Ax {
    Sub(u8, u8),
    NegSub(u8, u8),
    Exists(u8, bool, u8),
    Forall(u8, bool, u8),
    AtMost1(u8, bool, u8),
    Exactly2(u8, bool),
    Functional(bool),
    RoleSub(bool, bool),
}

/// `(axioms, edges, labels)`: edges are `(src, dst, role)` over 4
/// elements — `src == dst` self-loops included on purpose — and labels
/// assign concept names to elements.
type Case = (Vec<Ax>, Vec<(usize, usize, bool)>, Vec<(usize, u8)>);

fn strategy() -> impl Strategy<Value = Case> {
    (
        prop::collection::vec(
            prop_oneof![
                (0u8..3, 0u8..3).prop_map(|(a, b)| Ax::Sub(a, b)),
                (0u8..3, 0u8..3).prop_map(|(a, b)| Ax::NegSub(a, b)),
                (0u8..3, any::<bool>(), 0u8..3).prop_map(|(a, r, b)| Ax::Exists(a, r, b)),
                (0u8..3, any::<bool>(), 0u8..3).prop_map(|(a, r, b)| Ax::Forall(a, r, b)),
                (0u8..3, any::<bool>(), 0u8..3).prop_map(|(a, r, b)| Ax::AtMost1(a, r, b)),
                (0u8..3, any::<bool>()).prop_map(|(a, r)| Ax::Exactly2(a, r)),
                any::<bool>().prop_map(Ax::Functional),
                (any::<bool>(), any::<bool>()).prop_map(|(f, i)| Ax::RoleSub(f, i)),
            ],
            1..5,
        ),
        prop::collection::vec((0usize..4, 0usize..4, any::<bool>()), 0..7),
        prop::collection::vec((0usize..4, 0u8..3), 0..5),
    )
}

fn realize(
    axioms: &[Ax],
    edges: &[(usize, usize, bool)],
    labels: &[(usize, u8)],
    v: &mut Vocab,
) -> (gomq_logic::GfOntology, Instance, Vec<gomq_core::RelId>) {
    let names: Vec<_> = (0..3).map(|i| v.rel(&format!("P{i}"), 1)).collect();
    let roles = [v.rel("Ra", 2), v.rel("Rb", 2)];
    let role = |fwd: bool| Role::new(roles[usize::from(fwd)]);
    let mut dl = DlOntology::new();
    for ax in axioms {
        match *ax {
            Ax::Sub(a, b) => {
                dl.sub(
                    Concept::Name(names[a as usize]),
                    Concept::Name(names[b as usize]),
                );
            }
            Ax::NegSub(a, b) => {
                dl.sub(
                    Concept::Name(names[a as usize]),
                    Concept::Name(names[b as usize]).neg(),
                );
            }
            Ax::Exists(a, r, b) => {
                dl.sub(
                    Concept::Name(names[a as usize]),
                    Concept::Exists(role(r), Box::new(Concept::Name(names[b as usize]))),
                );
            }
            Ax::Forall(a, r, b) => {
                dl.sub(
                    Concept::Name(names[a as usize]),
                    Concept::Forall(role(r), Box::new(Concept::Name(names[b as usize]))),
                );
            }
            Ax::AtMost1(a, r, b) => {
                dl.sub(
                    Concept::Name(names[a as usize]),
                    Concept::AtMost(1, role(r), Box::new(Concept::Name(names[b as usize]))),
                );
            }
            Ax::Exactly2(a, r) => {
                dl.sub(
                    Concept::Name(names[a as usize]),
                    Concept::exactly(2, role(r), Concept::Top),
                );
            }
            Ax::Functional(r) => {
                dl.functional(role(r));
            }
            Ax::RoleSub(sub_fwd, inverted) => {
                let sup = if inverted {
                    Role::inv(roles[usize::from(!sub_fwd)])
                } else {
                    Role::new(roles[usize::from(!sub_fwd)])
                };
                dl.role_sub(role(sub_fwd), sup);
            }
        }
    }
    let consts: Vec<_> = (0..4).map(|i| v.constant(&format!("e{i}"))).collect();
    let mut d = Instance::new();
    for &(a, b, r) in edges {
        d.insert(Fact::consts(roles[usize::from(r)], &[consts[a], consts[b]]));
    }
    for &(a, n) in labels {
        d.insert(Fact::consts(names[n as usize], &[consts[a]]));
    }
    (to_gf(&dl), d, names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitset_kernel_matches_reference((axioms, edges, labels) in strategy()) {
        let mut v = Vocab::new();
        let (o, d, names) = realize(&axioms, &edges, &labels, &mut v);
        let Ok(sys) = ElementTypeSystem::build(&o, &v) else {
            // Outside the fragment (shouldn't happen for this pool).
            return Ok(());
        };
        let fast = sys.instance_types(&d);
        let slow = sys.instance_types_reference(&d);
        prop_assert_eq!(fast.inconsistent, slow.inconsistent, "inconsistency verdict");
        prop_assert_eq!(&fast.surviving, &slow.surviving, "surviving type sets");
        for &rel in &names {
            prop_assert_eq!(
                sys.certain_unary(&d, rel),
                sys.certain_unary_reference(&d, rel),
                "certain answers for {:?}", rel
            );
        }
    }
}
