//! Per-ontology classification reports (the executable Figure 1).

use crate::types::ElementTypeSystem;
use gomq_core::{Instance, Ucq, Vocab};
use gomq_logic::fragment::{best_fragment, best_zone, classify, Fragment, FragmentFeatures, Zone};
use gomq_logic::GfOntology;
use gomq_reasoning::materialize::{atomic_candidates, find_disjunction_witness};
use gomq_reasoning::CertainEngine;
use std::fmt;

/// A classification report for an ontology.
#[derive(Clone, Debug)]
pub struct OntologyReport {
    /// Extracted syntactic features.
    pub features: FragmentFeatures,
    /// All containing Figure-1 fragments, tightest first.
    pub fragments: Vec<Fragment>,
    /// The zone verdict derived from Figure 1.
    pub zone: Zone,
    /// Whether the element-type rewriter supports the ontology (a
    /// sufficient condition for emitting a Datalog rewriting).
    pub type_rewritable: bool,
    /// Witness instances on which the disjunction property failed, if a
    /// probe was run and found one (implies coNP-hardness by Theorem 3
    /// when the ontology is invariant under disjoint unions).
    pub non_materializability_witness: Option<String>,
}

impl fmt::Display for OntologyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone: {}", self.zone)?;
        if let Some(fr) = self.fragments.first() {
            write!(f, "; fragment: {fr}")?;
        }
        write!(
            f,
            "; depth {}; {} vars",
            self.features.depth, self.features.max_vars
        )?;
        if self.type_rewritable {
            write!(f, "; element-type rewritable")?;
        }
        if self.non_materializability_witness.is_some() {
            write!(f, "; NON-MATERIALIZABLE (witness found)")?;
        }
        Ok(())
    }
}

/// Classifies an ontology: Figure-1 fragments and zone, rewriter support,
/// and (optionally) materializability probes on the given instances.
pub fn classify_ontology(
    o: &GfOntology,
    probe_instances: &[Instance],
    engine: &CertainEngine,
    vocab: &mut Vocab,
) -> OntologyReport {
    let features = FragmentFeatures::of(o, vocab);
    let fragments = classify(o, vocab);
    let zone = best_zone(o, vocab);
    let type_rewritable = ElementTypeSystem::build(o, vocab).is_ok();
    let mut witness = None;
    for d in probe_instances {
        let candidates: Vec<(Ucq, Vec<gomq_core::Term>)> = atomic_candidates(o, d, vocab);
        if let Some(w) = find_disjunction_witness(o, d, &candidates, engine, vocab) {
            witness = Some(format!(
                "disjunction of {} open atomic queries certain on a {}-fact instance",
                w.queries.len(),
                d.len()
            ));
            break;
        }
    }
    OntologyReport {
        features,
        fragments,
        zone,
        type_rewritable,
        non_materializability_witness: witness,
    }
}

/// Convenience re-export: the tightest fragment of an ontology.
pub fn fragment_of(o: &GfOntology, vocab: &Vocab) -> Option<Fragment> {
    best_fragment(o, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::Fact;
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;

    #[test]
    fn horn_ontology_report() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a),
            Concept::Exists(r, Box::new(Concept::Name(b))),
        );
        let o = to_gf(&dl);
        let ca = v.constant("a");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[ca]));
        let engine = CertainEngine::new(1);
        let report = classify_ontology(&o, &[d], &engine, &mut v);
        assert_eq!(report.zone, Zone::Dichotomy);
        assert!(report.type_rewritable);
        assert!(report.non_materializability_witness.is_none());
        let s = format!("{report}");
        assert!(s.contains("Dichotomy"));
    }

    #[test]
    fn disjunctive_ontology_flagged() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c = v.rel("C", 1);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a),
            Concept::Or(vec![Concept::Name(b), Concept::Name(c)]),
        );
        let o = to_gf(&dl);
        let ca = v.constant("a");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[ca]));
        let engine = CertainEngine::new(1);
        let report = classify_ontology(&o, &[d], &engine, &mut v);
        // Depth-0 disjunctive ALC: in a dichotomy fragment, and the probe
        // finds the non-materializability witness → coNP-hard side.
        assert_eq!(report.zone, Zone::Dichotomy);
        assert!(report.non_materializability_witness.is_some());
    }
}
