//! Emitting the type-elimination computation as a Datalog program
//! (the shape of the paper's Theorem-5 rewriting).
//!
//! For each globally realizable type `θ` the program has a unary IDB
//! predicate `elim_θ` ("θ is eliminated here"); a type is eliminated at an
//! element when a unary fact contradicts it, or when along some edge every
//! compatible partner type has already been eliminated. The goal fires at
//! `x` when every type *not* entailing the query atom is eliminated at
//! `x`, or when some element has all types eliminated (inconsistency, the
//! paper's `P_∅` rule).

use crate::types::ElementTypeSystem;
use gomq_core::{RelId, Vocab};
use gomq_datalog::{DAtom, DTerm, Literal, Program, Rule};

/// Emits the Datalog rewriting of the atomic query `query(x)` w.r.t. the
/// compiled ontology. Fresh IDB relation names `_elimN`, `_dom` and
/// `_goal` are interned into `vocab`.
pub fn emit_datalog(sys: &ElementTypeSystem, query: RelId, vocab: &mut Vocab) -> Program {
    let n = sys.num_types();
    let fresh = |vocab: &mut Vocab, base: &str, arity: usize| -> RelId {
        let mut i = 0usize;
        loop {
            let name = if i == 0 {
                base.to_owned()
            } else {
                format!("{base}_{i}")
            };
            if vocab.find_rel(&name).is_none() {
                return vocab.rel(&name, arity);
            }
            i += 1;
        }
    };
    let elim: Vec<RelId> = (0..n)
        .map(|t| fresh(vocab, &format!("_elim{t}"), 1))
        .collect();
    let dom = fresh(vocab, "_dom", 1);
    let goal = fresh(vocab, "_goal", 1);
    let mut rules: Vec<Rule> = Vec::new();

    // Active-domain rules.
    for &u in sys.unary_rels() {
        rules.push(Rule::new(
            DAtom::vars(dom, &[0]),
            vec![Literal::Pos(DAtom::vars(u, &[0]))],
        ));
    }
    for &r in sys.binary_rels() {
        rules.push(Rule::new(
            DAtom::vars(dom, &[0]),
            vec![Literal::Pos(DAtom::vars(r, &[0, 1]))],
        ));
        rules.push(Rule::new(
            DAtom::vars(dom, &[1]),
            vec![Literal::Pos(DAtom::vars(r, &[0, 1]))],
        ));
    }

    // Initialization: a unary fact eliminates every type that refutes it.
    for (ti, _) in sys.types().iter().enumerate() {
        for &u in sys.unary_rels() {
            if sys.type_has_unary(ti, u) == Some(false) {
                rules.push(Rule::new(
                    DAtom::vars(elim[ti], &[0]),
                    vec![Literal::Pos(DAtom::vars(u, &[0]))],
                ));
            }
        }
    }

    // Edge propagation. With distinctness-restricted quantifiers the
    // proper-edge rules must exclude self-loops via built-in inequality —
    // this is exactly where the rewriting becomes Datalog≠ rather than
    // plain Datalog (Theorem 5's `≠` for fragments with equality).
    let needs_neq = sys.uses_distinctness();
    for &r in sys.binary_rels() {
        for (ti, t) in sys.types().iter().enumerate() {
            // Self-loops constrain a type against itself.
            if !sys.compat_self_loop(t, r) {
                rules.push(Rule::new(
                    DAtom::vars(elim[ti], &[0]),
                    vec![Literal::Pos(DAtom::vars(r, &[0, 0]))],
                ));
            }
            // Forward: θ at x dies when all compatible successor types are
            // eliminated at y.
            let partners: Vec<usize> = sys
                .types()
                .iter()
                .enumerate()
                .filter(|(_, w)| sys.compat_edge(t, w, r))
                .map(|(j, _)| j)
                .collect();
            let mut body = vec![Literal::Pos(DAtom::vars(r, &[0, 1]))];
            if needs_neq {
                body.push(Literal::Neq(DTerm::Var(0), DTerm::Var(1)));
            }
            body.extend(
                partners
                    .iter()
                    .map(|&j| Literal::Pos(DAtom::vars(elim[j], &[1]))),
            );
            rules.push(Rule::new(DAtom::vars(elim[ti], &[0]), body));
            // Backward: θ at y dies when all compatible predecessor types
            // are eliminated at x.
            let partners_b: Vec<usize> = sys
                .types()
                .iter()
                .enumerate()
                .filter(|(_, w)| sys.compat_edge(w, t, r))
                .map(|(j, _)| j)
                .collect();
            let mut body = vec![Literal::Pos(DAtom::vars(r, &[0, 1]))];
            if needs_neq {
                body.push(Literal::Neq(DTerm::Var(0), DTerm::Var(1)));
            }
            body.extend(
                partners_b
                    .iter()
                    .map(|&j| Literal::Pos(DAtom::vars(elim[j], &[0]))),
            );
            rules.push(Rule::new(DAtom::vars(elim[ti], &[1]), body));
        }
    }

    // Counting rules (uGC⁻₂(1,=)): a type with a FALSE `∃≥n` dies once n
    // distinct witnesses are forced. These rules are inherently Datalog≠.
    // With role hierarchies, the counted relation's edges are the union of
    // its sub-roles' edges, materialized into an auxiliary `_sedgeN` IDB.
    let mut sedge_cache: std::collections::BTreeMap<RelId, RelId> =
        std::collections::BTreeMap::new();
    let mut counting_rel = |rel: RelId, rules: &mut Vec<Rule>, vocab: &mut Vocab| -> RelId {
        let subs = sys.sub_rels(rel);
        if subs.as_slice() == [(rel, false)] {
            return rel;
        }
        if let Some(&aux) = sedge_cache.get(&rel) {
            return aux;
        }
        let aux = {
            let mut i = 0usize;
            loop {
                let name = if i == 0 {
                    format!("_sedge{}", rel.0)
                } else {
                    format!("_sedge{}_{i}", rel.0)
                };
                if vocab.find_rel(&name).is_none() {
                    break vocab.rel(&name, 2);
                }
                i += 1;
            }
        };
        for (r2, flipped) in subs {
            let head_args: &[u32] = if flipped { &[1, 0] } else { &[0, 1] };
            rules.push(Rule::new(
                DAtom::vars(aux, head_args),
                vec![Literal::Pos(DAtom::vars(r2, &[0, 1]))],
            ));
        }
        sedge_cache.insert(rel, aux);
        aux
    };
    for (ti, base_rel, fwd, count, loop_witness, _distinct, avoiders) in sys.counting_constraints()
    {
        let rel = counting_rel(base_rel, &mut rules, vocab);
        let n = count as usize;
        let mut variants = vec![n];
        if loop_witness {
            variants.push(n - 1); // the self-loop supplies one witness
        }
        for k in variants {
            let mut body: Vec<Literal> = Vec::new();
            if k < n {
                body.push(Literal::Pos(DAtom::vars(rel, &[0, 0])));
            }
            for i in 1..=k as u32 {
                let args = if fwd { [0, i] } else { [i, 0] };
                body.push(Literal::Pos(DAtom::vars(rel, &args)));
                body.push(Literal::Neq(DTerm::Var(0), DTerm::Var(i)));
            }
            for i in 1..=k as u32 {
                for j in (i + 1)..=k as u32 {
                    body.push(Literal::Neq(DTerm::Var(i), DTerm::Var(j)));
                }
            }
            for i in 1..=k as u32 {
                for &tj in &avoiders {
                    body.push(Literal::Pos(DAtom {
                        rel: elim[tj],
                        args: vec![DTerm::Var(i)],
                    }));
                }
            }
            rules.push(Rule::new(DAtom::vars(elim[ti], &[0]), body));
        }
    }

    // Goal. A query relation inside the closure is certain where every
    // type refuting it is eliminated; a relation outside the ontology's
    // closure is unconstrained, so only its asserted facts are certain.
    if sys.unary_rels().contains(&query) {
        let bad: Vec<usize> = (0..n)
            .filter(|&ti| sys.type_has_unary(ti, query) != Some(true))
            .collect();
        let mut body = vec![Literal::Pos(DAtom::vars(dom, &[0]))];
        body.extend(
            bad.iter()
                .map(|&ti| Literal::Pos(DAtom::vars(elim[ti], &[0]))),
        );
        rules.push(Rule::new(DAtom::vars(goal, &[0]), body));
    } else {
        rules.push(Rule::new(
            DAtom::vars(goal, &[0]),
            vec![Literal::Pos(DAtom::vars(query, &[0]))],
        ));
    }

    // Inconsistency (the P_∅ rule): some element has every type
    // eliminated.
    let mut body = vec![Literal::Pos(DAtom::vars(dom, &[0]))];
    if n > 0 {
        body.extend((0..n).map(|ti| Literal::Pos(DAtom::vars(elim[ti], &[1]))));
    }
    rules.push(Rule::new(DAtom::vars(goal, &[0]), body));

    Program::new(rules, goal).optimize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::{Fact, Instance, Term};
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;
    use gomq_logic::GfOntology;

    fn simple(v: &mut Vocab) -> GfOntology {
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c = v.rel("C", 1);
        let r = Role::new(v.rel("R", 2));
        let mut o = DlOntology::new();
        o.sub(
            Concept::Name(a),
            Concept::Exists(r, Box::new(Concept::Name(b))),
        );
        o.sub(Concept::Name(b), Concept::Name(c));
        to_gf(&o)
    }

    #[test]
    fn datalog_agrees_with_type_elimination() {
        let mut v = Vocab::new();
        let o = simple(&mut v);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let c_rel = v.rel("C", 1);
        let program = emit_datalog(&sys, c_rel, &mut v);
        // D = chain with B at the end.
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let r = v.rel("R", 2);
        let ca = v.constant("a");
        let cb = v.constant("b");
        let cc = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        d.insert(Fact::consts(r, &[ca, cb]));
        d.insert(Fact::consts(b_rel, &[cb]));
        d.insert(Fact::consts(r, &[cb, cc]));
        let from_types = sys.certain_unary(&d, c_rel);
        let from_datalog: std::collections::BTreeSet<Term> =
            program.eval(&d).into_iter().map(|tuple| tuple[0]).collect();
        assert_eq!(from_types, from_datalog);
        assert!(from_datalog.contains(&Term::Const(cb)));
    }

    #[test]
    fn inconsistency_rule_fires_everywhere() {
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let mut dl = DlOntology::new();
        dl.sub(Concept::Name(a_rel), Concept::Name(b_rel));
        dl.sub(Concept::Name(a_rel), Concept::Name(b_rel).neg());
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let n_rel = v.rel("N", 1);
        let program = emit_datalog(&sys, n_rel, &mut v);
        let ca = v.constant("a");
        let r = v.rel("R2x", 2);
        let cb = v.constant("b");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        d.insert(Fact::consts(r, &[ca, cb]));
        // N is a fresh relation, but inconsistency makes N(x) certain at
        // every domain element the program can see.
        let ans = program.eval(&d);
        assert!(ans.contains(&vec![Term::Const(ca)]));
    }

    #[test]
    fn distinctness_emits_datalog_neq() {
        use gomq_logic::{Formula, Guard, LVar, UgfSentence};
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let r = v.rel("R", 2);
        let (x, y) = (LVar(0), LVar(1));
        // ∀x(A(x) → ¬∃≠y R(x,y)).
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(a_rel, x),
                Formula::Not(Box::new(Formula::Exists {
                    qvars: vec![y],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![x, y],
                    },
                    body: Box::new(Formula::Not(Box::new(Formula::Eq(x, y)))),
                })),
            ),
            vec!["x".into(), "y".into()],
        )]);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let n_rel = v.rel("Nq", 1);
        let program = emit_datalog(&sys, n_rel, &mut v);
        assert!(!program.is_pure_datalog(), "distinctness needs ≠");
        // Self-loop: consistent, goal silent.
        let ca = v.constant("d0");
        let cb = v.constant("d1");
        let mut d1 = Instance::new();
        d1.insert(Fact::consts(a_rel, &[ca]));
        d1.insert(Fact::consts(r, &[ca, ca]));
        assert!(program.eval(&d1).is_empty());
        // Proper edge: inconsistent, goal fires everywhere.
        let mut d2 = Instance::new();
        d2.insert(Fact::consts(a_rel, &[ca]));
        d2.insert(Fact::consts(r, &[ca, cb]));
        let ans = program.eval(&d2);
        assert!(ans.contains(&vec![Term::Const(ca)]));
        assert!(ans.contains(&vec![Term::Const(cb)]));
    }

    #[test]
    fn loop_rule_matches_type_elimination() {
        // The self-loop regression: A ⊑ ∀R.B on {A(a), R(a,a)}.
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a_rel),
            Concept::Forall(r, Box::new(Concept::Name(b_rel))),
        );
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let program = emit_datalog(&sys, b_rel, &mut v);
        let rr = v.rel("R", 2);
        let ca = v.constant("lp");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        d.insert(Fact::consts(rr, &[ca, ca]));
        let ans = program.eval(&d);
        assert!(ans.contains(&vec![Term::Const(ca)]), "loop forces B(a)");
    }

    #[test]
    fn counting_rules_detect_overflow() {
        // Hand ⊑ (= 2 hasFinger ⊤): a hand with three explicit fingers is
        // inconsistent, and the counting Datalog≠ rules must see it.
        let mut v = Vocab::new();
        let hand = v.rel("Hand", 1);
        let hf_rel = v.rel("hasFinger", 2);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(hand),
            Concept::exactly(2, Role::new(hf_rel), Concept::Top),
        );
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let nq = v.rel("NQc", 1);
        let program = emit_datalog(&sys, nq, &mut v);
        assert!(!program.is_pure_datalog(), "counting needs ≠");
        let h = v.constant("hq");
        let fingers: Vec<_> = (0..3).map(|i| v.constant(&format!("fq{i}"))).collect();
        let mut d2 = Instance::new();
        d2.insert(Fact::consts(hand, &[h]));
        for &f in &fingers[..2] {
            d2.insert(Fact::consts(hf_rel, &[h, f]));
        }
        assert!(program.eval(&d2).is_empty(), "two fingers are fine");
        let mut d3 = d2.clone();
        d3.insert(Fact::consts(hf_rel, &[h, fingers[2]]));
        let ans = program.eval(&d3);
        assert!(
            ans.contains(&vec![Term::Const(h)]),
            "three fingers overflow (≤ 2): inconsistency fires the goal"
        );
        // Agreement with the type-elimination route on both instances.
        for d in [&d2, &d3] {
            let from_types = sys.certain_unary(d, nq);
            let from_program: std::collections::BTreeSet<Term> =
                program.eval(d).into_iter().map(|t| t[0]).collect();
            assert_eq!(from_types, from_program);
        }
    }

    #[test]
    fn hierarchy_counting_uses_sedge_rules() {
        // func(worksOn), manages ⊑ worksOn: the counting rules must count
        // manages-edges too, via the auxiliary _sedge relation.
        let mut v = Vocab::new();
        let works = v.rel("worksOn", 2);
        let manages = v.rel("manages", 2);
        let mut dl = DlOntology::new();
        dl.functional(Role::new(works));
        dl.role_sub(Role::new(manages), Role::new(works));
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let nq = v.rel("NQh", 1);
        let program = emit_datalog(&sys, nq, &mut v);
        let a = v.constant("h0");
        let p1 = v.constant("h1");
        let p2 = v.constant("h2");
        let mut bad = Instance::new();
        bad.insert(Fact::consts(manages, &[a, p1]));
        bad.insert(Fact::consts(works, &[a, p2]));
        let ans = program.eval(&bad);
        assert!(
            ans.contains(&vec![Term::Const(a)]),
            "mixed-role overflow detected by the program"
        );
        let mut ok = Instance::new();
        ok.insert(Fact::consts(manages, &[a, p1]));
        ok.insert(Fact::consts(works, &[a, p1]));
        assert!(program.eval(&ok).is_empty());
    }

    #[test]
    fn program_is_pure_datalog() {
        let mut v = Vocab::new();
        let o = simple(&mut v);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let c_rel = v.rel("C", 1);
        let program = emit_datalog(&sys, c_rel, &mut v);
        assert!(program.is_pure_datalog());
        assert!(!program.is_empty());
    }

    /// The emitted Theorem-5 program must be *certifiable*: a traced
    /// fixpoint over it records, for every derived fact, a witness that
    /// re-derives the fact by pure substitution — premises aligned with
    /// the rule's positive body atoms, one consistent variable binding
    /// across body and head, `≠` side conditions ground to distinct
    /// constants, and every premise id strictly below the derived id
    /// (so the proof is checkable in one forward pass). This is the
    /// contract `gomq-cert` verifies downstream.
    #[test]
    fn traced_fixpoint_witnesses_replay_by_substitution() {
        use gomq_core::{FactId, IndexedInstance};
        use gomq_datalog::{fixpoint_traced, Budget, DTerm, Literal};

        let mut v = Vocab::new();
        let o = simple(&mut v);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let c_rel = v.rel("C", 1);
        let program = emit_datalog(&sys, c_rel, &mut v);
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let r = v.rel("R", 2);
        let ca = v.constant("a");
        let cb = v.constant("b");
        let cc = v.constant("c");
        let mut d = IndexedInstance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        d.insert(Fact::consts(r, &[ca, cb]));
        d.insert(Fact::consts(b_rel, &[cb]));
        d.insert(Fact::consts(r, &[cb, cc]));
        let base_len = d.len() as u32;

        let (total, derivs, _) =
            fixpoint_traced(&program.rules, &d, &Budget::UNLIMITED).expect("unlimited");
        assert!(total.len() as u32 > base_len, "something was derived");

        // Unifies a rule term against a ground term under `binding`.
        let mut checked = 0usize;
        for id in base_len..total.len() as u32 {
            let witness = derivs[id as usize]
                .as_ref()
                .unwrap_or_else(|| panic!("derived fact {id} has no witness"));
            let rule = &program.rules[witness.rule as usize];
            let atoms: Vec<_> = rule.positive_atoms().collect();
            assert_eq!(
                witness.premises.len(),
                atoms.len(),
                "one premise per positive body atom"
            );
            let mut binding: std::collections::HashMap<u32, Term> = Default::default();
            let unify =
                |t: &DTerm, ground: Term, binding: &mut std::collections::HashMap<u32, Term>| {
                    match t {
                        DTerm::Ground(g) => {
                            assert_eq!(*g, ground, "ground term mismatch at fact {id}")
                        }
                        DTerm::Var(x) => {
                            let prev = binding.insert(*x, ground);
                            assert!(
                                prev.is_none_or(|p| p == ground),
                                "inconsistent binding for variable {x} at fact {id}"
                            );
                        }
                    }
                };
            for (atom, &p) in atoms.iter().zip(&witness.premises) {
                assert!(p < id, "premise {p} of fact {id} is not earlier");
                assert_eq!(total.store().rel(FactId(p)), atom.rel, "premise relation");
                for (t, &g) in atom.args.iter().zip(total.store().args(FactId(p))) {
                    unify(t, g, &mut binding);
                }
            }
            for (t, &g) in rule.head.args.iter().zip(total.store().args(FactId(id))) {
                unify(t, g, &mut binding);
            }
            assert_eq!(rule.head.rel, total.store().rel(FactId(id)));
            let ground_of = |t: &DTerm, binding: &std::collections::HashMap<u32, Term>| match t {
                DTerm::Ground(g) => *g,
                DTerm::Var(x) => *binding.get(x).expect("≠ variable bound"),
            };
            for lit in &rule.body {
                if let Literal::Neq(x, y) = lit {
                    assert_ne!(
                        ground_of(x, &binding),
                        ground_of(y, &binding),
                        "≠ side condition violated at fact {id}"
                    );
                }
            }
            checked += 1;
        }
        assert!(checked > 0);
    }
}
