//! Canonical OMQ keys: a stable textual form and 64-bit hash for an
//! ontology-mediated query `(O, q)`.
//!
//! A serving layer wants to compile an OMQ *once* and reuse the plan for
//! every later request that poses the same OMQ — even when the requests
//! arrive as separately parsed texts whose sentences are ordered
//! differently or whose vocabularies interned symbols in a different
//! order. The canonical form therefore renders every sentence with
//! *names* (not interned ids), sorts the renderings, and appends the
//! sorted functionality/transitivity declarations and the query
//! relation's name. Two OMQs with equal canonical text are guaranteed to
//! be the same query up to sentence order; the 64-bit FNV-1a hash of
//! that text is the plan-cache key used by `gomq-engine`.

use gomq_core::{RelId, Vocab};
use gomq_logic::GfOntology;

/// The canonical textual form of the OMQ `(o, query)`.
///
/// Sentence renderings are sorted, so logically identical ontologies
/// built in different orders canonicalize identically. Symbol *names*
/// are used throughout, so the form is independent of interning order.
pub fn canonical_omq_text(o: &GfOntology, query: RelId, vocab: &Vocab) -> String {
    let mut sentences: Vec<String> = o
        .ugf_sentences
        .iter()
        .map(|s| format!("{}", s.to_formula().display_named(&s.var_names, vocab)))
        .chain(
            o.other_sentences
                .iter()
                .map(|s| format!("{}", s.formula.display_named(&s.var_names, vocab))),
        )
        .collect();
    sentences.sort();
    let named_rels = |rels: &std::collections::BTreeSet<RelId>| -> Vec<String> {
        let mut names: Vec<String> = rels.iter().map(|&r| vocab.rel_name(r).to_owned()).collect();
        names.sort();
        names
    };
    let mut out = String::new();
    for s in &sentences {
        out.push_str(s);
        out.push('\n');
    }
    out.push_str(&format!("func: {}\n", named_rels(&o.functional).join(",")));
    out.push_str(&format!(
        "ifunc: {}\n",
        named_rels(&o.inverse_functional).join(",")
    ));
    out.push_str(&format!("trans: {}\n", named_rels(&o.transitive).join(",")));
    out.push_str(&format!("query: {}\n", vocab.rel_name(query)));
    out
}

/// 64-bit FNV-1a hash of [`canonical_omq_text`] — the plan-cache key.
///
/// FNV-1a is implemented inline (rather than using
/// `std::hash::DefaultHasher`) so the key is stable across Rust
/// releases and can be logged, persisted or compared between processes.
pub fn canonical_omq_hash(o: &GfOntology, query: RelId, vocab: &Vocab) -> u64 {
    fnv1a(canonical_omq_text(o, query, vocab).as_bytes())
}

/// 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::Vocab;
    use gomq_logic::{Formula, LVar, UgfSentence};

    /// `∀x(A(x) → B(x))` and `∀x(B(x) → C(x))` style sentences.
    fn sub_sentence(a: RelId, b: RelId) -> UgfSentence {
        let x = LVar(0);
        UgfSentence::forall_one(
            x,
            Formula::implies(Formula::unary(a, x), Formula::unary(b, x)),
            vec!["x".to_owned()],
        )
    }

    #[test]
    fn sentence_order_does_not_change_the_key() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c = v.rel("C", 1);
        let mut o1 = GfOntology::new();
        o1.push(sub_sentence(a, b));
        o1.push(sub_sentence(b, c));
        let mut o2 = GfOntology::new();
        o2.push(sub_sentence(b, c));
        o2.push(sub_sentence(a, b));
        assert_eq!(
            canonical_omq_hash(&o1, c, &v),
            canonical_omq_hash(&o2, c, &v)
        );
        assert_eq!(
            canonical_omq_text(&o1, c, &v),
            canonical_omq_text(&o2, c, &v)
        );
    }

    #[test]
    fn interning_order_does_not_change_the_key() {
        // Same ontology, symbols interned in opposite orders.
        let mut v1 = Vocab::new();
        let a1 = v1.rel("A", 1);
        let b1 = v1.rel("B", 1);
        let mut o1 = GfOntology::new();
        o1.push(sub_sentence(a1, b1));

        let mut v2 = Vocab::new();
        let b2 = v2.rel("B", 1);
        let a2 = v2.rel("A", 1);
        let mut o2 = GfOntology::new();
        o2.push(sub_sentence(a2, b2));

        assert_eq!(
            canonical_omq_hash(&o1, b1, &v1),
            canonical_omq_hash(&o2, b2, &v2)
        );
    }

    #[test]
    fn query_and_declarations_distinguish_omqs() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let r = v.rel("R", 2);
        let mut o = GfOntology::new();
        o.push(sub_sentence(a, b));
        let base = canonical_omq_hash(&o, b, &v);
        // Different query relation → different key.
        assert_ne!(base, canonical_omq_hash(&o, a, &v));
        // Added functionality declaration → different key.
        let mut o2 = o.clone();
        o2.functional.insert(r);
        assert_ne!(base, canonical_omq_hash(&o2, b, &v));
    }
}
