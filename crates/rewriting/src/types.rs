//! Element types and type elimination for ∀x-guarded uGF₂(1) ontologies.
//!
//! Supported ontologies are sets of sentences `∀x(x = x → φ(x))` where
//! `φ` is a boolean combination of unary atoms `A(x)` and guarded
//! quantifiers over a single inner variable,
//!
//! ```text
//! ∃y(R(x,y) ∧ ψ(y))   ∃y(R(y,x) ∧ ψ(y))   ∀y(R(x,y) → ψ(y))   ∀y(R(y,x) → ψ(y))
//! ```
//!
//! with `ψ` a boolean combination of unary atoms over `y`, plus
//!
//! * distinct-witness variants `∃y(R(x,y) ∧ x ≠ y ∧ ψ)` (uGF⁻(1,=)),
//! * guarded counting `∃≥n y(R(x,y) ∧ ψ)` (uGC⁻₂(1,=)),
//! * functionality declarations, compiled as `¬∃≥2` constraints —
//!
//! i.e. the guarded-fragment translations of ALCIQ(F) ontologies of
//! depth 1 (role hierarchies are the one ALCHIQ constructor left to the
//! general engine).
//!
//! An *element type* assigns a truth value to every unary relation and
//! every quantified subformula of the closure. The system computes:
//!
//! 1. the boolean-consistent types (every sentence body true),
//! 2. the globally realizable types `T*` by *type elimination*: a type
//!    whose existential requirements (a true `∃`, or a false `∀`) cannot
//!    be witnessed by surviving types is discarded,
//! 3. per-instance surviving type sets by arc-consistency propagation
//!    along the instance's edges — the computation performed by the
//!    paper's Theorem-5 Datalog≠ program on guarded tuples.
//!
//! For unravelling-tolerant ontologies the resulting certain answers to
//! atomic queries coincide with the model-theoretic ones; for
//! non-unravelling-tolerant ontologies (e.g. the paper's Example 6) they
//! may differ — which is precisely the paper's point, and is demonstrated
//! in the experiment suite.

use gomq_core::bitset::{self, BitMatrix};
use gomq_core::{Instance, RelId, Term, TermInterner, Vocab};
use gomq_logic::{Formula, GfOntology, Guard, LVar};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::OnceLock;
use std::time::Instant;

/// Rewriting failure: the ontology is outside the supported fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RewriteError(pub String);

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not rewritable by the element-type engine: {}", self.0)
    }
}

impl std::error::Error for RewriteError {}

/// Quantifier kind of a closure entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum QuantKind {
    /// `∃y(α ∧ ψ)`.
    Exists,
    /// `∀y(α → ψ)`.
    Forall,
}

/// Guard orientation of a closure entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Orientation {
    /// Guard `R(x,y)` — the witness is a successor.
    Fwd,
    /// Guard `R(y,x)` — the witness is a predecessor.
    Bwd,
}

/// A compiled boolean expression over closure indices.
#[derive(Clone, PartialEq, Eq, Debug)]
enum LocalExpr {
    True,
    False,
    Unary(usize),
    Quant(usize),
    Not(Box<LocalExpr>),
    And(Vec<LocalExpr>),
    Or(Vec<LocalExpr>),
}

impl LocalExpr {
    fn eval(&self, ty: &TypeBits) -> bool {
        match self {
            LocalExpr::True => true,
            LocalExpr::False => false,
            LocalExpr::Unary(i) => ty.unary[*i],
            LocalExpr::Quant(i) => ty.quant[*i],
            LocalExpr::Not(e) => !e.eval(ty),
            LocalExpr::And(es) => es.iter().all(|e| e.eval(ty)),
            LocalExpr::Or(es) => es.iter().any(|e| e.eval(ty)),
        }
    }
}

/// A quantified closure entry.
#[derive(Clone, PartialEq, Eq, Debug)]
struct QuantSub {
    kind: QuantKind,
    orient: Orientation,
    rel: RelId,
    /// Whether the quantifier is restricted to *distinct* witnesses: the
    /// `∃y(R(x,y) ∧ x ≠ y ∧ ψ)` / `∀y(R(x,y) → x = y ∨ ψ)` shapes of the
    /// uGF⁻(1,=) fragment. Distinct quantifiers ignore self-loops, and
    /// their presence turns the emitted program into genuine Datalog≠.
    distinct: bool,
    /// The counting threshold: 1 for plain `∃`/`∀`, `n` for the guarded
    /// counting quantifier `∃≥n` of uGC⁻₂(1,=). Thresholds ≥ 2 are
    /// enforced by a dedicated counting pass (and counting Datalog≠
    /// rules) instead of pairwise edge compatibility.
    count: u32,
    /// Inner formula over the witness, compiled against the unary closure.
    inner: LocalExpr,
}

/// A counting constraint handed to the Datalog emitter: `(type index,
/// relation, forward?, threshold, loop-witness?, distinct?, avoiders)`.
pub(crate) type CountingConstraint = (usize, RelId, bool, u32, bool, bool, Vec<usize>);

/// A truth assignment to the closure: one bit per unary relation and per
/// quantified subformula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeBits {
    unary: Vec<bool>,
    quant: Vec<bool>,
}

/// The compiled type system of an ontology.
pub struct ElementTypeSystem {
    unary_rels: Vec<RelId>,
    binary_rels: Vec<RelId>,
    quants: Vec<QuantSub>,
    /// Reflexive-transitive role-hierarchy closure: for each relation,
    /// its super-roles as `(relation, flipped orientation?)` pairs. An
    /// `R(a,b)` edge then also triggers the constraints of every
    /// super-role (the `H` of ALCHIQ).
    supers: BTreeMap<RelId, BTreeSet<(RelId, bool)>>,
    /// Globally realizable types `T*`.
    types: Vec<TypeBits>,
    /// The bit-parallel propagation kernel, built lazily on first use.
    /// Its compat matrices quantify over `types`, which is only final
    /// after `global_elimination` — hence the lazy cell rather than an
    /// eager field of `build`.
    kernel: OnceLock<TypeKernel>,
}

impl fmt::Debug for ElementTypeSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElementTypeSystem")
            .field("types", &self.types.len())
            .field("closure_bits", &self.closure_bits())
            .field("binary_rels", &self.binary_rels.len())
            .finish_non_exhaustive()
    }
}

/// Counters and timings of one bitset-kernel [`ElementTypeSystem::instance_types`] run.
///
/// `build_ns`/`compat_bits` describe the (cached, per-ontology) kernel;
/// the remaining fields describe the per-instance propagation.
#[derive(Clone, Copy, Debug, Default)]
pub struct TypeStats {
    /// Active-domain size of the instance.
    pub elements: usize,
    /// Binary facts visited (proper edges + self-loops).
    pub edges: usize,
    /// AC-3 arc revisions performed until fixpoint.
    pub arcs_revised: usize,
    /// Total set bits across the kernel's compatibility matrices.
    pub compat_bits: usize,
    /// Wall time to build the kernel (paid once per ontology).
    pub build_ns: u64,
    /// Wall time of this instance's propagation.
    pub propagate_ns: u64,
}

impl TypeStats {
    /// Folds another run's instance counters into these (kernel-level
    /// fields keep the maximum — they describe the same cached kernel).
    pub fn absorb(&mut self, other: &TypeStats) {
        self.elements += other.elements;
        self.edges += other.edges;
        self.arcs_revised += other.arcs_revised;
        self.compat_bits = self.compat_bits.max(other.compat_bits);
        self.build_ns = self.build_ns.max(other.build_ns);
        self.propagate_ns += other.propagate_ns;
    }
}

/// Per-instance elimination result.
#[derive(Clone, Debug)]
pub struct InstanceTypes {
    /// Indices into `T*` surviving at each element.
    pub surviving: BTreeMap<Term, BTreeSet<usize>>,
    /// Whether some element has no surviving type (inconsistency).
    pub inconsistent: bool,
    /// Propagation rounds until fixpoint.
    pub rounds: usize,
    /// Kernel counters (zeroed by the reference implementation).
    pub stats: TypeStats,
}

/// Shape statistics of an ontology's closure, from the compile phase
/// alone (no type enumeration).
#[derive(Clone, Copy, Debug)]
pub struct ClosureStats {
    /// Total closure bits (unary relations + quantified subformulas).
    pub bits: usize,
    /// Number of quantified subformulas.
    pub quants: usize,
    /// Role inclusions recognised.
    pub role_inclusions: usize,
    /// Whether counting thresholds ≥ 2 occur.
    pub counting: bool,
    /// Whether distinct-witness quantifiers occur.
    pub distinct: bool,
}

/// Checks whether the element-type machinery *applies* to the ontology
/// (the Theorem-13 shape: equality-guarded depth ≤ 1 over a binary
/// signature with counting/functionality/hierarchies) and reports the
/// closure size — without enumerating types, so it is cheap even for
/// ontologies whose closure exceeds the enumeration cap.
pub fn closure_stats(o: &GfOntology, vocab: &Vocab) -> Result<ClosureStats, RewriteError> {
    if !o.transitive.is_empty() {
        return Err(RewriteError("transitivity declarations".into()));
    }
    let mut unary_rels: Vec<RelId> = Vec::new();
    for r in o.sig() {
        match vocab.arity(r) {
            1 => unary_rels.push(r),
            2 => {}
            a => {
                return Err(RewriteError(format!(
                    "relation {} has arity {a} > 2",
                    vocab.rel_name(r)
                )))
            }
        }
    }
    if !o.other_sentences.is_empty() {
        return Err(RewriteError("non-uGF sentences".into()));
    }
    let mut builder = Builder {
        unary_rels,
        quants: Vec::new(),
    };
    let mut role_inclusions = 0usize;
    for s in &o.ugf_sentences {
        if detect_role_inclusion(s).is_some() {
            role_inclusions += 1;
            continue;
        }
        let [x] = s.qvars.as_slice() else {
            return Err(RewriteError(
                "sentence quantifies more than one variable".into(),
            ));
        };
        if !matches!(&s.guard, Guard::Eq(a, b) if a == b) {
            return Err(RewriteError(
                "outermost guard must be the equality x = x".into(),
            ));
        }
        builder.compile_outer(&s.body, *x)?;
    }
    Ok(ClosureStats {
        bits: builder.unary_rels.len() + builder.quants.len(),
        quants: builder.quants.len(),
        role_inclusions,
        counting: builder.quants.iter().any(|q| q.count > 1)
            || !o.functional.is_empty()
            || !o.inverse_functional.is_empty(),
        distinct: builder.quants.iter().any(|q| q.distinct),
    })
}

impl ElementTypeSystem {
    /// Compiles the type system of an ontology.
    ///
    /// Fails with [`RewriteError`] if a sentence is outside the supported
    /// `∀x φ(x)` / ALCI-depth-1 shape, or the closure exceeds 20 bits.
    pub fn build(o: &GfOntology, vocab: &Vocab) -> Result<Self, RewriteError> {
        if !o.transitive.is_empty() {
            return Err(RewriteError("transitivity declarations".into()));
        }
        if !o.other_sentences.is_empty() {
            return Err(RewriteError("non-uGF sentences".into()));
        }
        // Closure skeleton: unary relations of the signature.
        let mut unary_rels: Vec<RelId> = Vec::new();
        let mut binary_rels: Vec<RelId> = Vec::new();
        for r in o.sig() {
            match vocab.arity(r) {
                1 => unary_rels.push(r),
                2 => binary_rels.push(r),
                a => {
                    return Err(RewriteError(format!(
                        "relation {} has arity {a} > 2",
                        vocab.rel_name(r)
                    )))
                }
            }
        }
        let mut builder = Builder {
            unary_rels,
            quants: Vec::new(),
        };
        let mut bodies: Vec<LocalExpr> = Vec::new();
        let mut inclusions: Vec<(RelId, RelId, bool)> = Vec::new();
        for s in &o.ugf_sentences {
            // Role inclusions `∀xy(R°(x,y) → S°(x,y))` — in either the
            // one-variable equality-guarded form or the two-variable
            // guarded form — feed the hierarchy closure instead of the
            // boolean closure.
            if let Some(incl) = detect_role_inclusion(s) {
                inclusions.push(incl);
                continue;
            }
            let [x] = s.qvars.as_slice() else {
                return Err(RewriteError(
                    "sentence quantifies more than one variable".into(),
                ));
            };
            if !matches!(&s.guard, Guard::Eq(a, b) if a == b) {
                return Err(RewriteError(
                    "outermost guard must be the equality x = x".into(),
                ));
            }
            bodies.push(builder.compile_outer(&s.body, *x)?);
        }
        // Functionality declarations compile as global counting
        // constraints: func(R) ≡ ∀x ¬∃≥2y R(x,y) (and the inverse
        // direction with the backward guard).
        for (&rel, orient) in o
            .functional
            .iter()
            .map(|r| (r, Orientation::Fwd))
            .chain(o.inverse_functional.iter().map(|r| (r, Orientation::Bwd)))
        {
            let idx = builder.intern_quant(QuantSub {
                kind: QuantKind::Exists,
                orient,
                rel,
                distinct: false,
                count: 2,
                inner: LocalExpr::True,
            });
            bodies.push(LocalExpr::Not(Box::new(LocalExpr::Quant(idx))));
        }
        let n_bits = builder.unary_rels.len() + builder.quants.len();
        if n_bits > 20 {
            return Err(RewriteError(format!("closure too large ({n_bits} bits)")));
        }
        // Enumerate boolean-consistent types.
        let nu = builder.unary_rels.len();
        let nq = builder.quants.len();
        let mut types: Vec<TypeBits> = Vec::new();
        for mask in 0u32..(1u32 << n_bits) {
            let ty = TypeBits {
                unary: (0..nu).map(|i| mask & (1 << i) != 0).collect(),
                quant: (0..nq).map(|i| mask & (1 << (nu + i)) != 0).collect(),
            };
            if bodies.iter().all(|b| b.eval(&ty)) {
                types.push(ty);
            }
        }
        let binary_rels = binary_rels_of(&builder.quants, &o.sig(), vocab);
        // Reflexive-transitive closure of the role hierarchy.
        let mut supers: BTreeMap<RelId, BTreeSet<(RelId, bool)>> = BTreeMap::new();
        for &r in &binary_rels {
            supers.entry(r).or_default().insert((r, false));
        }
        loop {
            let mut changed = false;
            for &r in &binary_rels {
                let current: Vec<(RelId, bool)> =
                    supers.get(&r).into_iter().flatten().copied().collect();
                for (mid, f1) in current {
                    for &(sub, sup, f2) in &inclusions {
                        if sub == mid {
                            let entry = supers.entry(r).or_default();
                            if entry.insert((sup, f1 ^ f2)) {
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut system = ElementTypeSystem {
            unary_rels: builder.unary_rels,
            binary_rels,
            quants: builder.quants,
            supers,
            types,
            kernel: OnceLock::new(),
        };
        // Arithmetic consistency: a true `∃≥k` cannot exceed the type's
        // own successor cap (e.g. ∃≥2 together with functionality).
        let arithmetically_ok: Vec<TypeBits> = system
            .types
            .iter()
            .filter(|t| {
                system.quants.iter().enumerate().all(|(qi, q)| {
                    !(q.kind == QuantKind::Exists && t.quant[qi])
                        || q.count <= system.successor_cap(t, q.rel, q.orient)
                })
            })
            .cloned()
            .collect();
        system.types = arithmetically_ok;
        system.global_elimination();
        Ok(system)
    }

    /// Global type elimination: discard types whose existential
    /// requirements cannot be witnessed among surviving types.
    fn global_elimination(&mut self) {
        loop {
            let before = self.types.len();
            let snapshot = self.types.clone();
            self.types = snapshot
                .iter()
                .filter(|t| self.requirements_witnessed(t, &snapshot))
                .cloned()
                .collect();
            if self.types.len() == before {
                return;
            }
        }
    }

    /// Whether every existential requirement of `t` has a witness in
    /// `pool`.
    fn requirements_witnessed(&self, t: &TypeBits, pool: &[TypeBits]) -> bool {
        for (qi, q) in self.quants.iter().enumerate() {
            let needs_witness = match q.kind {
                QuantKind::Exists => t.quant[qi],
                QuantKind::Forall => !t.quant[qi],
            };
            if !needs_witness {
                continue;
            }
            let witness_ok = |w: &TypeBits| {
                // The witness must realize (or refute) the inner formula…
                let inner_val = q.inner.eval(w);
                let inner_needed = match q.kind {
                    QuantKind::Exists => inner_val,
                    QuantKind::Forall => !inner_val,
                };
                if !inner_needed {
                    return false;
                }
                // …and the witness edge must be jointly compatible.
                match q.orient {
                    Orientation::Fwd => self.compat_edge(t, w, q.rel),
                    Orientation::Bwd => self.compat_edge(w, t, q.rel),
                }
            };
            if !pool.iter().any(witness_ok) {
                return false;
            }
        }
        true
    }

    /// Whether the types `src` and `dst` are jointly satisfiable across an
    /// `R(src, dst)` edge between *distinct* elements.
    pub fn compat_edge(&self, src: &TypeBits, dst: &TypeBits, rel: RelId) -> bool {
        self.compat(src, dst, rel, false)
    }

    /// Whether the type `t` is satisfiable in the presence of a self-loop
    /// `R(a, a)` (the element is its own successor and predecessor, so
    /// both roles constrain the same type — distinct quantifiers ignore
    /// the loop).
    pub fn compat_self_loop(&self, t: &TypeBits, rel: RelId) -> bool {
        self.compat(t, t, rel, true)
    }

    fn compat(&self, src: &TypeBits, dst: &TypeBits, rel: RelId, is_loop: bool) -> bool {
        // An R-edge is also an S-edge for every super-role S (possibly
        // with flipped orientation).
        match self.supers.get(&rel) {
            Some(sups) => sups.iter().all(|&(s, flipped)| {
                if flipped {
                    self.compat_single(dst, src, s, is_loop)
                } else {
                    self.compat_single(src, dst, s, is_loop)
                }
            }),
            None => self.compat_single(src, dst, rel, is_loop),
        }
    }

    fn compat_single(&self, src: &TypeBits, dst: &TypeBits, rel: RelId, is_loop: bool) -> bool {
        for (qi, q) in self.quants.iter().enumerate() {
            if q.rel != rel {
                continue;
            }
            if q.distinct && is_loop {
                continue; // a self-loop is not a distinct witness
            }
            if q.kind == QuantKind::Exists && q.count > 1 {
                continue; // thresholds ≥ 2 are enforced by the counting pass
            }
            let ok = match (q.kind, q.orient) {
                // ∀y(R(x,y) → ψ) true at src forces ψ at dst.
                (QuantKind::Forall, Orientation::Fwd) => !src.quant[qi] || q.inner.eval(dst),
                // ∃y(R(x,y) ∧ ψ) false at src forbids ψ at dst.
                (QuantKind::Exists, Orientation::Fwd) => src.quant[qi] || !q.inner.eval(dst),
                // ∀y(R(y,x) → ψ) true at dst forces ψ at src.
                (QuantKind::Forall, Orientation::Bwd) => !dst.quant[qi] || q.inner.eval(src),
                // ∃y(R(y,x) ∧ ψ) false at dst forbids ψ at src.
                (QuantKind::Exists, Orientation::Bwd) => dst.quant[qi] || !q.inner.eval(src),
            };
            if !ok {
                return false;
            }
        }
        // Derived universals: if a type asserts ∃≥k(r, ψ) and caps its
        // total successor count at U ≤ k (e.g. functionality: ¬∃≥2 ⊤),
        // then *every* successor — in particular this edge's endpoint —
        // must satisfy ψ.
        for (holder, target, orient) in [(src, dst, Orientation::Fwd), (dst, src, Orientation::Bwd)]
        {
            let cap = self.successor_cap(holder, rel, orient);
            if cap == u32::MAX {
                continue;
            }
            for (qi, q) in self.quants.iter().enumerate() {
                if q.rel != rel
                    || q.orient != orient
                    || q.kind != QuantKind::Exists
                    || q.distinct
                    || !holder.quant[qi]
                {
                    continue;
                }
                if q.count >= cap && !q.inner.eval(target) {
                    return false;
                }
            }
        }
        true
    }

    /// The tightest upper bound on the number of `orient`-successors a
    /// type allows via a FALSE non-distinct `∃≥m(r, ⊤)`: the bound is
    /// `m − 1` (or `u32::MAX` when unbounded).
    fn successor_cap(&self, t: &TypeBits, rel: RelId, orient: Orientation) -> u32 {
        let mut cap = u32::MAX;
        for (qi, q) in self.quants.iter().enumerate() {
            if q.rel == rel
                && q.orient == orient
                && q.kind == QuantKind::Exists
                && !q.distinct
                && q.inner == LocalExpr::True
                && !t.quant[qi]
            {
                cap = cap.min(q.count - 1);
            }
        }
        cap
    }

    /// Whether any quantifier of the closure is distinctness-restricted —
    /// in that case the emitted rewriting needs inequality (Datalog≠).
    pub fn uses_distinctness(&self) -> bool {
        self.quants.iter().any(|q| q.distinct)
    }

    /// Whether any quantifier carries a counting threshold ≥ 2.
    pub fn uses_counting(&self) -> bool {
        self.quants.iter().any(|q| q.count > 1)
    }

    /// The sub-roles of `sup` (relations whose edges count as `sup`
    /// edges), as `(relation, flipped)` pairs; includes `sup` itself.
    pub(crate) fn sub_rels(&self, sup: RelId) -> Vec<(RelId, bool)> {
        self.supers
            .iter()
            .flat_map(|(&r, sups)| {
                sups.iter()
                    .filter(move |&&(s, _)| s == sup)
                    .map(move |&(_, f)| (r, f))
            })
            .collect()
    }

    /// The counting constraints relevant to the Datalog emitter: for each
    /// type index and each `∃≥n` quantifier that is *false* in the type,
    /// `(type, rel, orientation-is-forward, n, distinct, avoider type
    /// indices)` — the type is eliminated once `n` distinct neighbours
    /// all have every avoider type eliminated.
    pub(crate) fn counting_constraints(&self) -> Vec<CountingConstraint> {
        let mut out = Vec::new();
        for (qi, q) in self.quants.iter().enumerate() {
            if q.kind != QuantKind::Exists || q.count < 2 {
                continue;
            }
            for (ti, t) in self.types.iter().enumerate() {
                if t.quant[qi] {
                    continue; // only a FALSE ∃≥n constrains neighbours
                }
                let avoiders: Vec<usize> = self
                    .types
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| {
                        let pair_ok = match q.orient {
                            Orientation::Fwd => self.compat(t, w, q.rel, false),
                            Orientation::Bwd => self.compat(w, t, q.rel, false),
                        };
                        pair_ok && !q.inner.eval(w)
                    })
                    .map(|(j, _)| j)
                    .collect();
                // Whether a self-loop contributes a forced witness for
                // this type (non-distinct quantifier with ψ true at t).
                let loop_witness = !q.distinct && q.inner.eval(t);
                out.push((
                    ti,
                    q.rel,
                    q.orient == Orientation::Fwd,
                    q.count,
                    loop_witness,
                    q.distinct,
                    avoiders,
                ));
            }
        }
        out
    }

    /// The globally realizable types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// The closure size in bits.
    pub fn closure_bits(&self) -> usize {
        self.unary_rels.len() + self.quants.len()
    }

    /// Whether the type with the given index makes the unary relation true.
    pub fn type_has_unary(&self, type_idx: usize, rel: RelId) -> Option<bool> {
        let ui = self.unary_rels.iter().position(|&r| r == rel)?;
        Some(self.types[type_idx].unary[ui])
    }

    /// The binary relations tracked by the system.
    pub fn binary_rels(&self) -> &[RelId] {
        &self.binary_rels
    }

    /// The unary relations of the closure.
    pub fn unary_rels(&self) -> &[RelId] {
        &self.unary_rels
    }

    /// Internal access for the Datalog emitter.
    pub(crate) fn types(&self) -> &[TypeBits] {
        &self.types
    }

    /// The compiled bit-parallel propagation kernel, built on first use
    /// and cached for the lifetime of the system. Building costs one
    /// `compat_edge` sweep per relation over `|T*|²` type pairs — the
    /// price of a *single* edge visit of the reference propagation —
    /// after which every instance-time revision is pure word arithmetic.
    pub fn kernel(&self) -> &TypeKernel {
        self.kernel.get_or_init(|| self.build_kernel())
    }

    fn build_kernel(&self) -> TypeKernel {
        let t0 = Instant::now();
        let n = self.types.len();
        let words = bitset::words_for(n);
        let mut fwd = Vec::with_capacity(self.binary_rels.len());
        let mut bwd = Vec::with_capacity(self.binary_rels.len());
        let mut loop_ok = Vec::with_capacity(self.binary_rels.len());
        for &r in &self.binary_rels {
            let mut f = BitMatrix::new(n, n);
            let mut b = BitMatrix::new(n, n);
            for (ti, t) in self.types.iter().enumerate() {
                for (tj, w) in self.types.iter().enumerate() {
                    if self.compat_edge(t, w, r) {
                        f.set(ti, tj);
                        b.set(tj, ti);
                    }
                }
            }
            let mut lo = vec![0u64; words];
            for (ti, t) in self.types.iter().enumerate() {
                if self.compat_self_loop(t, r) {
                    bitset::set_bit(&mut lo, ti);
                }
            }
            fwd.push(f);
            bwd.push(b);
            loop_ok.push(lo);
        }
        let mut unary_ok = Vec::with_capacity(self.unary_rels.len());
        for ui in 0..self.unary_rels.len() {
            let mut row = vec![0u64; words];
            for (ti, t) in self.types.iter().enumerate() {
                if t.unary[ui] {
                    bitset::set_bit(&mut row, ti);
                }
            }
            unary_ok.push(row);
        }
        let rel_index: BTreeMap<RelId, usize> = self
            .binary_rels
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i))
            .collect();
        let mut counting = Vec::new();
        for (qi, q) in self.quants.iter().enumerate() {
            if q.kind != QuantKind::Exists || q.count < 2 {
                continue;
            }
            let ri = rel_index[&q.rel];
            let subs: Vec<(usize, bool)> = self
                .sub_rels(q.rel)
                .iter()
                .map(|&(r2, flipped)| (rel_index[&r2], (q.orient == Orientation::Fwd) != flipped))
                .collect();
            let mut inner_false = vec![0u64; words];
            for (tj, w) in self.types.iter().enumerate() {
                if !q.inner.eval(w) {
                    bitset::set_bit(&mut inner_false, tj);
                }
            }
            let mut binds = vec![false; n];
            let mut avoid = BitMatrix::new(n, n);
            let mut loop_witness = vec![false; n];
            for (ti, t) in self.types.iter().enumerate() {
                loop_witness[ti] = !q.distinct && q.inner.eval(t);
                if t.quant[qi] {
                    continue; // only a FALSE ∃≥n constrains neighbours
                }
                binds[ti] = true;
                // Partner types that avoid being a forced witness: pair-
                // compatible with ti yet refuting ψ.
                let row = avoid.row_mut(ti);
                row.copy_from_slice(match q.orient {
                    Orientation::Fwd => fwd[ri].row(ti),
                    Orientation::Bwd => bwd[ri].row(ti),
                });
                bitset::and_assign(row, &inner_false);
            }
            counting.push(CountingKernel {
                count: q.count as usize,
                subs,
                binds,
                avoid,
                loop_witness,
            });
        }
        let compat_bits = fwd.iter().map(BitMatrix::count_ones).sum::<usize>()
            + loop_ok.iter().map(|r| bitset::count_ones(r)).sum::<usize>();
        TypeKernel {
            words,
            full: bitset::full_row(n),
            fwd,
            bwd,
            loop_ok,
            unary_ok,
            counting,
            compat_bits,
            build_ns: t0.elapsed().as_nanos() as u64,
        }
    }

    /// Per-instance type assignment by bit-parallel AC-3 propagation.
    ///
    /// The computation is the paper's Theorem-5 one — identical in its
    /// result to [`ElementTypeSystem::instance_types_reference`] (the
    /// property tests assert exactly that) — but runs on the cached
    /// [`TypeKernel`]: elements are interned to dense ids, surviving
    /// sets are fixed-width bitset rows, an edge revision ORs the
    /// compat-matrix rows of the partner's surviving types and ANDs the
    /// union into the revisee's row, and a worklist of dirty arcs
    /// replaces full-sweep rounds. Counting/functionality caps are
    /// re-checked only for elements whose neighbourhood shrank.
    pub fn instance_types(&self, d: &Instance) -> InstanceTypes {
        let k = self.kernel();
        let t0 = Instant::now();
        let words = k.words;
        // Dense element index over the active domain (`dom()` is sorted,
        // so ids are deterministic).
        let mut terms = TermInterner::new();
        for t in d.dom() {
            terms.intern(t);
        }
        let n_elem = terms.len();
        // Surviving rows: all of T*, minus the types contradicting an
        // asserted unary fact, minus the types incompatible with a
        // self-loop.
        let mut surv: Vec<u64> = Vec::with_capacity(n_elem * words);
        for _ in 0..n_elem {
            surv.extend_from_slice(&k.full);
        }
        for (ui, &u) in self.unary_rels.iter().enumerate() {
            for f in d.facts_of(u) {
                if f.args.len() == 1 {
                    let e = terms.get(f.args[0]).expect("domain term") as usize;
                    bitset::and_assign(&mut surv[e * words..(e + 1) * words], &k.unary_ok[ui]);
                }
            }
        }
        // Edges (proper) and self-loops, per dense relation index.
        let nrels = self.binary_rels.len();
        let has_counting = !k.counting.is_empty();
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        let mut loops = 0usize;
        let mut has_loop: Vec<Vec<bool>> = vec![Vec::new(); nrels];
        for (ri, &r) in self.binary_rels.iter().enumerate() {
            if has_counting {
                has_loop[ri] = vec![false; n_elem];
            }
            for f in d.facts_of(r) {
                if f.args.len() != 2 {
                    continue;
                }
                let u = terms.get(f.args[0]).expect("domain term") as usize;
                let w = terms.get(f.args[1]).expect("domain term") as usize;
                if u == w {
                    loops += 1;
                    if has_counting {
                        has_loop[ri][u] = true;
                    }
                    bitset::and_assign(&mut surv[u * words..(u + 1) * words], &k.loop_ok[ri]);
                } else {
                    edges.push((ri as u32, u as u32, w as u32));
                }
            }
        }
        // Distinct-neighbour CSR adjacency for the counting pass (facts
        // are deduplicated, so so are the lists).
        let (out_adj, in_adj) = if has_counting {
            let mut out = Vec::with_capacity(nrels);
            let mut inn = Vec::with_capacity(nrels);
            for ri in 0..nrels {
                let ri = ri as u32;
                out.push(Csr::from_pairs(
                    n_elem,
                    edges.iter().filter(|e| e.0 == ri).map(|&(_, u, w)| (u, w)),
                ));
                inn.push(Csr::from_pairs(
                    n_elem,
                    edges.iter().filter(|e| e.0 == ri).map(|&(_, u, w)| (w, u)),
                ));
            }
            (out, inn)
        } else {
            (Vec::new(), Vec::new())
        };
        // Arcs: each proper edge yields one revision of its source
        // (partner = target, supports via the transpose matrix) and one
        // of its target (partner = source, supports via the forward
        // matrix). `arcs_of_partner` maps an element to the arcs that
        // must be re-revised when its surviving set shrinks.
        let mut arcs: Vec<(u32, u32, u32, bool)> = Vec::with_capacity(edges.len() * 2);
        for &(ri, u, w) in &edges {
            arcs.push((u, w, ri, true));
            arcs.push((w, u, ri, false));
        }
        let arcs_of_partner = Csr::from_pairs(
            n_elem,
            arcs.iter()
                .enumerate()
                .map(|(ai, &(_, p, _, _))| (p, ai as u32)),
        );
        let mut queue: VecDeque<u32> = (0..arcs.len() as u32).collect();
        let mut in_queue = vec![true; arcs.len()];
        // Worklist invariant: every arc whose revision might still
        // remove a bit is in the queue. Seeded with all arcs; an arc is
        // re-enqueued exactly when its partner's row shrinks.
        let mut shrunk = vec![true; n_elem]; // everyone dirty for the first counting pass
        let mut allowed = vec![0u64; words];
        let mut snapshot = vec![0u64; words];
        let mut nbrs: Vec<u32> = Vec::new();
        let mut arcs_revised = 0usize;
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            while let Some(ai) = queue.pop_front() {
                in_queue[ai as usize] = false;
                arcs_revised += 1;
                let (rv, p, ri, rv_is_src) = arcs[ai as usize];
                let (rv, p, ri) = (rv as usize, p as usize, ri as usize);
                allowed.fill(0);
                {
                    let prow = &surv[p * words..(p + 1) * words];
                    // Union of supports: a type survives at the revisee
                    // iff some surviving partner type is edge-compatible.
                    let m = if rv_is_src { &k.bwd[ri] } else { &k.fwd[ri] };
                    for tj in bitset::ones(prow) {
                        bitset::or_assign(&mut allowed, m.row(tj));
                    }
                }
                if bitset::and_assign(&mut surv[rv * words..(rv + 1) * words], &allowed) {
                    shrunk[rv] = true;
                    for &a2 in arcs_of_partner.row(rv) {
                        if !in_queue[a2 as usize] {
                            in_queue[a2 as usize] = true;
                            queue.push_back(a2);
                        }
                    }
                }
            }
            if !has_counting {
                break;
            }
            // Counting pass, restricted to dirty elements: those whose
            // own row shrank or with a shrunk proper neighbour (arcs
            // enumerate exactly the proper-edge neighbour pairs).
            let mut dirty = shrunk.clone();
            for &(rv, p, _, _) in &arcs {
                if shrunk[p as usize] {
                    dirty[rv as usize] = true;
                }
            }
            shrunk.iter_mut().for_each(|s| *s = false);
            let mut progressed = false;
            for a in 0..n_elem {
                if !dirty[a] {
                    continue;
                }
                for ck in &k.counting {
                    nbrs.clear();
                    let mut loop_here = false;
                    for &(ri, use_out) in &ck.subs {
                        let csr = if use_out { &out_adj[ri] } else { &in_adj[ri] };
                        nbrs.extend_from_slice(csr.row(a));
                        loop_here |= has_loop[ri][a];
                    }
                    nbrs.sort_unstable();
                    nbrs.dedup();
                    if nbrs.len() + usize::from(loop_here) < ck.count {
                        continue; // not enough potential witnesses
                    }
                    snapshot.copy_from_slice(&surv[a * words..(a + 1) * words]);
                    let mut killed = false;
                    for ti in bitset::ones(&snapshot) {
                        if !ck.binds[ti] {
                            continue;
                        }
                        let avoid = ck.avoid.row(ti);
                        let mut forced = 0usize;
                        for &b in &nbrs {
                            let b = b as usize;
                            if !bitset::intersects(&surv[b * words..(b + 1) * words], avoid) {
                                forced += 1;
                            }
                        }
                        if loop_here && ck.loop_witness[ti] {
                            forced += 1;
                        }
                        if forced >= ck.count {
                            bitset::clear_bit(&mut surv[a * words..(a + 1) * words], ti);
                            killed = true;
                        }
                    }
                    if killed {
                        progressed = true;
                        shrunk[a] = true;
                        for &a2 in arcs_of_partner.row(a) {
                            if !in_queue[a2 as usize] {
                                in_queue[a2 as usize] = true;
                                queue.push_back(a2);
                            }
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        let mut surviving: BTreeMap<Term, BTreeSet<usize>> = BTreeMap::new();
        let mut inconsistent = false;
        for e in 0..n_elem {
            let row = &surv[e * words..(e + 1) * words];
            inconsistent |= bitset::is_zero(row);
            surviving.insert(terms.term(e as u32), bitset::ones(row).collect());
        }
        InstanceTypes {
            surviving,
            inconsistent,
            rounds,
            stats: TypeStats {
                elements: n_elem,
                edges: edges.len() + loops,
                arcs_revised,
                compat_bits: k.compat_bits,
                build_ns: k.build_ns,
                propagate_ns: t0.elapsed().as_nanos() as u64,
            },
        }
    }

    /// Per-instance type assignment by arc-consistency propagation —
    /// the retained reference implementation (full Gauss–Seidel sweeps
    /// over `BTreeSet` surviving sets, one `compat_edge` call per type
    /// pair per edge per round). The bitset kernel is checked against it
    /// property-test-wise and benchmarked against it in `e13_types`.
    pub fn instance_types_reference(&self, d: &Instance) -> InstanceTypes {
        let mut surviving: BTreeMap<Term, BTreeSet<usize>> = BTreeMap::new();
        for a in d.dom() {
            // Initial: types consistent with the unary facts at a.
            let mut set = BTreeSet::new();
            'ty: for (ti, t) in self.types.iter().enumerate() {
                for (ui, &u) in self.unary_rels.iter().enumerate() {
                    let asserted = d.facts_of(u).any(|f| f.args.len() == 1 && f.args[0] == a);
                    if asserted && !t.unary[ui] {
                        continue 'ty;
                    }
                }
                set.insert(ti);
            }
            surviving.insert(a, set);
        }
        // Collect edges per binary relation, separating self-loops: a loop
        // constrains a type against *itself* (one element has one type),
        // while a proper edge is an arc-consistency constraint between two
        // type sets.
        let mut edges: Vec<(RelId, Term, Term)> = Vec::new();
        for &r in &self.binary_rels {
            for f in d.facts_of(r) {
                if f.args.len() != 2 {
                    continue;
                }
                if f.args[0] == f.args[1] {
                    let set = surviving.get_mut(&f.args[0]).expect("element exists");
                    set.retain(|&ti| self.compat_self_loop(&self.types[ti], r));
                } else {
                    edges.push((r, f.args[0], f.args[1]));
                }
            }
        }
        // Adjacency for the counting pass: distinct out-/in-neighbours and
        // self-loop presence, per relation.
        let mut out_nbrs: BTreeMap<(RelId, Term), BTreeSet<Term>> = BTreeMap::new();
        let mut in_nbrs: BTreeMap<(RelId, Term), BTreeSet<Term>> = BTreeMap::new();
        let mut has_loop: BTreeSet<(RelId, Term)> = BTreeSet::new();
        for &r in &self.binary_rels {
            for f in d.facts_of(r) {
                if f.args.len() != 2 {
                    continue;
                }
                if f.args[0] == f.args[1] {
                    has_loop.insert((r, f.args[0]));
                } else {
                    out_nbrs
                        .entry((r, f.args[0]))
                        .or_default()
                        .insert(f.args[1]);
                    in_nbrs.entry((r, f.args[1])).or_default().insert(f.args[0]);
                }
            }
        }
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let mut changed = false;
            for &(r, a, b) in &edges {
                // Forward: t at a needs a compatible partner at b.
                let partners_b = surviving[&b].clone();
                let set_a = surviving.get_mut(&a).expect("element exists");
                let before = set_a.len();
                set_a.retain(|&ti| {
                    partners_b
                        .iter()
                        .any(|&tj| self.compat_edge(&self.types[ti], &self.types[tj], r))
                });
                changed |= set_a.len() != before;
                // Backward: t at b needs a compatible partner at a.
                let partners_a = surviving[&a].clone();
                let set_b = surviving.get_mut(&b).expect("element exists");
                let before = set_b.len();
                set_b.retain(|&tj| {
                    partners_a
                        .iter()
                        .any(|&ti| self.compat_edge(&self.types[ti], &self.types[tj], r))
                });
                changed |= set_b.len() != before;
            }
            // Counting pass: a type with a FALSE `∃≥n` dies once `n`
            // witnesses are forced — n distinct neighbours none of which
            // can avoid ψ, plus (non-distinct quantifiers) a self-loop
            // when ψ holds in the type itself.
            for (qi, q) in self.quants.iter().enumerate() {
                if q.kind != QuantKind::Exists || q.count < 2 {
                    continue;
                }
                let elements: Vec<Term> = surviving.keys().copied().collect();
                let subs = self.sub_rels(q.rel);
                for a in elements {
                    // Neighbours through every sub-role of the counted
                    // relation, with the appropriate orientation.
                    let mut nbr_set: BTreeSet<Term> = BTreeSet::new();
                    let mut loop_here = false;
                    for &(r2, flipped) in &subs {
                        let forward = (q.orient == Orientation::Fwd) != flipped;
                        let source = if forward { &out_nbrs } else { &in_nbrs };
                        if let Some(set) = source.get(&(r2, a)) {
                            nbr_set.extend(set.iter().copied());
                        }
                        loop_here |= has_loop.contains(&(r2, a));
                    }
                    let nbrs: Vec<Term> = nbr_set.into_iter().collect();
                    if nbrs.len() + usize::from(loop_here) < q.count as usize {
                        continue; // not enough potential witnesses
                    }
                    let snapshot = surviving[&a].clone();
                    let mut to_kill: Vec<usize> = Vec::new();
                    for &ti in &snapshot {
                        let t = &self.types[ti];
                        if t.quant[qi] {
                            continue;
                        }
                        let mut forced = 0usize;
                        for b in &nbrs {
                            let can_avoid = surviving[b].iter().any(|&tj| {
                                let w = &self.types[tj];
                                let pair_ok = match q.orient {
                                    Orientation::Fwd => self.compat(t, w, q.rel, false),
                                    Orientation::Bwd => self.compat(w, t, q.rel, false),
                                };
                                pair_ok && !q.inner.eval(w)
                            });
                            if !can_avoid {
                                forced += 1;
                            }
                        }
                        if loop_here && !q.distinct && q.inner.eval(t) {
                            forced += 1;
                        }
                        if forced >= q.count as usize {
                            to_kill.push(ti);
                        }
                    }
                    if !to_kill.is_empty() {
                        let set = surviving.get_mut(&a).expect("element exists");
                        for ti in to_kill {
                            set.remove(&ti);
                        }
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let inconsistent = surviving.values().any(|s| s.is_empty());
        InstanceTypes {
            surviving,
            inconsistent,
            rounds,
            stats: TypeStats::default(),
        }
    }

    /// Certain answers to the atomic query `A(x)`: the elements all of
    /// whose surviving types make `A` true — or every element when the
    /// instance is inconsistent. A relation outside the ontology's
    /// closure is unconstrained, so its certain answers are exactly the
    /// facts asserted in `D`. Runs the bitset kernel.
    pub fn certain_unary(&self, d: &Instance, rel: RelId) -> BTreeSet<Term> {
        self.certain_unary_with_stats(d, rel).0
    }

    /// [`ElementTypeSystem::certain_unary`] plus the kernel counters of
    /// the underlying propagation run (for `EngineStats` accounting).
    pub fn certain_unary_with_stats(
        &self,
        d: &Instance,
        rel: RelId,
    ) -> (BTreeSet<Term>, TypeStats) {
        let it = self.instance_types(d);
        let stats = it.stats;
        (self.certain_from(&it, d, rel), stats)
    }

    /// [`ElementTypeSystem::certain_unary`] through the reference
    /// propagation — retained for equivalence testing.
    pub fn certain_unary_reference(&self, d: &Instance, rel: RelId) -> BTreeSet<Term> {
        let it = self.instance_types_reference(d);
        self.certain_from(&it, d, rel)
    }

    fn certain_from(&self, it: &InstanceTypes, d: &Instance, rel: RelId) -> BTreeSet<Term> {
        if it.inconsistent {
            return d.dom();
        }
        let Some(ui) = self.unary_rels.iter().position(|&r| r == rel) else {
            return d
                .facts_of(rel)
                .filter(|f| f.args.len() == 1)
                .map(|f| f.args[0])
                .collect();
        };
        it.surviving
            .iter()
            .filter(|(_, set)| !set.is_empty() && set.iter().all(|&ti| self.types[ti].unary[ui]))
            .map(|(&t, _)| t)
            .collect()
    }
}

/// The compiled bit-parallel AC-3 kernel of an [`ElementTypeSystem`].
///
/// Everything instance-independent about Theorem-5 propagation lives
/// here, computed once per ontology *after* global elimination (the
/// matrices quantify over the final `T*`; see DESIGN.md §7 for why that
/// ordering is load-bearing):
///
/// * per binary relation, a forward compatibility matrix (row `ti` =
///   the types compatible as `R`-successors of `ti`) and its transpose,
/// * per relation, the self-loop-compatible types as one row,
/// * per unary closure bit, the types asserting it,
/// * per counting constraint (`∃≥n`, n ≥ 2, incl. compiled
///   functionality), the "avoider" rows and loop-witness flags.
#[derive(Clone, Debug)]
pub struct TypeKernel {
    /// Word width of a type-set row.
    words: usize,
    /// All of `T*` as a row (trailing bits clear).
    full: Vec<u64>,
    /// Forward compat: `fwd[r].row(ti) = {tj : compat_edge(ti, tj, r)}`.
    fwd: Vec<BitMatrix>,
    /// Transpose: `bwd[r].row(tj) = {ti : compat_edge(ti, tj, r)}`.
    bwd: Vec<BitMatrix>,
    /// Self-loop survivors per relation.
    loop_ok: Vec<Vec<u64>>,
    /// Types asserting each unary closure bit.
    unary_ok: Vec<Vec<u64>>,
    /// Compiled counting constraints.
    counting: Vec<CountingKernel>,
    /// Total set bits across `fwd` and `loop_ok`.
    compat_bits: usize,
    /// Construction wall time.
    build_ns: u64,
}

impl TypeKernel {
    /// Total set bits across the compatibility matrices and loop masks.
    pub fn compat_bits(&self) -> usize {
        self.compat_bits
    }

    /// Wall time spent building the kernel, in nanoseconds.
    pub fn build_ns(&self) -> u64 {
        self.build_ns
    }
}

/// One compiled `∃≥n` (n ≥ 2) constraint of the counting pass.
#[derive(Clone, Debug)]
struct CountingKernel {
    /// The threshold `n`.
    count: usize,
    /// Sub-roles of the counted relation as `(dense relation index,
    /// count out-neighbours?)` — orientation and hierarchy flips are
    /// resolved at compile time.
    subs: Vec<(usize, bool)>,
    /// Which types the constraint binds (the `∃≥n` is FALSE there).
    binds: Vec<bool>,
    /// Row `ti` = partner types that avoid being a forced witness of
    /// `ti`: pair-compatible yet refuting the filler ψ.
    avoid: BitMatrix,
    /// Whether a self-loop contributes a forced witness for type `ti`.
    loop_witness: Vec<bool>,
}

/// Compressed-sparse-row adjacency: `row(i)` of element `i` in O(1).
struct Csr {
    offsets: Vec<u32>,
    data: Vec<u32>,
}

impl Csr {
    /// Builds from `(source, value)` pairs by counting sort; `n` is the
    /// number of sources.
    fn from_pairs(n: usize, pairs: impl Iterator<Item = (u32, u32)> + Clone) -> Csr {
        let mut offsets = vec![0u32; n + 1];
        for (s, _) in pairs.clone() {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut data = vec![0u32; offsets[n] as usize];
        for (s, v) in pairs {
            data[cursor[s as usize] as usize] = v;
            cursor[s as usize] += 1;
        }
        Csr { offsets, data }
    }

    fn row(&self, i: usize) -> &[u32] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Detects a role-inclusion sentence `∀xy(R°(x,y) → S°(x,y))`, in either
/// the equality-guarded one-variable form produced by the DL translation
/// or the plain two-variable guarded form. Returns `(sub, sup, flipped)`.
fn detect_role_inclusion(s: &gomq_logic::UgfSentence) -> Option<(RelId, RelId, bool)> {
    fn orientation(args: &[LVar], x: LVar, y: LVar) -> Option<bool> {
        // true = (x, y), false = (y, x).
        if args == [x, y] {
            Some(true)
        } else if args == [y, x] {
            Some(false)
        } else {
            None
        }
    }
    match s.qvars.as_slice() {
        [x] => {
            if !matches!(&s.guard, Guard::Eq(a, b) if a == b) {
                return None;
            }
            let Formula::Forall { qvars, guard, body } = &s.body else {
                return None;
            };
            let [y] = qvars.as_slice() else { return None };
            let Guard::Atom { rel: sub, args } = guard else {
                return None;
            };
            let Formula::Atom {
                rel: sup,
                args: args2,
            } = &**body
            else {
                return None;
            };
            let o1 = orientation(args, *x, *y)?;
            let o2 = orientation(args2, *x, *y)?;
            Some((*sub, *sup, o1 != o2))
        }
        [x, y] => {
            let Guard::Atom { rel: sub, args } = &s.guard else {
                return None;
            };
            let Formula::Atom {
                rel: sup,
                args: args2,
            } = &s.body
            else {
                return None;
            };
            let o1 = orientation(args, *x, *y)?;
            let o2 = orientation(args2, *x, *y)?;
            Some((*sub, *sup, o1 != o2))
        }
        _ => None,
    }
}

fn binary_rels_of(quants: &[QuantSub], sig: &BTreeSet<RelId>, vocab: &Vocab) -> Vec<RelId> {
    let mut out: BTreeSet<RelId> = quants.iter().map(|q| q.rel).collect();
    for &r in sig {
        if vocab.arity(r) == 2 {
            out.insert(r);
        }
    }
    out.into_iter().collect()
}

struct Builder {
    unary_rels: Vec<RelId>,
    quants: Vec<QuantSub>,
}

impl Builder {
    fn unary_index(&mut self, rel: RelId) -> usize {
        match self.unary_rels.iter().position(|&r| r == rel) {
            Some(i) => i,
            None => {
                self.unary_rels.push(rel);
                self.unary_rels.len() - 1
            }
        }
    }

    /// Compiles an outer body `φ(x)`.
    fn compile_outer(&mut self, f: &Formula, x: LVar) -> Result<LocalExpr, RewriteError> {
        match f {
            Formula::True => Ok(LocalExpr::True),
            Formula::False => Ok(LocalExpr::False),
            Formula::Atom { rel, args } => {
                if args.as_slice() == [x] {
                    Ok(LocalExpr::Unary(self.unary_index(*rel)))
                } else {
                    Err(RewriteError("non-unary atom at outer level".into()))
                }
            }
            Formula::Eq(_, _) => Err(RewriteError("equality in body".into())),
            Formula::Not(g) => Ok(LocalExpr::Not(Box::new(self.compile_outer(g, x)?))),
            Formula::And(fs) => Ok(LocalExpr::And(
                fs.iter()
                    .map(|g| self.compile_outer(g, x))
                    .collect::<Result<_, _>>()?,
            )),
            Formula::Or(fs) => Ok(LocalExpr::Or(
                fs.iter()
                    .map(|g| self.compile_outer(g, x))
                    .collect::<Result<_, _>>()?,
            )),
            Formula::Exists { qvars, guard, body } => {
                self.compile_quant(QuantKind::Exists, 1, qvars, guard, body, x)
            }
            Formula::Forall { qvars, guard, body } => {
                self.compile_quant(QuantKind::Forall, 1, qvars, guard, body, x)
            }
            Formula::CountExists {
                n,
                qvar,
                guard,
                body,
            } => {
                if *n == 0 {
                    return Ok(LocalExpr::True);
                }
                self.compile_quant(QuantKind::Exists, *n, &[*qvar], guard, body, x)
            }
        }
    }

    fn compile_quant(
        &mut self,
        kind: QuantKind,
        count: u32,
        qvars: &[LVar],
        guard: &Guard,
        body: &Formula,
        x: LVar,
    ) -> Result<LocalExpr, RewriteError> {
        let [y] = qvars else {
            return Err(RewriteError("multi-variable inner quantifier".into()));
        };
        let Guard::Atom { rel, args } = guard else {
            return Err(RewriteError("equality guard in body".into()));
        };
        let orient = if args.as_slice() == [x, *y] {
            Orientation::Fwd
        } else if args.as_slice() == [*y, x] {
            Orientation::Bwd
        } else {
            return Err(RewriteError("inner guard must be R(x,y) or R(y,x)".into()));
        };
        // Distinctness extraction: ∃y(α ∧ x≠y ∧ ψ) and ∀y(α → x=y ∨ ψ).
        let is_neq = |f: &Formula| {
            matches!(f, Formula::Not(e)
                if matches!(**e, Formula::Eq(a, b) if (a == x && b == *y) || (a == *y && b == x)))
        };
        let is_eq = |f: &Formula| matches!(f, Formula::Eq(a, b) if (*a == x && b == y) || (a == y && *b == x));
        let (distinct, residual): (bool, Formula) = match (kind, body) {
            (QuantKind::Exists, Formula::And(parts)) if parts.iter().any(is_neq) => {
                let rest: Vec<Formula> = parts.iter().filter(|p| !is_neq(p)).cloned().collect();
                (true, Formula::And(rest))
            }
            (QuantKind::Exists, f) if is_neq(f) => (true, Formula::True),
            (QuantKind::Forall, Formula::Or(parts)) if parts.iter().any(is_eq) => {
                let rest: Vec<Formula> = parts.iter().filter(|p| !is_eq(p)).cloned().collect();
                (true, Formula::Or(rest))
            }
            (QuantKind::Forall, Formula::Eq(a, b))
                if (*a == x && b == y) || (a == y && *b == x) =>
            {
                (true, Formula::False)
            }
            (_, f) => (false, f.clone()),
        };
        let inner = self.compile_inner(&residual, *y)?;
        let sub = QuantSub {
            kind,
            orient,
            rel: *rel,
            distinct,
            count,
            inner,
        };
        Ok(LocalExpr::Quant(self.intern_quant(sub)))
    }

    fn intern_quant(&mut self, sub: QuantSub) -> usize {
        match self.quants.iter().position(|q| *q == sub) {
            Some(i) => i,
            None => {
                self.quants.push(sub);
                self.quants.len() - 1
            }
        }
    }

    /// Compiles an inner formula `ψ(y)`: boolean combination of unary
    /// atoms over `y`.
    fn compile_inner(&mut self, f: &Formula, y: LVar) -> Result<LocalExpr, RewriteError> {
        match f {
            Formula::True => Ok(LocalExpr::True),
            Formula::False => Ok(LocalExpr::False),
            Formula::Atom { rel, args } => {
                if args.as_slice() == [y] {
                    Ok(LocalExpr::Unary(self.unary_index(*rel)))
                } else {
                    Err(RewriteError(
                        "inner formula mentions the outer variable".into(),
                    ))
                }
            }
            Formula::Not(g) => Ok(LocalExpr::Not(Box::new(self.compile_inner(g, y)?))),
            Formula::And(fs) => Ok(LocalExpr::And(
                fs.iter()
                    .map(|g| self.compile_inner(g, y))
                    .collect::<Result<_, _>>()?,
            )),
            Formula::Or(fs) => Ok(LocalExpr::Or(
                fs.iter()
                    .map(|g| self.compile_inner(g, y))
                    .collect::<Result<_, _>>()?,
            )),
            _ => Err(RewriteError("nested quantifier (depth ≥ 2)".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::Fact;
    use gomq_dl::concept::{Concept, Role};
    use gomq_dl::translate::to_gf;
    use gomq_dl::DlOntology;
    use gomq_logic::UgfSentence;

    /// A ⊑ ∃R.B, B ⊑ C.
    fn simple(v: &mut Vocab) -> GfOntology {
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c = v.rel("C", 1);
        let r = Role::new(v.rel("R", 2));
        let mut o = DlOntology::new();
        o.sub(
            Concept::Name(a),
            Concept::Exists(r, Box::new(Concept::Name(b))),
        );
        o.sub(Concept::Name(b), Concept::Name(c));
        to_gf(&o)
    }

    #[test]
    fn build_and_count_types() {
        let mut v = Vocab::new();
        let o = simple(&mut v);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        assert!(sys.num_types() > 0);
        assert!(sys.closure_bits() <= 5);
    }

    #[test]
    fn certain_unary_subsumption() {
        // D = {A(a), R(a,b), B(b)}: C is certain at b (B ⊑ C); not at a.
        let mut v = Vocab::new();
        let o = simple(&mut v);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let c_rel = v.rel("C", 1);
        let r = v.rel("R", 2);
        let ca = v.constant("a");
        let cb = v.constant("b");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        d.insert(Fact::consts(r, &[ca, cb]));
        d.insert(Fact::consts(b_rel, &[cb]));
        let certain_c = sys.certain_unary(&d, c_rel);
        assert!(certain_c.contains(&Term::Const(cb)));
        assert!(!certain_c.contains(&Term::Const(ca)));
        // A is certain exactly at a.
        let certain_a = sys.certain_unary(&d, a_rel);
        assert_eq!(certain_a.len(), 1);
    }

    #[test]
    fn propagation_along_forall() {
        // ⊤ ⊑ ∀R.B encoded as ALC: ∀x ∀y(R(x,y) → B(y)).
        let mut v = Vocab::new();
        let b_rel = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Top,
            Concept::Forall(r, Box::new(Concept::Name(b_rel))),
        );
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let rr = v.rel("R", 2);
        let ca = v.constant("a");
        let cb = v.constant("b");
        let mut d = Instance::new();
        d.insert(Fact::consts(rr, &[ca, cb]));
        let certain_b = sys.certain_unary(&d, b_rel);
        assert!(certain_b.contains(&Term::Const(cb)));
        assert!(!certain_b.contains(&Term::Const(ca)));
    }

    #[test]
    fn inconsistency_detected() {
        // A ⊑ B, A ⊑ ¬B, D = {A(a)}: inconsistent → everything certain.
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let mut dl = DlOntology::new();
        dl.sub(Concept::Name(a_rel), Concept::Name(b_rel));
        dl.sub(Concept::Name(a_rel), Concept::Name(b_rel).neg());
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let ca = v.constant("a");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        let it = sys.instance_types(&d);
        assert!(it.inconsistent);
        assert_eq!(sys.certain_unary(&d, b_rel).len(), 1);
    }

    #[test]
    fn counting_exactly_n_is_supported() {
        // O₁-style: Hand ⊑ (= 2 hasFinger ⊤) — uGC⁻₂(1,=).
        let mut v = Vocab::new();
        let hand = v.rel("Hand", 1);
        let hf_rel = v.rel("hasFinger", 2);
        let hf = Role::new(hf_rel);
        let mut dl = DlOntology::new();
        dl.sub(Concept::Name(hand), Concept::exactly(2, hf, Concept::Top));
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("counting supported");
        assert!(sys.uses_counting());
        let h = v.constant("h");
        let fingers: Vec<_> = (0..3).map(|i| v.constant(&format!("fg{i}"))).collect();
        // Two explicit fingers: consistent.
        let mut d2 = Instance::new();
        d2.insert(Fact::consts(hand, &[h]));
        for &f in &fingers[..2] {
            d2.insert(Fact::consts(hf_rel, &[h, f]));
        }
        assert!(!sys.instance_types(&d2).inconsistent);
        // Three explicit fingers exceed (≤ 2): inconsistent.
        let mut d3 = Instance::new();
        d3.insert(Fact::consts(hand, &[h]));
        for &f in &fingers {
            d3.insert(Fact::consts(hf_rel, &[h, f]));
        }
        assert!(sys.instance_types(&d3).inconsistent);
        // Cross-check both with the model-theoretic engine.
        let engine = gomq_reasoning::CertainEngine::new(2);
        assert!(engine.consistency(&o, &d2, &mut v).is_consistent());
        assert!(!engine.consistency(&o, &d3, &mut v).is_consistent());
    }

    #[test]
    fn functionality_compiles_as_counting() {
        // func(F): two distinct F-successors are inconsistent; a loop plus
        // a proper successor also counts as two.
        let mut v = Vocab::new();
        let f_rel = v.rel("F", 2);
        let mut o = GfOntology::new();
        o.declare_functional(f_rel);
        let sys = ElementTypeSystem::build(&o, &v).expect("functionality supported");
        assert!(sys.uses_counting());
        let a = v.constant("fa");
        let b = v.constant("fb");
        let c = v.constant("fc");
        let mut ok = Instance::new();
        ok.insert(Fact::consts(f_rel, &[a, b]));
        assert!(!sys.instance_types(&ok).inconsistent);
        let mut bad = ok.clone();
        bad.insert(Fact::consts(f_rel, &[a, c]));
        assert!(sys.instance_types(&bad).inconsistent);
        let mut loopy = ok.clone();
        loopy.insert(Fact::consts(f_rel, &[a, a]));
        assert!(
            sys.instance_types(&loopy).inconsistent,
            "loop + proper edge = two successors"
        );
        // Engine agreement.
        let engine = gomq_reasoning::CertainEngine::new(1);
        assert!(engine.consistency(&o, &ok, &mut v).is_consistent());
        assert!(!engine.consistency(&o, &bad, &mut v).is_consistent());
        assert!(!engine.consistency(&o, &loopy, &mut v).is_consistent());
    }

    #[test]
    fn inverse_functionality_compiles_as_counting() {
        let mut v = Vocab::new();
        let f_rel = v.rel("F", 2);
        let mut o = GfOntology::new();
        o.declare_inverse_functional(f_rel);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let a = v.constant("ia");
        let b = v.constant("ib");
        let c = v.constant("ic");
        let mut bad = Instance::new();
        bad.insert(Fact::consts(f_rel, &[a, c]));
        bad.insert(Fact::consts(f_rel, &[b, c]));
        assert!(sys.instance_types(&bad).inconsistent);
        let mut ok = Instance::new();
        ok.insert(Fact::consts(f_rel, &[a, b]));
        ok.insert(Fact::consts(f_rel, &[a, c]));
        assert!(!sys.instance_types(&ok).inconsistent);
    }

    #[test]
    fn role_hierarchies_propagate_constraints() {
        // manages ⊑ worksOn, ⊤ ⊑ ∀worksOn.Project: a `manages` edge forces
        // Project at its target.
        let mut v = Vocab::new();
        let project = v.rel("Project", 1);
        let works = v.rel("worksOn", 2);
        let manages = v.rel("manages", 2);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Top,
            Concept::Forall(Role::new(works), Box::new(Concept::Name(project))),
        );
        dl.role_sub(Role::new(manages), Role::new(works));
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("hierarchies supported");
        let a = v.constant("boss");
        let p = v.constant("proj");
        let mut d = Instance::new();
        d.insert(Fact::consts(manages, &[a, p]));
        let certain = sys.certain_unary(&d, project);
        assert!(certain.contains(&Term::Const(p)));
        // Engine agreement.
        let engine = gomq_reasoning::CertainEngine::new(1);
        let mut b = gomq_core::query::CqBuilder::new();
        let x = b.var("x");
        b.atom(project, &[x]);
        let q = gomq_core::Ucq::from_cq(b.build(vec![x]));
        assert!(engine
            .certain(&o, &d, &q, &[Term::Const(p)], &mut v)
            .is_certain());
    }

    #[test]
    fn inverse_role_inclusion_flips_orientation() {
        // childOf ⊑ parentOf⁻ and ⊤ ⊑ ∀parentOf.Person: childOf(a,b)
        // means parentOf(b,a), so Person is forced at *a*.
        let mut v = Vocab::new();
        let person = v.rel("Person", 1);
        let parent_of = v.rel("parentOf", 2);
        let child_of = v.rel("childOf", 2);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Top,
            Concept::Forall(Role::new(parent_of), Box::new(Concept::Name(person))),
        );
        dl.role_sub(Role::new(child_of), Role::inv(parent_of));
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let a = v.constant("kid");
        let b = v.constant("mum");
        let mut d = Instance::new();
        d.insert(Fact::consts(child_of, &[a, b]));
        let certain = sys.certain_unary(&d, person);
        assert!(
            certain.contains(&Term::Const(a)),
            "childOf(a,b) ⇒ parentOf(b,a) ⇒ Person(a)"
        );
        assert!(!certain.contains(&Term::Const(b)));
    }

    #[test]
    fn hierarchy_counting_counts_subrole_edges() {
        // func(worksOn) with manages ⊑ worksOn: one `manages` edge plus a
        // distinct `worksOn` edge overflow the bound.
        let mut v = Vocab::new();
        let works = v.rel("worksOn", 2);
        let manages = v.rel("manages", 2);
        let mut dl = DlOntology::new();
        dl.functional(Role::new(works));
        dl.role_sub(Role::new(manages), Role::new(works));
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let a = v.constant("w0");
        let p1 = v.constant("w1");
        let p2 = v.constant("w2");
        let mut bad = Instance::new();
        bad.insert(Fact::consts(manages, &[a, p1]));
        bad.insert(Fact::consts(works, &[a, p2]));
        assert!(sys.instance_types(&bad).inconsistent);
        // The same target twice is fine (witness counting is per element).
        let mut ok = Instance::new();
        ok.insert(Fact::consts(manages, &[a, p1]));
        ok.insert(Fact::consts(works, &[a, p1]));
        assert!(!sys.instance_types(&ok).inconsistent);
        // Engine agreement requires translating func into the GF ontology,
        // which `to_gf` already did.
        let engine = gomq_reasoning::CertainEngine::new(1);
        assert!(!engine.consistency(&o, &bad, &mut v).is_consistent());
        assert!(engine.consistency(&o, &ok, &mut v).is_consistent());
    }

    #[test]
    fn counting_with_qualified_filler() {
        // A ⊑ ¬∃≥2 R.B — at most one R-successor in B.
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let r_rel = v.rel("R", 2);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a_rel),
            Concept::AtMost(1, Role::new(r_rel), Box::new(Concept::Name(b_rel))),
        );
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let ca = v.constant("qa");
        let c1 = v.constant("q1");
        let c2 = v.constant("q2");
        // Two B-successors: inconsistent.
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        d.insert(Fact::consts(r_rel, &[ca, c1]));
        d.insert(Fact::consts(r_rel, &[ca, c2]));
        d.insert(Fact::consts(b_rel, &[c1]));
        d.insert(Fact::consts(b_rel, &[c2]));
        assert!(sys.instance_types(&d).inconsistent);
        // Two successors, only one in B: fine.
        let mut d_ok = Instance::new();
        d_ok.insert(Fact::consts(a_rel, &[ca]));
        d_ok.insert(Fact::consts(r_rel, &[ca, c1]));
        d_ok.insert(Fact::consts(r_rel, &[ca, c2]));
        d_ok.insert(Fact::consts(b_rel, &[c1]));
        assert!(!sys.instance_types(&d_ok).inconsistent);
        // In the consistent case, ¬B is NOT derivable at c2 as a fact, but
        // B is not certain there either (the model may or may not add it)…
        // unless it would overflow: with (≤ 1 R B), a model adding B(c2)
        // violates the axiom, so ¬B is "certain" — i.e. B(c2) is not
        // certain and D + B(c2) is inconsistent.
        let mut d_forced = d_ok.clone();
        d_forced.insert(Fact::consts(b_rel, &[c2]));
        assert!(sys.instance_types(&d_forced).inconsistent);
        let engine = gomq_reasoning::CertainEngine::new(2);
        assert!(engine.consistency(&o, &d_ok, &mut v).is_consistent());
        assert!(!engine.consistency(&o, &d_forced, &mut v).is_consistent());
        assert!(!engine.consistency(&o, &d, &mut v).is_consistent());
    }

    #[test]
    fn global_elimination_removes_unwitnessable_types() {
        // A ⊑ ∃R.B and ⊤ ⊑ ¬B: no type can have the ∃-requirement.
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a_rel),
            Concept::Exists(r, Box::new(Concept::Name(b_rel))),
        );
        dl.sub(Concept::Top, Concept::Name(b_rel).neg());
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        // No surviving type makes A true.
        let any_a = (0..sys.num_types()).any(|ti| sys.type_has_unary(ti, a_rel) == Some(true));
        assert!(!any_a);
        // Hence D = {A(a)} is inconsistent.
        let ca = v.constant("a");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        assert!(sys.instance_types(&d).inconsistent);
    }

    #[test]
    fn inverse_roles_supported() {
        // A ⊑ ∃R⁻.B : element of A needs a B-predecessor.
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let r = v.rel("R", 2);
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a_rel),
            Concept::Exists(Role::inv(r), Box::new(Concept::Name(b_rel))),
        );
        // And ∀R⁻.C-style propagation: ⊤ ⊑ ∀R⁻.C means predecessors are C.
        let c_rel = v.rel("C", 1);
        dl.sub(
            Concept::Top,
            Concept::Forall(Role::inv(r), Box::new(Concept::Name(c_rel))),
        );
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let ca = v.constant("a");
        let cb = v.constant("b");
        let mut d = Instance::new();
        d.insert(Fact::consts(r, &[ca, cb]));
        // a is a predecessor of b, so C is certain at a.
        let certain_c = sys.certain_unary(&d, c_rel);
        assert!(certain_c.contains(&Term::Const(ca)));
    }

    #[test]
    fn loops_constrain_a_type_against_itself() {
        // A ⊑ ∀R.B with D = {A(a), R(a,a)}: the loop forces B(a). An
        // arc-consistency check that compares against *other* surviving
        // types would miss this.
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let b_rel = v.rel("B", 1);
        let r = Role::new(v.rel("R", 2));
        let mut dl = DlOntology::new();
        dl.sub(
            Concept::Name(a_rel),
            Concept::Forall(r, Box::new(Concept::Name(b_rel))),
        );
        let o = to_gf(&dl);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let rr = v.rel("R", 2);
        let ca = v.constant("loopy");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        d.insert(Fact::consts(rr, &[ca, ca]));
        let certain_b = sys.certain_unary(&d, b_rel);
        assert!(
            certain_b.contains(&Term::Const(ca)),
            "the self-loop forces B at a"
        );
        // Cross-check with the model-theoretic engine.
        let engine = gomq_reasoning::CertainEngine::new(1);
        let mut bq = gomq_core::query::CqBuilder::new();
        let x = bq.var("x");
        bq.atom(b_rel, &[x]);
        let q = gomq_core::Ucq::from_cq(bq.build(vec![x]));
        assert!(engine
            .certain(&o, &d, &q, &[Term::Const(ca)], &mut v)
            .is_certain());
    }

    /// O = { ∀x(A(x) → ¬∃y(R(x,y) ∧ x ≠ y)) } — A-elements have no
    /// *distinct* R-successor (uGF⁻(1,=)).
    fn no_distinct_successor(v: &mut Vocab) -> GfOntology {
        let a_rel = v.rel("A", 1);
        let r = v.rel("R", 2);
        let (x, y) = (LVar(0), LVar(1));
        GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(a_rel, x),
                Formula::Not(Box::new(Formula::Exists {
                    qvars: vec![y],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![x, y],
                    },
                    body: Box::new(Formula::Not(Box::new(Formula::Eq(x, y)))),
                })),
            ),
            vec!["x".into(), "y".into()],
        )])
    }

    #[test]
    fn distinct_quantifiers_ignore_self_loops() {
        let mut v = Vocab::new();
        let o = no_distinct_successor(&mut v);
        let sys = ElementTypeSystem::build(&o, &v).expect("uGF⁻(1,=) supported");
        assert!(sys.uses_distinctness());
        let a_rel = v.rel("A", 1);
        let r = v.rel("R", 2);
        let ca = v.constant("s0");
        let cb = v.constant("s1");
        // A self-loop is fine…
        let mut d1 = Instance::new();
        d1.insert(Fact::consts(a_rel, &[ca]));
        d1.insert(Fact::consts(r, &[ca, ca]));
        assert!(!sys.instance_types(&d1).inconsistent);
        // …a proper edge is a contradiction.
        let mut d2 = Instance::new();
        d2.insert(Fact::consts(a_rel, &[ca]));
        d2.insert(Fact::consts(r, &[ca, cb]));
        assert!(sys.instance_types(&d2).inconsistent);
        // Cross-check both verdicts with the engine.
        let engine = gomq_reasoning::CertainEngine::new(1);
        assert!(engine.consistency(&o, &d1, &mut v).is_consistent());
        assert!(!engine.consistency(&o, &d2, &mut v).is_consistent());
    }

    #[test]
    fn handwritten_ugf_sentence_supported() {
        // ∀x(A(x) → ∃y(R(x,y) ∧ A(y))) — materializable Horn with infinite
        // chase; type elimination handles it finitely.
        let mut v = Vocab::new();
        let a_rel = v.rel("A", 1);
        let r = v.rel("R", 2);
        let (x, y) = (LVar(0), LVar(1));
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(a_rel, x),
                Formula::Exists {
                    qvars: vec![y],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![x, y],
                    },
                    body: Box::new(Formula::unary(a_rel, y)),
                },
            ),
            vec!["x".into(), "y".into()],
        )]);
        let sys = ElementTypeSystem::build(&o, &v).expect("supported");
        let ca = v.constant("a");
        let mut d = Instance::new();
        d.insert(Fact::consts(a_rel, &[ca]));
        assert!(!sys.instance_types(&d).inconsistent);
        assert_eq!(sys.certain_unary(&d, a_rel).len(), 1);
    }
}
