//! # gomq-rewriting
//!
//! The PTIME side of the dichotomy: Datalog(≠)-rewritability machinery.
//!
//! * [`types`] — the element-type system for ∀x-guarded uGF₂(1) ontologies
//!   (the translations of ALCI depth-1 TBoxes): globally realizable types
//!   by type elimination, per-instance type assignment, and certain
//!   answers to atomic queries. This implements the computation performed
//!   by the paper's Theorem-5 Datalog≠ program: the program marks each
//!   guarded tuple with the set of types that survive compatibility
//!   propagation, answers the query when every surviving type entails it,
//!   and fires on inconsistency.
//! * [`emit`] — materializes that computation as an actual
//!   [`gomq_datalog::Program`], one `elim_θ` predicate per type.
//! * [`classify`] — per-ontology reports combining the Figure-1 fragment
//!   label and zone with materializability probes.
//! * [`canon`] — canonical OMQ text and the stable 64-bit key under
//!   which `gomq-engine` caches compiled plans.
//! * [`sql`] — emits non-recursive plan IRs (UCQ-shaped rewritings and
//!   acyclic Theorem-5 type programs) as portable SQL text for
//!   relational backends; recursive IRs get a typed refusal.

#![warn(missing_docs)]

pub mod canon;
pub mod classify;
pub mod emit;
pub mod sql;
pub mod types;

pub use canon::{canonical_omq_hash, canonical_omq_text, fnv1a};
pub use classify::{classify_ontology, OntologyReport};
pub use sql::{emit_sql, SqlEmitError, SqlPlan};
pub use types::{ElementTypeSystem, RewriteError, TypeKernel, TypeStats};
