//! Emitting non-recursive plan IRs as portable SQL text.
//!
//! A [`PlanIr`] whose strata are all non-recursive is a bounded tower
//! of select-project-join-union layers: the UCQ-shaped rewritings and
//! the acyclic Theorem-5 type programs. [`emit_sql`] compiles such an
//! IR to one SQL statement — one CTE per stratum, in bodies-first
//! order — that any relational database can run:
//!
//! * each rule becomes a `SELECT DISTINCT` block whose `FROM` items are
//!   the positive body atoms (one alias per atom), with join equalities
//!   for repeated variables, `= '…'` equalities for ground arguments
//!   and `<>` comparisons for `≠` guards;
//! * the rules of one head relation are `UNION`ed together, after a
//!   base branch reading the relation's own table — the fixpoint
//!   engine seeds every IDB relation with its EDB facts, and the SQL
//!   translation must agree;
//! * recursive IRs are refused with the typed
//!   [`SqlEmitError::Recursive`] — the caller surfaces this as the
//!   `non-rewritable-to-sql` status, never as a wrong answer.
//!
//! The emitted dialect is deliberately tiny (see `gomq-sqlexec`, the
//! in-process reference executor it is cross-checked against): `WITH`,
//! `SELECT DISTINCT`, `UNION`, `=`/`<>`, `ORDER BY`, single-quoted
//! string literals and double-quoted identifiers.

use gomq_core::{Term, Vocab};
use gomq_datalog::ir::PlanIr;
use gomq_datalog::{DTerm, Literal, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;

/// A compiled SQL statement plus the schema it expects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlPlan {
    /// The full statement text (independent of any concrete ABox).
    pub sql: String,
    /// Base tables the statement reads, as `(name, arity)` in name
    /// order. Columns of a table of arity `n` are `c0 … c{n-1}`. IDB
    /// relations appear here too: their tables seed the corresponding
    /// CTE (usually empty for the fresh `_elim`/`_dom`/`_goal`
    /// relations of an OMQ rewriting, but required to exist).
    pub tables: Vec<(String, usize)>,
    /// Number of answer columns (the goal relation's arity).
    pub goal_columns: usize,
}

/// Why an IR could not be emitted as SQL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqlEmitError {
    /// Some stratum needs a fixpoint loop; SQL (without recursive CTEs)
    /// cannot express it. `heads` names the offending relations.
    Recursive {
        /// Head relations of the recursive strata, name order.
        heads: Vec<String>,
    },
    /// A referenced relation has arity 0 (no columns to select).
    ZeroArity(String),
    /// A `≠` guard mentions a variable no positive atom binds (such a
    /// rule is ill-formed for the native engine too).
    UnboundNeqVar(u32),
}

impl fmt::Display for SqlEmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlEmitError::Recursive { heads } => write!(
                f,
                "rewriting is recursive (fixpoint strata over {}); not expressible as SQL",
                heads.join(", ")
            ),
            SqlEmitError::ZeroArity(name) => {
                write!(
                    f,
                    "relation {name} has arity 0; SQL needs at least one column"
                )
            }
            SqlEmitError::UnboundNeqVar(v) => {
                write!(f, "inequality over unbound variable ?{v}")
            }
        }
    }
}

impl std::error::Error for SqlEmitError {}

/// `'…'` string literal with `''` escaping.
fn str_lit(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// `"…"` identifier with `""` escaping.
fn ident(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

fn term_lit(t: Term, vocab: &Vocab) -> String {
    str_lit(&t.display(vocab).to_string())
}

/// Compiles a non-recursive `ir` to one portable SQL statement.
///
/// Fails with [`SqlEmitError::Recursive`] when any stratum needs a
/// fixpoint. Bodyless rules are skipped: the native engine derives
/// nothing from them (`derive` returns early without a positive atom),
/// and the translation must agree.
pub fn emit_sql(ir: &PlanIr, vocab: &Vocab) -> Result<SqlPlan, SqlEmitError> {
    if ir.is_recursive() {
        let heads: BTreeSet<String> = ir
            .strata
            .iter()
            .filter(|s| s.recursive)
            .flat_map(|s| s.heads())
            .map(|r| vocab.rel_name(r).to_string())
            .collect();
        return Err(SqlEmitError::Recursive {
            heads: heads.into_iter().collect(),
        });
    }

    let idb: BTreeSet<_> = ir.rules().map(|r| r.head.rel).collect();
    // Every relation read as a base table: EDB body relations, the EDB
    // seed of each IDB relation, and the goal itself.
    let mut base: BTreeSet<_> = idb.clone();
    base.insert(ir.goal);
    for rule in ir.rules() {
        for atom in rule.positive_atoms() {
            base.insert(atom.rel);
        }
    }
    for &rel in &base {
        if vocab.arity(rel) == 0 {
            return Err(SqlEmitError::ZeroArity(vocab.rel_name(rel).to_string()));
        }
    }

    // CTE names: `cte_<rel>`, kept clear of every real relation name so
    // a CTE can never shadow a base table in the executor.
    let cte_name = |rel| {
        let mut name = format!("cte_{}", vocab.rel_name(rel));
        while vocab.find_rel(&name).is_some() {
            name.push('_');
        }
        name
    };
    let cte_names: BTreeMap<_, String> = idb.iter().map(|&r| (r, cte_name(r))).collect();
    let table_of = |rel| match cte_names.get(&rel) {
        Some(cte) => ident(cte),
        None => ident(vocab.rel_name(rel)),
    };

    let mut sql = String::new();
    let goal_columns = vocab.arity(ir.goal);
    let _ = writeln!(
        sql,
        "-- certain-answer rewriting for goal {} ({goal_columns} column{})",
        ident(vocab.rel_name(ir.goal)),
        if goal_columns == 1 { "" } else { "s" }
    );
    let tables: Vec<(String, usize)> = {
        let mut named: Vec<_> = base
            .iter()
            .map(|&r| (vocab.rel_name(r).to_string(), vocab.arity(r)))
            .collect();
        named.sort();
        named
    };
    for (name, arity) in &tables {
        let cols: Vec<String> = (0..*arity).map(|i| format!("c{i}")).collect();
        let _ = writeln!(
            sql,
            "-- requires table {}({})",
            ident(name),
            cols.join(", ")
        );
    }

    // One CTE per IDB relation, stratum order (each non-recursive
    // stratum defines exactly one relation, but group defensively).
    let mut ctes: Vec<(String, String)> = Vec::new();
    for stratum in &ir.strata {
        let mut heads_in_order: Vec<_> = Vec::new();
        for rule in &stratum.rules {
            if !heads_in_order.contains(&rule.head.rel) {
                heads_in_order.push(rule.head.rel);
            }
        }
        for head in heads_in_order {
            let arity = vocab.arity(head);
            let mut branches = Vec::new();
            // Base branch: the relation's own EDB facts.
            let cols: Vec<String> = (0..arity).map(|i| format!("t0.c{i} AS c{i}")).collect();
            branches.push(format!(
                "  SELECT DISTINCT {} FROM {} t0",
                cols.join(", "),
                ident(vocab.rel_name(head))
            ));
            for rule in stratum.rules.iter().filter(|r| r.head.rel == head) {
                if let Some(b) = rule_branch(rule, vocab, &table_of)? {
                    branches.push(b);
                }
            }
            ctes.push((cte_names[&head].clone(), branches.join("\n  UNION\n")));
        }
    }
    if !ctes.is_empty() {
        let _ = writeln!(sql, "WITH");
        for (i, (name, body)) in ctes.iter().enumerate() {
            let sep = if i + 1 < ctes.len() { "," } else { "" };
            let _ = writeln!(sql, "{} AS (\n{body}\n){sep}", ident(name));
        }
    }
    let answer_cols: Vec<String> = (0..goal_columns)
        .map(|i| format!("t0.c{i} AS c{i}"))
        .collect();
    let order: Vec<String> = (0..goal_columns).map(|i| format!("c{i}")).collect();
    let _ = writeln!(
        sql,
        "SELECT DISTINCT {} FROM {} t0 ORDER BY {};",
        answer_cols.join(", "),
        table_of(ir.goal),
        order.join(", ")
    );

    Ok(SqlPlan {
        sql,
        tables,
        goal_columns,
    })
}

/// One rule as a `SELECT DISTINCT` branch, or `None` for a bodyless
/// rule (derives nothing under the native semantics).
fn rule_branch(
    rule: &Rule,
    vocab: &Vocab,
    table_of: &dyn Fn(gomq_core::RelId) -> String,
) -> Result<Option<String>, SqlEmitError> {
    let atoms: Vec<_> = rule.positive_atoms().collect();
    if atoms.is_empty() {
        return Ok(None);
    }
    // First occurrence of each variable across the body atoms.
    let mut bound: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    let mut conds: Vec<String> = Vec::new();
    for (i, atom) in atoms.iter().enumerate() {
        for (j, arg) in atom.args.iter().enumerate() {
            match arg {
                DTerm::Var(v) => match bound.get(v) {
                    Some(&(bi, bj)) => conds.push(format!("t{i}.c{j} = t{bi}.c{bj}")),
                    None => {
                        bound.insert(*v, (i, j));
                    }
                },
                DTerm::Ground(t) => conds.push(format!("t{i}.c{j} = {}", term_lit(*t, vocab))),
            }
        }
    }
    let resolve = |t: &DTerm| -> Result<String, SqlEmitError> {
        match t {
            DTerm::Ground(g) => Ok(term_lit(*g, vocab)),
            DTerm::Var(v) => bound
                .get(v)
                .map(|&(i, j)| format!("t{i}.c{j}"))
                .ok_or(SqlEmitError::UnboundNeqVar(*v)),
        }
    };
    for l in &rule.body {
        if let Literal::Neq(a, b) = l {
            conds.push(format!("{} <> {}", resolve(a)?, resolve(b)?));
        }
    }
    let mut items = Vec::with_capacity(rule.head.args.len());
    for (p, arg) in rule.head.args.iter().enumerate() {
        // Head variables are bound by range restriction (Rule::new
        // rejects violations) and ground head terms become literals.
        let e = resolve(arg)?;
        items.push(format!("{e} AS c{p}"));
    }
    let from: Vec<String> = atoms
        .iter()
        .enumerate()
        .map(|(i, a)| format!("{} t{i}", table_of(a.rel)))
        .collect();
    let where_clause = if conds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conds.join(" AND "))
    };
    Ok(Some(format!(
        "  SELECT DISTINCT {} FROM {}{}",
        items.join(", "),
        from.join(", "),
        where_clause
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_datalog::{DAtom, Program};
    use gomq_sqlexec::{run, Database, Limits};

    fn pos(rel: gomq_core::RelId, vars: &[u32]) -> Literal {
        Literal::Pos(DAtom::vars(rel, vars))
    }

    /// Executes an emitted plan over the instance's facts and compares
    /// with the program's own one-shot evaluation.
    fn crosscheck(p: &Program, v: &Vocab, d: &gomq_core::Instance) {
        let ir = PlanIr::of(p);
        let plan = emit_sql(&ir, v).expect("non-recursive");
        let mut db = Database::new();
        for (name, arity) in &plan.tables {
            db.create(name, *arity);
        }
        for f in d.iter() {
            let name = v.rel_name(f.rel).to_string();
            let row: Vec<String> = f.args.iter().map(|t| t.display(v).to_string()).collect();
            db.create(&name, row.len()).insert(row);
        }
        let got = run(&plan.sql, &db, &Limits::UNLIMITED).expect("execute");
        let expected: BTreeSet<Vec<String>> = p
            .eval(d)
            .into_iter()
            .map(|row| row.iter().map(|t| t.display(v).to_string()).collect())
            .collect();
        let got_rows: BTreeSet<Vec<String>> = got.rows.into_iter().collect();
        assert_eq!(got_rows, expected);
    }

    #[test]
    fn layered_program_round_trips() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let g = v.rel("goal", 1);
        let p = Program::new(
            vec![
                Rule::new(DAtom::vars(b, &[0]), vec![pos(a, &[0])]),
                Rule::new(DAtom::vars(b, &[0]), vec![pos(e, &[0, 1])]),
                Rule::new(
                    DAtom::vars(g, &[0]),
                    vec![
                        pos(b, &[0]),
                        pos(e, &[0, 1]),
                        Literal::Neq(DTerm::Var(0), DTerm::Var(1)),
                    ],
                ),
            ],
            g,
        );
        let mut d = gomq_core::Instance::new();
        let c1 = v.constant("c1");
        let c2 = v.constant("c2");
        let c3 = v.constant("c3");
        d.insert(gomq_core::Fact::consts(a, &[c1]));
        d.insert(gomq_core::Fact::consts(e, &[c1, c2]));
        d.insert(gomq_core::Fact::consts(e, &[c3, c3]));
        crosscheck(&p, &v, &d);
    }

    #[test]
    fn goal_edb_facts_survive_translation() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let g = v.rel("goal", 1);
        let p = Program::new(vec![Rule::new(DAtom::vars(g, &[0]), vec![pos(a, &[0])])], g);
        let mut d = gomq_core::Instance::new();
        let c1 = v.constant("c1");
        let c2 = v.constant("c2");
        d.insert(gomq_core::Fact::consts(a, &[c1]));
        // An answer already present as a goal EDB fact.
        d.insert(gomq_core::Fact::consts(g, &[c2]));
        crosscheck(&p, &v, &d);
    }

    #[test]
    fn recursive_ir_is_refused_with_heads_named() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let t = v.rel("T", 2);
        let g = v.rel("goal", 2);
        let p = Program::new(
            vec![
                Rule::new(DAtom::vars(t, &[0, 1]), vec![pos(e, &[0, 1])]),
                Rule::new(
                    DAtom::vars(t, &[0, 2]),
                    vec![pos(t, &[0, 1]), pos(e, &[1, 2])],
                ),
                Rule::new(DAtom::vars(g, &[0, 1]), vec![pos(t, &[0, 1])]),
            ],
            g,
        );
        match emit_sql(&PlanIr::of(&p), &v) {
            Err(SqlEmitError::Recursive { heads }) => assert_eq!(heads, vec!["T".to_string()]),
            other => panic!("expected recursive refusal, got {other:?}"),
        }
    }

    #[test]
    fn ground_terms_and_quotes_are_escaped() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let g = v.rel("goal", 1);
        let odd = v.constant("it's");
        let p = Program::new(
            vec![Rule::new(
                DAtom {
                    rel: g,
                    args: vec![DTerm::Var(0)],
                },
                vec![
                    pos(a, &[0]),
                    Literal::Neq(DTerm::Var(0), DTerm::Ground(Term::Const(odd))),
                ],
            )],
            g,
        );
        let mut d = gomq_core::Instance::new();
        let plain = v.constant("plain");
        d.insert(gomq_core::Fact::consts(a, &[odd]));
        d.insert(gomq_core::Fact::consts(a, &[plain]));
        crosscheck(&p, &v, &d);
    }

    #[test]
    fn emitted_text_lists_required_tables() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let g = v.rel("goal", 1);
        let p = Program::new(vec![Rule::new(DAtom::vars(g, &[0]), vec![pos(a, &[0])])], g);
        let plan = emit_sql(&PlanIr::of(&p), &v).unwrap();
        assert_eq!(
            plan.tables,
            vec![("A".to_string(), 1), ("goal".to_string(), 1)]
        );
        assert!(plan.sql.contains("-- requires table \"A\"(c0)"));
        assert_eq!(plan.goal_columns, 1);
    }
}
