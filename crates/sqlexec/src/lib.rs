//! # gomq-sqlexec
//!
//! A tiny, dependency-free, in-process executor for the portable SQL
//! that `gomq-rewriting::emit_sql` produces from non-recursive plan
//! IRs. It exists so the SQL backend can be cross-checked against the
//! native fixpoint engine without an external database: the emitted
//! text is executed here over a sorted-vec, string-valued table model
//! (the shape of a SQLite file: named tables of fixed-arity rows kept
//! in sorted order), and the answer sets must coincide.
//!
//! Like `gomq-cert`, the crate is deliberately standalone — it depends
//! on nothing, engine crates included, so it cannot accidentally share
//! evaluation code with the backend it is checking.
//!
//! ## Supported dialect
//!
//! `WITH name AS (…), … SELECT [DISTINCT] items FROM t alias, … WHERE
//! cond AND … [UNION | EXCEPT …] [ORDER BY …]`, where conditions are
//! `=` / `<>` comparisons over qualified column references and string
//! literals, plus `NOT EXISTS (SELECT …)` with correlation to outer
//! aliases. `--` line comments are skipped. Evaluation is nested-loop
//! with conditions applied as early as their references are bound;
//! `UNION`/`EXCEPT` have set semantics and every result is returned
//! sorted and, under `DISTINCT`, deduplicated.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Table model
// ---------------------------------------------------------------------------

/// A named relation: fixed arity, string-valued rows kept sorted and
/// deduplicated (a sorted-vec "file page", not a hash index).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Relation name as it appears in SQL (unquoted form).
    pub name: String,
    /// Number of columns; column `i` is addressed as `c{i}`.
    pub arity: usize,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, arity: usize) -> Table {
        Table {
            name: name.to_string(),
            arity,
            rows: Vec::new(),
        }
    }

    /// Inserts a row, keeping the sorted-unique invariant; returns
    /// whether the row was new.
    ///
    /// # Panics
    /// If the row's length differs from the table's arity.
    pub fn insert(&mut self, row: Vec<String>) -> bool {
        assert_eq!(row.len(), self.arity, "row arity mismatch on {}", self.name);
        match self.rows.binary_search(&row) {
            Ok(_) => false,
            Err(at) => {
                self.rows.insert(at, row);
                true
            }
        }
    }

    /// The rows, sorted ascending.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A set of tables addressed by name.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates the table if absent and returns it.
    ///
    /// # Panics
    /// If the table exists with a different arity.
    pub fn create(&mut self, name: &str, arity: usize) -> &mut Table {
        let t = self
            .tables
            .entry(name.to_string())
            .or_insert_with(|| Table::new(name, arity));
        assert_eq!(t.arity, arity, "table {name} redeclared with new arity");
        t
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Iterates over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }
}

// ---------------------------------------------------------------------------
// Errors and limits
// ---------------------------------------------------------------------------

/// Why a statement could not be executed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqlError {
    /// The text is not in the supported dialect.
    Parse(String),
    /// The text parsed but references something that does not exist
    /// (table, column, alias) or is shape-inconsistent (arity).
    Semantic(String),
    /// More rows were materialized than `Limits::max_rows` allows.
    RowLimit(usize),
    /// The wall-clock deadline passed mid-evaluation.
    Deadline,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "SQL parse error: {m}"),
            SqlError::Semantic(m) => write!(f, "SQL semantic error: {m}"),
            SqlError::RowLimit(n) => write!(f, "row budget exceeded ({n} rows materialized)"),
            SqlError::Deadline => write!(f, "deadline exceeded during SQL evaluation"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Cooperative resource limits for one `run` call.
#[derive(Clone, Copy, Debug, Default)]
pub struct Limits {
    /// Maximum rows materialized across all selects and CTEs.
    pub max_rows: Option<usize>,
    /// Wall-clock deadline, checked periodically.
    pub deadline: Option<Instant>,
}

impl Limits {
    /// No limits: every check passes.
    pub const UNLIMITED: Limits = Limits {
        max_rows: None,
        deadline: None,
    };
}

/// The rows a statement produced, with their output column names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultSet {
    /// Output column names, in select-list order.
    pub columns: Vec<String>,
    /// Output rows, sorted ascending (by the `ORDER BY` keys first, if
    /// any, then the full row).
    pub rows: Vec<Vec<String>>,
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    /// Unquoted identifier or keyword (original spelling kept).
    Word(String),
    /// `"…"`-quoted identifier, quotes resolved.
    Quoted(String),
    /// `'…'` string literal, quotes resolved.
    Str(String),
    /// Digit run.
    Num(String),
    Comma,
    LParen,
    RParen,
    Dot,
    Eq,
    Neq,
}

fn lex(text: &str) -> Result<Vec<Tok>, SqlError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            ';' => i += 1, // statement terminator: accepted, ignored
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                toks.push(Tok::Neq);
                i += 2;
            }
            '"' | '\'' => {
                let quote = c;
                let mut out = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err(SqlError::Parse(format!("unterminated {quote} quote"))),
                        Some(&q) if q == quote => {
                            if chars.get(i + 1) == Some(&quote) {
                                out.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            out.push(ch);
                            i += 1;
                        }
                    }
                }
                toks.push(if quote == '"' {
                    Tok::Quoted(out)
                } else {
                    Tok::Str(out)
                });
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                toks.push(Tok::Num(chars[start..i].iter().collect()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    i += 1;
                }
                toks.push(Tok::Word(chars[start..i].iter().collect()));
            }
            other => return Err(SqlError::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// AST + parser
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Expr {
    /// `alias.col` or bare `col`.
    Col(Option<String>, String),
    /// A string (or numeric, normalized to its digits) literal.
    Lit(String),
}

#[derive(Clone, Debug)]
enum Cond {
    /// `lhs = rhs` (`eq` true) or `lhs <> rhs` (`eq` false).
    Cmp(Expr, bool, Expr),
    NotExists(Box<Select>),
}

#[derive(Clone, Debug)]
struct Select {
    distinct: bool,
    /// `(expr, output name)`; the name defaults per expression kind.
    items: Vec<(Expr, String)>,
    /// `(table name, alias)`; empty for `FROM`-less selects.
    from: Vec<(String, String)>,
    cond: Vec<Cond>,
}

#[derive(Clone, Debug)]
enum SetExpr {
    Select(Select),
    Union(Box<SetExpr>, Box<SetExpr>),
    Except(Box<SetExpr>, Box<SetExpr>),
}

#[derive(Clone, Debug)]
struct Query {
    ctes: Vec<(String, SetExpr)>,
    body: SetExpr,
    /// Output column names (or 1-based positions) to sort by first.
    order: Vec<String>,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), SqlError> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    /// An identifier: bare word (non-keyword position) or quoted.
    fn name(&mut self) -> Result<String, SqlError> {
        match self.peek().cloned() {
            Some(Tok::Word(w)) => {
                self.pos += 1;
                Ok(w)
            }
            Some(Tok::Quoted(q)) => {
                self.pos += 1;
                Ok(q)
            }
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        let mut ctes = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.name()?;
                self.expect_kw("AS")?;
                self.expect(Tok::LParen)?;
                let body = self.set_expr()?;
                self.expect(Tok::RParen)?;
                ctes.push((name, body));
                if !matches!(self.peek(), Some(Tok::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        let body = self.set_expr()?;
        let mut order = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                match self.peek().cloned() {
                    Some(Tok::Num(n)) => {
                        self.pos += 1;
                        order.push(n);
                    }
                    _ => order.push(self.name()?),
                }
                if !matches!(self.peek(), Some(Tok::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        if let Some(t) = self.peek() {
            return Err(SqlError::Parse(format!("trailing input at {t:?}")));
        }
        Ok(Query { ctes, body, order })
    }

    fn set_expr(&mut self) -> Result<SetExpr, SqlError> {
        let mut left = SetExpr::Select(self.select()?);
        loop {
            if self.eat_kw("UNION") {
                let right = self.select()?;
                left = SetExpr::Union(Box::new(left), Box::new(SetExpr::Select(right)));
            } else if self.eat_kw("EXCEPT") {
                let right = self.select()?;
                left = SetExpr::Except(Box::new(left), Box::new(SetExpr::Select(right)));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            let e = self.expr()?;
            let name = if self.eat_kw("AS") {
                self.name()?
            } else {
                match &e {
                    Expr::Col(_, c) => c.clone(),
                    Expr::Lit(_) => format!("col{}", items.len()),
                }
            };
            items.push((e, name));
            if !matches!(self.peek(), Some(Tok::Comma)) {
                break;
            }
            self.pos += 1;
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                let table = self.name()?;
                // Optional alias: a bare word that is not a clause keyword.
                let alias = match self.peek() {
                    Some(Tok::Word(w))
                        if !["WHERE", "UNION", "EXCEPT", "ORDER", "AND"]
                            .iter()
                            .any(|k| w.eq_ignore_ascii_case(k)) =>
                    {
                        self.name()?
                    }
                    _ => table.clone(),
                };
                from.push((table, alias));
                if !matches!(self.peek(), Some(Tok::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        let mut cond = Vec::new();
        if self.eat_kw("WHERE") {
            loop {
                cond.push(self.cond()?);
                if !self.eat_kw("AND") {
                    break;
                }
            }
        }
        Ok(Select {
            distinct,
            items,
            from,
            cond,
        })
    }

    fn cond(&mut self) -> Result<Cond, SqlError> {
        if self.peek_kw("NOT") {
            self.pos += 1;
            self.expect_kw("EXISTS")?;
            self.expect(Tok::LParen)?;
            let sub = self.select()?;
            self.expect(Tok::RParen)?;
            return Ok(Cond::NotExists(Box::new(sub)));
        }
        let lhs = self.expr()?;
        let eq = match self.peek() {
            Some(Tok::Eq) => true,
            Some(Tok::Neq) => false,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected = or <>, found {other:?}"
                )))
            }
        };
        self.pos += 1;
        let rhs = self.expr()?;
        Ok(Cond::Cmp(lhs, eq, rhs))
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(s))
            }
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(Expr::Lit(n))
            }
            Some(Tok::Word(_)) | Some(Tok::Quoted(_)) => {
                let first = self.name()?;
                if matches!(self.peek(), Some(Tok::Dot)) {
                    self.pos += 1;
                    let col = self.name()?;
                    Ok(Expr::Col(Some(first), col))
                } else {
                    Ok(Expr::Col(None, first))
                }
            }
            other => Err(SqlError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// One bound from-item during nested-loop evaluation: alias, its
/// column names, and the current row (empty before it is bound).
struct Binding<'a> {
    alias: &'a str,
    columns: &'a [String],
    row: &'a [String],
}

/// Row-fuel and deadline bookkeeping shared by the whole statement.
struct Meter {
    produced: usize,
    ticks: u32,
}

impl Meter {
    fn row(&mut self, limits: &Limits) -> Result<(), SqlError> {
        self.produced += 1;
        if limits.max_rows.is_some_and(|max| self.produced > max) {
            return Err(SqlError::RowLimit(self.produced));
        }
        self.tick(limits)
    }

    fn tick(&mut self, limits: &Limits) -> Result<(), SqlError> {
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(4096) && limits.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(SqlError::Deadline);
        }
        Ok(())
    }
}

/// A from-item's concrete rows: either a base table or a CTE result.
struct Source<'a> {
    alias: String,
    columns: Vec<String>,
    rows: &'a [Vec<String>],
}

fn resolve_sources<'a>(
    sel: &Select,
    db: &'a Database,
    ctes: &'a BTreeMap<String, ResultSet>,
) -> Result<Vec<Source<'a>>, SqlError> {
    sel.from
        .iter()
        .map(|(table, alias)| {
            if let Some(r) = ctes.get(table) {
                Ok(Source {
                    alias: alias.clone(),
                    columns: r.columns.clone(),
                    rows: &r.rows,
                })
            } else if let Some(t) = db.table(table) {
                Ok(Source {
                    alias: alias.clone(),
                    columns: (0..t.arity).map(|i| format!("c{i}")).collect(),
                    rows: t.rows(),
                })
            } else {
                Err(SqlError::Semantic(format!("unknown table {table:?}")))
            }
        })
        .collect()
}

/// Resolves a column reference against local bindings (innermost
/// first), then the outer correlation scope. Returns the value.
fn col_value(
    alias: &Option<String>,
    col: &str,
    locals: &[Binding<'_>],
    outer: &[Binding<'_>],
) -> Result<String, SqlError> {
    let scopes = locals.iter().chain(outer.iter());
    let mut found = None;
    for b in scopes {
        if alias.as_deref().is_some_and(|a| a != b.alias) {
            continue;
        }
        if let Some(i) = b.columns.iter().position(|c| c == col) {
            found = Some(b.row[i].clone());
            break;
        }
        if alias.is_some() {
            return Err(SqlError::Semantic(format!(
                "no column {col:?} in {:?}",
                b.alias
            )));
        }
    }
    found.ok_or_else(|| match alias {
        Some(a) => SqlError::Semantic(format!("unknown alias {a:?}")),
        None => SqlError::Semantic(format!("unknown column {col:?}")),
    })
}

/// The earliest local from-index after which every reference of `e` is
/// bound (0 = before any local binding, i.e. outer/literal only).
fn expr_level(e: &Expr, sources: &[Source<'_>]) -> usize {
    match e {
        Expr::Lit(_) => 0,
        Expr::Col(Some(a), _) => sources
            .iter()
            .position(|s| &s.alias == a)
            .map_or(0, |i| i + 1),
        Expr::Col(None, c) => sources
            .iter()
            .position(|s| s.columns.iter().any(|col| col == c))
            .map_or(0, |i| i + 1),
    }
}

fn cond_level(c: &Cond, sources: &[Source<'_>]) -> usize {
    match c {
        Cond::Cmp(l, _, r) => expr_level(l, sources).max(expr_level(r, sources)),
        Cond::NotExists(sub) => {
            // A correlated reference is one whose qualifier is not a
            // local alias of the subquery itself.
            let local: Vec<&str> = sub.from.iter().map(|(_, a)| a.as_str()).collect();
            let mut level = 0;
            let visit_expr = |e: &Expr, level: &mut usize| {
                if let Expr::Col(Some(a), _) = e {
                    if !local.contains(&a.as_str()) {
                        if let Some(i) = sources.iter().position(|s| &s.alias == a) {
                            *level = (*level).max(i + 1);
                        }
                    }
                }
            };
            for (e, _) in &sub.items {
                visit_expr(e, &mut level);
            }
            for c in &sub.cond {
                if let Cond::Cmp(l, _, r) = c {
                    visit_expr(l, &mut level);
                    visit_expr(r, &mut level);
                }
            }
            level
        }
    }
}

fn eval_expr(e: &Expr, locals: &[Binding<'_>], outer: &[Binding<'_>]) -> Result<String, SqlError> {
    match e {
        Expr::Lit(s) => Ok(s.clone()),
        Expr::Col(alias, col) => col_value(alias, col, locals, outer),
    }
}

fn eval_cond(
    c: &Cond,
    locals: &[Binding<'_>],
    outer: &[Binding<'_>],
    db: &Database,
    ctes: &BTreeMap<String, ResultSet>,
    meter: &mut Meter,
    limits: &Limits,
) -> Result<bool, SqlError> {
    match c {
        Cond::Cmp(l, eq, r) => {
            let lv = eval_expr(l, locals, outer)?;
            let rv = eval_expr(r, locals, outer)?;
            Ok((lv == rv) == *eq)
        }
        Cond::NotExists(sub) => {
            // The subquery's correlation scope is the current frame.
            let mut scope: Vec<Binding<'_>> = Vec::new();
            for b in locals.iter().chain(outer.iter()) {
                scope.push(Binding {
                    alias: b.alias,
                    columns: b.columns,
                    row: b.row,
                });
            }
            let rows = eval_select(sub, db, ctes, &scope, meter, limits, true)?;
            Ok(rows.rows.is_empty())
        }
    }
}

/// Evaluates one select block. With `first_only`, stops at the first
/// accepted row (the `EXISTS` probe).
fn eval_select(
    sel: &Select,
    db: &Database,
    ctes: &BTreeMap<String, ResultSet>,
    outer: &[Binding<'_>],
    meter: &mut Meter,
    limits: &Limits,
    first_only: bool,
) -> Result<ResultSet, SqlError> {
    let sources = resolve_sources(sel, db, ctes)?;
    let columns: Vec<String> = sel.items.iter().map(|(_, n)| n.clone()).collect();
    // An inner cross product with an empty factor has no rows, wherever
    // that factor sits in the FROM list. Plans join the seed tables of
    // fresh IDB relations, which are usually empty — discovering that
    // only at the innermost loop level would cost the whole product of
    // the outer factors.
    if !sources.is_empty() && sources.iter().any(|s| s.rows.is_empty()) {
        return Ok(ResultSet {
            columns,
            rows: Vec::new(),
        });
    }
    // Conditions bucketed by the earliest binding depth they can run at.
    let mut cond_at: Vec<Vec<&Cond>> = vec![Vec::new(); sources.len() + 1];
    for c in &sel.cond {
        cond_at[cond_level(c, &sources)].push(c);
    }
    let mut out: Vec<Vec<String>> = Vec::new();

    // Nested-loop product with early condition application: depth k has
    // sources[..k] bound; conditions at bucket k run as soon as the
    // k-th binding lands (bucket 0 before anything local binds).
    #[allow(clippy::too_many_arguments)]
    fn descend<'a>(
        depth: usize,
        sources: &'a [Source<'a>],
        locals: &mut Vec<Binding<'a>>,
        cond_at: &[Vec<&Cond>],
        sel: &Select,
        db: &Database,
        ctes: &BTreeMap<String, ResultSet>,
        outer: &[Binding<'_>],
        meter: &mut Meter,
        limits: &Limits,
        first_only: bool,
        out: &mut Vec<Vec<String>>,
    ) -> Result<(), SqlError> {
        for c in &cond_at[depth] {
            if !eval_cond(c, locals, outer, db, ctes, meter, limits)? {
                return Ok(());
            }
        }
        if depth == sources.len() {
            let mut row = Vec::with_capacity(sel.items.len());
            for (e, _) in &sel.items {
                row.push(eval_expr(e, locals, outer)?);
            }
            meter.row(limits)?;
            out.push(row);
            return Ok(());
        }
        let src = &sources[depth];
        for row in src.rows {
            meter.tick(limits)?;
            locals.push(Binding {
                alias: &src.alias,
                columns: &src.columns,
                row,
            });
            let r = descend(
                depth + 1,
                sources,
                locals,
                cond_at,
                sel,
                db,
                ctes,
                outer,
                meter,
                limits,
                first_only,
                out,
            );
            locals.pop();
            r?;
            if first_only && !out.is_empty() {
                return Ok(());
            }
        }
        Ok(())
    }

    let mut locals: Vec<Binding<'_>> = Vec::new();
    descend(
        0,
        &sources,
        &mut locals,
        &cond_at,
        sel,
        db,
        ctes,
        outer,
        meter,
        limits,
        first_only,
        &mut out,
    )?;
    if sel.distinct {
        out.sort();
        out.dedup();
    }
    Ok(ResultSet { columns, rows: out })
}

fn eval_set_expr(
    e: &SetExpr,
    db: &Database,
    ctes: &BTreeMap<String, ResultSet>,
    meter: &mut Meter,
    limits: &Limits,
) -> Result<ResultSet, SqlError> {
    match e {
        SetExpr::Select(s) => eval_select(s, db, ctes, &[], meter, limits, false),
        SetExpr::Union(l, r) | SetExpr::Except(l, r) => {
            let mut lv = eval_set_expr(l, db, ctes, meter, limits)?;
            let rv = eval_set_expr(r, db, ctes, meter, limits)?;
            if lv.columns.len() != rv.columns.len() {
                return Err(SqlError::Semantic(format!(
                    "set operands have {} vs {} columns",
                    lv.columns.len(),
                    rv.columns.len()
                )));
            }
            lv.rows.sort();
            lv.rows.dedup();
            let mut right = rv.rows;
            right.sort();
            match e {
                SetExpr::Union(_, _) => {
                    lv.rows.extend(right);
                    lv.rows.sort();
                    lv.rows.dedup();
                }
                _ => lv.rows.retain(|row| right.binary_search(row).is_err()),
            }
            Ok(lv)
        }
    }
}

/// Parses and executes one statement against `db` under `limits`.
pub fn run(sql: &str, db: &Database, limits: &Limits) -> Result<ResultSet, SqlError> {
    let toks = lex(sql)?;
    let query = Parser { toks, pos: 0 }.query()?;
    let mut meter = Meter {
        produced: 0,
        ticks: 0,
    };
    let mut ctes: BTreeMap<String, ResultSet> = BTreeMap::new();
    for (name, body) in &query.ctes {
        if ctes.contains_key(name) {
            return Err(SqlError::Semantic(format!("duplicate CTE {name:?}")));
        }
        let r = eval_set_expr(body, db, &ctes, &mut meter, limits)?;
        ctes.insert(name.clone(), r);
    }
    let mut result = eval_set_expr(&query.body, db, &ctes, &mut meter, limits)?;
    // ORDER BY keys first (name or 1-based position), full row after,
    // so output is always deterministic.
    let mut keys: Vec<usize> = Vec::new();
    for k in &query.order {
        let idx = if let Ok(n) = k.parse::<usize>() {
            if n == 0 || n > result.columns.len() {
                return Err(SqlError::Semantic(format!(
                    "ORDER BY position {n} out of range"
                )));
            }
            n - 1
        } else {
            result
                .columns
                .iter()
                .position(|c| c == k)
                .ok_or_else(|| SqlError::Semantic(format!("unknown ORDER BY column {k:?}")))?
        };
        keys.push(idx);
    }
    result.rows.sort_by(|a, b| {
        for &k in &keys {
            match a[k].cmp(&b[k]) {
                std::cmp::Ordering::Equal => {}
                other => return other,
            }
        }
        a.cmp(b)
    });
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        let e = db.create("E", 2);
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c"), ("c", "c")] {
            e.insert(vec![a.to_string(), b.to_string()]);
        }
        let n = db.create("N", 1);
        n.insert(vec!["a".to_string()]);
        n.insert(vec!["b".to_string()]);
        n.insert(vec!["c".to_string()]);
        db
    }

    fn rows(r: &ResultSet) -> Vec<Vec<&str>> {
        r.rows
            .iter()
            .map(|row| row.iter().map(|s| s.as_str()).collect())
            .collect()
    }

    #[test]
    fn table_keeps_sorted_unique_rows() {
        let mut t = Table::new("T", 1);
        assert!(t.insert(vec!["b".into()]));
        assert!(t.insert(vec!["a".into()]));
        assert!(!t.insert(vec!["b".into()]));
        assert_eq!(t.rows(), &[vec!["a".to_string()], vec!["b".to_string()]]);
    }

    #[test]
    fn select_join_where() {
        let r = run(
            "SELECT DISTINCT t0.c0 AS c0, t1.c1 AS c1 \
             FROM \"E\" t0, \"E\" t1 WHERE t0.c1 = t1.c0 AND t0.c0 <> t1.c1 \
             ORDER BY c0, c1",
            &db(),
            &Limits::UNLIMITED,
        )
        .unwrap();
        assert_eq!(r.columns, vec!["c0", "c1"]);
        assert_eq!(rows(&r), vec![vec!["a", "c"], vec!["b", "c"]]);
    }

    #[test]
    fn empty_factor_short_circuits_the_product() {
        let mut db = db();
        db.create("Empty", 1);
        // An empty factor at the *end* of the FROM list still empties
        // the product without enumerating the outer factors: six
        // unconstrained E aliases tick past the 4096-tick deadline
        // check, so with a deadline already in the past a passing run
        // proves the loop never started.
        let limits = Limits {
            max_rows: None,
            deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
        };
        let r = run(
            "SELECT DISTINCT t0.c0 AS c0 \
             FROM \"E\" t0, \"E\" t1, \"E\" t2, \"E\" t3, \"E\" t4, \"E\" t5, \"Empty\" t6 \
             WHERE t6.c0 = t0.c0",
            &db,
            &limits,
        )
        .unwrap();
        assert_eq!(r.columns, vec!["c0"]);
        assert!(r.rows.is_empty());
        // NOT EXISTS over a provably empty subquery is vacuously true.
        let r = run(
            "SELECT DISTINCT t0.c0 AS c0 FROM \"N\" t0 WHERE NOT EXISTS (\
               SELECT t1.c0 AS c0 FROM \"Empty\" t1, \"E\" t2 \
               WHERE t1.c0 = t0.c0) \
             ORDER BY c0",
            &db,
            &Limits::UNLIMITED,
        )
        .unwrap();
        assert_eq!(rows(&r), vec![vec!["a"], vec!["b"], vec!["c"]]);
    }

    #[test]
    fn cte_union_and_ground_literal() {
        let r = run(
            "WITH \"good\" AS (\
               SELECT DISTINCT t0.c0 AS c0 FROM \"E\" t0 WHERE t0.c1 = 'c' \
               UNION \
               SELECT DISTINCT t0.c0 AS c0 FROM \"N\" t0 WHERE t0.c0 = 'a') \
             SELECT DISTINCT t0.c0 AS c0 FROM \"good\" t0 ORDER BY c0",
            &db(),
            &Limits::UNLIMITED,
        )
        .unwrap();
        assert_eq!(rows(&r), vec![vec!["a"], vec!["b"], vec!["c"]]);
    }

    #[test]
    fn except_has_set_semantics() {
        let r = run(
            "SELECT t0.c0 AS c0 FROM \"N\" t0 \
             EXCEPT \
             SELECT t0.c0 AS c0 FROM \"E\" t0 WHERE t0.c0 = t0.c1",
            &db(),
            &Limits::UNLIMITED,
        )
        .unwrap();
        assert_eq!(rows(&r), vec![vec!["a"], vec!["b"]]);
    }

    #[test]
    fn correlated_not_exists() {
        // Nodes with no outgoing E-edge to a *different* node.
        let r = run(
            "SELECT DISTINCT n.c0 AS c0 FROM \"N\" n \
             WHERE NOT EXISTS (\
               SELECT e.c0 AS c0 FROM \"E\" e WHERE e.c0 = n.c0 AND e.c1 <> n.c0) \
             ORDER BY c0",
            &db(),
            &Limits::UNLIMITED,
        )
        .unwrap();
        assert_eq!(rows(&r), vec![vec!["c"]]);
    }

    #[test]
    fn fromless_select_and_false_where() {
        let r = run("SELECT '' AS c0 WHERE 1 = 0", &db(), &Limits::UNLIMITED).unwrap();
        assert!(r.rows.is_empty());
        let r = run("SELECT 'x' AS c0", &db(), &Limits::UNLIMITED).unwrap();
        assert_eq!(rows(&r), vec![vec!["x"]]);
    }

    #[test]
    fn quoted_literals_resolve_escapes() {
        let mut db = Database::new();
        db.create("T", 1).insert(vec!["it's".to_string()]);
        let r = run(
            "SELECT t.c0 AS c0 FROM \"T\" t WHERE t.c0 = 'it''s'",
            &db,
            &Limits::UNLIMITED,
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn unknown_table_and_column_are_semantic_errors() {
        assert!(matches!(
            run(
                "SELECT t.c0 AS c0 FROM \"missing\" t",
                &db(),
                &Limits::UNLIMITED
            ),
            Err(SqlError::Semantic(_))
        ));
        assert!(matches!(
            run("SELECT t.c9 AS c0 FROM \"N\" t", &db(), &Limits::UNLIMITED),
            Err(SqlError::Semantic(_))
        ));
    }

    #[test]
    fn row_limit_trips() {
        let limits = Limits {
            max_rows: Some(2),
            deadline: None,
        };
        assert!(matches!(
            run("SELECT t.c0 AS c0 FROM \"N\" t", &db(), &limits),
            Err(SqlError::RowLimit(_))
        ));
    }

    #[test]
    fn comments_and_semicolon_are_skipped() {
        let r = run(
            "-- emitted by a test\nSELECT t.c0 AS c0 FROM \"N\" t ORDER BY 1;",
            &db(),
            &Limits::UNLIMITED,
        )
        .unwrap();
        assert_eq!(r.rows.len(), 3);
    }
}
