//! Fixed-width bitset rows and row-major bit matrices.
//!
//! The bit-parallel kernels of this workspace (the AC-3 type-elimination
//! kernel in `gomq-rewriting`, most prominently) represent sets of small
//! dense indices as `&[u64]` rows of a fixed word width. This module
//! holds the shared primitives: word-count arithmetic, single-bit
//! access, the row combinators (`or_assign`, `and_assign`, …), a
//! set-bit iterator, and [`BitMatrix`], a row-major matrix of such rows.
//!
//! All row operations require both operands to have the same word
//! width; rows are plain `u64` slices so callers can store many of them
//! contiguously and split-borrow freely.

/// Number of 64-bit words needed to hold `bits` bits.
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Sets bit `i` of the row.
#[inline]
pub fn set_bit(row: &mut [u64], i: usize) {
    row[i / 64] |= 1u64 << (i % 64);
}

/// Clears bit `i` of the row.
#[inline]
pub fn clear_bit(row: &mut [u64], i: usize) {
    row[i / 64] &= !(1u64 << (i % 64));
}

/// Whether bit `i` of the row is set.
#[inline]
pub fn test_bit(row: &[u64], i: usize) -> bool {
    row[i / 64] & (1u64 << (i % 64)) != 0
}

/// `dst |= src`, word-parallel.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// `dst &= src`, word-parallel; returns whether `dst` changed.
#[inline]
pub fn and_assign(dst: &mut [u64], src: &[u64]) -> bool {
    debug_assert_eq!(dst.len(), src.len());
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src) {
        let next = *d & s;
        changed |= next != *d;
        *d = next;
    }
    changed
}

/// Whether no bit of the row is set.
#[inline]
pub fn is_zero(row: &[u64]) -> bool {
    row.iter().all(|&w| w == 0)
}

/// Whether the rows share a set bit.
#[inline]
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// Number of set bits in the row.
#[inline]
pub fn count_ones(row: &[u64]) -> usize {
    row.iter().map(|w| w.count_ones() as usize).sum()
}

/// Iterates over the indices of the set bits, ascending.
pub fn ones(row: &[u64]) -> impl Iterator<Item = usize> + '_ {
    row.iter().enumerate().flat_map(|(wi, &w)| {
        std::iter::successors(if w == 0 { None } else { Some(w) }, |&rest| {
            let next = rest & (rest - 1);
            if next == 0 {
                None
            } else {
                Some(next)
            }
        })
        .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
    })
}

/// A fresh all-ones row over `bits` valid bits (trailing bits clear, so
/// `count_ones` and `ones` never see phantom members).
pub fn full_row(bits: usize) -> Vec<u64> {
    let mut row = vec![u64::MAX; words_for(bits)];
    let tail = bits % 64;
    if tail != 0 {
        if let Some(last) = row.last_mut() {
            *last = (1u64 << tail) - 1;
        }
    }
    row
}

/// A row-major matrix of equally wide bitset rows.
///
/// Row `r` is the word slice `[r·width, (r+1)·width)` of one contiguous
/// buffer; columns index bits within a row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    width: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero matrix with `rows` rows of `cols` bits each.
    pub fn new(rows: usize, cols: usize) -> Self {
        let width = words_for(cols);
        BitMatrix {
            rows,
            cols,
            width,
            words: vec![0; rows * width],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Word width of each row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sets bit `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        set_bit(self.row_mut(r), c);
    }

    /// Whether bit `(r, c)` is set.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        test_bit(self.row(r), c)
    }

    /// The row as a word slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.width..(r + 1) * self.width]
    }

    /// The row as a mutable word slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.words[r * self.width..(r + 1) * self.width]
    }

    /// Total number of set bits across all rows.
    pub fn count_ones(&self) -> usize {
        count_ones(&self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_and_full_rows() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(count_ones(&full_row(0)), 0);
        assert_eq!(count_ones(&full_row(64)), 64);
        assert_eq!(count_ones(&full_row(70)), 70);
        assert_eq!(ones(&full_row(3)).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn row_ops_roundtrip() {
        let mut a = vec![0u64; 2];
        set_bit(&mut a, 5);
        set_bit(&mut a, 64);
        set_bit(&mut a, 127);
        assert!(test_bit(&a, 5) && test_bit(&a, 64) && test_bit(&a, 127));
        assert_eq!(ones(&a).collect::<Vec<_>>(), vec![5, 64, 127]);
        clear_bit(&mut a, 64);
        assert_eq!(count_ones(&a), 2);
        let mut b = vec![0u64; 2];
        set_bit(&mut b, 5);
        assert!(intersects(&a, &b));
        // AND shrinks a to {5} and reports the change; a second AND is a
        // fixpoint.
        assert!(and_assign(&mut a, &b));
        assert!(!and_assign(&mut a, &b));
        assert_eq!(ones(&a).collect::<Vec<_>>(), vec![5]);
        or_assign(&mut b, &full_row(128));
        assert_eq!(count_ones(&b), 128);
        assert!(!is_zero(&b));
        assert!(is_zero(&[0, 0]));
    }

    #[test]
    fn matrix_rows_are_independent() {
        let mut m = BitMatrix::new(3, 70);
        m.set(0, 0);
        m.set(1, 69);
        m.set(2, 64);
        assert!(m.get(0, 0) && m.get(1, 69) && m.get(2, 64));
        assert!(!m.get(0, 69));
        assert_eq!(m.count_ones(), 3);
        assert_eq!(m.width(), 2);
        assert_eq!(ones(m.row(1)).collect::<Vec<_>>(), vec![69]);
    }
}
