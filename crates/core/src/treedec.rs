//! Guarded tree decompositions (§2.2).
//!
//! A guarded tree decomposition of `A` is an acyclic graph of *bags*, each
//! bag an induced subinterpretation over a guarded set, covering all of `A`
//! and satisfying the running-intersection (connectivity) property. A
//! *connected* guarded tree decomposition (cg-tree decomposition)
//! additionally requires the tree to be connected with overlapping adjacent
//! bags. Acyclicity of the hypergraph of maximal guarded sets is decided
//! with the GYO reduction; join trees are built greedily by maximum-overlap
//! spanning trees and verified.

use crate::fact::Term;
use crate::guarded::{is_connected, maximal_guarded_sets};
use crate::interpretation::Interpretation;
use std::collections::{BTreeMap, BTreeSet};

/// A connected guarded tree decomposition with a designated root.
#[derive(Clone, Debug)]
pub struct CgTreeDecomposition {
    /// The bag domains, one per tree node.
    pub bags: Vec<BTreeSet<Term>>,
    /// Undirected tree edges over bag indices.
    pub edges: Vec<(usize, usize)>,
    /// Index of the root bag.
    pub root: usize,
}

impl CgTreeDecomposition {
    /// The children of each node when the tree is rooted at `self.root`.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.bags.len()];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.bags.len()];
        let mut visited = vec![false; self.bags.len()];
        let mut stack = vec![self.root];
        visited[self.root] = true;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    children[u].push(v);
                    stack.push(v);
                }
            }
        }
        children
    }

    /// Checks the three decomposition conditions against `a`.
    pub fn is_valid_for(&self, a: &Interpretation) -> bool {
        // 1. Bags cover all facts (equivalently, the union of induced bags is A
        //    and every fact fits in some bag).
        let covers = a.iter().all(|f| {
            self.bags
                .iter()
                .any(|bag| f.args.iter().all(|t| bag.contains(t)))
        });
        if !covers {
            return false;
        }
        // 2. Each bag domain is guarded in A.
        let guarded = self.bags.iter().all(|bag| {
            crate::guarded::is_guarded_tuple(a, &bag.iter().copied().collect::<Vec<_>>())
        });
        if !guarded {
            return false;
        }
        // 3. Running intersection: for every element, the bags containing it
        //    form a connected subtree.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.bags.len()];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        for t in a.dom() {
            let holders: Vec<usize> = (0..self.bags.len())
                .filter(|&i| self.bags[i].contains(&t))
                .collect();
            if holders.is_empty() {
                return false;
            }
            // BFS within holder-induced subgraph.
            let holder_set: BTreeSet<usize> = holders.iter().copied().collect();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            let mut stack = vec![holders[0]];
            seen.insert(holders[0]);
            while let Some(u) = stack.pop() {
                for &v in &adj[u] {
                    if holder_set.contains(&v) && seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            if seen.len() != holders.len() {
                return false;
            }
        }
        // Connectivity of adjacent bags (the "cg" condition).
        self.edges
            .iter()
            .all(|&(u, v)| !self.bags[u].is_disjoint(&self.bags[v]))
    }
}

/// Decides whether the hypergraph of maximal guarded sets of `a` is
/// α-acyclic via the GYO reduction; this characterises guarded tree
/// decomposability.
pub fn is_guarded_tree_decomposable(a: &Interpretation) -> bool {
    let mut edges: Vec<BTreeSet<Term>> = maximal_guarded_sets(a);
    loop {
        let mut changed = false;
        // Count in how many hyperedges each vertex occurs.
        let mut occurs: BTreeMap<Term, usize> = BTreeMap::new();
        for e in &edges {
            for &t in e {
                *occurs.entry(t).or_default() += 1;
            }
        }
        // Remove "ear" vertices occurring in exactly one hyperedge.
        for e in edges.iter_mut() {
            let before = e.len();
            e.retain(|t| occurs[t] > 1);
            if e.len() != before {
                changed = true;
            }
        }
        // Remove hyperedges contained in another hyperedge (and empty ones).
        let snapshot = edges.clone();
        let before = edges.len();
        edges = snapshot
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                !e.is_empty()
                    && !snapshot
                        .iter()
                        .enumerate()
                        .any(|(j, f)| *i != j && (e.is_subset(f) && (e.len() < f.len() || *i > j)))
            })
            .map(|(_, e)| e.clone())
            .collect();
        if edges.len() != before {
            changed = true;
        }
        if edges.is_empty() {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

/// Attempts to build a cg-tree decomposition of `a`, optionally requiring
/// the root bag domain to be exactly `root_set`.
///
/// Returns `None` when `a` is not connected, not guarded tree
/// decomposable, or the requested root set is not guarded.
pub fn cg_tree_decomposition(
    a: &Interpretation,
    root_set: Option<&BTreeSet<Term>>,
) -> Option<CgTreeDecomposition> {
    if a.is_empty() {
        return None;
    }
    if !is_connected(a) || !is_guarded_tree_decomposable(a) {
        return None;
    }
    let mut bags: Vec<BTreeSet<Term>> = maximal_guarded_sets(a);
    let root = match root_set {
        Some(rs) => {
            let tuple: Vec<Term> = rs.iter().copied().collect();
            if !crate::guarded::is_guarded_tuple(a, &tuple) {
                return None;
            }
            // Use the requested set as an extra bag (it is guarded, so it is
            // contained in some maximal guarded set and preserves acyclicity).
            match bags.iter().position(|b| b == rs) {
                Some(i) => i,
                None => {
                    bags.push(rs.clone());
                    bags.len() - 1
                }
            }
        }
        None => 0,
    };
    // Maximum-overlap spanning tree (Prim), starting at the root bag.
    let n = bags.len();
    let mut in_tree = vec![false; n];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    in_tree[root] = true;
    for _ in 1..n {
        let mut best: Option<(usize, usize, usize)> = None; // (weight, from, to)
        for u in 0..n {
            if !in_tree[u] {
                continue;
            }
            for v in 0..n {
                if in_tree[v] {
                    continue;
                }
                let w = bags[u].intersection(&bags[v]).count();
                if best.is_none_or(|(bw, _, _)| w > bw) {
                    best = Some((w, u, v));
                }
            }
        }
        let (w, u, v) = best?;
        if w == 0 {
            // Disconnected hypergraph despite connected Gaifman graph can't
            // happen, but guard anyway.
            return None;
        }
        in_tree[v] = true;
        edges.push((u, v));
    }
    let dec = CgTreeDecomposition { bags, edges, root };
    dec.is_valid_for(a).then_some(dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::symbols::Vocab;

    #[test]
    fn triangle_is_not_decomposable() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let x = v.constant("x");
        let y = v.constant("y");
        let z = v.constant("z");
        let t = Interpretation::from_facts(vec![
            Fact::consts(r, &[x, y]),
            Fact::consts(r, &[y, z]),
            Fact::consts(r, &[z, x]),
        ]);
        assert!(!is_guarded_tree_decomposable(&t));
        assert!(cg_tree_decomposition(&t, None).is_none());
    }

    #[test]
    fn guarded_triangle_is_decomposable() {
        // Example 4: adding Q(x,y,z) makes the triangle an rAQ body.
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let q = v.rel("Q", 3);
        let x = v.constant("x");
        let y = v.constant("y");
        let z = v.constant("z");
        let t = Interpretation::from_facts(vec![
            Fact::consts(r, &[x, y]),
            Fact::consts(r, &[y, z]),
            Fact::consts(r, &[z, x]),
            Fact::consts(q, &[x, y, z]),
        ]);
        assert!(is_guarded_tree_decomposable(&t));
        let dec = cg_tree_decomposition(&t, None).expect("decomposable");
        assert!(dec.is_valid_for(&t));
    }

    #[test]
    fn path_decomposes_with_requested_root() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let p =
            Interpretation::from_facts(vec![Fact::consts(e, &[a, b]), Fact::consts(e, &[b, c])]);
        let root: BTreeSet<Term> = [Term::Const(a)].into_iter().collect();
        let dec = cg_tree_decomposition(&p, Some(&root)).expect("decomposable");
        assert_eq!(dec.bags[dec.root], root);
        assert!(dec.is_valid_for(&p));
    }

    #[test]
    fn unguarded_root_rejected() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let p =
            Interpretation::from_facts(vec![Fact::consts(e, &[a, b]), Fact::consts(e, &[b, c])]);
        // {a, c} is not guarded.
        let root: BTreeSet<Term> = [Term::Const(a), Term::Const(c)].into_iter().collect();
        assert!(cg_tree_decomposition(&p, Some(&root)).is_none());
    }

    #[test]
    fn disconnected_has_no_cg_decomposition() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let d = v.constant("d");
        let p =
            Interpretation::from_facts(vec![Fact::consts(e, &[a, b]), Fact::consts(e, &[c, d])]);
        // Guarded-tree-decomposable (forest) but not cg (not connected).
        assert!(is_guarded_tree_decomposable(&p));
        assert!(cg_tree_decomposition(&p, None).is_none());
    }

    #[test]
    fn children_are_rooted_correctly() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let p =
            Interpretation::from_facts(vec![Fact::consts(e, &[a, b]), Fact::consts(e, &[b, c])]);
        let dec = cg_tree_decomposition(&p, None).expect("decomposable");
        let children = dec.children();
        let total: usize = children.iter().map(|c| c.len()).sum();
        assert_eq!(total, dec.bags.len() - 1);
    }
}
