//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded schedule of injectable faults. Call sites
//! across the stack — fixpoint rounds, store interning, plan compilation,
//! WAL writes and fsyncs — are instrumented with named *seams*
//! ([`point`], [`alloc_point`], [`io_point`]). Each seam visit draws from
//! a splitmix64 stream keyed on `(seed, site, visit counter)`, so the
//! same seed always produces the same fault schedule, independent of
//! thread interleaving at *other* sites.
//!
//! The whole machinery is compiled out unless the `chaos` cargo feature
//! is enabled: without it every seam is an inline empty function and the
//! plan types are inert, so production builds pay nothing.
//!
//! The plan is process-global (a serve process is configured once, via
//! `--chaos-seed`); tests that install plans concurrently must serialize
//! around [`install`]/[`uninstall`].

/// Seam in a fixpoint round boundary (panic / delay faults).
pub const EVAL_ROUND: &str = "eval.round";
/// Seam in [`FactStore::intern`](crate::FactStore::intern) (alloc-cap
/// faults, checked against the arena size).
pub const STORE_INTERN: &str = "store.intern";
/// Seam in the plan-cache leader's compilation path (panic faults).
pub const CACHE_COMPILE: &str = "cache.compile";
/// Seam around a WAL record body write (I/O faults: error, short write).
pub const WAL_WRITE: &str = "wal.write";
/// Seam around a WAL fsync (I/O error faults).
pub const WAL_FSYNC: &str = "wal.fsync";
/// Seam around a snapshot file write (I/O error faults).
pub const SNAPSHOT_WRITE: &str = "snapshot.write";
/// Seam at the entry of an incremental-view maintenance apply (panic
/// faults — exercises the registry's drop-view-on-panic fence).
pub const IVM_APPLY: &str = "ivm.apply";
/// Seam in the primary's replication sender, before a frame is shipped
/// to a replica (I/O error faults — the connection drops and the
/// replica must reconnect and resume from its applied position).
pub const REPL_SHIP: &str = "repl.ship";
/// Seam in a replica's apply loop, before a shipped record is journaled
/// locally (I/O error faults — the replica drops the feed and
/// reconnects; the unapplied record must be re-shipped, never lost).
pub const REPL_APPLY: &str = "repl.apply";

/// One injectable fault kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the seam (exercises catch-unwind fences).
    Panic,
    /// Report an I/O error from the seam (I/O seams only).
    IoError,
    /// Write only a prefix of the buffer (WAL write seam only) —
    /// produces a torn record.
    ShortWrite,
    /// Sleep for the given number of milliseconds (deadline jitter).
    Delay(u64),
    /// Panic when the seam's reported weight (e.g. arena terms) exceeds
    /// this cap — a deterministic stand-in for allocation failure.
    AllocCap(u64),
}

/// One scheduled fault: at visits `n` of `site` where the seeded draw
/// lands on `0 (mod period)`, inject `kind`.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Seam name this rule applies to (one of the `*` constants above).
    pub site: &'static str,
    /// What to inject.
    pub kind: FaultKind,
    /// Average firing period; 1 fires on every draw hit, larger values
    /// fire on roughly one visit in `period`.
    pub period: u64,
}

/// A seeded, deterministic schedule of faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed of the per-site draw streams.
    pub seed: u64,
    /// The scheduled faults.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, site: &'static str, kind: FaultKind, period: u64) -> Self {
        self.rules.push(FaultRule {
            site,
            kind,
            period: period.max(1),
        });
        self
    }

    /// The standard chaos mix used by `gomq-serve --chaos-seed` and the
    /// CI smoke: occasional eval panics and delays, short WAL writes,
    /// fsync failures, compile panics, a generous arena alloc cap,
    /// occasional view-maintenance panics, and replication stream drops
    /// on both the shipping and applying side (exercising reconnect and
    /// resume-from-position).
    pub fn standard(seed: u64) -> Self {
        FaultPlan::new(seed)
            .rule(EVAL_ROUND, FaultKind::Panic, 17)
            .rule(EVAL_ROUND, FaultKind::Delay(1), 5)
            .rule(WAL_WRITE, FaultKind::ShortWrite, 7)
            .rule(WAL_FSYNC, FaultKind::IoError, 11)
            .rule(CACHE_COMPILE, FaultKind::Panic, 13)
            .rule(STORE_INTERN, FaultKind::AllocCap(1 << 22), 1)
            .rule(IVM_APPLY, FaultKind::Panic, 19)
            .rule(REPL_SHIP, FaultKind::IoError, 31)
            .rule(REPL_APPLY, FaultKind::IoError, 37)
    }
}

/// Outcome of an I/O seam ([`io_point`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The write/fsync should fail with an injected error.
    Error,
    /// Only a prefix of the buffer should be written.
    Short,
}

#[cfg(feature = "chaos")]
mod active {
    use super::{FaultKind, FaultPlan, IoFault};
    use std::sync::Mutex;

    struct Active {
        plan: FaultPlan,
        /// Per-rule visit counters (a rule only counts visits to its own
        /// site, so schedules at one seam are independent of traffic at
        /// the others).
        counters: Vec<u64>,
        injected: u64,
    }

    static STATE: Mutex<Option<Active>> = Mutex::new(None);

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Installs `plan` as the process-global fault schedule, resetting
    /// all visit counters.
    pub fn install(plan: FaultPlan) {
        let counters = vec![0; plan.rules.len()];
        *STATE.lock().unwrap_or_else(|e| e.into_inner()) = Some(Active {
            plan,
            counters,
            injected: 0,
        });
    }

    /// Removes the installed plan (all seams become no-ops again).
    pub fn uninstall() {
        *STATE.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Seed of the installed plan, if any.
    pub fn installed_seed() -> Option<u64> {
        STATE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|a| a.plan.seed)
    }

    /// Total faults injected since the plan was installed.
    pub fn injected() -> u64 {
        STATE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, |a| a.injected)
    }

    /// Draws at `site`, returning the first firing rule's kind. `weight`
    /// feeds [`FaultKind::AllocCap`] rules (which fire deterministically
    /// on weight, not on the draw).
    fn fire(site: &str, weight: Option<u64>) -> Option<FaultKind> {
        let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        let active = guard.as_mut()?;
        let site_hash = fnv1a(site);
        let seed = active.plan.seed;
        let mut hit = None;
        for (i, rule) in active.plan.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let n = active.counters[i];
            active.counters[i] += 1;
            if hit.is_some() {
                continue; // keep counting visits on later rules
            }
            let fires = match rule.kind {
                FaultKind::AllocCap(cap) => weight.is_some_and(|w| w > cap),
                _ => splitmix64(seed ^ site_hash ^ n).is_multiple_of(rule.period),
            };
            if fires {
                hit = Some(rule.kind);
            }
        }
        if hit.is_some() {
            active.injected += 1;
        }
        hit
    }

    /// A plain seam: may panic or sleep.
    pub fn point(site: &str) {
        match fire(site, None) {
            Some(FaultKind::Panic) => panic!("chaos[{site}]: injected panic"),
            Some(FaultKind::Delay(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            _ => {}
        }
    }

    /// An allocation seam: panics when an alloc-cap rule's cap is
    /// exceeded by `weight` (and honours panic/delay rules too).
    pub fn alloc_point(site: &str, weight: u64) {
        match fire(site, Some(weight)) {
            Some(FaultKind::AllocCap(cap)) => {
                panic!("chaos[{site}]: alloc cap {cap} tripped (weight {weight})")
            }
            Some(FaultKind::Panic) => panic!("chaos[{site}]: injected panic"),
            Some(FaultKind::Delay(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            _ => {}
        }
    }

    /// An I/O seam: returns the fault the caller should emulate, if any
    /// (panic/delay rules are honoured in place).
    pub fn io_point(site: &str) -> Option<IoFault> {
        match fire(site, None) {
            Some(FaultKind::IoError) => Some(IoFault::Error),
            Some(FaultKind::ShortWrite) => Some(IoFault::Short),
            Some(FaultKind::Panic) => panic!("chaos[{site}]: injected panic"),
            Some(FaultKind::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            _ => None,
        }
    }
}

#[cfg(feature = "chaos")]
pub use active::{alloc_point, injected, install, installed_seed, io_point, point, uninstall};

#[cfg(not(feature = "chaos"))]
mod inert {
    use super::{FaultPlan, IoFault};

    /// No-op without the `chaos` feature.
    #[inline(always)]
    pub fn install(_plan: FaultPlan) {}

    /// No-op without the `chaos` feature.
    #[inline(always)]
    pub fn uninstall() {}

    /// Always `None` without the `chaos` feature.
    #[inline(always)]
    pub fn installed_seed() -> Option<u64> {
        None
    }

    /// Always zero without the `chaos` feature.
    #[inline(always)]
    pub fn injected() -> u64 {
        0
    }

    /// No-op without the `chaos` feature.
    #[inline(always)]
    pub fn point(_site: &str) {}

    /// No-op without the `chaos` feature.
    #[inline(always)]
    pub fn alloc_point(_site: &str, _weight: u64) {}

    /// Always `None` without the `chaos` feature.
    #[inline(always)]
    pub fn io_point(_site: &str) -> Option<IoFault> {
        None
    }
}

#[cfg(not(feature = "chaos"))]
pub use inert::{alloc_point, injected, install, installed_seed, io_point, point, uninstall};

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;

    // The global plan is shared by every test in this binary; keep the
    // installing tests serialized.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn schedule(seed: u64, visits: usize) -> Vec<bool> {
        install(FaultPlan::new(seed).rule(WAL_FSYNC, FaultKind::IoError, 3));
        let out = (0..visits).map(|_| io_point(WAL_FSYNC).is_some()).collect();
        uninstall();
        out
    }

    #[test]
    fn same_seed_same_schedule() {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = schedule(42, 64);
        let b = schedule(42, 64);
        let c = schedule(43, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(
            a.iter().any(|&f| f),
            "period-3 rule never fired in 64 visits"
        );
        assert!(!a.iter().all(|&f| f), "period-3 rule fired on every visit");
        drop(guard);
    }

    #[test]
    fn sites_are_independent_and_counted() {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(
            FaultPlan::new(7)
                .rule(WAL_FSYNC, FaultKind::IoError, 2)
                .rule(WAL_WRITE, FaultKind::ShortWrite, 2),
        );
        let solo: Vec<bool> = (0..32).map(|_| io_point(WAL_FSYNC).is_some()).collect();
        let n = injected();
        assert!(n > 0);
        install(
            FaultPlan::new(7)
                .rule(WAL_FSYNC, FaultKind::IoError, 2)
                .rule(WAL_WRITE, FaultKind::ShortWrite, 2),
        );
        // Interleaving traffic at another site must not perturb the
        // WAL_FSYNC stream.
        let mixed: Vec<bool> = (0..32)
            .map(|_| {
                let _ = io_point(WAL_WRITE);
                io_point(WAL_FSYNC).is_some()
            })
            .collect();
        assert_eq!(solo, mixed);
        uninstall();
        assert_eq!(injected(), 0);
        assert!(installed_seed().is_none());
        drop(guard);
    }

    #[test]
    fn alloc_cap_trips_on_weight() {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(FaultPlan::new(1).rule(STORE_INTERN, FaultKind::AllocCap(100), 1));
        alloc_point(STORE_INTERN, 100); // at the cap: fine
        let r = std::panic::catch_unwind(|| alloc_point(STORE_INTERN, 101));
        uninstall();
        assert!(r.is_err());
        drop(guard);
    }
}
