//! # gomq-core
//!
//! Relational substrate for the `guarded-omq` reproduction of
//! *Dichotomies in Ontology-Mediated Querying with the Guarded Fragment*
//! (Hernich, Lutz, Papacchini, Wolter; PODS 2017).
//!
//! This crate provides the data model every other crate builds on:
//!
//! * [`Vocab`] — an interner for relation symbols (with arities), constants
//!   and labelled nulls,
//! * [`Interpretation`] — a finite set of atoms over constants and nulls
//!   (the paper's interpretations; a database *instance* is an
//!   interpretation whose terms are all constants),
//! * [`FactStore`] — the columnar fact plane: a flat-arena, deduplicating
//!   fact table that `Interpretation` and [`IndexedInstance`] are views
//!   over ([`store`]),
//! * homomorphisms between interpretations ([`hom`]),
//! * indexed fact stores and the join-lookup abstraction ([`index`]),
//! * fixed-width bitset rows/matrices and dense term interning
//!   ([`bitset`], [`intern`]) — the substrate of the bit-parallel
//!   propagation kernels,
//! * guarded sets, Gaifman graphs and guarded tree decompositions
//!   ([`guarded`], [`treedec`]),
//! * conjunctive queries, unions thereof, and rooted acyclic queries
//!   ([`query`]).
//!
//! The paper's terminology is kept deliberately close: an `Instance` is an
//! `Interpretation` all of whose terms are constants, interpretations make
//! the *standard names* assumption (a constant denotes itself), and query
//! answers are defined by homomorphisms from canonical databases.

#![warn(missing_docs)]

pub mod bisim;
pub mod bitset;
pub mod fact;
pub mod faults;
pub mod guarded;
pub mod hom;
pub mod index;
pub mod intern;
pub mod interpretation;
pub mod parse;
pub mod query;
pub mod store;
pub mod symbols;
pub mod treedec;

pub use fact::{Fact, Term};
pub use hom::{find_homomorphism, Homomorphism};
pub use index::{DeltaView, FactLookup, IdSetView, IndexedInstance};
pub use intern::TermInterner;
pub use interpretation::{ArityError, Instance, Interpretation};
pub use query::{Cq, CqAtom, Ucq, VarOrConst};
pub use store::{FactBuf, FactId, FactRef, FactStore, StoreStats};
pub use symbols::{ConstId, NullId, RelId, Vocab};
