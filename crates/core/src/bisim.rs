//! Connected guarded bisimulations (appendix C of the paper).
//!
//! A set `I` of partial isomorphisms between guarded tuples of `A` and
//! `B` is a *connected guarded bisimulation* if for every `p : ā ↦ b̄ ∈ I`
//! and every guarded tuple `ā′` of `A` overlapping `ā` there is a guarded
//! tuple `b̄′` of `B` and a `p′ : ā′ ↦ b̄′ ∈ I` agreeing with `p` on the
//! overlap — and symmetrically. openGF formulas are invariant under
//! connected guarded bisimilarity (Theorem 15), which is how the paper
//! transfers query (non-)entailment between instances and their
//! unravellings.
//!
//! This module computes the *coarsest* connected guarded bisimulation by
//! the standard fixpoint refinement: start from all partial isomorphisms
//! between guarded tuples and remove pairs whose back-and-forth
//! obligations fail, until stable.

use crate::fact::Term;
use crate::guarded::maximal_guarded_sets;
use crate::interpretation::Interpretation;
use std::collections::{BTreeMap, BTreeSet};

/// A partial isomorphism between guarded tuples, as an order-preserving
/// map on the underlying guarded sets.
type PartIso = Vec<(Term, Term)>;

/// Computes the coarsest connected guarded bisimulation between `a` and
/// `b`, represented as the set of surviving partial isomorphisms (each a
/// sorted association list over a maximal guarded set of `a`).
pub fn guarded_bisimulation(a: &Interpretation, b: &Interpretation) -> Vec<PartIso> {
    let ga: Vec<BTreeSet<Term>> = maximal_guarded_sets(a);
    let gb: Vec<BTreeSet<Term>> = maximal_guarded_sets(b);
    // All partial isomorphisms between pairs of maximal guarded sets.
    let mut candidates: Vec<PartIso> = Vec::new();
    for sa in &ga {
        for sb in &gb {
            if sa.len() != sb.len() {
                continue;
            }
            // Enumerate bijections sa → sb, keep the isomorphic ones.
            let va: Vec<Term> = sa.iter().copied().collect();
            let vb: Vec<Term> = sb.iter().copied().collect();
            permutations(&vb, &mut |perm| {
                let iso: PartIso = va.iter().copied().zip(perm.iter().copied()).collect();
                if is_partial_iso(a, b, &iso) {
                    candidates.push(iso);
                }
            });
        }
    }
    // Refinement.
    loop {
        let before = candidates.len();
        let snapshot = candidates.clone();
        candidates
            .retain(|p| forth_ok(a, b, p, &ga, &snapshot) && back_ok(a, b, p, &gb, &snapshot));
        if candidates.len() == before {
            return candidates;
        }
    }
}

/// Whether `(a, ā)` and `(b, b̄)` are connected guarded bisimilar, where
/// the tuples enumerate guarded sets.
pub fn guarded_bisimilar(
    a: &Interpretation,
    tuple_a: &[Term],
    b: &Interpretation,
    tuple_b: &[Term],
) -> bool {
    if tuple_a.len() != tuple_b.len() {
        return false;
    }
    let wanted: PartIso = {
        let mut m: BTreeMap<Term, Term> = BTreeMap::new();
        for (&x, &y) in tuple_a.iter().zip(tuple_b.iter()) {
            if let Some(&prev) = m.get(&x) {
                if prev != y {
                    return false;
                }
            }
            m.insert(x, y);
        }
        m.into_iter().collect()
    };
    let bisim = guarded_bisimulation(a, b);
    bisim.iter().any(|p| {
        // p must extend `wanted`.
        let pm: BTreeMap<Term, Term> = p.iter().copied().collect();
        wanted.iter().all(|(x, y)| pm.get(x) == Some(y))
    })
}

fn permutations(items: &[Term], cb: &mut impl FnMut(&[Term])) {
    let mut v: Vec<Term> = items.to_vec();
    permute(&mut v, 0, cb);
}

fn permute(v: &mut Vec<Term>, k: usize, cb: &mut impl FnMut(&[Term])) {
    if k == v.len() {
        cb(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, cb);
        v.swap(k, i);
    }
}

/// Whether the association list is a partial isomorphism between the
/// induced substructures.
fn is_partial_iso(a: &Interpretation, b: &Interpretation, iso: &PartIso) -> bool {
    let fwd: BTreeMap<Term, Term> = iso.iter().copied().collect();
    let dom_a: BTreeSet<Term> = fwd.keys().copied().collect();
    let rng_b: BTreeSet<Term> = fwd.values().copied().collect();
    if rng_b.len() != dom_a.len() {
        return false; // not injective
    }
    // Facts inside the domain must correspond in both directions.
    for f in a.iter() {
        if f.args.iter().all(|t| dom_a.contains(t)) {
            let img = f.map_terms(|t| fwd[&t]);
            if !b.contains(&img) {
                return false;
            }
        }
    }
    let bwd: BTreeMap<Term, Term> = iso.iter().map(|&(x, y)| (y, x)).collect();
    for f in b.iter() {
        if f.args.iter().all(|t| rng_b.contains(t)) {
            let pre = f.map_terms(|t| bwd[&t]);
            if !a.contains(&pre) {
                return false;
            }
        }
    }
    true
}

fn forth_ok(
    _a: &Interpretation,
    _b: &Interpretation,
    p: &PartIso,
    ga: &[BTreeSet<Term>],
    pool: &[PartIso],
) -> bool {
    let pm: BTreeMap<Term, Term> = p.iter().copied().collect();
    let dom: BTreeSet<Term> = pm.keys().copied().collect();
    for sa in ga {
        if sa.is_disjoint(&dom) {
            continue;
        }
        // Need q ∈ pool with domain sa agreeing with p on the overlap.
        let found = pool.iter().any(|q| {
            let qd: BTreeSet<Term> = q.iter().map(|&(x, _)| x).collect();
            if qd != *sa {
                return false;
            }
            let qm: BTreeMap<Term, Term> = q.iter().copied().collect();
            sa.intersection(&dom).all(|t| qm[t] == pm[t])
        });
        if !found {
            return false;
        }
    }
    true
}

fn back_ok(
    _a: &Interpretation,
    _b: &Interpretation,
    p: &PartIso,
    gb: &[BTreeSet<Term>],
    pool: &[PartIso],
) -> bool {
    let pm_inv: BTreeMap<Term, Term> = p.iter().map(|&(x, y)| (y, x)).collect();
    let rng: BTreeSet<Term> = pm_inv.keys().copied().collect();
    for sb in gb {
        if sb.is_disjoint(&rng) {
            continue;
        }
        let found = pool.iter().any(|q| {
            let qr: BTreeSet<Term> = q.iter().map(|&(_, y)| y).collect();
            if qr != *sb {
                return false;
            }
            let qm_inv: BTreeMap<Term, Term> = q.iter().map(|&(x, y)| (y, x)).collect();
            sb.intersection(&rng).all(|t| qm_inv[t] == pm_inv[t])
        });
        if !found {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::symbols::Vocab;

    fn cycle(v: &mut Vocab, n: usize, tag: &str) -> Interpretation {
        let r = v.rel("R", 2);
        let mut i = Interpretation::new();
        for k in 0..n {
            let a = v.constant(&format!("{tag}{k}"));
            let b = v.constant(&format!("{tag}{}", (k + 1) % n));
            i.insert(Fact::consts(r, &[a, b]));
        }
        i
    }

    #[test]
    fn cycles_of_different_length_are_guarded_bisimilar() {
        // Guarded bisimulation cannot count around cycles: C3 ~ C4 on
        // corresponding edges (each node has in/out degree 1).
        let mut v = Vocab::new();
        let c3 = cycle(&mut v, 3, "a");
        let c4 = cycle(&mut v, 4, "b");
        let a0 = Term::Const(v.constant("a0"));
        let a1 = Term::Const(v.constant("a1"));
        let b0 = Term::Const(v.constant("b0"));
        let b1 = Term::Const(v.constant("b1"));
        assert!(guarded_bisimilar(&c3, &[a0, a1], &c4, &[b0, b1]));
    }

    #[test]
    fn edge_and_isolated_loop_are_not_bisimilar() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.constant("x");
        let b = v.constant("y");
        let edge = Interpretation::from_facts(vec![Fact::consts(r, &[a, b])]);
        let c = v.constant("z");
        let lp = Interpretation::from_facts(vec![Fact::consts(r, &[c, c])]);
        // The loop's guarded set {z} maps nowhere isomorphically onto the
        // 2-element edge tuple.
        assert!(!guarded_bisimilar(
            &edge,
            &[Term::Const(a), Term::Const(b)],
            &lp,
            &[Term::Const(c), Term::Const(c)]
        ));
    }

    #[test]
    fn labels_break_bisimilarity() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let p = v.rel("P", 1);
        let a = v.constant("a");
        let b = v.constant("b");
        let plain = Interpretation::from_facts(vec![Fact::consts(r, &[a, b])]);
        let c = v.constant("c");
        let d = v.constant("d");
        let labelled =
            Interpretation::from_facts(vec![Fact::consts(r, &[c, d]), Fact::consts(p, &[d])]);
        assert!(!guarded_bisimilar(
            &plain,
            &[Term::Const(a), Term::Const(b)],
            &labelled,
            &[Term::Const(c), Term::Const(d)]
        ));
    }

    #[test]
    fn an_interpretation_is_bisimilar_to_itself() {
        let mut v = Vocab::new();
        let c = cycle(&mut v, 4, "s");
        let s0 = Term::Const(v.constant("s0"));
        let s1 = Term::Const(v.constant("s1"));
        assert!(guarded_bisimilar(&c, &[s0, s1], &c, &[s0, s1]));
    }

    #[test]
    fn path_end_differs_from_path_middle() {
        // In a path a→b→c, the edge (a,b) is not bisimilar to (b,c):
        // b has an outgoing continuation at the first position of (b,c)
        // but a has no incoming edge.
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.constant("pa");
        let b = v.constant("pb");
        let c = v.constant("pc");
        let path =
            Interpretation::from_facts(vec![Fact::consts(r, &[a, b]), Fact::consts(r, &[b, c])]);
        let (ta, tb, tc) = (Term::Const(a), Term::Const(b), Term::Const(c));
        assert!(!guarded_bisimilar(&path, &[ta, tb], &path, &[tb, tc]));
    }
}
