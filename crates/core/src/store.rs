//! The columnar fact plane: an arena-backed, deduplicating fact table.
//!
//! Every layer of the system — the chase, certain-answer evaluation,
//! Datalog≠ fixpoints and the serving engine — manipulates sets of ground
//! atoms. The seed representation (`Fact { rel, args: Vec<Term> }` held in
//! a `Vec<Fact>` *and* a `HashSet<Fact>`) costs one heap allocation per
//! fact and stores every fact at least twice. [`FactStore`] replaces it
//! with a columnar layout:
//!
//! * one flat argument arena (`Vec<Term>`) shared by all facts,
//! * parallel per-fact columns (`rels`, `starts`, `hashes`),
//! * dedup via a hash map keyed on the fact's hash with bucket
//!   verification against the arena slice (no owned `Fact` keys), and
//! * a per-relation id index whose buckets are ascending in
//!   [`FactId`], so "the facts derived since round `k`" is a contiguous
//!   id range rather than a cloned set.
//!
//! [`Interpretation`](crate::Interpretation) and
//! [`IndexedInstance`](crate::IndexedInstance) are thin views over a
//! `FactStore`; [`Fact`](crate::Fact) survives as the owned-escape type at
//! parse and display boundaries, with [`FactRef`] as the borrowed working
//! currency. [`FactBuf`] is the matching columnar scratch buffer used by
//! evaluation rounds to emit candidate facts without per-fact allocation.

use crate::fact::{Fact, FactDisplay, Term};
use crate::symbols::{RelId, Vocab};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Handle to a fact interned in a [`FactStore`].
///
/// Ids are dense and allocated in insertion order: the `n`-th distinct
/// fact interned gets id `n`. A `FactId` is only meaningful together with
/// the store that produced it and is invalidated by
/// [`FactStore::truncate`] to a mark at or below it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// The id as a dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A borrowed view of one fact: a relation symbol plus an argument slice
/// living in some [`FactStore`] arena (or any other term slice).
///
/// `FactRef` is `Copy` and orders/compares exactly like the owned
/// [`Fact`] (relation first, then arguments lexicographically), so code
/// that sorted or compared `&Fact`s keeps its observable behaviour.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactRef<'a> {
    /// The relation symbol.
    pub rel: RelId,
    /// The argument terms, borrowed from the backing arena.
    pub args: &'a [Term],
}

impl<'a> FactRef<'a> {
    /// Creates a fact view from parts.
    pub fn new(rel: RelId, args: &'a [Term]) -> Self {
        FactRef { rel, args }
    }

    /// Copies the view out into an owned [`Fact`].
    pub fn to_fact(self) -> Fact {
        Fact::new(self.rel, self.args.to_vec())
    }

    /// Whether every argument is a constant.
    pub fn is_ground_over_consts(self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// Applies a term mapping to all arguments, producing an owned fact.
    pub fn map_terms(self, mut f: impl FnMut(Term) -> Term) -> Fact {
        Fact::new(self.rel, self.args.iter().map(|&t| f(t)).collect())
    }

    /// Renders the fact using the vocabulary.
    pub fn display(self, vocab: &'a Vocab) -> FactDisplay<'a> {
        FactDisplay::new(self, vocab)
    }
}

impl From<FactRef<'_>> for Fact {
    fn from(f: FactRef<'_>) -> Fact {
        f.to_fact()
    }
}

/// Storage-pressure counters of a [`FactStore`], cheap to snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct facts interned (the store's length).
    pub facts: u64,
    /// Terms resident in the argument arena.
    pub arena_terms: u64,
    /// Intern calls answered by an existing fact instead of a new one.
    pub dedup_hits: u64,
}

impl StoreStats {
    /// Bytes held by the argument arena (terms × term size).
    pub fn arena_bytes(&self) -> u64 {
        self.arena_terms * std::mem::size_of::<Term>() as u64
    }

    /// Folds another snapshot into this one (summing every counter,
    /// saturating so long soak runs cannot overflow-panic in debug
    /// builds) — used to aggregate storage pressure across the stores of
    /// a batch.
    pub fn absorb(&mut self, other: &StoreStats) {
        self.facts = self.facts.saturating_add(other.facts);
        self.arena_terms = self.arena_terms.saturating_add(other.arena_terms);
        self.dedup_hits = self.dedup_hits.saturating_add(other.dedup_hits);
    }
}

/// A columnar, arena-backed, deduplicating fact table.
///
/// See the [module docs](self) for the layout. All per-fact data lives in
/// parallel columns indexed by [`FactId`]; the per-relation index buckets
/// hold ids in ascending order, which downstream semi-naive evaluation
/// exploits to expose a round's delta as an id range.
#[derive(Clone)]
pub struct FactStore {
    /// Relation symbol of fact `i`.
    rels: Vec<RelId>,
    /// `starts[i]..starts[i + 1]` is fact `i`'s argument slice in `arena`.
    /// Always one longer than `rels`, starting at 0.
    starts: Vec<u32>,
    /// The shared argument arena.
    arena: Vec<Term>,
    /// Hash of fact `i` (over relation and arguments); kept per fact so
    /// [`FactStore::truncate`] can unhook dedup entries without rehashing.
    hashes: Vec<u64>,
    /// Hash → ids of facts with that hash; membership is verified against
    /// the arena, so colliding facts simply share a bucket.
    dedup: HashMap<u64, Vec<u32>>,
    /// Relation → ascending ids of its facts.
    by_rel: HashMap<RelId, Vec<u32>>,
    /// Interns answered from `dedup` rather than by appending.
    dedup_hits: u64,
    /// Derivation-support count of fact `i` (incremental view
    /// maintenance). A count of 0 marks the fact *dead*: retracted but
    /// kept in place so ids stay stable; live-filtered readers skip it.
    /// Plain stores never touch support, so every fact stays at its
    /// intern-time count of 1 and nothing is ever dead.
    support: Vec<u32>,
    /// Number of facts whose support is currently 0 (dead facts); kept
    /// so [`FactStore::is_live`] is a single comparison when no fact has
    /// ever been retracted.
    dead: usize,
}

impl Default for FactStore {
    fn default() -> Self {
        FactStore {
            rels: Vec::new(),
            starts: vec![0],
            arena: Vec::new(),
            hashes: Vec::new(),
            dedup: HashMap::new(),
            by_rel: HashMap::new(),
            dedup_hits: 0,
            support: Vec::new(),
            dead: 0,
        }
    }
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn hash_fact(rel: RelId, args: &[Term]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        rel.hash(&mut h);
        args.hash(&mut h);
        h.finish()
    }

    /// Looks up a fact without inserting it.
    pub fn lookup(&self, rel: RelId, args: &[Term]) -> Option<FactId> {
        let h = Self::hash_fact(rel, args);
        self.dedup.get(&h).and_then(|bucket| {
            bucket
                .iter()
                .find(|&&id| self.rels[id as usize] == rel && self.args_of(id) == args)
                .map(|&id| FactId(id))
        })
    }

    /// Interns a fact, returning its id and whether it was new.
    ///
    /// The argument slice is copied into the arena only when the fact is
    /// new; a duplicate costs one hash and one slice comparison.
    pub fn intern(&mut self, rel: RelId, args: &[Term]) -> (FactId, bool) {
        let h = Self::hash_fact(rel, args);
        if let Some(bucket) = self.dedup.get(&h) {
            if let Some(&id) = bucket
                .iter()
                .find(|&&id| self.rels[id as usize] == rel && self.args_of(id) == args)
            {
                self.dedup_hits = self.dedup_hits.saturating_add(1);
                return (FactId(id), false);
            }
        }
        crate::faults::alloc_point(
            crate::faults::STORE_INTERN,
            (self.arena.len() + args.len()) as u64,
        );
        let id = self.rels.len() as u32;
        self.rels.push(rel);
        self.arena.extend_from_slice(args);
        self.starts.push(self.arena.len() as u32);
        self.hashes.push(h);
        self.support.push(1);
        self.dedup.entry(h).or_default().push(id);
        self.by_rel.entry(rel).or_default().push(id);
        (FactId(id), true)
    }

    /// Interns an owned fact (parse-boundary convenience).
    pub fn intern_fact(&mut self, fact: &Fact) -> (FactId, bool) {
        self.intern(fact.rel, &fact.args)
    }

    fn args_of(&self, id: u32) -> &[Term] {
        let (lo, hi) = (self.starts[id as usize], self.starts[id as usize + 1]);
        &self.arena[lo as usize..hi as usize]
    }

    /// The relation symbol of a fact.
    pub fn rel(&self, id: FactId) -> RelId {
        self.rels[id.index()]
    }

    /// The argument slice of a fact.
    pub fn args(&self, id: FactId) -> &[Term] {
        self.args_of(id.0)
    }

    /// The fact as a borrowed view.
    pub fn fact_ref(&self, id: FactId) -> FactRef<'_> {
        FactRef::new(self.rels[id.index()], self.args_of(id.0))
    }

    /// Number of distinct facts interned.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the store holds no facts.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterates over all facts in id (= insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = FactRef<'_>> {
        (0..self.rels.len() as u32)
            .map(move |id| FactRef::new(self.rels[id as usize], self.args_of(id)))
    }

    /// Ascending ids of the facts of one relation.
    pub fn rel_ids(&self, rel: RelId) -> &[u32] {
        self.by_rel.get(&rel).map_or(&[], Vec::as_slice)
    }

    /// Derivation-support count of a fact (0 = dead).
    pub fn support(&self, id: FactId) -> u32 {
        self.support[id.index()]
    }

    /// Whether a fact is live (support > 0). A single comparison when
    /// nothing has ever been retracted, which is every non-maintained
    /// store.
    pub fn is_live(&self, id: u32) -> bool {
        self.dead == 0 || self.support[id as usize] > 0
    }

    /// Adds `n` derivations of support to a fact; a dead fact becomes
    /// live again (a DRed *rederivation*).
    pub fn add_support(&mut self, id: FactId, n: u32) {
        let s = &mut self.support[id.index()];
        if *s == 0 && n > 0 {
            self.dead -= 1;
        }
        *s = s.saturating_add(n);
    }

    /// Removes up to `n` derivations of support from a fact; reaching 0
    /// marks it dead (a DRed *overcount deletion*). The fact's id, arena
    /// slice and index entries stay in place.
    pub fn sub_support(&mut self, id: FactId, n: u32) {
        let s = &mut self.support[id.index()];
        if *s > 0 && *s <= n {
            self.dead += 1;
        }
        *s = s.saturating_sub(n);
    }

    /// Overwrites a fact's support count, adjusting the dead counter.
    pub fn set_support(&mut self, id: FactId, n: u32) {
        let s = &mut self.support[id.index()];
        match (*s, n) {
            (0, m) if m > 0 => self.dead -= 1,
            (k, 0) if k > 0 => self.dead += 1,
            _ => {}
        }
        *s = n;
    }

    /// Number of dead (support-0) facts.
    pub fn dead_count(&self) -> usize {
        self.dead
    }

    /// Number of live facts ([`FactStore::len`] minus the dead ones).
    pub fn live_len(&self) -> usize {
        self.rels.len() - self.dead
    }

    /// The relation symbols with at least one fact.
    pub fn rels_present(&self) -> impl Iterator<Item = RelId> + '_ {
        self.by_rel.keys().copied()
    }

    /// Storage-pressure counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            facts: self.rels.len() as u64,
            arena_terms: self.arena.len() as u64,
            dedup_hits: self.dedup_hits,
        }
    }

    /// The raw columns `(rels, starts, arena)` of the store, for
    /// serialization: `starts[i]..starts[i + 1]` is fact `i`'s argument
    /// slice in `arena`. Hashes and indexes are derived data and are not
    /// exposed; [`FactStore::from_columns`] rebuilds them.
    pub fn columns(&self) -> (&[RelId], &[u32], &[Term]) {
        (&self.rels, &self.starts, &self.arena)
    }

    /// Rebuilds a store from raw columns (the inverse of
    /// [`FactStore::columns`]), recomputing hashes, the dedup map and the
    /// per-relation index. Fact ids are preserved: fact `i` of the dump
    /// is fact `i` of the rebuilt store.
    ///
    /// Returns an error when the columns are structurally inconsistent
    /// (offset table malformed or not covering the arena) — the
    /// deserialization boundary treats that as corruption, not a bug.
    pub fn from_columns(
        rels: Vec<RelId>,
        starts: Vec<u32>,
        arena: Vec<Term>,
    ) -> Result<Self, String> {
        if starts.len() != rels.len() + 1 {
            return Err(format!(
                "offset column has {} entries for {} facts",
                starts.len(),
                rels.len()
            ));
        }
        if starts.first() != Some(&0) || *starts.last().unwrap() as usize != arena.len() {
            return Err("offset column does not span the arena".to_owned());
        }
        if starts.windows(2).any(|w| w[0] > w[1]) {
            return Err("offset column is not monotone".to_owned());
        }
        let support = vec![1; rels.len()];
        let mut store = FactStore {
            rels,
            starts,
            arena,
            hashes: Vec::new(),
            dedup: HashMap::new(),
            by_rel: HashMap::new(),
            dedup_hits: 0,
            support,
            dead: 0,
        };
        store.hashes.reserve(store.rels.len());
        for id in 0..store.rels.len() as u32 {
            let rel = store.rels[id as usize];
            let h = Self::hash_fact(rel, store.args_of(id));
            store.hashes.push(h);
            store.dedup.entry(h).or_default().push(id);
            store.by_rel.entry(rel).or_default().push(id);
        }
        Ok(store)
    }

    /// Rolls the store back to its first `mark` facts, releasing the
    /// arena suffix and unhooking dedup and relation-index entries.
    ///
    /// This is the store-side analogue of
    /// [`Vocab::const_mark`](crate::Vocab::const_mark) /
    /// [`Vocab::truncate_consts`](crate::Vocab::truncate_consts): a serve
    /// session can mark the store before a request and truncate after it,
    /// reclaiming per-request facts without reallocating the arena.
    pub fn truncate(&mut self, mark: usize) {
        if mark >= self.rels.len() {
            return;
        }
        for id in (mark as u32)..self.rels.len() as u32 {
            let h = self.hashes[id as usize];
            if let Some(bucket) = self.dedup.get_mut(&h) {
                bucket.retain(|&i| i != id);
                if bucket.is_empty() {
                    self.dedup.remove(&h);
                }
            }
            if let Some(bucket) = self.by_rel.get_mut(&self.rels[id as usize]) {
                // Ids are appended in order, so the doomed ids form the
                // bucket's tail.
                while bucket.last().is_some_and(|&i| i >= mark as u32) {
                    bucket.pop();
                }
                if bucket.is_empty() {
                    self.by_rel.remove(&self.rels[id as usize]);
                }
            }
        }
        self.dead -= self.support[mark..].iter().filter(|&&s| s == 0).count();
        self.support.truncate(mark);
        self.arena.truncate(self.starts[mark] as usize);
        self.starts.truncate(mark + 1);
        self.rels.truncate(mark);
        self.hashes.truncate(mark);
    }
}

impl fmt::Debug for FactStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sorted: Vec<FactRef<'_>> = self.iter().collect();
        sorted.sort();
        f.debug_set().entries(sorted).finish()
    }
}

/// A columnar scratch buffer of candidate facts.
///
/// Evaluation rounds derive head facts faster than they can be checked
/// for novelty; `FactBuf` lets them stage those candidates in three flat
/// vectors (no per-fact `Vec<Term>`), be merged across worker threads
/// with [`FactBuf::append`], and be drained into a [`FactStore`] via
/// slice interning.
#[derive(Clone, Debug)]
pub struct FactBuf {
    rels: Vec<RelId>,
    /// `bounds[i]..bounds[i + 1]` is fact `i`'s slice of `terms`.
    bounds: Vec<u32>,
    terms: Vec<Term>,
}

impl Default for FactBuf {
    fn default() -> Self {
        FactBuf {
            rels: Vec::new(),
            bounds: vec![0],
            terms: Vec::new(),
        }
    }
}

impl FactBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages a fact from a relation and an argument slice.
    pub fn push(&mut self, rel: RelId, args: &[Term]) {
        self.terms.extend_from_slice(args);
        self.bounds.push(self.terms.len() as u32);
        self.rels.push(rel);
    }

    /// Stages a fact whose arguments are produced by an iterator, writing
    /// them straight into the term column.
    pub fn push_with(&mut self, rel: RelId, args: impl IntoIterator<Item = Term>) {
        self.terms.extend(args);
        self.bounds.push(self.terms.len() as u32);
        self.rels.push(rel);
    }

    /// Number of staged facts.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Clears the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.rels.clear();
        self.bounds.truncate(1);
        self.terms.clear();
    }

    /// The `i`-th staged fact.
    pub fn get(&self, i: usize) -> FactRef<'_> {
        let (lo, hi) = (self.bounds[i] as usize, self.bounds[i + 1] as usize);
        FactRef::new(self.rels[i], &self.terms[lo..hi])
    }

    /// Iterates over the staged facts in staging order.
    pub fn iter(&self) -> impl Iterator<Item = FactRef<'_>> {
        (0..self.rels.len()).map(move |i| self.get(i))
    }

    /// Moves every fact of `other` to the end of `self`, leaving `other`
    /// empty (with its capacity intact). Used to merge per-worker buffers
    /// after a parallel round.
    pub fn append(&mut self, other: &mut FactBuf) {
        let shift = self.terms.len() as u32;
        self.terms.append(&mut other.terms);
        self.bounds
            .extend(other.bounds[1..].iter().map(|&b| b + shift));
        other.bounds.truncate(1);
        self.rels.append(&mut other.rels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocab;

    fn terms(v: &mut Vocab, names: &[&str]) -> Vec<Term> {
        names.iter().map(|n| Term::Const(v.constant(n))).collect()
    }

    #[test]
    fn intern_dedupes_and_counts() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let ab = terms(&mut v, &["a", "b"]);
        let bc = terms(&mut v, &["b", "c"]);
        let mut s = FactStore::new();
        let (i0, new0) = s.intern(r, &ab);
        let (i1, new1) = s.intern(r, &bc);
        let (i2, new2) = s.intern(r, &ab);
        assert!(new0 && new1 && !new2);
        assert_eq!(i0, i2);
        assert_ne!(i0, i1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.args(i1), &bc[..]);
        assert_eq!(s.rel_ids(r), &[0, 1]);
        let st = s.stats();
        assert_eq!((st.facts, st.arena_terms, st.dedup_hits), (2, 4, 1));
        assert_eq!(st.arena_bytes(), 4 * std::mem::size_of::<Term>() as u64);
    }

    #[test]
    fn lookup_without_insert() {
        let mut v = Vocab::new();
        let r = v.rel("R", 1);
        let a = terms(&mut v, &["a"]);
        let b = terms(&mut v, &["b"]);
        let mut s = FactStore::new();
        let (id, _) = s.intern(r, &a);
        assert_eq!(s.lookup(r, &a), Some(id));
        assert_eq!(s.lookup(r, &b), None);
        assert_eq!(s.stats().dedup_hits, 0);
    }

    #[test]
    fn truncate_rolls_back_everything() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s1 = v.rel("S", 1);
        let ab = terms(&mut v, &["a", "b"]);
        let c = terms(&mut v, &["c"]);
        let d = terms(&mut v, &["d"]);
        let mut s = FactStore::new();
        s.intern(r, &ab);
        let mark = s.len();
        s.intern(s1, &c);
        s.intern(s1, &d);
        s.truncate(mark);
        assert_eq!(s.len(), 1);
        assert_eq!(s.lookup(s1, &c), None);
        assert_eq!(s.rel_ids(s1), &[] as &[u32]);
        assert_eq!(s.stats().arena_terms, 2);
        // Re-interning after truncation assigns fresh ids cleanly.
        let (id, new) = s.intern(s1, &d);
        assert!(new);
        assert_eq!(id, FactId(1));
        // Truncating past the end is a no-op.
        s.truncate(10);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn columns_roundtrip_preserves_ids_and_indexes() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s1 = v.rel("S", 1);
        let ab = terms(&mut v, &["a", "b"]);
        let c = terms(&mut v, &["c"]);
        let mut s = FactStore::new();
        let (i0, _) = s.intern(r, &ab);
        let (i1, _) = s.intern(s1, &c);
        let (rels, starts, arena) = s.columns();
        let back = FactStore::from_columns(rels.to_vec(), starts.to_vec(), arena.to_vec()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.lookup(r, &ab), Some(i0));
        assert_eq!(back.lookup(s1, &c), Some(i1));
        assert_eq!(back.rel_ids(r), &[0]);
        assert_eq!(back.rel_ids(s1), &[1]);
        // A rebuilt store dedupes against the restored facts.
        let mut back = back;
        let (id, new) = back.intern(r, &ab);
        assert!(!new);
        assert_eq!(id, i0);
    }

    #[test]
    fn from_columns_rejects_malformed_offsets() {
        let mut v = Vocab::new();
        let r = v.rel("R", 1);
        let a = terms(&mut v, &["a"]);
        assert!(FactStore::from_columns(vec![r], vec![0], a.clone()).is_err());
        assert!(FactStore::from_columns(vec![r], vec![0, 2], a.clone()).is_err());
        assert!(FactStore::from_columns(vec![r, r], vec![0, 1, 0], a).is_err());
    }

    #[test]
    fn support_counts_track_liveness() {
        let mut v = Vocab::new();
        let r = v.rel("R", 1);
        let a = terms(&mut v, &["a"]);
        let b = terms(&mut v, &["b"]);
        let mut s = FactStore::new();
        let (ia, _) = s.intern(r, &a);
        let (ib, _) = s.intern(r, &b);
        assert_eq!(s.support(ia), 1);
        assert!(s.is_live(ia.0) && s.is_live(ib.0));
        assert_eq!((s.live_len(), s.dead_count()), (2, 0));
        // Kill a: retraction keeps the id and index entries in place.
        s.sub_support(ia, 5);
        assert!(!s.is_live(ia.0));
        assert!(s.is_live(ib.0));
        assert_eq!((s.live_len(), s.dead_count()), (1, 1));
        assert_eq!(s.lookup(r, &a), Some(ia), "dead facts stay addressable");
        // Rederive a: it comes back under the same id.
        s.add_support(ia, 2);
        assert_eq!(s.support(ia), 2);
        assert_eq!((s.live_len(), s.dead_count()), (2, 0));
        // set_support crosses the boundary in both directions.
        s.set_support(ib, 0);
        assert_eq!(s.dead_count(), 1);
        s.set_support(ib, 3);
        assert_eq!(s.dead_count(), 0);
        // Truncating over a dead tail keeps the dead counter consistent.
        s.sub_support(ib, 3);
        s.truncate(1);
        assert_eq!((s.len(), s.dead_count()), (1, 0));
        assert!(s.is_live(ia.0));
    }

    #[test]
    fn fact_ref_orders_like_fact() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s_ = v.rel("S", 1);
        let ab = terms(&mut v, &["a", "b"]);
        let ac = terms(&mut v, &["a", "c"]);
        let a = terms(&mut v, &["a"]);
        let mut refs = [
            FactRef::new(s_, &a),
            FactRef::new(r, &ac),
            FactRef::new(r, &ab),
        ];
        let mut facts: Vec<Fact> = refs.iter().map(|f| f.to_fact()).collect();
        refs.sort();
        facts.sort();
        for (fr, f) in refs.iter().zip(&facts) {
            assert_eq!(fr.to_fact(), *f);
        }
    }

    #[test]
    fn factbuf_append_rebases_bounds() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s_ = v.rel("S", 1);
        let ab = terms(&mut v, &["a", "b"]);
        let c = terms(&mut v, &["c"]);
        let mut left = FactBuf::new();
        left.push(r, &ab);
        let mut right = FactBuf::new();
        right.push(s_, &c);
        right.push_with(r, ab.iter().copied().rev());
        left.append(&mut right);
        assert!(right.is_empty());
        assert_eq!(left.len(), 3);
        assert_eq!(left.get(1).rel, s_);
        assert_eq!(left.get(1).args, &c[..]);
        assert_eq!(left.get(2).args, &[ab[1], ab[0]]);
        left.clear();
        assert!(left.is_empty());
    }
}
