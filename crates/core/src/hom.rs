//! Homomorphisms between interpretations.
//!
//! A homomorphism `h : A → B` maps `dom(A)` to `dom(B)` such that
//! `R(a₁,…,a_k) ∈ A` implies `R(h(a₁),…,h(a_k)) ∈ B`. Query answering,
//! CSPs and the paper's hom-universal models all reduce to homomorphism
//! existence, which this module decides by backtracking search with a
//! most-constrained-atom-first ordering.

use crate::fact::Term;
use crate::interpretation::Interpretation;
use crate::store::FactRef;
use std::collections::BTreeMap;

/// A homomorphism, represented as a total map on the source's active domain.
pub type Homomorphism = BTreeMap<Term, Term>;

/// Searches for a homomorphism from `from` to `to` that extends the partial
/// map `fixed` (used for the paper's "preserves `dom(D)`" requirement and
/// for answer-variable bindings).
///
/// Returns the first homomorphism found, or `None`.
pub fn find_homomorphism(
    from: &Interpretation,
    to: &Interpretation,
    fixed: &Homomorphism,
) -> Option<Homomorphism> {
    let mut found = None;
    search(from, to, fixed, &mut |h| {
        found = Some(h.clone());
        true
    });
    found
}

/// Whether a homomorphism extending `fixed` exists.
pub fn has_homomorphism(from: &Interpretation, to: &Interpretation, fixed: &Homomorphism) -> bool {
    let mut any = false;
    search(from, to, fixed, &mut |_| {
        any = true;
        true
    });
    any
}

/// Enumerates all homomorphisms extending `fixed`, invoking `cb` on each.
/// If `cb` returns `true` the search stops early.
pub fn for_each_homomorphism(
    from: &Interpretation,
    to: &Interpretation,
    fixed: &Homomorphism,
    cb: &mut dyn FnMut(&Homomorphism) -> bool,
) {
    search(from, to, fixed, cb);
}

/// Whether `a` and `b` are homomorphically equivalent (each maps into the
/// other) — the equivalence underlying CQ-indistinguishability: two
/// hom-equivalent interpretations satisfy the same Boolean CQs.
pub fn hom_equivalent(a: &Interpretation, b: &Interpretation) -> bool {
    has_homomorphism(a, b, &Homomorphism::new()) && has_homomorphism(b, a, &Homomorphism::new())
}

/// Whether `h` is an isomorphic embedding of `from` into `to`: injective,
/// a homomorphism, and reflecting facts (`R(h(ā)) ∈ to` implies
/// `R(ā) ∈ from` for tuples ā over `dom(from)`).
pub fn is_isomorphic_embedding(
    from: &Interpretation,
    to: &Interpretation,
    h: &Homomorphism,
) -> bool {
    // Total on dom(from).
    let dom = from.dom();
    if !dom.iter().all(|t| h.contains_key(t)) {
        return false;
    }
    // Injective.
    let mut seen = std::collections::BTreeSet::new();
    for t in &dom {
        if !seen.insert(h[t]) {
            return false;
        }
    }
    // Homomorphism.
    for f in from.iter() {
        if !to.contains(&f.map_terms(|t| h[&t])) {
            return false;
        }
    }
    // Reflection: every `to`-fact over the image must come from a `from`-fact.
    let image: BTreeMap<Term, Term> = h.iter().map(|(&a, &b)| (b, a)).collect();
    for f in to.iter() {
        if f.args.iter().all(|t| image.contains_key(t)) {
            let pre = f.map_terms(|t| image[&t]);
            if !from.contains(&pre) {
                return false;
            }
        }
    }
    true
}

/// Core backtracking search. `cb` returns `true` to stop enumeration.
fn search(
    from: &Interpretation,
    to: &Interpretation,
    fixed: &Homomorphism,
    cb: &mut dyn FnMut(&Homomorphism) -> bool,
) -> bool {
    // Quick signature check: every source relation must occur in the target,
    // otherwise no homomorphism exists (unless the source has no facts).
    for r in from.sig() {
        if to.facts_of(r).next().is_none() {
            return false;
        }
    }
    let mut assignment: Homomorphism = fixed.clone();
    // Unconstrained isolated terms cannot exist: dom() only contains terms
    // occurring in facts. So completing all facts completes the assignment.
    let facts: Vec<FactRef<'_>> = from.iter().collect();
    let mut used = vec![false; facts.len()];
    backtrack(&facts, &mut used, to, &mut assignment, cb)
}

fn backtrack(
    facts: &[FactRef<'_>],
    used: &mut [bool],
    to: &Interpretation,
    assignment: &mut Homomorphism,
    cb: &mut dyn FnMut(&Homomorphism) -> bool,
) -> bool {
    // Pick the unused fact with the most bound arguments (most constrained).
    let mut best: Option<(usize, usize)> = None;
    for (i, f) in facts.iter().enumerate() {
        if used[i] {
            continue;
        }
        let bound = f.args.iter().filter(|t| assignment.contains_key(t)).count();
        match best {
            Some((_, b)) if b >= bound => {}
            _ => best = Some((i, bound)),
        }
        if bound == f.args.len() {
            break; // fully bound facts are the cheapest to check
        }
    }
    let Some((idx, _)) = best else {
        // All facts matched: assignment is a homomorphism.
        return cb(assignment);
    };
    used[idx] = true;
    let fact = facts[idx];
    let stop = 'candidates: {
        for cand in to.facts_of(fact.rel) {
            if cand.args.len() != fact.args.len() {
                continue;
            }
            // Try to extend the assignment along this candidate.
            let mut newly_bound: Vec<Term> = Vec::new();
            let mut ok = true;
            for (&src, &dst) in fact.args.iter().zip(cand.args.iter()) {
                match assignment.get(&src) {
                    Some(&existing) if existing != dst => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        assignment.insert(src, dst);
                        newly_bound.push(src);
                    }
                }
            }
            if ok && backtrack(facts, used, to, assignment, cb) {
                for t in newly_bound {
                    assignment.remove(&t);
                }
                break 'candidates true;
            }
            for t in newly_bound {
                assignment.remove(&t);
            }
        }
        false
    };
    used[idx] = false;
    stop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::symbols::Vocab;

    fn path(v: &mut Vocab, names: &[&str]) -> Interpretation {
        let e = v.rel("E", 2);
        let mut i = Interpretation::new();
        for w in names.windows(2) {
            let a = v.constant(w[0]);
            let b = v.constant(w[1]);
            i.insert(Fact::consts(e, &[a, b]));
        }
        i
    }

    fn cycle(v: &mut Vocab, names: &[&str]) -> Interpretation {
        let e = v.rel("E", 2);
        let mut i = path(v, names);
        let a = v.constant(names[names.len() - 1]);
        let b = v.constant(names[0]);
        i.insert(Fact::consts(e, &[a, b]));
        i
    }

    #[test]
    fn path_maps_into_cycle() {
        let mut v = Vocab::new();
        let p = path(&mut v, &["x", "y", "z"]);
        let c = cycle(&mut v, &["a", "b"]);
        assert!(has_homomorphism(&p, &c, &Homomorphism::new()));
    }

    #[test]
    fn odd_cycle_does_not_map_into_edge() {
        let mut v = Vocab::new();
        let tri = cycle(&mut v, &["x", "y", "z"]);
        let edge = cycle(&mut v, &["a", "b"]);
        // Triangle → K2 is 2-coloring a triangle: impossible.
        assert!(!has_homomorphism(&tri, &edge, &Homomorphism::new()));
    }

    #[test]
    fn even_cycle_maps_into_edge() {
        let mut v = Vocab::new();
        let c4 = cycle(&mut v, &["x", "y", "z", "w"]);
        let edge = cycle(&mut v, &["a", "b"]);
        assert!(has_homomorphism(&c4, &edge, &Homomorphism::new()));
    }

    #[test]
    fn fixed_bindings_are_respected() {
        let mut v = Vocab::new();
        let p = path(&mut v, &["x", "y"]);
        let q = path(&mut v, &["a", "b", "c"]);
        let x = Term::Const(v.constant("x"));
        let c = Term::Const(v.constant("c"));
        let mut fixed = Homomorphism::new();
        // x must map to the sink c, which has no outgoing edge.
        fixed.insert(x, c);
        assert!(!has_homomorphism(&p, &q, &fixed));
        let a = Term::Const(v.constant("a"));
        let mut fixed2 = Homomorphism::new();
        fixed2.insert(x, a);
        assert!(has_homomorphism(&p, &q, &fixed2));
    }

    #[test]
    fn enumeration_counts_all_homs() {
        let mut v = Vocab::new();
        let p = path(&mut v, &["x", "y"]);
        let q = path(&mut v, &["a", "b", "c"]);
        let mut n = 0;
        for_each_homomorphism(&p, &q, &Homomorphism::new(), &mut |_| {
            n += 1;
            false
        });
        // Edge (x,y) can map to (a,b) or (b,c).
        assert_eq!(n, 2);
    }

    #[test]
    fn embedding_detection() {
        let mut v = Vocab::new();
        let p = path(&mut v, &["x", "y"]);
        let q = path(&mut v, &["a", "b", "c"]);
        let h = find_homomorphism(&p, &q, &Homomorphism::new()).unwrap();
        assert!(is_isomorphic_embedding(&p, &q, &h));
        // Collapsing map is not an embedding.
        let c2 = cycle(&mut v, &["a", "b"]);
        let p2 = path(&mut v, &["x", "y", "z"]);
        let h2 = find_homomorphism(&p2, &c2, &Homomorphism::new()).unwrap();
        assert!(!is_isomorphic_embedding(&p2, &c2, &h2));
    }

    #[test]
    fn hom_equivalence_of_cycles() {
        let mut v = Vocab::new();
        let c2 = cycle(&mut v, &["a", "b"]);
        let c4 = cycle(&mut v, &["p", "q", "r", "s"]);
        let c3 = cycle(&mut v, &["x", "y", "z"]);
        // A directed cycle maps into Cn only if n divides its length, so
        // C2 and C4 are NOT hom-equivalent (C2 ↛ C4)…
        assert!(!hom_equivalent(&c2, &c4));
        assert!(!hom_equivalent(&c2, &c3));
        assert!(hom_equivalent(&c3, &c3));
        // …but C2 is hom-equivalent to the disjoint union C2 ∪ C4, whose
        // C4 part collapses onto C2.
        let both = c2.union(&c4);
        assert!(hom_equivalent(&c2, &both));
    }

    #[test]
    fn empty_source_has_trivial_hom() {
        let v = Vocab::new();
        let empty = Interpretation::new();
        let _ = v;
        assert!(has_homomorphism(&empty, &empty, &Homomorphism::new()));
    }
}
