//! Interned symbols: relation names (with arity), constants and labelled
//! nulls.
//!
//! All structural algorithms work on compact integer ids; a [`Vocab`] owns
//! the id ↔ name mapping and is only consulted for display and parsing.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a relation symbol. The arity is stored in the [`Vocab`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

/// Identifier of a data constant (an element of the paper's ∆_D).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConstId(pub u32);

/// Identifier of a labelled null (an element of the paper's ∆_N).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NullId(pub u32);

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A vocabulary: the bidirectional mapping between symbol names and ids.
///
/// Relation symbols carry an arity; registering the same name twice with
/// different arities is an error (the paper assumes a single signature Σ
/// with infinitely many symbols of every arity, so names uniquely determine
/// arities).
///
/// Nulls are anonymous: they are created fresh and displayed as `_:k`.
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    rel_names: Vec<(String, usize)>,
    rel_by_name: HashMap<String, RelId>,
    const_names: Vec<String>,
    const_by_name: HashMap<String, ConstId>,
    next_null: u32,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a relation symbol with the given arity.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously registered with a different arity;
    /// a name determines its arity globally.
    pub fn rel(&mut self, name: &str, arity: usize) -> RelId {
        if let Some(&id) = self.rel_by_name.get(name) {
            assert_eq!(
                self.rel_names[id.0 as usize].1, arity,
                "relation symbol `{name}` re-registered with different arity"
            );
            return id;
        }
        let id = RelId(self.rel_names.len() as u32);
        self.rel_names.push((name.to_owned(), arity));
        self.rel_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a relation symbol by name without interning it.
    pub fn find_rel(&self, name: &str) -> Option<RelId> {
        self.rel_by_name.get(name).copied()
    }

    /// The arity of a relation symbol.
    pub fn arity(&self, rel: RelId) -> usize {
        self.rel_names[rel.0 as usize].1
    }

    /// The name of a relation symbol.
    pub fn rel_name(&self, rel: RelId) -> &str {
        &self.rel_names[rel.0 as usize].0
    }

    /// Number of interned relation symbols.
    pub fn rel_count(&self) -> usize {
        self.rel_names.len()
    }

    /// Iterates over all interned relation ids.
    pub fn rels(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.rel_names.len() as u32).map(RelId)
    }

    /// Interns a constant.
    pub fn constant(&mut self, name: &str) -> ConstId {
        if let Some(&id) = self.const_by_name.get(name) {
            return id;
        }
        let id = ConstId(self.const_names.len() as u32);
        self.const_names.push(name.to_owned());
        self.const_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a constant by name without interning it.
    pub fn find_constant(&self, name: &str) -> Option<ConstId> {
        self.const_by_name.get(name).copied()
    }

    /// The name of a constant.
    pub fn const_name(&self, c: ConstId) -> &str {
        &self.const_names[c.0 as usize]
    }

    /// Number of interned constants.
    pub fn const_count(&self) -> usize {
        self.const_names.len()
    }

    /// A checkpoint of the constant table, for scoped interning: pass it
    /// to [`Vocab::truncate_consts`] to drop every constant interned
    /// after this point. Long-lived serving sessions use this to keep
    /// per-request ABox constants from accumulating forever.
    pub fn const_mark(&self) -> usize {
        self.const_names.len()
    }

    /// Drops every constant interned after `mark` (a value previously
    /// returned by [`Vocab::const_mark`]). Ids handed out after the mark
    /// become dangling — callers must not retain [`ConstId`]s across the
    /// truncation. Relation symbols and nulls are unaffected.
    pub fn truncate_consts(&mut self, mark: usize) {
        for name in self.const_names.drain(mark.min(self.const_names.len())..) {
            self.const_by_name.remove(&name);
        }
    }

    /// Creates a fresh labelled null.
    pub fn fresh_null(&mut self) -> NullId {
        let id = NullId(self.next_null);
        self.next_null += 1;
        id
    }

    /// Number of nulls created so far.
    pub fn null_count(&self) -> u32 {
        self.next_null
    }

    /// Raises the null counter to at least `n` (no-op if already there).
    /// Snapshot restore uses this to re-establish the pre-crash null
    /// horizon, so post-recovery requests mint the same fresh nulls the
    /// uninterrupted session would have.
    pub fn ensure_nulls(&mut self, n: u32) {
        self.next_null = self.next_null.max(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_interning_is_idempotent() {
        let mut v = Vocab::new();
        let r1 = v.rel("R", 2);
        let r2 = v.rel("R", 2);
        assert_eq!(r1, r2);
        assert_eq!(v.arity(r1), 2);
        assert_eq!(v.rel_name(r1), "R");
        assert_eq!(v.rel_count(), 1);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn rel_arity_conflict_panics() {
        let mut v = Vocab::new();
        v.rel("R", 2);
        v.rel("R", 3);
    }

    #[test]
    fn constants_and_nulls_are_distinct_namespaces() {
        let mut v = Vocab::new();
        let a = v.constant("a");
        let b = v.constant("b");
        let a2 = v.constant("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        let n0 = v.fresh_null();
        let n1 = v.fresh_null();
        assert_ne!(n0, n1);
        assert_eq!(v.null_count(), 2);
    }

    #[test]
    fn const_scoping_rolls_back_interning() {
        let mut v = Vocab::new();
        let kept = v.constant("kept");
        let mark = v.const_mark();
        v.constant("scoped_a");
        v.constant("scoped_b");
        assert_eq!(v.const_count(), 3);
        v.truncate_consts(mark);
        assert_eq!(v.const_count(), 1);
        assert_eq!(v.find_constant("kept"), Some(kept));
        assert!(v.find_constant("scoped_a").is_none());
        assert!(v.find_constant("scoped_b").is_none());
        // Re-interning after a rollback reuses the freed id range.
        let again = v.constant("scoped_a");
        assert_eq!(again.0, 1);
        // Truncating with a stale (too large) mark is a no-op.
        v.truncate_consts(99);
        assert_eq!(v.const_count(), 2);
    }

    #[test]
    fn find_without_interning() {
        let mut v = Vocab::new();
        assert!(v.find_rel("R").is_none());
        assert!(v.find_constant("a").is_none());
        v.rel("R", 1);
        v.constant("a");
        assert!(v.find_rel("R").is_some());
        assert!(v.find_constant("a").is_some());
    }
}
