//! Text formats for instances and queries.
//!
//! **Instances** — one fact per line, `#` comments, optional trailing dot:
//!
//! ```text
//! Hand(h)
//! hasFinger(h, f1).
//! ```
//!
//! **Queries** — one CQ per line (several lines form a UCQ), SPARQL-style
//! `?x` variables; answer variables in the head:
//!
//! ```text
//! q(?x) :- hasFinger(?x, ?y), Thumb(?y)
//! ```
//!
//! Arguments without the `?` prefix are constants.

use crate::fact::Fact;
use crate::interpretation::Instance;
use crate::query::{Cq, CqAtom, CqBuilder, Ucq, VarOrConst};
use crate::symbols::Vocab;
use std::fmt;

/// A parse error with its 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Splits `R(a, b)` into the relation name and trimmed argument list.
fn split_atom(text: &str, line: usize) -> Result<(&str, Vec<&str>), ParseError> {
    let text = text.trim().trim_end_matches('.');
    let open = text
        .find('(')
        .ok_or_else(|| err(line, format!("expected `(` in atom `{text}`")))?;
    if !text.ends_with(')') {
        return Err(err(line, format!("expected `)` at the end of `{text}`")));
    }
    let name = text[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(line, format!("bad relation name `{name}`")));
    }
    let inner = &text[open + 1..text.len() - 1];
    let args: Vec<&str> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|a| a.trim()).collect()
    };
    if args.iter().any(|a| a.is_empty()) {
        return Err(err(line, format!("empty argument in `{text}`")));
    }
    Ok((name, args))
}

/// Parses an instance from its text representation, interning relation
/// symbols (with inferred arities) and constants into `vocab`.
pub fn parse_instance(text: &str, vocab: &mut Vocab) -> Result<Instance, ParseError> {
    let mut d = Instance::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (name, args) = split_atom(line, lineno)?;
        if args.is_empty() {
            return Err(err(lineno, "facts need at least one argument"));
        }
        if let Some(existing) = vocab.find_rel(name) {
            if vocab.arity(existing) != args.len() {
                return Err(err(
                    lineno,
                    format!(
                        "relation `{name}` used with arity {} but declared with {}",
                        args.len(),
                        vocab.arity(existing)
                    ),
                ));
            }
        }
        let rel = vocab.rel(name, args.len());
        let consts: Vec<_> = args.iter().map(|a| vocab.constant(a)).collect();
        // The vocabulary-level arity guard above makes this infallible for
        // text reaching us through `split_atom`, but the typed check stays
        // on in release builds: an ill-formed fact must never reach the
        // store silently.
        d.insert_checked(&Fact::consts(rel, &consts), vocab)
            .map_err(|e| err(lineno, e.to_string()))?;
    }
    Ok(d)
}

/// Parses a UCQ: each non-empty line is one CQ `q(?x̄) :- atom, …`. All
/// disjuncts must declare the same number of answer variables.
pub fn parse_ucq(text: &str, vocab: &mut Vocab) -> Result<Ucq, ParseError> {
    let mut disjuncts: Vec<Cq> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (head, body) = line
            .split_once(":-")
            .ok_or_else(|| err(lineno, "expected `head :- body`"))?;
        let (head_name, head_args) = split_atom(head, lineno)?;
        if head_name != "q" {
            return Err(err(lineno, "the head must be `q(...)`"));
        }
        let mut builder = CqBuilder::new();
        let mut answer_vars = Vec::new();
        for a in head_args {
            let Some(vname) = a.strip_prefix('?') else {
                return Err(err(lineno, "answer positions must be ?variables"));
            };
            answer_vars.push(builder.var(vname));
        }
        // Split body atoms at top-level commas (commas inside parentheses
        // separate arguments).
        let mut depth = 0usize;
        let mut start = 0usize;
        let mut atom_texts: Vec<&str> = Vec::new();
        let body_bytes = body.as_bytes();
        for (i, &b) in body_bytes.iter().enumerate() {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| err(lineno, "unbalanced parentheses"))?
                }
                b',' if depth == 0 => {
                    atom_texts.push(&body[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        atom_texts.push(&body[start..]);
        let mut atoms: Vec<CqAtom> = Vec::new();
        for at in atom_texts {
            if at.trim().is_empty() {
                continue;
            }
            let (name, args) = split_atom(at, lineno)?;
            if let Some(existing) = vocab.find_rel(name) {
                if vocab.arity(existing) != args.len() {
                    return Err(err(lineno, format!("arity mismatch for `{name}`")));
                }
            }
            let rel = vocab.rel(name, args.len());
            let parsed_args: Vec<VarOrConst> = args
                .iter()
                .map(|a| match a.strip_prefix('?') {
                    Some(v) => VarOrConst::Var(builder.var(v)),
                    None => VarOrConst::Const(vocab.constant(a)),
                })
                .collect();
            atoms.push(CqAtom {
                rel,
                args: parsed_args,
            });
        }
        if atoms.is_empty() {
            return Err(err(lineno, "a CQ needs at least one body atom"));
        }
        for v_ans in &answer_vars {
            let occurs = atoms
                .iter()
                .any(|a| a.args.contains(&VarOrConst::Var(*v_ans)));
            if !occurs {
                return Err(err(lineno, "every answer variable must occur in the body"));
            }
        }
        for ab in atoms {
            builder.atom_args(ab.rel, ab.args);
        }
        disjuncts.push(builder.build(answer_vars));
    }
    if disjuncts.is_empty() {
        return Err(err(0, "no query found"));
    }
    let arity = disjuncts[0].arity();
    if disjuncts.iter().any(|d| d.arity() != arity) {
        return Err(err(0, "all disjuncts must share the answer arity"));
    }
    Ok(Ucq::new(disjuncts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Term;

    #[test]
    fn parses_facts_with_comments_and_dots() {
        let mut v = Vocab::new();
        let d = parse_instance(
            "# a tiny hand\nHand(h)\nhasFinger(h, f1).\nhasFinger(h, f2)\n",
            &mut v,
        )
        .expect("parses");
        assert_eq!(d.len(), 3);
        assert_eq!(d.dom().len(), 3);
        assert_eq!(v.arity(v.find_rel("hasFinger").expect("interned")), 2);
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut v = Vocab::new();
        let e = parse_instance("R(a,b)\nR(a)\n", &mut v).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("arity"));
    }

    #[test]
    fn parses_a_conjunctive_query() {
        let mut v = Vocab::new();
        let q = parse_ucq("q(?x) :- hasFinger(?x, ?y), Thumb(?y)\n", &mut v).expect("parses");
        assert_eq!(q.arity(), 1);
        assert_eq!(q.disjuncts.len(), 1);
        assert_eq!(q.disjuncts[0].atoms.len(), 2);
        // Run it.
        let d = parse_instance("hasFinger(h, f1)\nThumb(f1)\n", &mut v).expect("parses");
        let h = v.constant("h");
        assert!(q.holds(&d, &[Term::Const(h)]));
    }

    #[test]
    fn multiple_lines_form_a_ucq() {
        let mut v = Vocab::new();
        let q = parse_ucq("q(?x) :- A(?x)\nq(?x) :- B(?x)\n", &mut v).expect("parses");
        assert_eq!(q.disjuncts.len(), 2);
        let d = parse_instance("B(b)\n", &mut v).expect("parses");
        let b = v.constant("b");
        assert!(q.holds(&d, &[Term::Const(b)]));
    }

    #[test]
    fn constants_in_queries() {
        let mut v = Vocab::new();
        let q = parse_ucq("q(?x) :- worksOn(?x, compilers)\n", &mut v).expect("parses");
        let d = parse_instance("worksOn(grete, compilers)\nworksOn(ada, poetry)\n", &mut v)
            .expect("parses");
        let answers = q.answers(&d);
        assert_eq!(answers.len(), 1);
        let g = v.constant("grete");
        assert!(answers.contains(&vec![Term::Const(g)]));
    }

    #[test]
    fn boolean_queries_have_empty_head() {
        let mut v = Vocab::new();
        let q = parse_ucq("q() :- E(?x, ?y)\n", &mut v).expect("parses");
        assert_eq!(q.arity(), 0);
        let d = parse_instance("E(a, b)\n", &mut v).expect("parses");
        assert!(q.holds_boolean(&d));
    }

    #[test]
    fn query_errors_are_located() {
        let mut v = Vocab::new();
        assert!(parse_ucq("p(?x) :- A(?x)\n", &mut v).is_err());
        assert!(parse_ucq("q(x) :- A(?x)\n", &mut v).is_err());
        assert!(parse_ucq("q(?x) :-\n", &mut v).is_err());
        assert!(parse_ucq("q(?x) :- A(?x\n", &mut v).is_err());
        assert!(parse_ucq("", &mut v).is_err());
        assert!(parse_ucq("q(?x) :- A(?x)\nq(?x,?y) :- R(?x,?y)\n", &mut v).is_err());
    }
}
