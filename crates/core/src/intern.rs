//! Dense interning of [`Term`]s.
//!
//! Kernels that index per-element state by array offset (bitset rows,
//! CSR adjacency) need a bijection between the terms of an instance and
//! `0..n`. [`TermInterner`] provides it: insertion order assigns ids,
//! lookups are hash probes, and the reverse direction is a `Vec` index.

use crate::fact::Term;
use std::collections::HashMap;

/// A `Term → u32` interner with `u32 → Term` reverse lookup.
#[derive(Clone, Debug, Default)]
pub struct TermInterner {
    ids: HashMap<Term, u32>,
    terms: Vec<Term>,
}

impl TermInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its dense id (stable across calls).
    pub fn intern(&mut self, t: Term) -> u32 {
        match self.ids.get(&t) {
            Some(&id) => id,
            None => {
                let id = self.terms.len() as u32;
                self.ids.insert(t, id);
                self.terms.push(t);
                id
            }
        }
    }

    /// The id of an already interned term.
    pub fn get(&self, t: Term) -> Option<u32> {
        self.ids.get(&t).copied()
    }

    /// The term with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by [`TermInterner::intern`].
    pub fn term(&self, id: u32) -> Term {
        self.terms[id as usize]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over the interned terms in id order.
    pub fn iter(&self) -> impl Iterator<Item = Term> + '_ {
        self.terms.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocab;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut v = Vocab::new();
        let a = Term::Const(v.constant("a"));
        let b = Term::Const(v.constant("b"));
        let mut i = TermInterner::new();
        assert_eq!(i.intern(a), 0);
        assert_eq!(i.intern(b), 1);
        assert_eq!(i.intern(a), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get(b), Some(1));
        assert_eq!(i.term(1), b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(i.get(Term::Null(crate::symbols::NullId(7))), None);
    }
}
