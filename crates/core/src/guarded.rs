//! Guarded sets, guarded tuples and the Gaifman graph.
//!
//! A set `G ⊆ dom(A)` is *guarded* in an interpretation `A` if it is a
//! singleton or there is a fact `R(a₁,…,a_k) ∈ A` with `G = {a₁,…,a_k}`
//! (§2.2 of the paper). A tuple is guarded if its elements form a subset of
//! a guarded set.

use crate::fact::Term;
use crate::interpretation::Interpretation;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// All guarded sets `S(A)` of an interpretation, in canonical order.
pub fn guarded_sets(a: &Interpretation) -> BTreeSet<BTreeSet<Term>> {
    let mut out: BTreeSet<BTreeSet<Term>> = BTreeSet::new();
    for t in a.dom() {
        out.insert([t].into_iter().collect());
    }
    for f in a.iter() {
        out.insert(f.args.iter().copied().collect());
    }
    out
}

/// The maximal guarded sets of an interpretation: guarded sets not strictly
/// contained in another guarded set.
pub fn maximal_guarded_sets(a: &Interpretation) -> Vec<BTreeSet<Term>> {
    let all: Vec<BTreeSet<Term>> = guarded_sets(a).into_iter().collect();
    all.iter()
        .filter(|g| !all.iter().any(|h| h.len() > g.len() && g.is_subset(h)))
        .cloned()
        .collect()
}

/// Whether the elements of `tuple` are contained in a single guarded set.
pub fn is_guarded_tuple(a: &Interpretation, tuple: &[Term]) -> bool {
    let set: BTreeSet<Term> = tuple.iter().copied().collect();
    if set.len() <= 1 {
        return tuple.iter().all(|t| a.dom().contains(t));
    }
    a.iter().any(|f| set.iter().all(|t| f.args.contains(t)))
}

/// The Gaifman graph of an interpretation: vertices are domain elements,
/// with an edge between two distinct elements that co-occur in a fact.
pub fn gaifman_graph(a: &Interpretation) -> BTreeMap<Term, BTreeSet<Term>> {
    let mut g: BTreeMap<Term, BTreeSet<Term>> = BTreeMap::new();
    for t in a.dom() {
        g.entry(t).or_default();
    }
    for f in a.iter() {
        for (i, &x) in f.args.iter().enumerate() {
            for &y in &f.args[i + 1..] {
                if x != y {
                    g.entry(x).or_default().insert(y);
                    g.entry(y).or_default().insert(x);
                }
            }
        }
    }
    g
}

/// BFS distances in the Gaifman graph from a set of sources. Unreachable
/// elements are absent from the returned map (distance ∞).
pub fn distances_from(a: &Interpretation, sources: &BTreeSet<Term>) -> BTreeMap<Term, usize> {
    let g = gaifman_graph(a);
    let mut dist: BTreeMap<Term, usize> = BTreeMap::new();
    let mut queue: VecDeque<Term> = VecDeque::new();
    for &s in sources {
        if g.contains_key(&s) {
            dist.insert(s, 0);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = dist[&u];
        if let Some(nbrs) = g.get(&u) {
            for &v in nbrs {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(d + 1);
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

/// Whether the Gaifman graph of the interpretation is connected.
pub fn is_connected(a: &Interpretation) -> bool {
    let dom = a.dom();
    let Some(&first) = dom.iter().next() else {
        return true;
    };
    let reach = distances_from(a, &[first].into_iter().collect());
    reach.len() == dom.len()
}

/// The 1-neighbourhood `A≤1_a` of an element: the subinterpretation induced
/// by the union of all guarded sets containing `a` (§8 of the paper).
pub fn one_neighbourhood(a: &Interpretation, elem: Term) -> Interpretation {
    let mut domain: BTreeSet<Term> = BTreeSet::new();
    domain.insert(elem);
    for f in a.facts_with_term(elem) {
        domain.extend(f.args.iter().copied());
    }
    a.induced(&domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::symbols::Vocab;

    /// Builds the triangle instance of the paper's Example 4.
    fn triangle(v: &mut Vocab) -> Interpretation {
        let r = v.rel("R", 2);
        let x = v.constant("x");
        let y = v.constant("y");
        let z = v.constant("z");
        Interpretation::from_facts(vec![
            Fact::consts(r, &[x, y]),
            Fact::consts(r, &[y, z]),
            Fact::consts(r, &[z, x]),
        ])
    }

    #[test]
    fn guarded_sets_of_triangle() {
        let mut v = Vocab::new();
        let t = triangle(&mut v);
        let gs = guarded_sets(&t);
        // 3 singletons + 3 edges.
        assert_eq!(gs.len(), 6);
        let max = maximal_guarded_sets(&t);
        assert_eq!(max.len(), 3);
        assert!(max.iter().all(|g| g.len() == 2));
    }

    #[test]
    fn triple_guard_makes_whole_triangle_guarded() {
        let mut v = Vocab::new();
        let mut t = triangle(&mut v);
        let q = v.rel("Q", 3);
        let x = v.constant("x");
        let y = v.constant("y");
        let z = v.constant("z");
        t.insert(Fact::consts(q, &[x, y, z]));
        let max = maximal_guarded_sets(&t);
        assert_eq!(max.len(), 1);
        assert_eq!(max[0].len(), 3);
        assert!(is_guarded_tuple(
            &t,
            &[Term::Const(x), Term::Const(y), Term::Const(z)]
        ));
    }

    #[test]
    fn tuple_guardedness() {
        let mut v = Vocab::new();
        let t = triangle(&mut v);
        let x = Term::Const(v.constant("x"));
        let y = Term::Const(v.constant("y"));
        let z = Term::Const(v.constant("z"));
        assert!(is_guarded_tuple(&t, &[x, y]));
        assert!(is_guarded_tuple(&t, &[x]));
        assert!(!is_guarded_tuple(&t, &[x, y, z]));
        // Repetitions collapse.
        assert!(is_guarded_tuple(&t, &[x, x, y]));
    }

    #[test]
    fn gaifman_distances() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let i =
            Interpretation::from_facts(vec![Fact::consts(e, &[a, b]), Fact::consts(e, &[b, c])]);
        let d = distances_from(&i, &[Term::Const(a)].into_iter().collect());
        assert_eq!(d[&Term::Const(a)], 0);
        assert_eq!(d[&Term::Const(b)], 1);
        assert_eq!(d[&Term::Const(c)], 2);
        assert!(is_connected(&i));
    }

    #[test]
    fn disconnected_detected() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let d = v.constant("d");
        let i =
            Interpretation::from_facts(vec![Fact::consts(e, &[a, b]), Fact::consts(e, &[c, d])]);
        assert!(!is_connected(&i));
    }

    #[test]
    fn one_neighbourhood_is_star() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let d = v.constant("d");
        let i = Interpretation::from_facts(vec![
            Fact::consts(e, &[a, b]),
            Fact::consts(e, &[a, c]),
            Fact::consts(e, &[c, d]),
        ]);
        let nb = one_neighbourhood(&i, Term::Const(a));
        assert_eq!(nb.len(), 2);
        assert!(!nb.dom().contains(&Term::Const(d)));
    }
}
