//! Terms and facts (ground atoms).

use crate::symbols::{ConstId, NullId, RelId, Vocab};
use std::fmt;

/// A ground term: either a data constant or a labelled null.
///
/// Instances contain only constants; interpretations may additionally
/// contain labelled nulls (the anonymous elements invented by the chase or
/// present in forest models).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A named data constant from ∆_D.
    Const(ConstId),
    /// A labelled null from ∆_N.
    Null(NullId),
}

impl Term {
    /// Whether this term is a constant.
    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Whether this term is a labelled null.
    pub fn is_null(self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// Renders the term using the vocabulary for constant names.
    pub fn display<'a>(&self, vocab: &'a Vocab) -> TermDisplay<'a> {
        TermDisplay { term: *self, vocab }
    }
}

impl From<ConstId> for Term {
    fn from(c: ConstId) -> Self {
        Term::Const(c)
    }
}

impl From<NullId> for Term {
    fn from(n: NullId) -> Self {
        Term::Null(n)
    }
}

/// Helper for rendering a [`Term`] with its human-readable name.
pub struct TermDisplay<'a> {
    term: Term,
    vocab: &'a Vocab,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            Term::Const(c) => write!(f, "{}", self.vocab.const_name(c)),
            Term::Null(n) => write!(f, "_:{}", n.0),
        }
    }
}

/// A fact `R(t₁, …, t_k)`: a relation symbol applied to ground terms.
///
/// The arity of `rel` (as recorded in the [`Vocab`]) must equal
/// `args.len()`; ingestion boundaries enforce this with
/// [`crate::Interpretation::insert_checked`].
///
/// `Fact` is the *owned-escape* form of a fact, used at parse and display
/// boundaries and in tests; the working currency inside evaluation is the
/// borrowed [`crate::FactRef`], whose arguments live in a
/// [`crate::FactStore`] arena.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fact {
    /// The relation symbol.
    pub rel: RelId,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Fact {
    /// Creates a fact.
    pub fn new(rel: RelId, args: Vec<Term>) -> Self {
        Fact { rel, args }
    }

    /// Creates a fact whose arguments are all constants.
    pub fn consts(rel: RelId, args: &[ConstId]) -> Self {
        Fact {
            rel,
            args: args.iter().map(|&c| Term::Const(c)).collect(),
        }
    }

    /// Whether every argument is a constant.
    pub fn is_ground_over_consts(&self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// Applies a term mapping to all arguments, producing a new fact.
    pub fn map_terms(&self, mut f: impl FnMut(Term) -> Term) -> Fact {
        Fact {
            rel: self.rel,
            args: self.args.iter().map(|&t| f(t)).collect(),
        }
    }

    /// This fact as a borrowed [`FactRef`] view.
    pub fn as_ref(&self) -> FactRef<'_> {
        FactRef::new(self.rel, &self.args)
    }

    /// Renders the fact using the vocabulary.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> FactDisplay<'a> {
        FactDisplay::new(self.as_ref(), vocab)
    }
}

use crate::store::FactRef;

/// Helper for rendering a [`Fact`] or [`FactRef`] with human-readable
/// names.
pub struct FactDisplay<'a> {
    fact: FactRef<'a>,
    vocab: &'a Vocab,
}

impl<'a> FactDisplay<'a> {
    pub(crate) fn new(fact: FactRef<'a>, vocab: &'a Vocab) -> Self {
        FactDisplay { fact, vocab }
    }
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.vocab.rel_name(self.fact.rel))?;
        for (i, t) in self.fact.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", t.display(self.vocab))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_kinds() {
        let c = Term::Const(ConstId(0));
        let n = Term::Null(NullId(0));
        assert!(c.is_const() && !c.is_null());
        assert!(n.is_null() && !n.is_const());
        assert_ne!(c, n);
    }

    #[test]
    fn fact_display_and_map() {
        let mut v = Vocab::new();
        let r = v.rel("edge", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let f = Fact::consts(r, &[a, b]);
        assert_eq!(format!("{}", f.display(&v)), "edge(a,b)");
        assert!(f.is_ground_over_consts());
        let swapped = f.map_terms(|t| {
            if t == Term::Const(a) {
                Term::Const(b)
            } else {
                Term::Const(a)
            }
        });
        assert_eq!(format!("{}", swapped.display(&v)), "edge(b,a)");
    }
}
