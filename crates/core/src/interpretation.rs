//! Interpretations and instances.
//!
//! An [`Interpretation`] is a finite, non-empty-by-convention set of atoms
//! over constants and labelled nulls. A database *instance* is an
//! interpretation whose terms are all constants ([`Interpretation::is_instance`]).
//! Following the paper we make the strong open world assumption: an
//! interpretation `A` is a model of an instance `D` iff `D ⊆ A`.

use crate::fact::{Fact, Term};
use crate::symbols::{ConstId, RelId, Vocab};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// A finite set of facts over constants and labelled nulls, with indexes
/// by relation symbol and by term.
///
/// Insertion is deduplicating; iteration order is insertion order (which is
/// deterministic for deterministic construction code). Use
/// [`Interpretation::sorted_facts`] when canonical order is needed.
#[derive(Clone, Default)]
pub struct Interpretation {
    facts: Vec<Fact>,
    fact_set: HashSet<Fact>,
    by_rel: HashMap<RelId, Vec<u32>>,
    by_term: HashMap<Term, Vec<u32>>,
}

/// A database instance: an interpretation over constants only.
///
/// This is a type alias; the invariant is checked where it matters via
/// [`Interpretation::is_instance`].
pub type Instance = Interpretation;

impl Interpretation {
    /// Creates an empty interpretation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an interpretation from facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Self {
        let mut a = Self::new();
        for f in facts {
            a.insert(f);
        }
        a
    }

    /// Inserts a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        if self.fact_set.contains(&fact) {
            return false;
        }
        let idx = self.facts.len() as u32;
        self.by_rel.entry(fact.rel).or_default().push(idx);
        let mut seen_terms: Vec<Term> = Vec::with_capacity(fact.args.len());
        for &t in &fact.args {
            if !seen_terms.contains(&t) {
                seen_terms.push(t);
                self.by_term.entry(t).or_default().push(idx);
            }
        }
        self.fact_set.insert(fact.clone());
        self.facts.push(fact);
        true
    }

    /// Inserts every fact of `other`.
    pub fn extend_from(&mut self, other: &Interpretation) {
        for f in other.iter() {
            self.insert(f.clone());
        }
    }

    /// Whether the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.fact_set.contains(fact)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether there are no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterates over all facts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }

    /// All facts in canonical (sorted) order.
    pub fn sorted_facts(&self) -> Vec<&Fact> {
        let mut v: Vec<&Fact> = self.facts.iter().collect();
        v.sort();
        v
    }

    /// Ids (positions in insertion order) of the facts of one relation;
    /// resolve them with [`Interpretation::fact_by_id`]. This is the raw
    /// form of [`Interpretation::facts_of`] used by the
    /// [`crate::index::FactLookup`] implementation.
    pub fn rel_fact_ids(&self, rel: RelId) -> &[u32] {
        self.by_rel.get(&rel).map_or(&[], Vec::as_slice)
    }

    /// Resolves a fact id from [`Interpretation::rel_fact_ids`].
    pub fn fact_by_id(&self, id: u32) -> &Fact {
        &self.facts[id as usize]
    }

    /// Iterates over the facts of one relation symbol.
    pub fn facts_of(&self, rel: RelId) -> impl Iterator<Item = &Fact> {
        self.by_rel
            .get(&rel)
            .into_iter()
            .flatten()
            .map(move |&i| &self.facts[i as usize])
    }

    /// Iterates over the facts mentioning a term.
    pub fn facts_with_term(&self, t: Term) -> impl Iterator<Item = &Fact> {
        self.by_term
            .get(&t)
            .into_iter()
            .flatten()
            .map(move |&i| &self.facts[i as usize])
    }

    /// The active domain: every term occurring in some fact, in canonical
    /// order.
    pub fn dom(&self) -> BTreeSet<Term> {
        self.by_term.keys().copied().collect()
    }

    /// The constants in the active domain.
    pub fn consts(&self) -> BTreeSet<ConstId> {
        self.by_term
            .keys()
            .filter_map(|t| match t {
                Term::Const(c) => Some(*c),
                Term::Null(_) => None,
            })
            .collect()
    }

    /// The relation symbols occurring in the interpretation (the paper's
    /// `sig(A)`).
    pub fn sig(&self) -> BTreeSet<RelId> {
        self.by_rel.keys().copied().collect()
    }

    /// Whether all terms are constants, i.e. this interpretation is a
    /// database instance in the paper's sense.
    pub fn is_instance(&self) -> bool {
        self.by_term.keys().all(|t| t.is_const())
    }

    /// Whether `self` is a model of the instance `d`, i.e. `d ⊆ self`.
    pub fn models_instance(&self, d: &Interpretation) -> bool {
        d.iter().all(|f| self.contains(f))
    }

    /// The subinterpretation induced by a set of terms: all facts whose
    /// arguments all lie in `domain` (the paper's `B|_A`).
    pub fn induced(&self, domain: &BTreeSet<Term>) -> Interpretation {
        Interpretation::from_facts(
            self.iter()
                .filter(|f| f.args.iter().all(|t| domain.contains(t)))
                .cloned(),
        )
    }

    /// The restriction of the interpretation to facts over a sub-signature.
    pub fn reduct(&self, sig: &BTreeSet<RelId>) -> Interpretation {
        Interpretation::from_facts(self.iter().filter(|f| sig.contains(&f.rel)).cloned())
    }

    /// Applies a term mapping to every fact.
    pub fn map_terms(&self, mut f: impl FnMut(Term) -> Term) -> Interpretation {
        Interpretation::from_facts(self.iter().map(|fact| fact.map_terms(&mut f)))
    }

    /// Renames the domain of `self` apart from `other`'s domain by replacing
    /// every shared term with a fresh null, returning the renamed copy and
    /// the renaming.
    pub fn rename_apart(
        &self,
        other: &Interpretation,
        vocab: &mut Vocab,
    ) -> (Interpretation, BTreeMap<Term, Term>) {
        let other_dom = other.dom();
        let mut renaming: BTreeMap<Term, Term> = BTreeMap::new();
        for t in self.dom() {
            if other_dom.contains(&t) {
                renaming.insert(t, Term::Null(vocab.fresh_null()));
            }
        }
        let renamed = self.map_terms(|t| *renaming.get(&t).unwrap_or(&t));
        (renamed, renaming)
    }

    /// Disjoint union: renames `other` apart from `self`, then unions.
    pub fn disjoint_union(&self, other: &Interpretation, vocab: &mut Vocab) -> Interpretation {
        let (renamed, _) = other.rename_apart(self, vocab);
        let mut out = self.clone();
        out.extend_from(&renamed);
        out
    }

    /// Plain union of the fact sets.
    pub fn union(&self, other: &Interpretation) -> Interpretation {
        let mut out = self.clone();
        out.extend_from(other);
        out
    }

    /// Renders the interpretation as a sorted, comma-separated fact list.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> InterpretationDisplay<'a> {
        InterpretationDisplay {
            interp: self,
            vocab,
        }
    }
}

impl PartialEq for Interpretation {
    fn eq(&self, other: &Self) -> bool {
        self.fact_set == other.fact_set
    }
}

impl Eq for Interpretation {}

impl fmt::Debug for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.sorted_facts()).finish()
    }
}

/// Helper for rendering an [`Interpretation`] with human-readable names.
pub struct InterpretationDisplay<'a> {
    interp: &'a Interpretation,
    vocab: &'a Vocab,
}

impl fmt::Display for InterpretationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.interp.sorted_facts().into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", fact.display(self.vocab))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vocab, Interpretation) {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let mut i = Interpretation::new();
        i.insert(Fact::consts(r, &[a, b]));
        i.insert(Fact::consts(r, &[b, c]));
        (v, i)
    }

    #[test]
    fn insert_dedupes() {
        let (mut v, mut i) = setup();
        let r = v.rel("R", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        assert!(!i.insert(Fact::consts(r, &[a, b])));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn dom_and_sig() {
        let (mut v, i) = setup();
        assert_eq!(i.dom().len(), 3);
        assert_eq!(i.sig().len(), 1);
        assert!(i.is_instance());
        let n = v.fresh_null();
        let r = v.rel("R", 2);
        let mut j = i.clone();
        j.insert(Fact::new(r, vec![Term::Null(n), Term::Null(n)]));
        assert!(!j.is_instance());
    }

    #[test]
    fn induced_subinterpretation() {
        let (mut v, i) = setup();
        let a = v.constant("a");
        let b = v.constant("b");
        let sub: BTreeSet<Term> = [Term::Const(a), Term::Const(b)].into_iter().collect();
        let ind = i.induced(&sub);
        assert_eq!(ind.len(), 1);
    }

    #[test]
    fn models_instance_is_superset_test() {
        let (_, i) = setup();
        let mut bigger = i.clone();
        assert!(bigger.models_instance(&i));
        let mut v2 = Vocab::new();
        let s = v2.rel("S", 1);
        let d = v2.constant("d");
        bigger.insert(Fact::consts(s, &[d]));
        assert!(bigger.models_instance(&i));
        assert!(!i.models_instance(&bigger));
    }

    #[test]
    fn disjoint_union_renames_shared_terms() {
        let (mut v, i) = setup();
        let u = i.disjoint_union(&i.clone(), &mut v);
        // All three terms of the copy get renamed to fresh nulls, so the
        // union has twice the facts and twice the domain.
        assert_eq!(u.len(), 4);
        assert_eq!(u.dom().len(), 6);
    }

    #[test]
    fn facts_with_term_index() {
        let (mut v, i) = setup();
        let b = Term::Const(v.constant("b"));
        assert_eq!(i.facts_with_term(b).count(), 2);
        let a = Term::Const(v.constant("a"));
        assert_eq!(i.facts_with_term(a).count(), 1);
    }

    #[test]
    fn reduct_filters_signature() {
        let mut v = Vocab::new();
        let r = v.rel("R", 1);
        let s = v.rel("S", 1);
        let a = v.constant("a");
        let mut i = Interpretation::new();
        i.insert(Fact::consts(r, &[a]));
        i.insert(Fact::consts(s, &[a]));
        let sig: BTreeSet<RelId> = [r].into_iter().collect();
        assert_eq!(i.reduct(&sig).len(), 1);
    }
}
