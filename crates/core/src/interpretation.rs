//! Interpretations and instances.
//!
//! An [`Interpretation`] is a finite, non-empty-by-convention set of atoms
//! over constants and labelled nulls. A database *instance* is an
//! interpretation whose terms are all constants ([`Interpretation::is_instance`]).
//! Following the paper we make the strong open world assumption: an
//! interpretation `A` is a model of an instance `D` iff `D ⊆ A`.
//!
//! Since the columnar-fact-plane refactor an interpretation is a thin
//! view over a [`FactStore`]: the store owns the facts (one flat term
//! arena, dedup, per-relation index) and the interpretation adds only the
//! per-term index that the guarded-fragment algorithms need. Iteration
//! yields borrowed [`FactRef`]s; owned [`Fact`]s appear only at parse and
//! test boundaries.

use crate::fact::{Fact, Term};
use crate::store::{FactRef, FactStore, StoreStats};
use crate::symbols::{ConstId, RelId, Vocab};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// The arity recorded in the [`Vocab`] disagrees with a fact's argument
/// count — the fact is ill-formed and was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArityError {
    /// The relation symbol of the rejected fact.
    pub rel: RelId,
    /// The arity the vocabulary records for `rel`.
    pub expected: usize,
    /// The number of arguments the fact actually carried.
    pub got: usize,
}

impl fmt::Display for ArityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "arity mismatch: relation expects {} argument(s), fact has {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for ArityError {}

/// A finite set of facts over constants and labelled nulls, with indexes
/// by relation symbol and by term.
///
/// Insertion is deduplicating; iteration order is insertion order (which is
/// deterministic for deterministic construction code). Use
/// [`Interpretation::sorted_facts`] when canonical order is needed.
#[derive(Clone, Default)]
pub struct Interpretation {
    store: FactStore,
    by_term: HashMap<Term, Vec<u32>>,
}

/// A database instance: an interpretation over constants only.
///
/// This is a type alias; the invariant is checked where it matters via
/// [`Interpretation::is_instance`].
pub type Instance = Interpretation;

impl Interpretation {
    /// Creates an empty interpretation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an interpretation from facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Self {
        let mut a = Self::new();
        for f in facts {
            a.insert(f);
        }
        a
    }

    /// Rebuilds the per-term index over an existing store.
    pub fn from_store(store: FactStore) -> Self {
        let mut by_term: HashMap<Term, Vec<u32>> = HashMap::new();
        for (idx, f) in store.iter().enumerate() {
            for &t in f.args {
                let bucket = by_term.entry(t).or_default();
                if bucket.last() != Some(&(idx as u32)) {
                    bucket.push(idx as u32);
                }
            }
        }
        Interpretation { store, by_term }
    }

    /// Inserts a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.insert_ref(fact.rel, &fact.args)
    }

    /// Inserts a fact given as a relation and an argument slice, without
    /// requiring an owned [`Fact`]; returns `true` if it was new.
    ///
    /// This is the allocation-free fast path: a duplicate costs one hash
    /// and one slice comparison, a new fact one arena append.
    pub fn insert_ref(&mut self, rel: RelId, args: &[Term]) -> bool {
        let (id, new) = self.store.intern(rel, args);
        if new {
            for &t in args {
                // A term repeated within one fact hits the same (freshly
                // pushed) bucket tail, so the dedup check is O(1) per
                // argument rather than a scan of the preceding arguments.
                let bucket = self.by_term.entry(t).or_default();
                if bucket.last() != Some(&id.0) {
                    bucket.push(id.0);
                }
            }
        }
        new
    }

    /// Inserts a fact after validating its argument count against the
    /// vocabulary; malformed facts are rejected with a typed error
    /// instead of (in release builds) silently corrupting the store.
    ///
    /// Ingestion boundaries — the textual parser and the JSONL serving
    /// protocol — route every external fact through this check.
    pub fn insert_checked(&mut self, fact: &Fact, vocab: &Vocab) -> Result<bool, ArityError> {
        let expected = vocab.arity(fact.rel);
        if expected != fact.args.len() {
            return Err(ArityError {
                rel: fact.rel,
                expected,
                got: fact.args.len(),
            });
        }
        Ok(self.insert_ref(fact.rel, &fact.args))
    }

    /// Inserts every fact of `other`, borrowing its arena (no per-fact
    /// allocation).
    pub fn extend_from(&mut self, other: &Interpretation) {
        for f in other.iter() {
            self.insert_ref(f.rel, f.args);
        }
    }

    /// Consumes `other` and folds its facts into `self`. When `self` is
    /// empty this moves the whole store (arena and indexes) instead of
    /// re-interning fact by fact.
    pub fn absorb(&mut self, other: Interpretation) {
        if self.is_empty() {
            *self = other;
        } else {
            self.extend_from(&other);
        }
    }

    /// Whether the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.store.lookup(fact.rel, &fact.args).is_some()
    }

    /// Whether the fact given as relation and argument slice is present.
    pub fn contains_ref(&self, rel: RelId, args: &[Term]) -> bool {
        self.store.lookup(rel, args).is_some()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether there are no facts.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Iterates over all facts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = FactRef<'_>> {
        self.store.iter()
    }

    /// All facts in canonical (sorted) order.
    pub fn sorted_facts(&self) -> Vec<FactRef<'_>> {
        let mut v: Vec<FactRef<'_>> = self.store.iter().collect();
        v.sort();
        v
    }

    /// The backing columnar store.
    pub fn store(&self) -> &FactStore {
        &self.store
    }

    /// Consumes the interpretation, releasing its store (the per-term
    /// index is dropped). This is how [`crate::IndexedInstance`] adopts
    /// an interpretation's facts without copying them.
    pub fn into_store(self) -> FactStore {
        self.store
    }

    /// Storage-pressure counters of the backing store.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Ids (positions in insertion order) of the facts of one relation;
    /// resolve them with [`Interpretation::fact_by_id`]. This is the raw
    /// form of [`Interpretation::facts_of`] used by the
    /// [`crate::index::FactLookup`] implementation. Buckets are ascending
    /// in fact id.
    pub fn rel_fact_ids(&self, rel: RelId) -> &[u32] {
        self.store.rel_ids(rel)
    }

    /// Resolves a fact id from [`Interpretation::rel_fact_ids`].
    pub fn fact_by_id(&self, id: u32) -> FactRef<'_> {
        self.store.fact_ref(crate::store::FactId(id))
    }

    /// Iterates over the facts of one relation symbol.
    pub fn facts_of(&self, rel: RelId) -> impl Iterator<Item = FactRef<'_>> {
        self.store
            .rel_ids(rel)
            .iter()
            .map(move |&i| self.fact_by_id(i))
    }

    /// Iterates over the facts mentioning a term.
    pub fn facts_with_term(&self, t: Term) -> impl Iterator<Item = FactRef<'_>> {
        self.by_term
            .get(&t)
            .into_iter()
            .flatten()
            .map(move |&i| self.fact_by_id(i))
    }

    /// The active domain: every term occurring in some fact, in canonical
    /// order.
    pub fn dom(&self) -> BTreeSet<Term> {
        self.by_term.keys().copied().collect()
    }

    /// The constants in the active domain.
    pub fn consts(&self) -> BTreeSet<ConstId> {
        self.by_term
            .keys()
            .filter_map(|t| match t {
                Term::Const(c) => Some(*c),
                Term::Null(_) => None,
            })
            .collect()
    }

    /// The relation symbols occurring in the interpretation (the paper's
    /// `sig(A)`).
    pub fn sig(&self) -> BTreeSet<RelId> {
        self.store.rels_present().collect()
    }

    /// Whether all terms are constants, i.e. this interpretation is a
    /// database instance in the paper's sense.
    pub fn is_instance(&self) -> bool {
        self.by_term.keys().all(|t| t.is_const())
    }

    /// Whether `self` is a model of the instance `d`, i.e. `d ⊆ self`.
    pub fn models_instance(&self, d: &Interpretation) -> bool {
        d.iter().all(|f| self.contains_ref(f.rel, f.args))
    }

    /// The subinterpretation induced by a set of terms: all facts whose
    /// arguments all lie in `domain` (the paper's `B|_A`).
    pub fn induced(&self, domain: &BTreeSet<Term>) -> Interpretation {
        let mut out = Interpretation::new();
        for f in self.iter() {
            if f.args.iter().all(|t| domain.contains(t)) {
                out.insert_ref(f.rel, f.args);
            }
        }
        out
    }

    /// The restriction of the interpretation to facts over a sub-signature.
    pub fn reduct(&self, sig: &BTreeSet<RelId>) -> Interpretation {
        let mut out = Interpretation::new();
        for f in self.iter() {
            if sig.contains(&f.rel) {
                out.insert_ref(f.rel, f.args);
            }
        }
        out
    }

    /// Applies a term mapping to every fact.
    pub fn map_terms(&self, mut f: impl FnMut(Term) -> Term) -> Interpretation {
        let mut out = Interpretation::new();
        let mut scratch: Vec<Term> = Vec::new();
        for fact in self.iter() {
            scratch.clear();
            scratch.extend(fact.args.iter().map(|&t| f(t)));
            out.insert_ref(fact.rel, &scratch);
        }
        out
    }

    /// Renames the domain of `self` apart from `other`'s domain by replacing
    /// every shared term with a fresh null, returning the renamed copy and
    /// the renaming.
    pub fn rename_apart(
        &self,
        other: &Interpretation,
        vocab: &mut Vocab,
    ) -> (Interpretation, BTreeMap<Term, Term>) {
        let other_dom = other.dom();
        let mut renaming: BTreeMap<Term, Term> = BTreeMap::new();
        for t in self.dom() {
            if other_dom.contains(&t) {
                renaming.insert(t, Term::Null(vocab.fresh_null()));
            }
        }
        let renamed = self.map_terms(|t| *renaming.get(&t).unwrap_or(&t));
        (renamed, renaming)
    }

    /// Disjoint union: renames `other` apart from `self`, then unions.
    pub fn disjoint_union(&self, other: &Interpretation, vocab: &mut Vocab) -> Interpretation {
        let (renamed, _) = other.rename_apart(self, vocab);
        let mut out = self.clone();
        out.absorb(renamed);
        out
    }

    /// Plain union of the fact sets.
    pub fn union(&self, other: &Interpretation) -> Interpretation {
        let mut out = self.clone();
        out.extend_from(other);
        out
    }

    /// Renders the interpretation as a sorted, comma-separated fact list.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> InterpretationDisplay<'a> {
        InterpretationDisplay {
            interp: self,
            vocab,
        }
    }
}

impl PartialEq for Interpretation {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|f| other.contains_ref(f.rel, f.args))
    }
}

impl Eq for Interpretation {}

impl fmt::Debug for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.sorted_facts()).finish()
    }
}

/// Helper for rendering an [`Interpretation`] with human-readable names.
pub struct InterpretationDisplay<'a> {
    interp: &'a Interpretation,
    vocab: &'a Vocab,
}

impl fmt::Display for InterpretationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.interp.sorted_facts().into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", fact.display(self.vocab))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vocab, Interpretation) {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let mut i = Interpretation::new();
        i.insert(Fact::consts(r, &[a, b]));
        i.insert(Fact::consts(r, &[b, c]));
        (v, i)
    }

    #[test]
    fn insert_dedupes() {
        let (mut v, mut i) = setup();
        let r = v.rel("R", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        assert!(!i.insert(Fact::consts(r, &[a, b])));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn insert_checked_rejects_bad_arity() {
        let (mut v, mut i) = setup();
        let r = v.rel("R", 2);
        let a = v.constant("a");
        let bad = Fact::consts(r, &[a]);
        let err = i.insert_checked(&bad, &v).unwrap_err();
        assert_eq!(
            err,
            ArityError {
                rel: r,
                expected: 2,
                got: 1
            }
        );
        assert_eq!(i.len(), 2);
        let b = v.constant("b");
        assert_eq!(i.insert_checked(&Fact::consts(r, &[a, b]), &v), Ok(false));
        let d = v.constant("d");
        assert_eq!(i.insert_checked(&Fact::consts(r, &[a, d]), &v), Ok(true));
    }

    #[test]
    fn dom_and_sig() {
        let (mut v, i) = setup();
        assert_eq!(i.dom().len(), 3);
        assert_eq!(i.sig().len(), 1);
        assert!(i.is_instance());
        let n = v.fresh_null();
        let r = v.rel("R", 2);
        let mut j = i.clone();
        j.insert(Fact::new(r, vec![Term::Null(n), Term::Null(n)]));
        assert!(!j.is_instance());
    }

    #[test]
    fn repeated_terms_index_once() {
        let mut v = Vocab::new();
        let r = v.rel("R", 3);
        let a = v.constant("a");
        let b = v.constant("b");
        let mut i = Interpretation::new();
        i.insert(Fact::consts(r, &[a, a, b]));
        assert_eq!(i.facts_with_term(Term::Const(a)).count(), 1);
        assert_eq!(i.facts_with_term(Term::Const(b)).count(), 1);
    }

    #[test]
    fn absorb_moves_into_empty() {
        let (mut v, i) = setup();
        let mut empty = Interpretation::new();
        empty.absorb(i.clone());
        assert_eq!(empty, i);
        // Non-empty target: union semantics over a shared prefix.
        let r = v.rel("R", 2);
        let c = v.constant("c");
        let d = v.constant("d");
        let mut j = Interpretation::new();
        j.insert(Fact::consts(r, &[c, d]));
        j.insert(Fact::consts(r, &[v.constant("a"), v.constant("b")]));
        let mut k = i.clone();
        k.absorb(j);
        assert_eq!(k.len(), 3);
    }

    #[test]
    fn induced_subinterpretation() {
        let (mut v, i) = setup();
        let a = v.constant("a");
        let b = v.constant("b");
        let sub: BTreeSet<Term> = [Term::Const(a), Term::Const(b)].into_iter().collect();
        let ind = i.induced(&sub);
        assert_eq!(ind.len(), 1);
    }

    #[test]
    fn models_instance_is_superset_test() {
        let (_, i) = setup();
        let mut bigger = i.clone();
        assert!(bigger.models_instance(&i));
        let mut v2 = Vocab::new();
        let s = v2.rel("S", 1);
        let d = v2.constant("d");
        bigger.insert(Fact::consts(s, &[d]));
        assert!(bigger.models_instance(&i));
        assert!(!i.models_instance(&bigger));
    }

    #[test]
    fn disjoint_union_renames_shared_terms() {
        let (mut v, i) = setup();
        let u = i.disjoint_union(&i.clone(), &mut v);
        // All three terms of the copy get renamed to fresh nulls, so the
        // union has twice the facts and twice the domain.
        assert_eq!(u.len(), 4);
        assert_eq!(u.dom().len(), 6);
    }

    #[test]
    fn facts_with_term_index() {
        let (mut v, i) = setup();
        let b = Term::Const(v.constant("b"));
        assert_eq!(i.facts_with_term(b).count(), 2);
        let a = Term::Const(v.constant("a"));
        assert_eq!(i.facts_with_term(a).count(), 1);
    }

    #[test]
    fn from_store_rebuilds_term_index() {
        let (v, i) = setup();
        let _ = &v;
        let store = i.clone().into_store();
        let back = Interpretation::from_store(store);
        assert_eq!(back, i);
        assert_eq!(back.dom(), i.dom());
    }

    #[test]
    fn reduct_filters_signature() {
        let mut v = Vocab::new();
        let r = v.rel("R", 1);
        let s = v.rel("S", 1);
        let a = v.constant("a");
        let mut i = Interpretation::new();
        i.insert(Fact::consts(r, &[a]));
        i.insert(Fact::consts(s, &[a]));
        let sig: BTreeSet<RelId> = [r].into_iter().collect();
        assert_eq!(i.reduct(&sig).len(), 1);
    }
}
