//! Indexed fact storage for repeated query evaluation.
//!
//! [`IndexedInstance`] wraps a [`FactStore`] with an extra
//! per-`(relation, first argument)` hash index, so a join that has
//! already bound the first argument of an atom probes a bucket instead of
//! scanning the whole relation. The [`FactLookup`] trait abstracts over
//! plain [`Interpretation`]s (which fall back to the per-relation index),
//! [`IndexedInstance`]s, and [`DeltaView`]s (the tail of a store past a
//! frontier — a round's newly derived facts as an id range), letting
//! evaluation code be written once and run over any of them.

use crate::fact::{Fact, Term};
use crate::interpretation::Interpretation;
use crate::store::{FactId, FactRef, FactStore, StoreStats};
use crate::symbols::RelId;
use std::collections::HashMap;

/// Read access to a fact store for join evaluation.
///
/// The contract of [`FactLookup::candidate_ids`] is deliberately loose:
/// the returned ids must cover every fact of `rel` whose first argument
/// is `first` (when `Some`), but may include more — callers re-check the
/// arguments of every candidate. This lets unindexed stores return the
/// whole relation while indexed stores return an exact bucket.
pub trait FactLookup {
    /// Ids of a superset of the facts of `rel` (exactly the facts whose
    /// first argument equals `first` where an index is available). The
    /// returned slice is ascending in fact id.
    fn candidate_ids(&self, rel: RelId, first: Option<Term>) -> &[u32];

    /// Resolves a fact id returned by [`FactLookup::candidate_ids`].
    fn fact(&self, id: u32) -> FactRef<'_>;

    /// Whether the store contains exactly the fact `rel(args…)`.
    fn contains_slice(&self, rel: RelId, args: &[Term]) -> bool;

    /// Number of candidates a [`FactLookup::candidate_ids`] call would
    /// return; used by join planners to order atoms cheapest-first.
    fn candidate_count(&self, rel: RelId, first: Option<Term>) -> usize {
        self.candidate_ids(rel, first).len()
    }

    /// Whether the candidate `id` is live. Stores without retraction
    /// support report everything live; maintained stores
    /// ([`crate::FactStore::sub_support`]) report dead facts so join
    /// loops skip them.
    fn is_live(&self, _id: u32) -> bool {
        true
    }
}

impl FactLookup for Interpretation {
    fn candidate_ids(&self, rel: RelId, _first: Option<Term>) -> &[u32] {
        // No first-argument index on plain interpretations: return the
        // whole relation (a superset, as the contract allows).
        self.rel_fact_ids(rel)
    }

    fn fact(&self, id: u32) -> FactRef<'_> {
        self.fact_by_id(id)
    }

    fn contains_slice(&self, rel: RelId, args: &[Term]) -> bool {
        self.contains_ref(rel, args)
    }
}

/// A fact store with per-relation and per-`(relation, first argument)`
/// hash indexes, built once and maintained incrementally on insert.
///
/// Since the columnar-fact-plane refactor this is a view over the same
/// [`FactStore`] representation as [`Interpretation`]: adopting an
/// interpretation via [`IndexedInstance::from_instance`] *moves* its
/// store (arena, dedup, relation index) and only builds the
/// first-argument index on top — no fact is copied.
#[derive(Clone, Default)]
pub struct IndexedInstance {
    store: FactStore,
    by_rel_first: HashMap<(RelId, Term), Vec<u32>>,
}

impl IndexedInstance {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopts an interpretation's store zero-copy (the per-term index is
    /// dropped, the first-argument index is built in one pass).
    pub fn from_instance(d: Interpretation) -> Self {
        Self::from_store(d.into_store())
    }

    /// Builds the first-argument index over an existing store.
    pub fn from_store(store: FactStore) -> Self {
        let mut by_rel_first: HashMap<(RelId, Term), Vec<u32>> = HashMap::new();
        for (idx, f) in store.iter().enumerate() {
            if let Some(&first) = f.args.first() {
                by_rel_first
                    .entry((f.rel, first))
                    .or_default()
                    .push(idx as u32);
            }
        }
        IndexedInstance {
            store,
            by_rel_first,
        }
    }

    /// Builds the indexed form of a borrowed interpretation. The store is
    /// cloned wholesale (four flat memcpy-style column clones), not fact
    /// by fact; prefer [`IndexedInstance::from_instance`] when the
    /// interpretation is owned.
    pub fn from_interpretation(d: &Interpretation) -> Self {
        Self::from_store(d.store().clone())
    }

    /// Inserts a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.insert_ref(fact.rel, &fact.args)
    }

    /// Inserts a fact given as a relation and an argument slice; returns
    /// `true` if it was new. No allocation on the duplicate path.
    pub fn insert_ref(&mut self, rel: RelId, args: &[Term]) -> bool {
        self.intern_ref(rel, args).1
    }

    /// Inserts a fact and returns its id together with whether it was
    /// new — the id-aware form incremental view maintenance needs to
    /// track support per fact.
    pub fn intern_ref(&mut self, rel: RelId, args: &[Term]) -> (FactId, bool) {
        let (id, new) = self.store.intern(rel, args);
        if new {
            if let Some(&first) = args.first() {
                self.by_rel_first
                    .entry((rel, first))
                    .or_default()
                    .push(id.0);
            }
        }
        (id, new)
    }

    /// Adds derivation support to a fact (see
    /// [`FactStore::add_support`]).
    pub fn add_support(&mut self, id: FactId, n: u32) {
        self.store.add_support(id, n);
    }

    /// Removes derivation support from a fact (see
    /// [`FactStore::sub_support`]).
    pub fn sub_support(&mut self, id: FactId, n: u32) {
        self.store.sub_support(id, n);
    }

    /// Overwrites a fact's support count (see
    /// [`FactStore::set_support`]).
    pub fn set_support(&mut self, id: FactId, n: u32) {
        self.store.set_support(id, n);
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether there are no facts.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Iterates over all facts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = FactRef<'_>> {
        self.store.iter()
    }

    /// The backing columnar store.
    pub fn store(&self) -> &FactStore {
        &self.store
    }

    /// Storage-pressure counters of the backing store.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Copies the facts back into a plain [`Interpretation`] (the store
    /// is cloned wholesale; only the per-term index is recomputed).
    pub fn to_interpretation(&self) -> Interpretation {
        Interpretation::from_store(self.store.clone())
    }

    /// Rolls the instance back to its first `mark` facts, unhooking the
    /// first-argument index tails and truncating the backing store.
    /// The session layer pairs this with
    /// [`FactStore::truncate`]-style marks to implement rollback points.
    pub fn truncate(&mut self, mark: usize) {
        if mark >= self.store.len() {
            return;
        }
        for id in (mark as u32)..self.store.len() as u32 {
            let f = self.store.fact_ref(FactId(id));
            let (rel, first) = (f.rel, f.args.first().copied());
            if let Some(first) = first {
                if let Some(bucket) = self.by_rel_first.get_mut(&(rel, first)) {
                    // Buckets are ascending in fact id, so the doomed ids
                    // form the tail.
                    while bucket.last().is_some_and(|&i| i >= mark as u32) {
                        bucket.pop();
                    }
                    if bucket.is_empty() {
                        self.by_rel_first.remove(&(rel, first));
                    }
                }
            }
        }
        self.store.truncate(mark);
    }

    /// Number of facts of one relation.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.store.rel_ids(rel).len()
    }

    /// Iterates over the facts of one relation.
    pub fn facts_of(&self, rel: RelId) -> impl Iterator<Item = FactRef<'_>> {
        self.store
            .rel_ids(rel)
            .iter()
            .map(move |&i| self.store.fact_ref(FactId(i)))
    }
}

impl FactLookup for IndexedInstance {
    fn candidate_ids(&self, rel: RelId, first: Option<Term>) -> &[u32] {
        match first {
            Some(t) => self.by_rel_first.get(&(rel, t)).map_or(&[], Vec::as_slice),
            None => self.store.rel_ids(rel),
        }
    }

    fn fact(&self, id: u32) -> FactRef<'_> {
        self.store.fact_ref(FactId(id))
    }

    fn contains_slice(&self, rel: RelId, args: &[Term]) -> bool {
        // Membership is live membership: a retracted (dead) fact is not
        // in the instance even though its id is still allocated.
        self.store
            .lookup(rel, args)
            .is_some_and(|id| self.store.is_live(id.0))
    }

    fn is_live(&self, id: u32) -> bool {
        self.store.is_live(id)
    }
}

impl std::fmt::Debug for IndexedInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.store.fmt(f)
    }
}

/// The tail of a base lookup past a fact-id frontier: the facts with id
/// `>= from`, i.e. exactly the facts derived since the frontier was
/// taken.
///
/// Because every index bucket is ascending in fact id, the view answers
/// [`FactLookup::candidate_ids`] with a suffix of the base's bucket found
/// by binary search — semi-naive evaluation passes rounds around as
/// `(base, frontier)` pairs instead of cloning delta sets.
///
/// [`FactLookup::contains_slice`] delegates to the *whole* base store:
/// the view narrows iteration, not membership (novelty checks must see
/// everything).
#[derive(Clone, Copy)]
pub struct DeltaView<'a, L: FactLookup> {
    base: &'a L,
    from: u32,
}

impl<'a, L: FactLookup> DeltaView<'a, L> {
    /// Views the facts of `base` with id at or above `from`.
    pub fn new(base: &'a L, from: u32) -> Self {
        DeltaView { base, from }
    }

    /// The frontier id the view starts at.
    pub fn from_id(&self) -> u32 {
        self.from
    }
}

impl<L: FactLookup> FactLookup for DeltaView<'_, L> {
    fn candidate_ids(&self, rel: RelId, first: Option<Term>) -> &[u32] {
        let ids = self.base.candidate_ids(rel, first);
        let cut = ids.partition_point(|&i| i < self.from);
        &ids[cut..]
    }

    fn fact(&self, id: u32) -> FactRef<'_> {
        self.base.fact(id)
    }

    fn contains_slice(&self, rel: RelId, args: &[Term]) -> bool {
        self.base.contains_slice(rel, args)
    }

    fn is_live(&self, id: u32) -> bool {
        self.base.is_live(id)
    }
}

/// An explicit id-set delta over a base lookup: the *retraction /
/// revival* counterpart of [`DeltaView`].
///
/// A [`DeltaView`] can only express "everything past a frontier" — an
/// id *range* — which covers insertions (new facts always get tail
/// ids). Incremental view maintenance also needs deltas made of
/// arbitrary interior ids: the facts doomed by a rollback, or dead
/// facts revived by rederivation. `IdSetView` materializes its own
/// per-relation and per-`(relation, first)` buckets over the given ids
/// (O(|set|) to build), so [`FactLookup::candidate_ids`] can hand out
/// slices just like the indexed base.
///
/// Like [`DeltaView`], membership ([`FactLookup::contains_slice`]) and
/// liveness delegate to the whole base: the view narrows iteration, not
/// membership.
pub struct IdSetView<'a, L: FactLookup + ?Sized> {
    base: &'a L,
    by_rel: HashMap<RelId, Vec<u32>>,
    by_rel_first: HashMap<(RelId, Term), Vec<u32>>,
}

impl<'a, L: FactLookup + ?Sized> IdSetView<'a, L> {
    /// Builds the view over `ids` (ascending; duplicates are fine but
    /// wasteful). Each id must resolve in `base`.
    pub fn new(base: &'a L, ids: &[u32]) -> Self {
        let mut by_rel: HashMap<RelId, Vec<u32>> = HashMap::new();
        let mut by_rel_first: HashMap<(RelId, Term), Vec<u32>> = HashMap::new();
        for &id in ids {
            let f = base.fact(id);
            by_rel.entry(f.rel).or_default().push(id);
            if let Some(&first) = f.args.first() {
                by_rel_first.entry((f.rel, first)).or_default().push(id);
            }
        }
        // candidate_ids promises ascending ids; sort in case the caller's
        // set was not (revival order can interleave relations).
        for bucket in by_rel.values_mut().chain(by_rel_first.values_mut()) {
            bucket.sort_unstable();
        }
        IdSetView {
            base,
            by_rel,
            by_rel_first,
        }
    }

    /// Number of ids in the view (summed over relations).
    pub fn len(&self) -> usize {
        self.by_rel.values().map(Vec::len).sum()
    }

    /// Whether the view holds no ids.
    pub fn is_empty(&self) -> bool {
        self.by_rel.is_empty()
    }
}

impl<L: FactLookup + ?Sized> FactLookup for IdSetView<'_, L> {
    fn candidate_ids(&self, rel: RelId, first: Option<Term>) -> &[u32] {
        match first {
            Some(t) => self.by_rel_first.get(&(rel, t)).map_or(&[], Vec::as_slice),
            None => self.by_rel.get(&rel).map_or(&[], Vec::as_slice),
        }
    }

    fn fact(&self, id: u32) -> FactRef<'_> {
        self.base.fact(id)
    }

    fn contains_slice(&self, rel: RelId, args: &[Term]) -> bool {
        self.base.contains_slice(rel, args)
    }

    fn is_live(&self, id: u32) -> bool {
        self.base.is_live(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocab;

    fn setup() -> (Vocab, IndexedInstance) {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s = v.rel("S", 1);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let mut d = IndexedInstance::new();
        d.insert(Fact::consts(r, &[a, b]));
        d.insert(Fact::consts(r, &[a, c]));
        d.insert(Fact::consts(r, &[b, c]));
        d.insert(Fact::consts(s, &[a]));
        (v, d)
    }

    #[test]
    fn first_arg_index_is_exact() {
        let (mut v, d) = setup();
        let r = v.rel("R", 2);
        let a = Term::Const(v.constant("a"));
        let b = Term::Const(v.constant("b"));
        let zz = Term::Const(v.constant("zz"));
        assert_eq!(d.candidate_ids(r, Some(a)).len(), 2);
        assert_eq!(d.candidate_ids(r, Some(b)).len(), 1);
        assert_eq!(d.candidate_ids(r, Some(zz)).len(), 0);
        assert_eq!(d.candidate_ids(r, None).len(), 3);
        for &id in d.candidate_ids(r, Some(a)) {
            assert_eq!(d.fact(id).args[0], a);
        }
    }

    #[test]
    fn insert_dedupes_and_counts() {
        let (mut v, mut d) = setup();
        let r = v.rel("R", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        assert!(!d.insert(Fact::consts(r, &[a, b])));
        assert_eq!(d.len(), 4);
        assert_eq!(d.rel_len(r), 3);
    }

    #[test]
    fn roundtrip_through_interpretation() {
        let (_, d) = setup();
        let plain = d.to_interpretation();
        assert_eq!(plain.len(), d.len());
        let back = IndexedInstance::from_interpretation(&plain);
        assert_eq!(back.len(), d.len());
        for f in d.iter() {
            assert!(back.contains_slice(f.rel, f.args));
            assert!(plain.contains_ref(f.rel, f.args));
        }
        // Adopting the owned interpretation preserves the same facts.
        let adopted = IndexedInstance::from_instance(plain);
        assert_eq!(adopted.len(), d.len());
    }

    #[test]
    fn interpretation_lookup_returns_superset() {
        let (mut v, d) = setup();
        let plain = d.to_interpretation();
        let r = v.rel("R", 2);
        let a = Term::Const(v.constant("a"));
        // The plain store ignores the bound first argument but must
        // still cover all matching facts.
        let ids = FactLookup::candidate_ids(&plain, r, Some(a));
        assert_eq!(ids.len(), 3);
        let matching = ids
            .iter()
            .filter(|&&i| FactLookup::fact(&plain, i).args[0] == a)
            .count();
        assert_eq!(matching, 2);
    }

    #[test]
    fn truncate_rolls_back_first_arg_index() {
        let (mut v, mut d) = setup();
        let r = v.rel("R", 2);
        let a = Term::Const(v.constant("a"));
        let e = v.constant("e");
        let mark = d.len();
        d.insert(Fact::consts(r, &[v.constant("a"), e]));
        d.insert(Fact::consts(r, &[e, e]));
        assert_eq!(d.candidate_ids(r, Some(a)).len(), 3);
        d.truncate(mark);
        assert_eq!(d.len(), mark);
        assert_eq!(d.candidate_ids(r, Some(a)).len(), 2);
        assert_eq!(d.candidate_ids(r, Some(Term::Const(e))).len(), 0);
        assert!(!d.contains_slice(r, &[Term::Const(e), Term::Const(e)]));
        // Re-inserting after the rollback reindexes cleanly.
        assert!(d.insert(Fact::consts(r, &[e, e])));
        assert_eq!(d.candidate_ids(r, Some(Term::Const(e))).len(), 1);
        // Truncating past the end is a no-op.
        d.truncate(99);
        assert_eq!(d.len(), mark + 1);
    }

    #[test]
    fn id_set_view_buckets_interior_ids() {
        let (mut v, mut d) = setup();
        let r = v.rel("R", 2);
        let s = v.rel("S", 1);
        let a = Term::Const(v.constant("a"));
        // Interior, non-contiguous ids: facts 1 (R(a,c)) and 3 (S(a)).
        let view = IdSetView::new(&d, &[1, 3]);
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert_eq!(view.candidate_ids(r, None), &[1]);
        assert_eq!(view.candidate_ids(r, Some(a)), &[1]);
        assert_eq!(view.candidate_ids(s, None), &[3]);
        let b = Term::Const(v.constant("b"));
        assert_eq!(view.candidate_ids(r, Some(b)), &[] as &[u32]);
        // Membership still sees the whole base.
        assert!(view.contains_slice(r, &[a, b]));
        assert_eq!(view.fact(1).rel, r);
        let empty = IdSetView::new(&d, &[]);
        assert!(empty.is_empty());
        // Liveness delegates to the base store's support column.
        d.sub_support(FactId(1), 1);
        let view = IdSetView::new(&d, &[1, 3]);
        assert!(!view.is_live(1));
        assert!(view.is_live(3));
        assert!(!d.contains_slice(r, &[a, Term::Const(v.constant("c"))]));
    }

    #[test]
    fn delta_view_is_a_tail() {
        let (mut v, mut d) = setup();
        let r = v.rel("R", 2);
        let c = v.constant("c");
        let a = Term::Const(v.constant("a"));
        let frontier = d.len() as u32;
        d.insert(Fact::consts(r, &[c, v.constant("a")]));
        d.insert(Fact::consts(r, &[v.constant("a"), v.constant("d")]));
        let delta = DeltaView::new(&d, frontier);
        assert_eq!(delta.candidate_ids(r, None).len(), 2);
        assert_eq!(delta.candidate_ids(r, Some(a)).len(), 1);
        // Membership still sees pre-frontier facts.
        assert!(delta.contains_slice(r, &[a, Term::Const(v.constant("b"))]));
        // A frontier of zero sees everything.
        let all = DeltaView::new(&d, 0);
        assert_eq!(all.candidate_ids(r, None).len(), d.rel_len(r));
        assert_eq!(all.from_id(), 0);
    }
}
