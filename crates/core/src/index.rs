//! Indexed fact storage for repeated query evaluation.
//!
//! [`IndexedInstance`] stores a set of facts together with a per-relation
//! index *and* a per-`(relation, first argument)` hash index, so a join
//! that has already bound the first argument of an atom probes a bucket
//! instead of scanning the whole relation. The [`FactLookup`] trait
//! abstracts over plain [`Interpretation`]s (which fall back to the
//! per-relation index) and [`IndexedInstance`]s, letting evaluation code
//! be written once and run over either representation.

use crate::fact::{Fact, Term};
use crate::interpretation::Interpretation;
use crate::symbols::RelId;
use std::collections::{HashMap, HashSet};

/// Read access to a fact store for join evaluation.
///
/// The contract of [`FactLookup::candidate_ids`] is deliberately loose:
/// the returned ids must cover every fact of `rel` whose first argument
/// is `first` (when `Some`), but may include more — callers re-check the
/// arguments of every candidate. This lets unindexed stores return the
/// whole relation while indexed stores return an exact bucket.
pub trait FactLookup {
    /// Ids of a superset of the facts of `rel` (exactly the facts whose
    /// first argument equals `first` where an index is available).
    fn candidate_ids(&self, rel: RelId, first: Option<Term>) -> &[u32];

    /// Resolves a fact id returned by [`FactLookup::candidate_ids`].
    fn fact(&self, id: u32) -> &Fact;

    /// Whether the store contains exactly this fact.
    fn contains_fact(&self, fact: &Fact) -> bool;

    /// Number of candidates a [`FactLookup::candidate_ids`] call would
    /// return; used by join planners to order atoms cheapest-first.
    fn candidate_count(&self, rel: RelId, first: Option<Term>) -> usize {
        self.candidate_ids(rel, first).len()
    }
}

impl FactLookup for Interpretation {
    fn candidate_ids(&self, rel: RelId, _first: Option<Term>) -> &[u32] {
        // No first-argument index on plain interpretations: return the
        // whole relation (a superset, as the contract allows).
        self.rel_fact_ids(rel)
    }

    fn fact(&self, id: u32) -> &Fact {
        self.fact_by_id(id)
    }

    fn contains_fact(&self, fact: &Fact) -> bool {
        self.contains(fact)
    }
}

/// A fact store with per-relation and per-`(relation, first argument)`
/// hash indexes, built once and maintained incrementally on insert.
///
/// Compared to [`Interpretation`] it drops the per-term index (which
/// join evaluation never uses) and adds the first-argument index that
/// turns bound-first joins from scans into hash probes.
#[derive(Clone, Default)]
pub struct IndexedInstance {
    facts: Vec<Fact>,
    fact_set: HashSet<Fact>,
    by_rel: HashMap<RelId, Vec<u32>>,
    by_rel_first: HashMap<(RelId, Term), Vec<u32>>,
}

impl IndexedInstance {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the indexed form of an interpretation.
    pub fn from_interpretation(d: &Interpretation) -> Self {
        let mut out = Self::new();
        for f in d.iter() {
            out.insert(f.clone());
        }
        out
    }

    /// Inserts a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        if self.fact_set.contains(&fact) {
            return false;
        }
        let id = self.facts.len() as u32;
        self.by_rel.entry(fact.rel).or_default().push(id);
        if let Some(&first) = fact.args.first() {
            self.by_rel_first
                .entry((fact.rel, first))
                .or_default()
                .push(id);
        }
        self.fact_set.insert(fact.clone());
        self.facts.push(fact);
        true
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether there are no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Iterates over all facts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }

    /// Copies the facts back into a plain [`Interpretation`].
    pub fn to_interpretation(&self) -> Interpretation {
        Interpretation::from_facts(self.iter().cloned())
    }

    /// Number of facts of one relation.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.by_rel.get(&rel).map_or(0, Vec::len)
    }

    /// Iterates over the facts of one relation.
    pub fn facts_of(&self, rel: RelId) -> impl Iterator<Item = &Fact> {
        self.by_rel
            .get(&rel)
            .into_iter()
            .flatten()
            .map(move |&i| &self.facts[i as usize])
    }
}

impl FactLookup for IndexedInstance {
    fn candidate_ids(&self, rel: RelId, first: Option<Term>) -> &[u32] {
        match first {
            Some(t) => self.by_rel_first.get(&(rel, t)).map_or(&[], Vec::as_slice),
            None => self.by_rel.get(&rel).map_or(&[], Vec::as_slice),
        }
    }

    fn fact(&self, id: u32) -> &Fact {
        &self.facts[id as usize]
    }

    fn contains_fact(&self, fact: &Fact) -> bool {
        self.fact_set.contains(fact)
    }
}

impl std::fmt::Debug for IndexedInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sorted: Vec<&Fact> = self.facts.iter().collect();
        sorted.sort();
        f.debug_set().entries(sorted).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocab;

    fn setup() -> (Vocab, IndexedInstance) {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let s = v.rel("S", 1);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let mut d = IndexedInstance::new();
        d.insert(Fact::consts(r, &[a, b]));
        d.insert(Fact::consts(r, &[a, c]));
        d.insert(Fact::consts(r, &[b, c]));
        d.insert(Fact::consts(s, &[a]));
        (v, d)
    }

    #[test]
    fn first_arg_index_is_exact() {
        let (mut v, d) = setup();
        let r = v.rel("R", 2);
        let a = Term::Const(v.constant("a"));
        let b = Term::Const(v.constant("b"));
        let zz = Term::Const(v.constant("zz"));
        assert_eq!(d.candidate_ids(r, Some(a)).len(), 2);
        assert_eq!(d.candidate_ids(r, Some(b)).len(), 1);
        assert_eq!(d.candidate_ids(r, Some(zz)).len(), 0);
        assert_eq!(d.candidate_ids(r, None).len(), 3);
        for &id in d.candidate_ids(r, Some(a)) {
            assert_eq!(d.fact(id).args[0], a);
        }
    }

    #[test]
    fn insert_dedupes_and_counts() {
        let (mut v, mut d) = setup();
        let r = v.rel("R", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        assert!(!d.insert(Fact::consts(r, &[a, b])));
        assert_eq!(d.len(), 4);
        assert_eq!(d.rel_len(r), 3);
    }

    #[test]
    fn roundtrip_through_interpretation() {
        let (_, d) = setup();
        let plain = d.to_interpretation();
        assert_eq!(plain.len(), d.len());
        let back = IndexedInstance::from_interpretation(&plain);
        assert_eq!(back.len(), d.len());
        for f in d.iter() {
            assert!(back.contains_fact(f));
            assert!(plain.contains(f));
        }
    }

    #[test]
    fn interpretation_lookup_returns_superset() {
        let (mut v, d) = setup();
        let plain = d.to_interpretation();
        let r = v.rel("R", 2);
        let a = Term::Const(v.constant("a"));
        // The plain store ignores the bound first argument but must
        // still cover all matching facts.
        let ids = FactLookup::candidate_ids(&plain, r, Some(a));
        assert_eq!(ids.len(), 3);
        let matching = ids
            .iter()
            .filter(|&&i| FactLookup::fact(&plain, i).args[0] == a)
            .count();
        assert_eq!(matching, 2);
    }
}
