//! Conjunctive queries, unions of conjunctive queries and rooted acyclic
//! queries (rAQs).
//!
//! A CQ `q(x̄) ← φ` is evaluated over an interpretation by homomorphism
//! search from its canonical database (§2). An rAQ is a non-Boolean CQ
//! whose canonical database has a cg-tree decomposition whose root bag
//! domain is exactly the set of answer variables (§2.2).

use crate::fact::{Fact, Term};
use crate::interpretation::Interpretation;
use crate::symbols::{ConstId, NullId, RelId, Vocab};
use crate::treedec::cg_tree_decomposition;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A query variable, identified by its index within the owning query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// An argument of a query atom: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum VarOrConst {
    /// A query variable.
    Var(Var),
    /// A data constant.
    Const(ConstId),
}

/// An atom `R(y₁,…,y_n)` in a CQ body.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CqAtom {
    /// The relation symbol.
    pub rel: RelId,
    /// The arguments.
    pub args: Vec<VarOrConst>,
}

/// A conjunctive query.
///
/// Invariant (checked by [`Cq::new`]): every answer variable occurs in some
/// atom, and variable indices are dense `0..var_count`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cq {
    /// The tuple of answer variables (possibly empty: a Boolean CQ).
    pub answer_vars: Vec<Var>,
    /// The body atoms.
    pub atoms: Vec<CqAtom>,
    /// Human-readable variable names, indexed by `Var`.
    pub var_names: Vec<String>,
}

impl Cq {
    /// Creates a CQ, validating that answer variables occur in the body and
    /// that atom variables are in range.
    ///
    /// # Panics
    ///
    /// Panics on malformed input; queries are program-authored, so
    /// malformedness is a bug.
    pub fn new(answer_vars: Vec<Var>, atoms: Vec<CqAtom>, var_names: Vec<String>) -> Self {
        let n = var_names.len() as u32;
        for a in &atoms {
            for arg in &a.args {
                if let VarOrConst::Var(v) = arg {
                    assert!(v.0 < n, "atom variable out of range");
                }
            }
        }
        for v in &answer_vars {
            assert!(v.0 < n, "answer variable out of range");
            assert!(
                atoms.iter().any(|a| a.args.contains(&VarOrConst::Var(*v))),
                "answer variable `{}` does not occur in the body",
                var_names[v.0 as usize]
            );
        }
        Cq {
            answer_vars,
            atoms,
            var_names,
        }
    }

    /// The arity of the query.
    pub fn arity(&self) -> usize {
        self.answer_vars.len()
    }

    /// Whether this is a Boolean query.
    pub fn is_boolean(&self) -> bool {
        self.answer_vars.is_empty()
    }

    /// Every variable occurring in the body.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        self.atoms
            .iter()
            .flat_map(|a| a.args.iter())
            .filter_map(|arg| match arg {
                VarOrConst::Var(v) => Some(*v),
                VarOrConst::Const(_) => None,
            })
            .collect()
    }

    /// The canonical database `D_q`: each variable `y` becomes the labelled
    /// null `NullId(y)`, constants stay themselves. Returns the instance and
    /// the term representing each variable.
    pub fn canonical_db(&self) -> (Interpretation, Vec<Term>) {
        let var_term = |v: Var| Term::Null(NullId(v.0));
        let mut inst = Interpretation::new();
        for a in &self.atoms {
            inst.insert(Fact::new(
                a.rel,
                a.args
                    .iter()
                    .map(|arg| match arg {
                        VarOrConst::Var(v) => var_term(*v),
                        VarOrConst::Const(c) => Term::Const(*c),
                    })
                    .collect(),
            ));
        }
        let terms = (0..self.var_names.len() as u32)
            .map(|i| var_term(Var(i)))
            .collect();
        (inst, terms)
    }

    /// Evaluates the query over a finite interpretation, returning the set
    /// of answer tuples `ā` with `A ⊨ q(ā)` (restricted to tuples over
    /// `dom(A)` by construction).
    pub fn answers(&self, a: &Interpretation) -> BTreeSet<Vec<Term>> {
        let mut out = BTreeSet::new();
        self.for_each_match(a, &mut |binding| {
            out.insert(self.answer_vars.iter().map(|v| binding[v]).collect());
            false
        });
        out
    }

    /// Whether `A ⊨ q(ā)` for the given answer tuple.
    pub fn holds(&self, a: &Interpretation, tuple: &[Term]) -> bool {
        assert_eq!(tuple.len(), self.arity(), "answer tuple arity mismatch");
        let mut fixed: BTreeMap<Var, Term> = BTreeMap::new();
        for (v, &t) in self.answer_vars.iter().zip(tuple) {
            match fixed.get(v) {
                Some(&prev) if prev != t => return false,
                _ => {
                    fixed.insert(*v, t);
                }
            }
        }
        let mut found = false;
        self.match_with(a, &fixed, &mut |_| {
            found = true;
            true
        });
        found
    }

    /// Whether the Boolean projection of the query matches anywhere.
    pub fn holds_boolean(&self, a: &Interpretation) -> bool {
        let mut found = false;
        self.for_each_match(a, &mut |_| {
            found = true;
            true
        });
        found
    }

    /// Enumerates all satisfying variable bindings; `cb` returns `true` to
    /// stop early.
    pub fn for_each_match(
        &self,
        a: &Interpretation,
        cb: &mut dyn FnMut(&BTreeMap<Var, Term>) -> bool,
    ) {
        self.match_with(a, &BTreeMap::new(), cb);
    }

    fn match_with(
        &self,
        a: &Interpretation,
        fixed: &BTreeMap<Var, Term>,
        cb: &mut dyn FnMut(&BTreeMap<Var, Term>) -> bool,
    ) {
        let mut binding = fixed.clone();
        let mut used = vec![false; self.atoms.len()];
        self.backtrack(a, &mut used, &mut binding, cb);
    }

    fn backtrack(
        &self,
        a: &Interpretation,
        used: &mut [bool],
        binding: &mut BTreeMap<Var, Term>,
        cb: &mut dyn FnMut(&BTreeMap<Var, Term>) -> bool,
    ) -> bool {
        // Most-constrained-atom-first.
        let mut best: Option<(usize, usize)> = None;
        for (i, atom) in self.atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let bound = atom
                .args
                .iter()
                .filter(|arg| match arg {
                    VarOrConst::Var(v) => binding.contains_key(v),
                    VarOrConst::Const(_) => true,
                })
                .count();
            match best {
                Some((_, b)) if b >= bound => {}
                _ => best = Some((i, bound)),
            }
            if bound == atom.args.len() {
                break;
            }
        }
        let Some((idx, _)) = best else {
            return cb(binding);
        };
        used[idx] = true;
        let atom = &self.atoms[idx];
        let mut stop = false;
        for cand in a.facts_of(atom.rel) {
            if cand.args.len() != atom.args.len() {
                continue;
            }
            let mut newly: Vec<Var> = Vec::new();
            let mut ok = true;
            for (arg, &t) in atom.args.iter().zip(cand.args.iter()) {
                match arg {
                    VarOrConst::Const(c) => {
                        if Term::Const(*c) != t {
                            ok = false;
                            break;
                        }
                    }
                    VarOrConst::Var(v) => match binding.get(v) {
                        Some(&prev) if prev != t => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(*v, t);
                            newly.push(*v);
                        }
                    },
                }
            }
            if ok && self.backtrack(a, used, binding, cb) {
                stop = true;
            }
            for v in newly {
                binding.remove(&v);
            }
            if stop {
                break;
            }
        }
        used[idx] = false;
        stop
    }

    /// Whether this CQ is a rooted acyclic query (rAQ): non-Boolean, with a
    /// cg-tree decomposition of `D_q` rooted at exactly the answer-variable
    /// set.
    pub fn is_raq(&self) -> bool {
        if self.is_boolean() {
            return false;
        }
        let (db, var_terms) = self.canonical_db();
        let root: BTreeSet<Term> = self
            .answer_vars
            .iter()
            .map(|v| var_terms[v.0 as usize])
            .collect();
        cg_tree_decomposition(&db, Some(&root)).is_some()
    }

    /// Renders the query using the vocabulary.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> CqDisplay<'a> {
        CqDisplay { cq: self, vocab }
    }
}

/// Helper for rendering a [`Cq`].
pub struct CqDisplay<'a> {
    cq: &'a Cq,
    vocab: &'a Vocab,
}

impl fmt::Display for CqDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, v) in self.cq.answer_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.cq.var_names[v.0 as usize])?;
        }
        write!(f, ") <- ")?;
        for (i, a) in self.cq.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{}(", self.vocab.rel_name(a.rel))?;
            for (j, arg) in a.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                match arg {
                    VarOrConst::Var(v) => write!(f, "{}", self.cq.var_names[v.0 as usize])?,
                    VarOrConst::Const(c) => write!(f, "{}", self.vocab.const_name(*c))?,
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries with a common arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ucq {
    /// The disjuncts.
    pub disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Creates a UCQ, validating that all disjuncts share an arity.
    ///
    /// # Panics
    ///
    /// Panics if the disjunct list is empty or arities differ.
    pub fn new(disjuncts: Vec<Cq>) -> Self {
        assert!(!disjuncts.is_empty(), "a UCQ needs at least one disjunct");
        let arity = disjuncts[0].arity();
        assert!(
            disjuncts.iter().all(|d| d.arity() == arity),
            "all UCQ disjuncts must share the answer arity"
        );
        Ucq { disjuncts }
    }

    /// A single-disjunct UCQ.
    pub fn from_cq(cq: Cq) -> Self {
        Ucq::new(vec![cq])
    }

    /// The common arity.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// The union of disjunct answers over a finite interpretation.
    pub fn answers(&self, a: &Interpretation) -> BTreeSet<Vec<Term>> {
        let mut out = BTreeSet::new();
        for d in &self.disjuncts {
            out.extend(d.answers(a));
        }
        out
    }

    /// Whether `A ⊨ q(ā)`.
    pub fn holds(&self, a: &Interpretation, tuple: &[Term]) -> bool {
        self.disjuncts.iter().any(|d| d.holds(a, tuple))
    }

    /// Whether some disjunct matches as a Boolean query.
    pub fn holds_boolean(&self, a: &Interpretation) -> bool {
        self.disjuncts.iter().any(|d| d.holds_boolean(a))
    }
}

/// Convenience builder for CQs with named variables.
#[derive(Default)]
pub struct CqBuilder {
    names: Vec<String>,
    atoms: Vec<CqAtom>,
}

impl CqBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a variable by name.
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return Var(i as u32);
        }
        self.names.push(name.to_owned());
        Var(self.names.len() as u32 - 1)
    }

    /// Adds an atom over variables only.
    pub fn atom(&mut self, rel: RelId, vars: &[Var]) -> &mut Self {
        self.atoms.push(CqAtom {
            rel,
            args: vars.iter().map(|&v| VarOrConst::Var(v)).collect(),
        });
        self
    }

    /// Adds an atom with mixed arguments.
    pub fn atom_args(&mut self, rel: RelId, args: Vec<VarOrConst>) -> &mut Self {
        self.atoms.push(CqAtom { rel, args });
        self
    }

    /// Finishes the CQ with the given answer variables.
    pub fn build(self, answer_vars: Vec<Var>) -> Cq {
        Cq::new(answer_vars, self.atoms, self.names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_query() -> (Vocab, Cq) {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.atom(e, &[x, y]);
        (v, b.build(vec![x]))
    }

    #[test]
    fn answers_on_path() {
        let (mut v, q) = edge_query();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        let i =
            Interpretation::from_facts(vec![Fact::consts(e, &[a, b]), Fact::consts(e, &[b, c])]);
        let ans = q.answers(&i);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![Term::Const(a)]));
        assert!(ans.contains(&vec![Term::Const(b)]));
        assert!(!ans.contains(&vec![Term::Const(c)]));
        assert!(q.holds(&i, &[Term::Const(a)]));
        assert!(!q.holds(&i, &[Term::Const(c)]));
    }

    #[test]
    fn boolean_query() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        b.atom(e, &[x, x]);
        let q = b.build(vec![]);
        assert!(q.is_boolean());
        let a = v.constant("a");
        let bb = v.constant("b");
        let no_loop = Interpretation::from_facts(vec![Fact::consts(e, &[a, bb])]);
        assert!(!q.holds_boolean(&no_loop));
        let with_loop = Interpretation::from_facts(vec![Fact::consts(e, &[a, a])]);
        assert!(q.holds_boolean(&with_loop));
    }

    #[test]
    fn triangle_query_is_not_raq_until_guarded() {
        // Example 4 from the paper.
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let q3 = v.rel("Q", 3);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.atom(r, &[x, y]).atom(r, &[y, z]).atom(r, &[z, x]);
        let atoms = b.atoms.clone();
        let names = b.names.clone();
        let tri = Cq::new(vec![x], atoms.clone(), names.clone());
        assert!(!tri.is_raq());
        let mut atoms2 = atoms;
        atoms2.push(CqAtom {
            rel: q3,
            args: vec![VarOrConst::Var(x), VarOrConst::Var(y), VarOrConst::Var(z)],
        });
        let guarded = Cq::new(vec![x], atoms2, names);
        assert!(guarded.is_raq());
    }

    #[test]
    fn path_query_is_raq() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.atom(e, &[x, y]).atom(e, &[y, z]);
        let q = b.build(vec![x]);
        assert!(q.is_raq());
    }

    #[test]
    fn boolean_query_is_not_raq() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.atom(e, &[x, y]);
        let q = b.build(vec![]);
        assert!(!q.is_raq());
    }

    #[test]
    fn constants_in_atoms_must_match() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let bb = v.constant("b");
        let mut b = CqBuilder::new();
        let x = b.var("x");
        b.atom_args(e, vec![VarOrConst::Const(a), VarOrConst::Var(x)]);
        let q = b.build(vec![x]);
        let i = Interpretation::from_facts(vec![Fact::consts(e, &[bb, a])]);
        assert!(q.answers(&i).is_empty());
        let j = Interpretation::from_facts(vec![Fact::consts(e, &[a, bb])]);
        assert_eq!(q.answers(&j).len(), 1);
    }

    #[test]
    fn ucq_unions_answers() {
        let mut v = Vocab::new();
        let p = v.rel("P", 1);
        let r = v.rel("Rr", 1);
        let a = v.constant("a");
        let b = v.constant("b");
        let mut b1 = CqBuilder::new();
        let x1 = b1.var("x");
        b1.atom(p, &[x1]);
        let mut b2 = CqBuilder::new();
        let x2 = b2.var("x");
        b2.atom(r, &[x2]);
        let ucq = Ucq::new(vec![b1.build(vec![x1]), b2.build(vec![x2])]);
        let i = Interpretation::from_facts(vec![Fact::consts(p, &[a]), Fact::consts(r, &[b])]);
        let ans = ucq.answers(&i);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn repeated_answer_variable_constrains_tuple() {
        let mut v = Vocab::new();
        let e = v.rel("E", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let mut bld = CqBuilder::new();
        let x = bld.var("x");
        let y = bld.var("y");
        bld.atom(e, &[x, y]);
        let q = Cq::new(vec![x, x], bld.atoms.clone(), bld.names.clone());
        let i = Interpretation::from_facts(vec![Fact::consts(e, &[a, b])]);
        assert!(q.holds(&i, &[Term::Const(a), Term::Const(a)]));
        assert!(!q.holds(&i, &[Term::Const(a), Term::Const(b)]));
    }

    #[test]
    fn display_roundtrip_shape() {
        let (v, q) = edge_query();
        assert_eq!(format!("{}", q.display(&v)), "q(x) <- E(x,y)");
    }
}
