//! Observational equivalence of the columnar [`gomq_core::FactStore`]
//! plane against a straightforward row-store reference model.
//!
//! The reference keeps every fact as an owned [`Fact`] in insertion
//! order next to a `HashSet` for dedup — exactly the shape
//! `Interpretation` had before the arena refactor. Random operation
//! streams (with labelled nulls and repeated terms in the same tuple)
//! must be indistinguishable through the public API: insertion order,
//! dedup verdicts, per-relation and per-term lookups, and the sorted
//! canonical order.

use gomq_core::{Fact, Interpretation, Term, Vocab};
use proptest::prelude::*;
use std::collections::HashSet;

/// Pre-refactor model: ordered rows plus a hash set.
#[derive(Default)]
struct RowStore {
    facts: Vec<Fact>,
    seen: HashSet<Fact>,
}

impl RowStore {
    fn insert(&mut self, fact: Fact) -> bool {
        if self.seen.contains(&fact) {
            return false;
        }
        self.seen.insert(fact.clone());
        self.facts.push(fact);
        true
    }
}

/// One raw operation: a relation index and three term indices (unary
/// and binary relations ignore the tail). Term indices ≥ `N_CONSTS`
/// select labelled nulls, and nothing stops an op from repeating the
/// same index across positions.
type Op = (usize, usize, usize, usize);

const N_CONSTS: usize = 5;
const N_NULLS: usize = 3;

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            0usize..3,
            0usize..(N_CONSTS + N_NULLS),
            0usize..(N_CONSTS + N_NULLS),
            0usize..(N_CONSTS + N_NULLS),
        ),
        0..40,
    )
}

/// Replays `ops` into both stores, checking dedup verdicts agree
/// op-by-op. Returns the pair plus the term universe for lookups.
fn replay(ops: &[Op]) -> (Vocab, Interpretation, RowStore, Vec<Term>) {
    let mut v = Vocab::new();
    let rels = [v.rel("P1", 1), v.rel("P2", 2), v.rel("P3", 3)];
    let mut terms: Vec<Term> = (0..N_CONSTS)
        .map(|i| Term::Const(v.constant(&format!("c{i}"))))
        .collect();
    for _ in 0..N_NULLS {
        terms.push(Term::Null(v.fresh_null()));
    }
    let mut d = Interpretation::new();
    let mut rows = RowStore::default();
    for &(r, a, b, c) in ops {
        let args: Vec<Term> = [a, b, c][..=r].iter().map(|&i| terms[i]).collect();
        let fact = Fact::new(rels[r], args);
        let fresh_cols = d.insert_ref(fact.rel, &fact.args);
        let fresh_rows = rows.insert(fact);
        assert_eq!(fresh_cols, fresh_rows, "dedup verdicts diverged");
    }
    (v, d, rows, terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn iteration_preserves_insertion_order(ops in ops_strategy()) {
        let (_v, d, rows, _terms) = replay(&ops);
        prop_assert_eq!(d.len(), rows.facts.len());
        let cols: Vec<Fact> = d.iter().map(|f| f.to_fact()).collect();
        prop_assert_eq!(cols, rows.facts);
    }

    #[test]
    fn by_rel_lookup_matches_a_filter(ops in ops_strategy()) {
        let (v, d, rows, _terms) = replay(&ops);
        for rel in v.rels() {
            let cols: Vec<Fact> = d.facts_of(rel).map(|f| f.to_fact()).collect();
            let reference: Vec<Fact> = rows
                .facts
                .iter()
                .filter(|f| f.rel == rel)
                .cloned()
                .collect();
            prop_assert_eq!(cols, reference);
        }
    }

    #[test]
    fn by_term_lookup_matches_a_filter(ops in ops_strategy()) {
        let (_v, d, rows, terms) = replay(&ops);
        for &t in &terms {
            let cols: Vec<Fact> = d.facts_with_term(t).map(|f| f.to_fact()).collect();
            // A fact with the term repeated must still come out once.
            let reference: Vec<Fact> = rows
                .facts
                .iter()
                .filter(|f| f.args.contains(&t))
                .cloned()
                .collect();
            prop_assert_eq!(cols, reference);
        }
    }

    #[test]
    fn sorted_facts_is_the_canonical_order(ops in ops_strategy()) {
        let (_v, d, rows, _terms) = replay(&ops);
        let cols: Vec<Fact> = d.sorted_facts().into_iter().map(|f| f.to_fact()).collect();
        let mut reference = rows.facts.clone();
        reference.sort();
        prop_assert_eq!(cols, reference);
    }

    #[test]
    fn contains_and_dom_agree(ops in ops_strategy()) {
        let (_v, d, rows, terms) = replay(&ops);
        for f in &rows.facts {
            prop_assert!(d.contains(f));
            prop_assert!(d.contains_ref(f.rel, &f.args));
        }
        let dom = d.dom();
        for &t in &terms {
            let used = rows.facts.iter().any(|f| f.args.contains(&t));
            prop_assert_eq!(dom.contains(&t), used);
        }
    }

    #[test]
    fn absorb_equals_sequential_insertion(ops in ops_strategy()) {
        // Splitting the stream in half and absorbing the second
        // interpretation into the first is observationally the same as
        // replaying the whole stream into one store.
        let (_v, whole, _rows, _terms) = replay(&ops);
        let mid = ops.len() / 2;
        let (_v1, mut left, _r1, _t1) = replay(&ops[..mid]);
        let (_v2, right, _r2, _t2) = replay(&ops[mid..]);
        left.absorb(right);
        prop_assert_eq!(left.len(), whole.len());
        let a: Vec<Fact> = left.sorted_facts().into_iter().map(|f| f.to_fact()).collect();
        let b: Vec<Fact> = whole.sorted_facts().into_iter().map(|f| f.to_fact()).collect();
        prop_assert_eq!(a, b);
    }
}
