//! Property tests for the relational substrate.

use gomq_core::guarded::{guarded_sets, is_guarded_tuple, maximal_guarded_sets};
use gomq_core::hom::{find_homomorphism, has_homomorphism, Homomorphism};
use gomq_core::treedec::is_guarded_tree_decomposable;
use gomq_core::{Fact, Instance, Term, Vocab};
use proptest::prelude::*;

/// A random instance over 2 unary and 2 binary relations and ≤ 6
/// constants, described by edge/label index lists.
fn instance_strategy() -> impl Strategy<Value = (Vocab, Instance)> {
    (
        prop::collection::vec((0usize..6, 0usize..6, 0usize..2), 1..12),
        prop::collection::vec((0usize..6, 0usize..2), 0..6),
    )
        .prop_map(|(edges, labels)| {
            let mut v = Vocab::new();
            let rels = [v.rel("R0", 2), v.rel("R1", 2)];
            let unary = [v.rel("U0", 1), v.rel("U1", 1)];
            let consts: Vec<_> = (0..6).map(|i| v.constant(&format!("c{i}"))).collect();
            let mut d = Instance::new();
            for (a, b, r) in edges {
                d.insert(Fact::consts(rels[r], &[consts[a], consts[b]]));
            }
            for (a, u) in labels {
                d.insert(Fact::consts(unary[u], &[consts[a]]));
            }
            (v, d)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn identity_is_a_homomorphism((_v, d) in instance_strategy()) {
        let id: Homomorphism = d.dom().into_iter().map(|t| (t, t)).collect();
        let found = find_homomorphism(&d, &d, &id);
        prop_assert!(found.is_some());
    }

    #[test]
    fn homomorphisms_compose((_v, d) in instance_strategy()) {
        // Any found homomorphism h : D → D composes with itself into
        // another homomorphism.
        if let Some(h) = find_homomorphism(&d, &d, &Homomorphism::new()) {
            let composed: Homomorphism =
                h.iter().map(|(&a, &b)| (a, *h.get(&b).unwrap_or(&b))).collect();
            for f in d.iter() {
                let img = f.map_terms(|t| composed[&t]);
                prop_assert!(d.contains(&img));
            }
        }
    }

    #[test]
    fn every_fact_is_inside_a_maximal_guarded_set((_v, d) in instance_strategy()) {
        let max = maximal_guarded_sets(&d);
        for f in d.iter() {
            let args: std::collections::BTreeSet<Term> = f.args.iter().copied().collect();
            prop_assert!(max.iter().any(|g| args.is_subset(g)));
        }
    }

    #[test]
    fn guarded_tuples_agree_with_guarded_sets((_v, d) in instance_strategy()) {
        for g in guarded_sets(&d) {
            let tuple: Vec<Term> = g.iter().copied().collect();
            prop_assert!(is_guarded_tuple(&d, &tuple));
        }
    }

    #[test]
    fn subinstances_inherit_decomposability_of_forests((_v, d) in instance_strategy()) {
        // If D is guarded-tree decomposable, so is every induced
        // subinstance on a prefix of its domain (forests are closed under
        // induced substructures for binary signatures).
        if is_guarded_tree_decomposable(&d) {
            let dom: Vec<Term> = d.dom().into_iter().collect();
            if dom.len() > 1 {
                let half: std::collections::BTreeSet<Term> =
                    dom[..dom.len() / 2].iter().copied().collect();
                let sub = d.induced(&half);
                if !sub.is_empty() {
                    prop_assert!(is_guarded_tree_decomposable(&sub));
                }
            }
        }
    }

    #[test]
    fn disjoint_union_preserves_hom_from_components((mut v, d) in instance_strategy()) {
        let u = d.disjoint_union(&d.clone(), &mut v);
        // The original maps into the union (identity on the first copy).
        prop_assert!(has_homomorphism(&d, &u, &Homomorphism::new()));
        // And the union maps onto the original (collapse the copies).
        prop_assert!(has_homomorphism(&u, &d, &Homomorphism::new()));
    }

    #[test]
    fn hom_existence_is_transitive_through_subsets((_v, d) in instance_strategy()) {
        // D maps into any superset of itself.
        let mut bigger = d.clone();
        let extra: Vec<gomq_core::FactRef<'_>> = d.iter().collect();
        if let Some(f) = extra.first() {
            let mut v2 = Vocab::new();
            let s = v2.rel("Sx", f.args.len());
            bigger.insert(Fact::new(s, f.args.to_vec()));
        }
        prop_assert!(has_homomorphism(&d, &bigger, &Homomorphism::new()));
    }
}

#[test]
fn query_answers_are_over_the_active_domain() {
    use gomq_core::query::CqBuilder;
    let mut v = Vocab::new();
    let r = v.rel("R", 2);
    let a = v.constant("a");
    let b = v.constant("b");
    let d = Instance::from_facts(vec![Fact::consts(r, &[a, b])]);
    let mut bld = CqBuilder::new();
    let x = bld.var("x");
    let y = bld.var("y");
    bld.atom(r, &[x, y]);
    let q = bld.build(vec![x, y]);
    for t in q.answers(&d) {
        for term in t {
            assert!(d.dom().contains(&term));
        }
    }
}
