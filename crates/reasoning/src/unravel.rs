//! Guarded unravellings (§4 of the paper).
//!
//! The uGF-unravelling `Dᵘ` of an instance `D` is built from the tree
//! `T(D)` of sequences `t = G₀G₁⋯Gₙ` of *maximal guarded sets* of `D`
//! satisfying
//!
//! * (a) `Gᵢ ≠ Gᵢ₊₁`,
//! * (b) `Gᵢ ∩ Gᵢ₊₁ ≠ ∅`,
//! * (c) `Gᵢ₋₁ ≠ Gᵢ₊₁` — for the uGF-unravelling, or
//! * (c′) `Gᵢ ∩ Gᵢ₋₁ ≠ Gᵢ ∩ Gᵢ₊₁` — for the uGC₂-unravelling (which
//!   preserves successor counts and is the right notion for counting and
//!   functions).
//!
//! Each node `t` carries a bag isomorphic to `D|_{tail(t)}`, sharing the
//! copies of elements in `tail(t) ∩ tail(t′)` with its parent. The
//! projection `e ↦ e↑` is a homomorphism `Dᵘ → D` that restricts to an
//! isomorphism on every bag. The paper's unravellings are infinite; here
//! they are cut at a radius (maximum sequence length), which suffices to
//! exhibit (non-)unravelling-tolerance on concrete queries.

use gomq_core::guarded::maximal_guarded_sets;
use gomq_core::{Instance, Interpretation, Term, Vocab};
use std::collections::{BTreeMap, BTreeSet};

/// Which unravelling to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnravelKind {
    /// Conditions (a), (b), (c).
    Ugf,
    /// Conditions (a), (b), (c′).
    Ugc2,
}

/// A node of the unravelling tree.
#[derive(Clone, Debug)]
pub struct UnravelNode {
    /// The sequence of maximal-guarded-set indices `G₀⋯Gₙ`.
    pub seq: Vec<usize>,
    /// The copy of each original element of `tail(seq)` in this bag.
    pub copies: BTreeMap<Term, Term>,
    /// Parent node index (`None` for roots).
    pub parent: Option<usize>,
}

/// The (radius-bounded) unravelling of an instance.
#[derive(Clone, Debug)]
pub struct Unravelling {
    /// The unravelled instance `Dᵘ` (over fresh nulls).
    pub interp: Interpretation,
    /// The projection `e ↦ e↑` onto the original instance.
    pub up: BTreeMap<Term, Term>,
    /// The maximal guarded sets of the original instance.
    pub guarded_sets: Vec<BTreeSet<Term>>,
    /// The tree nodes; roots are the single-set sequences in order.
    pub nodes: Vec<UnravelNode>,
}

impl Unravelling {
    /// The copy of an original element in the root bag of the tree rooted
    /// at guarded set `g_idx`.
    pub fn root_copy(&self, g_idx: usize, original: Term) -> Option<Term> {
        self.nodes
            .iter()
            .find(|n| n.seq.len() == 1 && n.seq[0] == g_idx)
            .and_then(|n| n.copies.get(&original).copied())
    }

    /// The index of a maximal guarded set containing all elements of the
    /// tuple, if any.
    pub fn guarded_set_of(&self, tuple: &[Term]) -> Option<usize> {
        self.guarded_sets
            .iter()
            .position(|g| tuple.iter().all(|t| g.contains(t)))
    }
}

/// Builds the unravelling of `D` with sequences of length ≤ `radius + 1`.
pub fn unravel(d: &Instance, kind: UnravelKind, radius: usize, vocab: &mut Vocab) -> Unravelling {
    let gsets = maximal_guarded_sets(d);
    let mut nodes: Vec<UnravelNode> = Vec::new();
    let mut interp = Interpretation::new();
    let mut up: BTreeMap<Term, Term> = BTreeMap::new();

    // Create the bag of a node: copies for fresh elements, shared copies
    // from the parent for the overlap.
    let make_bag = |seq: &[usize],
                    parent: Option<usize>,
                    nodes: &Vec<UnravelNode>,
                    interp: &mut Interpretation,
                    up: &mut BTreeMap<Term, Term>,
                    vocab: &mut Vocab| {
        let g = &gsets[*seq.last().expect("non-empty sequence")];
        let mut copies: BTreeMap<Term, Term> = BTreeMap::new();
        for &orig in g.iter() {
            let copy = match parent {
                Some(p) if nodes[p].copies.contains_key(&orig) => nodes[p].copies[&orig],
                _ => {
                    let n = Term::Null(vocab.fresh_null());
                    up.insert(n, orig);
                    n
                }
            };
            copies.insert(orig, copy);
        }
        // The bag is isomorphic to D|G. Renamed tuples go through one
        // reusable scratch buffer straight into the store's arena.
        let mut scratch: Vec<Term> = Vec::new();
        for fact in d.iter() {
            if fact.args.iter().all(|t| g.contains(t)) {
                scratch.clear();
                scratch.extend(fact.args.iter().map(|t| copies[t]));
                interp.insert_ref(fact.rel, &scratch);
            }
        }
        copies
    };

    // BFS over sequences.
    let mut frontier: Vec<usize> = Vec::new();
    for (gi, _) in gsets.iter().enumerate() {
        let copies = make_bag(&[gi], None, &nodes, &mut interp, &mut up, vocab);
        nodes.push(UnravelNode {
            seq: vec![gi],
            copies,
            parent: None,
        });
        frontier.push(nodes.len() - 1);
    }
    for _ in 0..radius {
        let mut next_frontier = Vec::new();
        for &ni in &frontier {
            let seq = nodes[ni].seq.clone();
            let tail = *seq.last().expect("non-empty");
            let prev = seq.len().checked_sub(2).map(|i| seq[i]);
            for (gi, g) in gsets.iter().enumerate() {
                // (a) Gᵢ ≠ Gᵢ₊₁
                if gi == tail {
                    continue;
                }
                // (b) overlap
                if g.is_disjoint(&gsets[tail]) {
                    continue;
                }
                // (c) / (c′)
                if let Some(p) = prev {
                    match kind {
                        UnravelKind::Ugf => {
                            if gi == p {
                                continue;
                            }
                        }
                        UnravelKind::Ugc2 => {
                            let with_prev: BTreeSet<Term> =
                                gsets[tail].intersection(&gsets[p]).copied().collect();
                            let with_next: BTreeSet<Term> =
                                gsets[tail].intersection(g).copied().collect();
                            if with_prev == with_next {
                                continue;
                            }
                        }
                    }
                }
                let mut new_seq = seq.clone();
                new_seq.push(gi);
                let copies = make_bag(&new_seq, Some(ni), &nodes, &mut interp, &mut up, vocab);
                nodes.push(UnravelNode {
                    seq: new_seq,
                    copies,
                    parent: Some(ni),
                });
                next_frontier.push(nodes.len() - 1);
            }
        }
        frontier = next_frontier;
    }
    Unravelling {
        interp,
        up,
        guarded_sets: gsets,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::guarded::is_connected;
    use gomq_core::Fact;

    /// The triangle instance of Example 5 (1).
    fn triangle(v: &mut Vocab) -> Instance {
        let r = v.rel("R", 2);
        let a = v.constant("a");
        let b = v.constant("b");
        let c = v.constant("c");
        Instance::from_facts(vec![
            Fact::consts(r, &[a, b]),
            Fact::consts(r, &[b, c]),
            Fact::consts(r, &[c, a]),
        ])
    }

    /// The depth-1 tree (star) of Example 5 (2): a with children b₁,b₂,b₃.
    fn star(v: &mut Vocab) -> Instance {
        let r = v.rel("R", 2);
        let a = v.constant("a");
        let mut d = Instance::new();
        for i in 0..3 {
            let b = v.constant(&format!("b{i}"));
            d.insert(Fact::consts(r, &[a, b]));
        }
        d
    }

    #[test]
    fn up_is_a_homomorphism() {
        let mut v = Vocab::new();
        let d = triangle(&mut v);
        let u = unravel(&d, UnravelKind::Ugf, 4, &mut v);
        for fact in u.interp.iter() {
            let image = fact.map_terms(|t| u.up[&t]);
            assert!(d.contains(&image), "e↑ must be a homomorphism onto D");
        }
    }

    #[test]
    fn triangle_unravels_into_chains() {
        // Example 5 (1): the unravelling consists of three chains (one per
        // root), so it is acyclic: no triangle maps back into it.
        let mut v = Vocab::new();
        let d = triangle(&mut v);
        let u = unravel(&d, UnravelKind::Ugf, 6, &mut v);
        // Three roots.
        let roots = u.nodes.iter().filter(|n| n.seq.len() == 1).count();
        assert_eq!(roots, 3);
        // The unravelling contains no directed R-cycle of length 3 over
        // distinct elements: check via a homomorphism test from the
        // triangle pattern *with constants preserved impossible*, i.e. no
        // cycle fact chain e0→e1→e2→e0.
        let r = v.rel("R", 2);
        let mut has_cycle = false;
        for f1 in u.interp.facts_of(r) {
            for f2 in u.interp.facts_of(r) {
                if f1.args[1] != f2.args[0] {
                    continue;
                }
                for f3 in u.interp.facts_of(r) {
                    if f2.args[1] == f3.args[0] && f3.args[1] == f1.args[0] {
                        has_cycle = true;
                    }
                }
            }
        }
        assert!(!has_cycle, "the uGF-unravelling of a triangle is acyclic");
    }

    #[test]
    fn star_ugf_unravelling_multiplies_children() {
        // Example 5 (2): under (c), paths may revisit G₁G₂G₃G₁…, so the
        // root copy of `a` collects more children than in D.
        let mut v = Vocab::new();
        let d = star(&mut v);
        let r = v.rel("R", 2);
        let u = unravel(&d, UnravelKind::Ugf, 4, &mut v);
        let a = Term::Const(v.constant("a"));
        // Find a copy of a and count its R-successors.
        let mut max_succ = 0usize;
        let copies_of_a: Vec<Term> =
            u.up.iter()
                .filter(|(_, &orig)| orig == a)
                .map(|(&c, _)| c)
                .collect();
        for ca in copies_of_a {
            let succ = u.interp.facts_of(r).filter(|f| f.args[0] == ca).count();
            max_succ = max_succ.max(succ);
        }
        assert!(
            max_succ > 3,
            "uGF-unravelling inflates successor counts (got {max_succ})"
        );
    }

    #[test]
    fn star_ugc2_unravelling_preserves_successor_counts() {
        // Under (c′), the star keeps exactly 3 successors per copy of a.
        let mut v = Vocab::new();
        let d = star(&mut v);
        let r = v.rel("R", 2);
        let u = unravel(&d, UnravelKind::Ugc2, 4, &mut v);
        let a = Term::Const(v.constant("a"));
        for (&copy, &orig) in &u.up {
            if orig != a {
                continue;
            }
            let succ = u.interp.facts_of(r).filter(|f| f.args[0] == copy).count();
            assert!(
                succ <= 3,
                "uGC₂-unravelling must not inflate successor counts (got {succ})"
            );
        }
    }

    #[test]
    fn bags_are_isomorphic_to_guarded_restrictions() {
        let mut v = Vocab::new();
        let d = triangle(&mut v);
        let u = unravel(&d, UnravelKind::Ugf, 3, &mut v);
        for node in &u.nodes {
            let g = &u.guarded_sets[*node.seq.last().expect("non-empty")];
            // Every original fact inside G has its copy in the bag.
            for fact in d.iter() {
                if fact.args.iter().all(|t| g.contains(t)) {
                    let copied = fact.map_terms(|t| node.copies[&t]);
                    assert!(u.interp.contains(&copied));
                }
            }
        }
    }

    #[test]
    fn unravelling_of_connected_instance_roots_are_trees() {
        let mut v = Vocab::new();
        let d = star(&mut v);
        let u = unravel(&d, UnravelKind::Ugc2, 3, &mut v);
        assert!(is_connected(&d));
        // Every node except roots has a parent; sequences grow by one.
        for n in &u.nodes {
            match n.parent {
                None => assert_eq!(n.seq.len(), 1),
                Some(p) => assert_eq!(n.seq.len(), u.nodes[p].seq.len() + 1),
            }
        }
    }

    #[test]
    fn radius_zero_is_disjoint_copies_of_guarded_restrictions() {
        let mut v = Vocab::new();
        let d = triangle(&mut v);
        let u = unravel(&d, UnravelKind::Ugf, 0, &mut v);
        assert_eq!(u.nodes.len(), 3);
        assert_eq!(u.interp.len(), 3); // one copied edge per root
        assert_eq!(u.interp.dom().len(), 6); // all copies distinct
    }
}
