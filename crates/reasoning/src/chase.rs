//! The chase and the disjunctive chase for positive-existential uGF
//! ontologies.
//!
//! Supported sentence bodies (after NNF): conjunction, disjunction,
//! relational atoms, negated atoms (as consistency checks), guarded ∃ and
//! guarded ∀ — no equality, counting or functionality. For such ontologies
//! a violated sentence is *repaired* by adding facts, creating fresh
//! labelled nulls for existential witnesses; disjunction branches the
//! chase. When the chase terminates:
//!
//! * each leaf is a model of `D` and `O` (verified),
//! * every model of `D` and `O` satisfies the same UCQs as some leaf
//!   (universality, by homomorphism preservation of positive bodies), so
//!   certain UCQ answers are the intersection of leaf answers,
//! * with a single leaf the result is a materialization of `O` and `D`.

use gomq_core::{Fact, Instance, Interpretation, Term, Ucq, Vocab};
use gomq_logic::eval::{eval, satisfies_ontology, Assignment};
use gomq_logic::{Formula, GfOntology, Guard, LVar, UgfSentence};
use std::collections::BTreeSet;
use std::fmt;

/// Budgets for the chase search.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// Maximum repair applications per branch.
    pub max_steps: usize,
    /// Maximum number of leaves to produce.
    pub max_leaves: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_steps: 2_000,
            max_leaves: 4_096,
        }
    }
}

/// Chase failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// The ontology uses features outside the supported positive-
    /// existential fragment.
    Unsupported(String),
    /// A budget was exhausted before saturation.
    BoundExceeded,
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::Unsupported(m) => write!(f, "unsupported ontology feature: {m}"),
            ChaseError::BoundExceeded => write!(f, "chase budget exceeded"),
        }
    }
}

impl std::error::Error for ChaseError {}

/// The saturated branches of a (disjunctive) chase.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The leaf models; empty when every branch is inconsistent.
    pub leaves: Vec<Interpretation>,
    /// Total repair steps performed.
    pub steps: usize,
}

impl ChaseResult {
    /// Whether the chase was deterministic (at most one leaf).
    pub fn is_deterministic(&self) -> bool {
        self.leaves.len() <= 1
    }

    /// The materialization, when the chase produced exactly one leaf.
    pub fn materialization(&self) -> Option<&Interpretation> {
        match self.leaves.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// Certain UCQ answers: tuples over `dom(D)` that are answers in every
    /// leaf. For an inconsistent instance (no leaves) every tuple over
    /// `dom(D)` is certain.
    pub fn certain_answers(&self, q: &Ucq, d: &Instance) -> BTreeSet<Vec<Term>> {
        let dom: Vec<Term> = d.dom().into_iter().collect();
        let arity = q.arity();
        let mut candidates: BTreeSet<Vec<Term>> = BTreeSet::new();
        let mut idx = vec![0usize; arity];
        if arity == 0 {
            candidates.insert(Vec::new());
        } else {
            'outer: loop {
                candidates.insert(idx.iter().map(|&i| dom[i]).collect());
                let mut j = 0;
                loop {
                    idx[j] += 1;
                    if idx[j] < dom.len() {
                        break;
                    }
                    idx[j] = 0;
                    j += 1;
                    if j == arity {
                        break 'outer;
                    }
                }
            }
        }
        for leaf in &self.leaves {
            candidates.retain(|t| q.holds(leaf, t));
        }
        candidates
    }
}

/// Checks that the ontology is in the supported positive-existential
/// fragment and returns the NNF bodies of its sentences.
fn prepare(o: &GfOntology) -> Result<Vec<UgfSentence>, ChaseError> {
    if !o.functional.is_empty() || !o.inverse_functional.is_empty() {
        return Err(ChaseError::Unsupported(
            "functionality declarations".to_owned(),
        ));
    }
    if !o.transitive.is_empty() {
        return Err(ChaseError::Unsupported(
            "transitivity declarations".to_owned(),
        ));
    }
    if !o.other_sentences.is_empty() {
        return Err(ChaseError::Unsupported("non-uGF sentences".to_owned()));
    }
    let mut out = Vec::new();
    for s in &o.ugf_sentences {
        let body = nnf(&s.body, false)
            .ok_or_else(|| ChaseError::Unsupported("equality or counting in body".to_owned()))?;
        out.push(UgfSentence::new(
            s.qvars.clone(),
            s.guard.clone(),
            body,
            s.var_names.clone(),
        ));
    }
    Ok(out)
}

/// Negation normal form; `neg` means the formula occurs under a negation.
/// Returns `None` for equality or counting.
fn nnf(f: &Formula, neg: bool) -> Option<Formula> {
    Some(match f {
        Formula::True => {
            if neg {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if neg {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Atom { .. } => {
            if neg {
                Formula::Not(Box::new(f.clone()))
            } else {
                f.clone()
            }
        }
        Formula::Eq(_, _) | Formula::CountExists { .. } => return None,
        Formula::Not(g) => nnf(g, !neg)?,
        Formula::And(fs) => {
            let parts: Option<Vec<_>> = fs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::Or(parts?)
            } else {
                Formula::And(parts?)
            }
        }
        Formula::Or(fs) => {
            let parts: Option<Vec<_>> = fs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::And(parts?)
            } else {
                Formula::Or(parts?)
            }
        }
        Formula::Forall { qvars, guard, body } => {
            let b = nnf(body, neg)?;
            if neg {
                Formula::Exists {
                    qvars: qvars.clone(),
                    guard: guard.clone(),
                    body: Box::new(b),
                }
            } else {
                Formula::Forall {
                    qvars: qvars.clone(),
                    guard: guard.clone(),
                    body: Box::new(b),
                }
            }
        }
        Formula::Exists { qvars, guard, body } => {
            let b = nnf(body, neg)?;
            if neg {
                Formula::Forall {
                    qvars: qvars.clone(),
                    guard: guard.clone(),
                    body: Box::new(b),
                }
            } else {
                Formula::Exists {
                    qvars: qvars.clone(),
                    guard: guard.clone(),
                    body: Box::new(b),
                }
            }
        }
    })
}

/// A repair option: a set of facts to add (possibly over fresh nulls).
type Repair = Vec<Fact>;

/// Enumerates minimal repair options making `f` (in NNF) true at `asg`.
/// Returns an empty vector when the formula cannot be made true by adding
/// facts (dead branch).
fn repairs(f: &Formula, a: &Interpretation, asg: &Assignment, vocab: &mut Vocab) -> Vec<Repair> {
    if eval(f, a, asg) {
        return vec![Vec::new()];
    }
    match f {
        Formula::True => vec![Vec::new()],
        Formula::False => Vec::new(),
        Formula::Atom { rel, args } => {
            vec![vec![Fact::new(*rel, args.iter().map(|v| asg[v]).collect())]]
        }
        Formula::Not(_) | Formula::Eq(_, _) => Vec::new(), // cannot repair by adding
        Formula::And(fs) => {
            // Cross product of repairs of unsatisfied conjuncts.
            let mut acc: Vec<Repair> = vec![Vec::new()];
            for g in fs {
                let opts = repairs(g, a, asg, vocab);
                if opts.is_empty() {
                    return Vec::new();
                }
                let mut next = Vec::new();
                for base in &acc {
                    for opt in &opts {
                        let mut combined = base.clone();
                        combined.extend(opt.iter().cloned());
                        next.push(combined);
                    }
                }
                acc = next;
            }
            acc
        }
        Formula::Or(fs) => {
            let mut out = Vec::new();
            for g in fs {
                out.extend(repairs(g, a, asg, vocab));
            }
            out
        }
        Formula::Exists { qvars, guard, body } => {
            // Restricted-chase style: create fresh witnesses and repair the
            // guard and body under them. (Reusing existing elements is not
            // needed for universality: a homomorphism may collapse nulls.)
            let mut ext = asg.clone();
            for q in qvars {
                ext.insert(*q, Term::Null(vocab.fresh_null()));
            }
            let guard_fact = match guard {
                Guard::Atom { rel, args } => Fact::new(*rel, args.iter().map(|v| ext[v]).collect()),
                Guard::Eq(_, _) => return Vec::new(), // not openGF anyway
            };
            // The body is evaluated over A extended by the guard fact.
            let mut a2 = a.clone();
            a2.insert_ref(guard_fact.rel, &guard_fact.args);
            let body_opts = repairs(body, &a2, &ext, vocab);
            body_opts
                .into_iter()
                .map(|mut opt| {
                    opt.push(guard_fact.clone());
                    opt
                })
                .collect()
        }
        Formula::Forall { qvars, guard, body } => {
            // Repair the body at every currently-matching guard tuple.
            let mut matches: Vec<Assignment> = Vec::new();
            collect_guard_matches(guard, qvars, a, asg, &mut matches);
            let mut acc: Vec<Repair> = vec![Vec::new()];
            for m in &matches {
                if eval(body, a, m) {
                    continue;
                }
                let opts = repairs(body, a, m, vocab);
                if opts.is_empty() {
                    return Vec::new();
                }
                let mut next = Vec::new();
                for base in &acc {
                    for opt in &opts {
                        let mut combined = base.clone();
                        combined.extend(opt.iter().cloned());
                        next.push(combined);
                    }
                }
                acc = next;
            }
            acc
        }
        Formula::CountExists { .. } => Vec::new(),
    }
}

fn collect_guard_matches(
    guard: &Guard,
    qvars: &[LVar],
    a: &Interpretation,
    asg: &Assignment,
    out: &mut Vec<Assignment>,
) {
    match guard {
        Guard::Atom { rel, args } => {
            for fact in a.facts_of(*rel) {
                if fact.args.len() != args.len() {
                    continue;
                }
                let mut ext = asg.clone();
                for q in qvars {
                    ext.remove(q);
                }
                let mut ok = true;
                for (&v, &t) in args.iter().zip(fact.args.iter()) {
                    match ext.get(&v) {
                        Some(&prev) if prev != t => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            ext.insert(v, t);
                        }
                    }
                }
                if ok {
                    out.push(ext);
                }
            }
        }
        Guard::Eq(x, y) => {
            if x == y {
                for t in a.dom() {
                    let mut ext = asg.clone();
                    ext.insert(*x, t);
                    out.push(ext);
                }
            } else {
                for t in a.dom() {
                    let mut ext = asg.clone();
                    ext.insert(*x, t);
                    ext.insert(*y, t);
                    out.push(ext);
                }
            }
        }
    }
}

/// Runs the (disjunctive) chase of `D` with `O`.
pub fn chase(
    o: &GfOntology,
    d: &Instance,
    vocab: &mut Vocab,
    config: ChaseConfig,
) -> Result<ChaseResult, ChaseError> {
    let sentences = prepare(o)?;
    let mut leaves: Vec<Interpretation> = Vec::new();
    let mut steps = 0usize;
    let mut stack: Vec<Interpretation> = vec![d.clone()];
    while let Some(current) = stack.pop() {
        // Find a violated sentence instance.
        let mut violation: Option<(usize, Assignment)> = None;
        'scan: for (si, s) in sentences.iter().enumerate() {
            let mut matches = Vec::new();
            collect_guard_matches(
                &s.guard,
                &s.qvars,
                &current,
                &Assignment::new(),
                &mut matches,
            );
            for m in matches {
                if !eval(&s.body, &current, &m) {
                    violation = Some((si, m));
                    break 'scan;
                }
            }
        }
        let Some((si, m)) = violation else {
            debug_assert!(satisfies_ontology(&current, o));
            if !leaves.contains(&current) {
                leaves.push(current);
                if leaves.len() > config.max_leaves {
                    return Err(ChaseError::BoundExceeded);
                }
            }
            continue;
        };
        steps += 1;
        if steps > config.max_steps {
            return Err(ChaseError::BoundExceeded);
        }
        let options = repairs(&sentences[si].body, &current, &m, vocab);
        for opt in options {
            let mut next = current.clone();
            for f in opt {
                next.insert(f);
            }
            stack.push(next);
        }
        // No options: the branch is inconsistent and simply dies.
    }
    Ok(ChaseResult { leaves, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gomq_core::query::CqBuilder;

    fn vocab_with(v: &mut Vocab) -> (gomq_core::RelId, gomq_core::RelId, gomq_core::RelId) {
        (v.rel("A", 1), v.rel("B", 1), v.rel("R", 2))
    }

    /// Horn ontology: A ⊑ ∃R.B, plus propagation ∀xy(R(x,y) → (B(y) → A(y))).
    fn horn(v: &mut Vocab) -> GfOntology {
        let (a, b, r) = vocab_with(v);
        let (x, y) = (LVar(0), LVar(1));
        let s1 = UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(a, x),
                Formula::Exists {
                    qvars: vec![y],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![x, y],
                    },
                    body: Box::new(Formula::unary(b, y)),
                },
            ),
            vec!["x".into(), "y".into()],
        );
        let s2 = UgfSentence::new(
            vec![x, y],
            Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            Formula::implies(Formula::unary(b, y), Formula::unary(a, y)),
            vec!["x".into(), "y".into()],
        );
        GfOntology::from_ugf(vec![s1, s2])
    }

    #[test]
    fn horn_chase_is_deterministic_but_infinite_without_bound() {
        // A ⊑ ∃R.B and B ⊑ A generates an infinite chase: the budget stops it.
        let mut v = Vocab::new();
        let o = horn(&mut v);
        let (a, _, _) = vocab_with(&mut v);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c]));
        let err = chase(
            &o,
            &d,
            &mut v,
            ChaseConfig {
                max_steps: 50,
                max_leaves: 10,
            },
        )
        .unwrap_err();
        assert_eq!(err, ChaseError::BoundExceeded);
    }

    /// Terminating Horn ontology: A ⊑ ∃R.B only.
    fn terminating_horn(v: &mut Vocab) -> GfOntology {
        let (a, b, r) = vocab_with(v);
        let (x, y) = (LVar(0), LVar(1));
        GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(a, x),
                Formula::Exists {
                    qvars: vec![y],
                    guard: Guard::Atom {
                        rel: r,
                        args: vec![x, y],
                    },
                    body: Box::new(Formula::unary(b, y)),
                },
            ),
            vec!["x".into(), "y".into()],
        )])
    }

    #[test]
    fn terminating_horn_chase_materializes() {
        let mut v = Vocab::new();
        let o = terminating_horn(&mut v);
        let (a, b, r) = vocab_with(&mut v);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c]));
        let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
        let m = result.materialization().expect("single leaf");
        assert!(satisfies_ontology(m, &o));
        assert!(m.models_instance(&d));
        // Certain answers: ∃y R(c,y) ∧ B(y) holds, B(x) has no named answer.
        let mut bq = CqBuilder::new();
        let qx = bq.var("x");
        let qy = bq.var("y");
        bq.atom(r, &[qx, qy]).atom(b, &[qy]);
        let q = Ucq::from_cq(bq.build(vec![qx]));
        let ans = result.certain_answers(&q, &d);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Term::Const(c)]));
    }

    #[test]
    fn disjunctive_chase_branches_and_intersects() {
        // ∀x(A(x) → B(x) ∨ C(x)): neither B(c) nor C(c) is certain, but
        // the UCQ B(x) ∨ C(x) is.
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c_rel = v.rel("C", 1);
        let x = LVar(0);
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::implies(
                Formula::unary(a, x),
                Formula::Or(vec![Formula::unary(b, x), Formula::unary(c_rel, x)]),
            ),
            vec!["x".into()],
        )]);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c]));
        let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
        assert_eq!(result.leaves.len(), 2);
        let mk = |rel| {
            let mut bq = CqBuilder::new();
            let qx = bq.var("x");
            bq.atom(rel, &[qx]);
            Ucq::from_cq(bq.build(vec![qx]))
        };
        assert!(result.certain_answers(&mk(b), &d).is_empty());
        assert!(result.certain_answers(&mk(c_rel), &d).is_empty());
        let union = Ucq::new(vec![
            mk(b).disjuncts[0].clone(),
            mk(c_rel).disjuncts[0].clone(),
        ]);
        assert_eq!(result.certain_answers(&union, &d).len(), 1);
    }

    #[test]
    fn dead_branches_from_negated_atoms() {
        // ∀x(A(x) → B(x) ∨ C(x)) and ∀x ¬B(x): only the C branch survives.
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let b = v.rel("B", 1);
        let c_rel = v.rel("C", 1);
        let x = LVar(0);
        let o = GfOntology::from_ugf(vec![
            UgfSentence::forall_one(
                x,
                Formula::implies(
                    Formula::unary(a, x),
                    Formula::Or(vec![Formula::unary(b, x), Formula::unary(c_rel, x)]),
                ),
                vec!["x".into()],
            ),
            UgfSentence::forall_one(
                x,
                Formula::Not(Box::new(Formula::unary(b, x))),
                vec!["x".into()],
            ),
        ]);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c]));
        let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
        assert_eq!(result.leaves.len(), 1);
        let mut bq = CqBuilder::new();
        let qx = bq.var("x");
        bq.atom(c_rel, &[qx]);
        let q = Ucq::from_cq(bq.build(vec![qx]));
        assert_eq!(result.certain_answers(&q, &d).len(), 1);
    }

    #[test]
    fn inconsistent_instance_has_no_leaves() {
        let mut v = Vocab::new();
        let a = v.rel("A", 1);
        let x = LVar(0);
        let o = GfOntology::from_ugf(vec![UgfSentence::forall_one(
            x,
            Formula::Not(Box::new(Formula::unary(a, x))),
            vec!["x".into()],
        )]);
        let c = v.constant("c");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c]));
        let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
        assert!(result.leaves.is_empty());
        // Everything is certain on an inconsistent instance.
        let n = v.rel("N", 1);
        let mut bq = CqBuilder::new();
        let qx = bq.var("x");
        bq.atom(n, &[qx]);
        let q = Ucq::from_cq(bq.build(vec![qx]));
        assert_eq!(result.certain_answers(&q, &d).len(), 1);
    }

    #[test]
    fn unsupported_features_are_rejected() {
        let mut v = Vocab::new();
        let r = v.rel("R", 2);
        let mut o = GfOntology::new();
        o.declare_functional(r);
        let c = v.constant("c");
        let mut d = Instance::new();
        let a = v.rel("A", 1);
        d.insert(Fact::consts(a, &[c]));
        assert!(matches!(
            chase(&o, &d, &mut v, ChaseConfig::default()),
            Err(ChaseError::Unsupported(_))
        ));
    }

    #[test]
    fn forall_propagation_chases_along_edges() {
        // ∀xy(R(x,y) → (A(x) → A(y))) on a path propagates A to the end.
        let mut v = Vocab::new();
        let (a, _, r) = vocab_with(&mut v);
        let (x, y) = (LVar(0), LVar(1));
        let o = GfOntology::from_ugf(vec![UgfSentence::new(
            vec![x, y],
            Guard::Atom {
                rel: r,
                args: vec![x, y],
            },
            Formula::implies(Formula::unary(a, x), Formula::unary(a, y)),
            vec!["x".into(), "y".into()],
        )]);
        let c0 = v.constant("c0");
        let c1 = v.constant("c1");
        let c2 = v.constant("c2");
        let mut d = Instance::new();
        d.insert(Fact::consts(a, &[c0]));
        d.insert(Fact::consts(r, &[c0, c1]));
        d.insert(Fact::consts(r, &[c1, c2]));
        let result = chase(&o, &d, &mut v, ChaseConfig::default()).expect("terminates");
        let m = result.materialization().expect("deterministic");
        assert!(m.contains(&Fact::consts(a, &[c2])));
    }
}
